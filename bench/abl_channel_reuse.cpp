// Ablation: channel reuse (Sec IV-B1).
//
// "In order to reduce the overhead on the MC, we should reuse the mimic
// channel among the communications between the same participants."  This
// bench compares the MC request load and total session-setup latency for a
// burst of short sessions between one pair, with and without reuse.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr int kSessions = 20;

  std::printf("# Ablation: channel reuse under %d short sessions\n",
              kSessions);
  std::printf("%-10s %14s %16s %14s\n", "mode", "mc_requests",
              "total_setup_ms", "mc_cpu_ms");

  for (const bool reuse : {false, true}) {
    FabricOptions options;
    options.seed = 21;
    Fabric fabric(options);
    auto& simulator = fabric.simulator();

    MicServer server(fabric.host(kServerHost), 7000, fabric.rng());
    server.set_on_channel([](mic::core::MicServerChannel& channel) {
      channel.set_on_data([](const mic::transport::ChunkView&) {});
    });

    double total_setup_ms = 0.0;
    std::unique_ptr<MicChannel> channel;
    for (int s = 0; s < kSessions; ++s) {
      if (!reuse || channel == nullptr) {
        if (channel != nullptr) {
          channel->close();  // shutdown request to the MC
          simulator.run_until();
        }
        MicChannelOptions mic_options;
        mic_options.responder_ip = fabric.ip(kServerHost);
        mic_options.responder_port = 7000;
        channel = std::make_unique<MicChannel>(
            fabric.host(kClientHost), fabric.mc(), mic_options, fabric.rng());
        simulator.run_until();
        total_setup_ms += mic::sim::to_millis(channel->setup_time());
      } else {
        channel->reacquire();  // periodic notification instead of a request
      }
      channel->send(mic::transport::Chunk::real(
          std::vector<std::uint8_t>(512, 0x42)));
      simulator.run_until();
      if (reuse) channel->release_for_reuse();
      simulator.run_until();
    }

    std::printf("%-10s %14llu %16.3f %14.3f\n", reuse ? "reuse" : "fresh",
                static_cast<unsigned long long>(
                    fabric.mc().requests_handled()),
                total_setup_ms,
                mic::sim::to_millis(fabric.mc().mc_cpu().busy_time()));
  }
  return 0;
}
