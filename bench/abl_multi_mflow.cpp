// Ablation: the multiple-m-flows mechanism (Sec IV-C).
//
// Sweeps F and reports the size-based traffic-analysis error: the
// adversary observes one m-flow's middle segment and takes the byte count
// as the channel size.  With striping, the observed fraction tends to 1/F.
// Also reports the goodput cost of splitting the channel.
#include <cstdio>

#include "anonymity/attacks.hpp"
#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr std::uint64_t kBytes = 4ull * 1024 * 1024;

  std::printf("# Ablation: multiple m-flows vs size-based analysis\n");
  std::printf("# adversary watches ONE m-flow; observed_frac ~ 1/F\n");
  std::printf("%-8s %14s %12s %12s\n", "F", "observed_frac", "size_err",
              "goodput_Mb");

  for (const int flows : {1, 2, 4, 8}) {
    FabricOptions options;
    options.seed = 11;
    Fabric fabric(options);
    auto& simulator = fabric.simulator();

    MicServer server(fabric.host(kServerHost), 7000, fabric.rng());
    std::unique_ptr<mic::transport::BulkSink> sink;
    server.set_on_channel([&](mic::core::MicServerChannel& channel) {
      sink = std::make_unique<mic::transport::BulkSink>(channel, simulator,
                                                        kBytes);
    });

    MicChannelOptions mic_options;
    mic_options.responder_ip = fabric.ip(kServerHost);
    mic_options.responder_port = 7000;
    mic_options.flow_count = flows;
    MicChannel channel(fabric.host(kClientHost), fabric.mc(), mic_options,
                       fabric.rng());
    simulator.run_until();

    const auto* state = fabric.mc().channel(channel.id());
    if (state == nullptr || state->flows.empty()) {
      std::fprintf(stderr, "channel failed\n");
      return 1;
    }
    const auto& plan = state->flows[0];
    mic::anonymity::Observer observer;
    observer.compromise_switch(fabric.network(),
                               plan.path[plan.mn_positions[1]]);

    channel.send(mic::transport::Chunk::virtual_bytes(kBytes));
    simulator.run_until();

    const std::uint64_t seen = mic::anonymity::observed_payload_bytes(
        observer.ingress(), plan.forward[1].src, plan.forward[1].dst);
    const double fraction =
        static_cast<double>(seen) / static_cast<double>(kBytes);
    const double goodput =
        sink != nullptr && sink->finished() ? sink->goodput_bps() / 1e6 : 0.0;
    std::printf("%-8d %14.3f %12.3f %12.1f\n", flows, fraction,
                std::abs(1.0 - fraction), goodput);
  }
  return 0;
}
