// Ablation: how close to "global" must the adversary get?
//
// The paper excludes the global adversary ("MIC does not protect against a
// global adversary who can snoop on all paths or switches") and argues that
// compromising many switches is impractical.  This experiment quantifies
// the cliff: an adversary compromises a random fraction of the switches and
// runs the end-to-end content-correlation attack on everything it sees.
// Linking requires observing BOTH plaintext-address segments (before the
// first MN and after the last), so success stays near zero until coverage
// is nearly total -- the quantitative version of the paper's argument.
#include <cstdio>

#include "anonymity/attacks.hpp"
#include "common.hpp"

int main() {
  using namespace mic;
  using namespace mic::bench;

  constexpr int kTrials = 30;
  std::printf("# Ablation: adversary switch coverage vs endpoint linking\n");
  std::printf("# end-to-end content trace over the observed links only\n");
  std::printf("# %d trials per row, one mimic channel each (N=3)\n", kTrials);
  std::printf("%-12s %10s\n", "compromised", "link_rate");

  for (const int percent : {10, 25, 50, 75, 90, 100}) {
    int linked = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      FabricOptions options;
      options.seed = 1000 + static_cast<std::uint64_t>(trial);
      Fabric fabric(options);
      Rng pick(500 + static_cast<std::uint64_t>(trial));

      MicServer server(fabric.host(kServerHost), 7000, fabric.rng());
      server.set_on_channel([](core::MicServerChannel& channel) {
        channel.set_on_data([](const transport::ChunkView&) {});
      });

      // Compromise `percent` of the switches (taps on their links).
      anonymity::Observer observer;
      auto switches = fabric.network().graph().switches();
      pick.shuffle(switches);
      const std::size_t count =
          (switches.size() * static_cast<std::size_t>(percent) + 99) / 100;
      for (std::size_t i = 0; i < count; ++i) {
        observer.compromise_switch(fabric.network(), switches[i]);
      }

      MicChannelOptions channel_options;
      channel_options.responder_ip = fabric.ip(kServerHost);
      channel_options.responder_port = 7000;
      MicChannel channel(fabric.host(kClientHost), fabric.mc(),
                         channel_options, fabric.rng());
      channel.send(transport::Chunk::virtual_bytes(64 * 1024));
      fabric.simulator().run_until();

      // The adversary tries every payload fingerprint it captured.
      bool trial_linked = false;
      std::unordered_set<std::uint64_t> tags;
      for (const auto& record : observer.records()) {
        if (record.payload_bytes > 0) tags.insert(record.content_tag);
      }
      for (const std::uint64_t tag : tags) {
        const auto trace =
            anonymity::global_content_trace(observer.records(), tag);
        if (trace.linked && trace.source == fabric.ip(kClientHost) &&
            trace.destination == fabric.ip(kServerHost)) {
          trial_linked = true;
          break;
        }
      }
      linked += trial_linked;
    }
    std::printf("%10d%% %10.2f\n", percent,
                static_cast<double>(linked) / kTrials);
  }
  return 0;
}
