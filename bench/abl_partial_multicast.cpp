// Ablation: the partially-multicast mechanism (Sec IV-C).
//
// Sweeps the decoy replication factor k and reports (a) the single-MN
// ingress/egress correlation attack's expected success at the first MN --
// which should fall toward 1/(k+1) -- and (b) the bandwidth and goodput
// cost of carrying the decoys.
#include <cstdio>

#include "anonymity/attacks.hpp"
#include "common.hpp"

int main() {
  using namespace mic::bench;
  using mic::anonymity::CorrelationReport;
  using mic::anonymity::Observer;
  constexpr std::uint64_t kBytes = 2ull * 1024 * 1024;

  std::printf("# Ablation: partial multicast vs correlation attack\n");
  std::printf(
      "# expected success of ingress/egress matching at the first MN;\n");
  std::printf("# fabric_bytes counts every byte on every link (decoy cost)\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "decoys", "succ_rate",
              "candidates", "goodput_Mb", "fabric_MB");

  for (const int decoys : {0, 1, 2, 3}) {
    FabricOptions options;
    options.seed = 7;
    Fabric fabric(options);
    auto& simulator = fabric.simulator();

    MicServer server(fabric.host(kServerHost), 7000, fabric.rng());
    std::unique_ptr<mic::transport::BulkSink> sink;
    server.set_on_channel([&](mic::core::MicServerChannel& channel) {
      sink = std::make_unique<mic::transport::BulkSink>(channel, simulator,
                                                        kBytes);
    });

    MicChannelOptions mic_options;
    mic_options.responder_ip = fabric.ip(kServerHost);
    mic_options.responder_port = 7000;
    mic_options.multicast_decoys = decoys;
    MicChannel channel(fabric.host(kClientHost), fabric.mc(), mic_options,
                       fabric.rng());
    simulator.run_until();

    const auto* state = fabric.mc().channel(channel.id());
    if (state == nullptr || state->flows.empty()) {
      std::fprintf(stderr, "channel failed\n");
      return 1;
    }
    const auto& plan = state->flows[0];
    Observer observer;
    observer.compromise_switch(fabric.network(),
                               plan.path[plan.mn_positions[0]]);

    std::uint64_t fabric_bytes = 0;
    fabric.network().add_global_tap(
        [&](mic::topo::LinkId, mic::topo::NodeId, mic::topo::NodeId,
            const mic::net::Packet& packet,
            mic::sim::SimTime) { fabric_bytes += packet.wire_bytes(); });

    channel.send(mic::transport::Chunk::virtual_bytes(kBytes));
    simulator.run_until();

    const CorrelationReport report = mic::anonymity::correlate_at_switch(
        observer, mic::sim::milliseconds(10));
    const double goodput =
        sink != nullptr && sink->finished() ? sink->goodput_bps() / 1e6 : 0.0;
    std::printf("%-8d %12.3f %12.2f %12.1f %12.1f\n", decoys,
                report.expected_success, report.mean_candidates, goodput,
                static_cast<double>(fabric_bytes) / 1e6);
  }
  return 0;
}
