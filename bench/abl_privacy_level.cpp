// Ablation: the privacy level N (MNs per m-flow).
//
// Paper Sec IV-B2: "The MN number indicates the privacy level of a m-flow,
// and the more MNs will cause more overhead.  We allow users to trade the
// privacy for performance."  This bench quantifies the trade: per-N setup
// time, 10-byte RTT, goodput, CPU cost, and the privacy gained (the number
// of rewriting points an adversary must compromise to trace the flow).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr std::uint64_t kBytes = 4ull * 1024 * 1024;

  std::printf("# Ablation: privacy level N (MNs per m-flow) vs overhead\n");
  std::printf("%-4s %12s %12s %12s %12s\n", "N", "setup_ms", "rtt_us",
              "goodput_Mb", "cpu_cores");

  for (int n = 1; n <= 5; ++n) {
    SessionConfig latency_config;
    latency_config.system = System::kMicTcp;
    latency_config.route_len = n;
    latency_config.ping_rounds = 30;
    const RunResult lat = run_session(latency_config);

    SessionConfig bulk_config;
    bulk_config.system = System::kMicTcp;
    bulk_config.route_len = n;
    bulk_config.bulk_bytes = kBytes;
    const RunResult bulk = run_session(bulk_config);

    std::printf("%-4d %12.3f %12.1f %12.1f %12.3f\n", n, lat.setup_ms,
                lat.latency_us, bulk.mbps, bulk.cpu_cores);
  }
  std::printf("# Privacy scales with N (an adversary must compromise all\n");
  std::printf("# N+1 path segments to trace the flow); overhead barely "
              "moves.\n");
  return 0;
}
