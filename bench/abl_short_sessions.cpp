// Ablation: "massive short communication scenes" (paper Sec IV-B1) --
// the workload that motivates channel reuse.  Runs a burst of sequential
// RPC-style sessions (1 KB request, 4 KB response) between one pair and
// reports total completion time and per-session cost for:
//   TCP          - a fresh connection per RPC (the non-anonymous baseline)
//   MIC fresh    - a fresh mimic channel per RPC (worst case)
//   MIC reuse    - one mimic channel reused across RPCs via the pool
#include <cstdio>

#include "common.hpp"

namespace {

using namespace mic;
using namespace mic::bench;

constexpr int kSessions = 25;

std::vector<std::uint8_t> request_bytes() {
  return std::vector<std::uint8_t>(1024, 0x3f);
}

/// Runs `kSessions` sequential RPCs; returns total time in ms.
double run_tcp() {
  Fabric fabric;
  auto& simulator = fabric.simulator();
  fabric.host(kServerHost).listen(5000, [&](transport::TcpConnection& conn) {
    auto got = std::make_shared<std::uint64_t>(0);
    conn.set_on_data([c = &conn, got](const transport::ChunkView& view) {
      *got += view.length;
      if (*got >= 1024) {
        *got = 0;
        c->send(transport::Chunk::virtual_bytes(4096));
      }
    });
  });

  const sim::SimTime start = simulator.now();
  for (int s = 0; s < kSessions; ++s) {
    std::uint64_t received = 0;
    bool done = false;
    auto& conn = fabric.host(kClientHost).connect(fabric.ip(kServerHost), 5000);
    conn.set_on_ready(
        [&conn] { conn.send(transport::Chunk::real(request_bytes())); });
    conn.set_on_data([&](const transport::ChunkView& view) {
      received += view.length;
      if (received >= 4096) done = true;
    });
    simulator.run_until();
    if (!done) {
      std::fprintf(stderr, "tcp rpc %d incomplete\n", s);
      return 0;
    }
    conn.close();
    simulator.run_until();
  }
  return sim::to_millis(simulator.now() - start);
}

double run_mic(bool reuse) {
  Fabric fabric;
  auto& simulator = fabric.simulator();
  fabric.mc().register_client(fabric.ip(kClientHost));
  simulator.run_until(simulator.now() + sim::milliseconds(50));

  MicServer server(fabric.host(kServerHost), 7000, fabric.rng());
  server.set_on_channel([](core::MicServerChannel& channel) {
    auto* ch = &channel;
    auto got = std::make_shared<std::uint64_t>(0);
    channel.set_on_data([ch, got](const transport::ChunkView& view) {
      *got += view.length;
      if (*got >= 1024) {
        *got = 0;
        ch->send(transport::Chunk::virtual_bytes(4096));
      }
    });
  });

  core::MicChannelPool pool(fabric.host(kClientHost), fabric.mc(),
                            fabric.rng());
  MicChannelOptions options;
  options.responder_ip = fabric.ip(kServerHost);
  options.responder_port = 7000;

  const sim::SimTime start = simulator.now();
  for (int s = 0; s < kSessions; ++s) {
    MicChannel& channel = pool.acquire(options);
    std::uint64_t received = 0;
    bool done = false;
    channel.set_on_data([&](const transport::ChunkView& view) {
      received += view.length;
      if (received >= 4096) done = true;
    });
    channel.send(transport::Chunk::real(request_bytes()));
    simulator.run_until();
    if (!done) {
      std::fprintf(stderr, "mic rpc %d incomplete\n", s);
      return 0;
    }
    if (reuse) {
      pool.release(channel);
    } else {
      channel.close();
      pool.drain();
    }
    simulator.run_until();
  }
  return sim::to_millis(simulator.now() - start);
}

}  // namespace

int main() {
  std::printf("# Ablation: %d sequential short RPCs (1 KB -> 4 KB)\n",
              kSessions);
  std::printf("%-10s %14s %16s\n", "mode", "total_ms", "per_session_ms");
  const double tcp = run_tcp();
  const double fresh = run_mic(/*reuse=*/false);
  const double reused = run_mic(/*reuse=*/true);
  std::printf("%-10s %14.2f %16.3f\n", "TCP", tcp, tcp / kSessions);
  std::printf("%-10s %14.2f %16.3f\n", "MIC-fresh", fresh, fresh / kSessions);
  std::printf("%-10s %14.2f %16.3f\n", "MIC-reuse", reused,
              reused / kSessions);
  std::printf("# reuse removes the per-session MC round trip + rule "
              "install,\n# closing most of the gap to plain TCP.\n");
  return 0;
}
