// Shared scenario runners for the figure-reproduction benchmarks.
//
// Every runner builds a fresh Fabric (the paper's 16-host k=4 fat-tree),
// drives one of the four systems (TCP, SSL, MIC-TCP/MIC-SSL, Tor) through
// the workload of the corresponding figure, and reports the measured
// quantity plus the CPU cost (summed busy time of every host, switch and
// the MC, expressed in "cores of the paper's 2 GHz Xeon").
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "tor/client.hpp"
#include "tor/relay.hpp"
#include "transport/apps.hpp"
#include "transport/ssl.hpp"

namespace mic::bench {

using core::Fabric;
using core::FabricOptions;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;

/// Hosts used by the standard scenarios.
inline constexpr std::size_t kClientHost = 0;    // pod 0
inline constexpr std::size_t kServerHost = 12;   // pod 3 (inter-pod: 5 switches)
inline constexpr std::size_t kFirstRelayHost = 8;  // relays on pod 2/3 hosts

struct RunResult {
  bool ok = false;
  double setup_ms = 0.0;       // connection / circuit / channel setup
  double latency_us = 0.0;     // mean 10-byte ping-pong RTT
  double mbps = 0.0;           // per-flow goodput (mean across flows)
  double cpu_cores = 0.0;      // summed busy fraction over the run
  sim::SimTime duration = 0;
};

/// Total busy time across every simulated CPU (hosts, switches, MC).
inline sim::SimTime total_busy(Fabric& fabric) {
  sim::SimTime busy = fabric.mc().mc_cpu().busy_time();
  for (const topo::NodeId n : fabric.network().graph().switches()) {
    busy += fabric.mc().switch_at(n)->cpu().busy_time();
  }
  for (std::size_t i = 0; i < fabric.host_count(); ++i) {
    busy += fabric.host(i).cpu().busy_time();
  }
  return busy;
}

inline std::vector<tor::RelayAddr> make_relays(
    Fabric& fabric, std::vector<std::unique_ptr<tor::TorRelay>>& storage,
    int count) {
  std::vector<tor::RelayAddr> path;
  for (int i = 0; i < count; ++i) {
    const std::size_t host = kFirstRelayHost + static_cast<std::size_t>(i);
    storage.push_back(
        std::make_unique<tor::TorRelay>(fabric.host(host), 9001, fabric.rng()));
    path.push_back({fabric.ip(host), 9001});
  }
  return path;
}

enum class System { kTcp, kSsl, kMicTcp, kMicSsl, kTor };

inline const char* system_name(System system) {
  switch (system) {
    case System::kTcp: return "TCP";
    case System::kSsl: return "SSL";
    case System::kMicTcp: return "MIC-TCP";
    case System::kMicSsl: return "MIC-SSL";
    case System::kTor: return "Tor";
  }
  return "?";
}

/// One end-to-end session of `system` with `route_len` rewriting/relay
/// stages, optionally followed by a ping-pong latency test and/or a bulk
/// transfer.  This is the engine behind Figures 7, 8 and 9(a).
struct SessionConfig {
  System system = System::kTcp;
  int route_len = 3;        // MIC MN count / Tor relay count; ignored for TCP/SSL
  int flows = 1;            // MIC m-flow count F
  int ping_rounds = 0;      // Figure 8 when > 0
  std::uint64_t bulk_bytes = 0;  // Figure 9(a) when > 0
  std::uint64_t seed = 42;
};

inline RunResult run_session(const SessionConfig& config) {
  FabricOptions options;
  options.seed = config.seed;
  Fabric fabric(options);
  RunResult result;

  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::unique_ptr<MicServer> mic_server;
  std::unique_ptr<MicChannel> mic_channel;
  std::unique_ptr<tor::TorClient> tor_client;
  std::unique_ptr<transport::SslSession> client_ssl;
  std::unique_ptr<transport::SslSession> server_ssl;
  transport::TcpConnection* plain_conn = nullptr;
  transport::ByteStream* client_stream = nullptr;
  transport::ByteStream* server_stream = nullptr;

  const net::Ipv4 server_ip = fabric.ip(kServerHost);
  auto& client_host = fabric.host(kClientHost);
  auto& server_host = fabric.host(kServerHost);
  auto& simulator = fabric.simulator();

  const bool use_ssl = config.system == System::kSsl ||
                       config.system == System::kMicSsl;

  switch (config.system) {
    case System::kTcp:
    case System::kSsl: {
      server_host.listen(5000, [&](transport::TcpConnection& conn) {
        if (use_ssl) {
          server_ssl = std::make_unique<transport::SslSession>(
              conn, transport::SslSession::Role::kServer, server_host,
              fabric.rng());
          server_stream = server_ssl.get();
        } else {
          server_stream = &conn;
        }
      });
      plain_conn = &client_host.connect(server_ip, 5000);
      if (use_ssl) {
        client_ssl = std::make_unique<transport::SslSession>(
            *plain_conn, transport::SslSession::Role::kClient, client_host,
            fabric.rng());
        client_stream = client_ssl.get();
      } else {
        client_stream = plain_conn;
      }
      break;
    }
    case System::kMicTcp:
    case System::kMicSsl: {
      // The one-time client<->MC key exchange happens "in advance using
      // asymmetric encryption algorithms" (Sec VI) -- it is not part of
      // the measured connect time.  Let idle time pass so the MC CPU is
      // free again before the connect request arrives.
      fabric.mc().register_client(fabric.ip(kClientHost));
      simulator.run_until(simulator.now() + sim::milliseconds(50));
      mic_server = std::make_unique<MicServer>(server_host, 7000,
                                               fabric.rng(), use_ssl);
      mic_server->set_on_channel([&](core::MicServerChannel& channel) {
        server_stream = &channel;
      });
      MicChannelOptions mic_options;
      mic_options.responder_ip = server_ip;
      mic_options.responder_port = 7000;
      mic_options.mn_count = config.route_len;
      mic_options.flow_count = config.flows;
      mic_options.use_ssl = use_ssl;
      mic_channel = std::make_unique<MicChannel>(client_host, fabric.mc(),
                                                 mic_options, fabric.rng());
      client_stream = mic_channel.get();
      break;
    }
    case System::kTor: {
      const auto path = make_relays(fabric, relays, config.route_len);
      server_host.listen(5000, [&](transport::TcpConnection& conn) {
        server_stream = &conn;
      });
      tor_client = std::make_unique<tor::TorClient>(
          client_host, path, server_ip, 5000, fabric.rng());
      client_stream = tor_client.get();
      break;
    }
  }

  // --- setup phase ------------------------------------------------------------
  const sim::SimTime start = simulator.now();
  const sim::SimTime busy_at_start = total_busy(fabric);
  bool ready = false;
  sim::SimTime ready_at = 0;
  client_stream->set_on_ready([&] {
    ready = true;
    ready_at = simulator.now();
  });
  if (client_stream->ready()) {
    ready = true;
    ready_at = simulator.now();
  }
  simulator.run_until();
  if (!ready) {
    std::fprintf(stderr, "session setup failed for %s\n",
                 system_name(config.system));
    return result;
  }
  result.setup_ms = sim::to_millis(ready_at - start);

  // --- latency phase (Figure 8) --------------------------------------------------
  if (config.ping_rounds > 0) {
    // The server side stream exists once the first bytes arrive for MIC;
    // for TCP/SSL/Tor it exists after accept.  Attach an echo when ready.
    std::unique_ptr<transport::PingPongServer> echo;
    std::unique_ptr<transport::PingPongClient> ping;
    auto attach_echo = [&] {
      if (server_stream != nullptr && echo == nullptr) {
        echo = std::make_unique<transport::PingPongServer>(*server_stream);
      }
    };
    attach_echo();
    if (echo == nullptr && mic_server != nullptr) {
      mic_server->set_on_channel([&](core::MicServerChannel& channel) {
        server_stream = &channel;
        attach_echo();
      });
    }
    ping = std::make_unique<transport::PingPongClient>(
        *client_stream, simulator, config.ping_rounds);
    simulator.run_until();
    result.latency_us = ping->mean_rtt_us();
  }

  // --- bulk phase (Figure 9a) ------------------------------------------------------
  if (config.bulk_bytes > 0) {
    std::unique_ptr<transport::BulkSink> sink;
    auto attach_sink = [&] {
      if (server_stream != nullptr && sink == nullptr) {
        sink = std::make_unique<transport::BulkSink>(*server_stream, simulator,
                                                     config.bulk_bytes);
      }
    };
    attach_sink();
    if (sink == nullptr && mic_server != nullptr) {
      mic_server->set_on_channel([&](core::MicServerChannel& channel) {
        server_stream = &channel;
        attach_sink();
      });
    }
    client_stream->send(transport::Chunk::virtual_bytes(config.bulk_bytes));
    simulator.run_until();
    attach_sink();
    if (sink == nullptr || !sink->finished()) {
      std::fprintf(stderr, "bulk transfer incomplete for %s\n",
                   system_name(config.system));
      return result;
    }
    result.mbps = sink->goodput_bps() / 1e6;
  }

  result.duration = simulator.now() - start;
  if (result.duration > 0) {
    result.cpu_cores =
        static_cast<double>(total_busy(fabric) - busy_at_start) /
        static_cast<double>(result.duration);
  }
  result.ok = true;
  return result;
}

/// N concurrent bulk flows, path length 3 (Figure 9b): returns the mean
/// per-flow goodput.
struct MultiFlowConfig {
  System system = System::kTcp;
  int flows = 1;
  std::uint64_t bytes_per_flow = 4 * 1024 * 1024;
  std::uint64_t seed = 42;
};

inline RunResult run_multi_flow(const MultiFlowConfig& config) {
  FabricOptions options;
  options.seed = config.seed;
  Fabric fabric(options);
  auto& simulator = fabric.simulator();
  RunResult result;

  const bool is_mic = config.system == System::kMicTcp ||
                      config.system == System::kMicSsl;
  const bool use_ssl = config.system == System::kSsl ||
                       config.system == System::kMicSsl;

  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::vector<tor::RelayAddr> relay_path;
  if (config.system == System::kTor) {
    relay_path = make_relays(fabric, relays, 3);
  }
  if (is_mic) {
    for (int i = 0; i < 8; ++i) {
      fabric.mc().register_client(fabric.ip(static_cast<std::size_t>(i)));
    }
    simulator.run_until(simulator.now() + sim::milliseconds(100));
  }
  const sim::SimTime start = simulator.now();
  const sim::SimTime busy_at_start = total_busy(fabric);

  std::vector<std::unique_ptr<MicServer>> mic_servers;
  std::vector<std::unique_ptr<MicChannel>> mic_channels;
  std::vector<std::unique_ptr<tor::TorClient>> tor_clients;
  std::vector<std::unique_ptr<transport::SslSession>> ssl_sessions;
  std::vector<std::unique_ptr<transport::BulkSink>> sinks;
  std::vector<std::unique_ptr<transport::BulkSender>> senders;

  // Flow i: client host (i % 8) in pods 0/1, server host 8 + (i % 8) in
  // pods 2/3 -- always inter-pod, path length 3 MNs fits.  Starts are
  // staggered by a few ms (iperf runs are never perfectly synchronized;
  // lock-step starts synchronize slow-start overshoot unrealistically).
  for (int i = 0; i < config.flows; ++i) {
    auto setup_flow = [&config, &fabric, &simulator, &relay_path,
                       &mic_servers, &mic_channels, &tor_clients,
                       &ssl_sessions, &sinks, &senders, use_ssl, i] {
    const std::size_t client_index = static_cast<std::size_t>(i % 8);
    const std::size_t server_index = 8 + static_cast<std::size_t>(i % 8);
    auto& client_host = fabric.host(client_index);
    auto& server_host = fabric.host(server_index);
    const net::L4Port port = static_cast<net::L4Port>(5000 + i);

    switch (config.system) {
      case System::kTcp:
      case System::kSsl: {
        server_host.listen(port, [&, use_ssl](transport::TcpConnection& conn) {
          transport::ByteStream* stream = &conn;
          if (use_ssl) {
            ssl_sessions.push_back(std::make_unique<transport::SslSession>(
                conn, transport::SslSession::Role::kServer, server_host,
                fabric.rng()));
            stream = ssl_sessions.back().get();
          }
          sinks.push_back(std::make_unique<transport::BulkSink>(
              *stream, simulator, config.bytes_per_flow));
        });
        auto& conn = client_host.connect(fabric.ip(server_index), port);
        transport::ByteStream* stream = &conn;
        if (use_ssl) {
          ssl_sessions.push_back(std::make_unique<transport::SslSession>(
              conn, transport::SslSession::Role::kClient, client_host,
              fabric.rng()));
          stream = ssl_sessions.back().get();
        }
        senders.push_back(std::make_unique<transport::BulkSender>(
            *stream, config.bytes_per_flow));
        break;
      }
      case System::kMicTcp:
      case System::kMicSsl: {
        mic_servers.push_back(std::make_unique<MicServer>(
            server_host, port, fabric.rng(), use_ssl));
        mic_servers.back()->set_on_channel(
            [&](core::MicServerChannel& channel) {
              sinks.push_back(std::make_unique<transport::BulkSink>(
                  channel, simulator, config.bytes_per_flow));
            });
        MicChannelOptions mic_options;
        mic_options.responder_ip = fabric.ip(server_index);
        mic_options.responder_port = port;
        mic_options.mn_count = 3;
        mic_options.use_ssl = use_ssl;
        mic_channels.push_back(std::make_unique<MicChannel>(
            client_host, fabric.mc(), mic_options, fabric.rng()));
        senders.push_back(std::make_unique<transport::BulkSender>(
            *mic_channels.back(), config.bytes_per_flow));
        break;
      }
      case System::kTor: {
        server_host.listen(port, [&](transport::TcpConnection& conn) {
          sinks.push_back(std::make_unique<transport::BulkSink>(
              conn, simulator, config.bytes_per_flow));
        });
        tor_clients.push_back(std::make_unique<tor::TorClient>(
            client_host, relay_path, fabric.ip(server_index), port,
            fabric.rng()));
        senders.push_back(std::make_unique<transport::BulkSender>(
            *tor_clients.back(), config.bytes_per_flow));
        break;
      }
    }
    };
    simulator.schedule_in(sim::milliseconds(static_cast<std::uint64_t>(5 * i)),
                          setup_flow);
  }

  simulator.run_until();

  double mbps_sum = 0.0;
  int finished = 0;
  for (const auto& sink : sinks) {
    if (sink->finished()) {
      mbps_sum += sink->goodput_bps() / 1e6;
      ++finished;
    }
  }
  if (finished != config.flows) {
    std::fprintf(stderr, "%s: only %d/%d flows finished\n",
                 system_name(config.system), finished, config.flows);
    return result;
  }
  result.mbps = mbps_sum / config.flows;
  result.duration = simulator.now() - start;
  if (result.duration > 0) {
    result.cpu_cores =
        static_cast<double>(total_busy(fabric) - busy_at_start) /
        static_cast<double>(result.duration);
  }
  result.ok = true;
  return result;
}

}  // namespace mic::bench
