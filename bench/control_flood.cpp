// Bench: control-plane admission under an establishment flood.
//
// Honest clients establish mimic channels at staggered offsets while the
// seeded FaultInjector fires a 10x establishment flood (plus a slowloris
// trickle of half-open control sessions) at the MC.  Measured quantity:
// honest establishment latency (MicChannel::setup_time, simulated time --
// deterministic, so one rep is exact), unloaded vs under attack, with the
// attacker/honest breakdown the admission stats expose.  The run fails if
//
//   * any honest channel starves (never establishes), or
//   * honest p99 under attack exceeds kP99Multiple x the unloaded p99, or
//   * the final audit::run_all sweep (incl. AC-1 conservation) is dirty.
//
//   control_flood           # full run: 4 honest clients x 6 channels
//   control_flood --smoke   # CI-sized: 3 x 2
//
// Prints a table on stdout and writes BENCH_flood.json in the CWD.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/fault_injector.hpp"
#include "core/mic_client.hpp"

namespace {

using namespace mic;
using core::Fabric;
using core::FabricOptions;
using core::FaultInjector;
using core::FaultInjectorOptions;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;

/// The guard: honest p99 under the flood must stay within this multiple
/// of the unloaded p99.
constexpr double kP99Multiple = 3.0;
constexpr std::size_t kServerIdx = 12;
/// Every host runs its one-time DH key exchange with the MC at t=0 (the
/// paper does this "in advance"); each modexp serializes ~4ms of MC CPU,
/// so the measured window starts after that backlog has drained.  Both
/// runs pre-register identically -- the comparison stays apples-to-apples.
constexpr sim::SimTime kStart = sim::milliseconds(70);

FabricOptions fabric_options() {
  FabricOptions fo;
  fo.seed = 77;
  // Tight enough that the flood saturates and is visibly shed; generous
  // enough that an honest tenant's own budget never empties (honest load
  // is ~1 establish/ms/tenant, matched by the refill).  The point of the
  // measurement is per-tenant isolation: the pending quota caps how much
  // of the shared queue one attacker can hold (8 attackers x 3 < 32), so
  // a flooded queue never sheds an honest arrival outright.
  fo.mic.admission.tenant_rate = 1000.0;
  fo.mic.admission.tenant_burst = 4.0;
  fo.mic.admission.tenant_pending_quota = 3;
  fo.mic.admission.queue_capacity = 32;
  fo.mic.admission.max_in_service = 16;
  fo.mic.admission.half_open_timeout = sim::milliseconds(10);
  return fo;
}

FaultInjectorOptions attack_options(int honest_establishes) {
  FaultInjectorOptions fo;
  fo.seed = 9;
  fo.link_flaps = 0;  // control-plane attack only
  fo.switch_crashes = 0;
  fo.install_fault_bursts = 0;
  fo.control_drop_bursts = 0;
  fo.start = kStart;
  fo.window = sim::milliseconds(1);  // bursts land on top of the clients
  fo.establish_floods = 2;
  fo.flood_attackers = 4;
  // 10x the honest offered load, split across bursts and attackers, with
  // a floor so the smoke-sized run still saturates each attacker's budget
  // (burst 4 + ~4ms of refill + pending quota 3) and sheds visibly.
  fo.flood_requests = std::max(
      12,
      (10 * honest_establishes) / (fo.establish_floods * fo.flood_attackers));
  fo.flood_duration = sim::milliseconds(4);
  fo.slow_client_sessions = 8;
  fo.slow_client_touches = 2;
  return fo;
}

struct Series {
  std::vector<double> latencies_us;  // one per established channel
  std::size_t offered = 0;
  std::size_t established = 0;
  std::uint64_t times_shed = 0;
  // Attack-side view (flooded run only).
  std::uint64_t flood_sent = 0;
  std::uint64_t flood_answered = 0;
  std::uint64_t flood_shed = 0;
  std::uint64_t slow_sessions = 0;
  std::uint64_t sessions_reaped = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  bool audit_ok = false;
};

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// One deterministic run: `clients` honest hosts x `channels_each`
/// establishments, staggered across the attack window.  With `flooded`
/// the injector's 10x flood + slow-client trickle runs on top.
Series run(int clients, int channels_each, bool flooded) {
  Fabric fabric(fabric_options());
  MicServer server(fabric.host(kServerIdx), 7000, fabric.rng());
  // Key exchanges in advance for everyone (see kStart); the injector's own
  // register_client calls then become idempotent lookups.
  for (std::size_t i = 0; i < fabric.host_count(); ++i) {
    fabric.mc().register_client(fabric.ip(i));
  }

  const int honest_establishes = clients * channels_each;
  FaultInjector injector(fabric.network(), fabric.mc(),
                         attack_options(honest_establishes));
  if (flooded) injector.arm();

  // Honest tenants stay disjoint from the flood's: the bench measures
  // what per-tenant isolation buys a client that is NOT the attacker.
  // (The unloaded baseline arms nothing, so attacker_ips() is empty and
  // host selection reduces to "everyone but the server" -- the injector's
  // flood draw never picks the first hosts it shuffles away anyway; the
  // selection below is applied to both runs for symmetry.)
  Fabric probe(fabric_options());
  FaultInjector shadow(probe.network(), probe.mc(),
                       attack_options(honest_establishes));
  shadow.arm();  // same seed => same attacker set, without touching `fabric`
  std::vector<std::size_t> honest;
  for (std::size_t i = 0; i < fabric.host_count(); ++i) {
    if (i == kServerIdx) continue;
    bool is_attacker = false;
    for (const net::Ipv4 ip : shadow.attacker_ips()) {
      if (ip.value == fabric.ip(i).value) is_attacker = true;
    }
    if (!is_attacker) honest.push_back(i);
    if (honest.size() == static_cast<std::size_t>(clients)) break;
  }

  // Stagger the honest establishments across the attack window so they
  // land before, inside and after the flood bursts; interleave the clients
  // so no tenant piles its own establishments onto its pending quota.
  const sim::SimTime spread = sim::milliseconds(6);
  std::vector<std::unique_ptr<MicChannel>> chans(
      static_cast<std::size_t>(honest_establishes));
  std::size_t slot = 0;
  for (int c = 0; c < channels_each; ++c) {
    for (const std::size_t host : honest) {
      const sim::SimTime at =
          kStart + spread * static_cast<sim::SimTime>(slot) /
                       static_cast<sim::SimTime>(honest_establishes);
      fabric.simulator().schedule_at(at, [&fabric, &chans, host, slot] {
        MicChannelOptions o;
        o.responder_ip = fabric.ip(kServerIdx);
        o.responder_port = 7000;
        chans[slot] = std::make_unique<MicChannel>(
            fabric.host(host), fabric.mc(), o, fabric.rng());
      });
      ++slot;
    }
  }
  fabric.simulator().run_until();

  Series series;
  series.offered = chans.size();
  for (const auto& chan : chans) {
    if (chan == nullptr || chan->failed() || !chan->ready()) continue;
    ++series.established;
    series.times_shed += chan->times_shed();
    series.latencies_us.push_back(static_cast<double>(chan->setup_time()) /
                                  1000.0);
  }
  series.flood_sent = injector.flood_sent();
  series.flood_answered = injector.flood_answered();
  series.flood_shed = injector.flood_shed();
  series.slow_sessions = injector.slow_sessions_opened();
  const auto& stats = fabric.mc().admission().stats();
  series.sessions_reaped = stats.sessions_reaped;
  series.admitted = stats.admitted;
  series.shed = stats.shed;
  const audit::RunReport report = audit::run_all(fabric.mc());
  series.audit_ok = report.ok;
  if (!report.ok) {
    std::fprintf(stderr, "audit failed: %s\n",
                 report.first_violation().c_str());
  }
  return series;
}

void print_row(const char* mode, const Series& s, double p50, double p99) {
  std::printf("%-9s %8zu %12zu %9llu %10.1f %10.1f %11llu %10llu %6s\n",
              mode, s.offered, s.established,
              static_cast<unsigned long long>(s.times_shed), p50, p99,
              static_cast<unsigned long long>(s.flood_sent),
              static_cast<unsigned long long>(s.flood_shed),
              s.audit_ok ? "ok" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int clients = smoke ? 3 : 4;
  const int channels_each = smoke ? 2 : 6;

  std::printf("# Honest establishment latency, unloaded vs 10x establish\n"
              "# flood + slowloris trickle (k=4 fat-tree, tight admission;\n"
              "# latencies are simulated time in us, exact by SIM-1)\n");
  std::printf("%-9s %8s %12s %9s %10s %10s %11s %10s %6s\n", "mode",
              "offered", "established", "shed_hits", "p50_us", "p99_us",
              "attack_sent", "attack_shed", "audit");

  const Series unloaded = run(clients, channels_each, /*flooded=*/false);
  const double base_p50 = percentile(unloaded.latencies_us, 0.50);
  const double base_p99 = percentile(unloaded.latencies_us, 0.99);
  print_row("unloaded", unloaded, base_p50, base_p99);

  const Series flooded = run(clients, channels_each, /*flooded=*/true);
  const double flood_p50 = percentile(flooded.latencies_us, 0.50);
  const double flood_p99 = percentile(flooded.latencies_us, 0.99);
  print_row("flooded", flooded, flood_p50, flood_p99);

  const double multiple = base_p99 > 0.0 ? flood_p99 / base_p99 : 0.0;
  std::printf("# honest p99 multiple under attack: %.2fx (guard <= %.1fx)\n",
              multiple, kP99Multiple);

  bool ok = unloaded.audit_ok && flooded.audit_ok;
  if (unloaded.established != unloaded.offered ||
      flooded.established != flooded.offered) {
    std::fprintf(stderr, "starvation: %zu/%zu unloaded, %zu/%zu flooded "
                         "channels established\n",
                 unloaded.established, unloaded.offered, flooded.established,
                 flooded.offered);
    ok = false;
  }
  if (multiple > kP99Multiple) {
    std::fprintf(stderr, "guard violated: honest p99 %.1fus is %.2fx the "
                         "unloaded %.1fus (limit %.1fx)\n",
                 flood_p99, multiple, base_p99, kP99Multiple);
    ok = false;
  }
  if (flooded.flood_shed == 0) {
    std::fprintf(stderr, "flood was never shed: admission inert?\n");
    ok = false;
  }
  if (flooded.sessions_reaped != flooded.slow_sessions) {
    std::fprintf(stderr, "slow-client leak: %llu sessions opened, %llu "
                         "reaped\n",
                 static_cast<unsigned long long>(flooded.slow_sessions),
                 static_cast<unsigned long long>(flooded.sessions_reaped));
    ok = false;
  }

  std::FILE* out = std::fopen("BENCH_flood.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_flood.json\n");
    return 1;
  }
  auto write_series = [out](const char* name, const Series& s, double p50,
                            double p99) {
    std::fprintf(
        out,
        "\"%s\":{\"honest\":{\"offered\":%zu,\"established\":%zu,"
        "\"shed_hits\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f},"
        "\"attacker\":{\"sent\":%llu,\"answered\":%llu,\"shed\":%llu},"
        "\"slow_sessions\":%llu,\"sessions_reaped\":%llu,"
        "\"admitted\":%llu,\"shed\":%llu,\"audit_ok\":%s}",
        name, s.offered, s.established,
        static_cast<unsigned long long>(s.times_shed), p50, p99,
        static_cast<unsigned long long>(s.flood_sent),
        static_cast<unsigned long long>(s.flood_answered),
        static_cast<unsigned long long>(s.flood_shed),
        static_cast<unsigned long long>(s.slow_sessions),
        static_cast<unsigned long long>(s.sessions_reaped),
        static_cast<unsigned long long>(s.admitted),
        static_cast<unsigned long long>(s.shed),
        s.audit_ok ? "true" : "false");
  };
  std::fprintf(out, "{\"bench\":\"control_flood\",\"smoke\":%s,",
               smoke ? "true" : "false");
  write_series("unloaded", unloaded, base_p50, base_p99);
  std::fprintf(out, ",");
  write_series("flooded", flooded, flood_p50, flood_p99);
  std::fprintf(out,
               ",\"guard\":{\"p99_multiple\":%.3f,\"limit\":%.1f,"
               "\"ok\":%s}}\n",
               multiple, kP99Multiple, ok ? "true" : "false");
  std::fclose(out);
  std::printf("# wrote BENCH_flood.json\n");
  return ok ? 0 : 1;
}
