// Bench: controller crash-recovery (journal replay + switch resync).
//
// Establishes N mimic channels, lets the fabric reach quiescence, then
// crashes the MC and measures the wall time of recover(): journal replay,
// per-switch flow-table dump, three-way diff and reconciliation.  Two
// modes per channel count -- "clean" recovers from the intact journal
// (every channel should be kept in place), "truncated" recovers from a
// tail-truncated copy (a crash that lost the last commits; the resync
// sweep must remove the now-unexplained rules as orphans).  Each point is
// re-checked with audit::run_all (FT-1/CA-1/PE-1/FD-1/RC-1) so the
// latency numbers only count if the recovery was actually correct.
//
// A second sweep measures warm-standby failover end to end: primary +
// durable journal store + standby, kill the primary, and record the
// *simulated* takeover latency (kill -> standby active; dominated by the
// missed-heartbeat budget) plus how much of the channel population the
// replica still knew, across channel count x fsync policy x replication
// lag.  Lazier fsync policies ship fewer durable records before the
// crash, so the replica recovers fewer channels -- the sweep makes the
// durability/latency trade-off measurable.
//
//   controller_recovery           # full sweep: N in {1, 4, 16, 64}
//   controller_recovery --smoke   # CI-sized: N in {1, 4}, single rep
//
// Prints a table on stdout and writes BENCH_recovery.json in the CWD.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/audit_registry.hpp"
#include "core/channel_journal.hpp"
#include "core/fabric.hpp"
#include "core/journal_store.hpp"
#include "ctrl/standby.hpp"

namespace {

using namespace mic;
using core::EstablishRequest;
using core::Fabric;
using core::FabricOptions;

/// How many tail records the truncated mode drops: enough to lose the
/// last channel's establish record, so recovery must sweep its rules.
constexpr std::size_t kTruncateRecords = 2;

/// Channel i: initiator host i%8 (pods 0/1), responder 8 + i%8 (pods 2/3),
/// a unique port per channel.  Raw listeners are enough -- this bench
/// exercises the control plane, not payload delivery.  The caller decides
/// how to settle: an unbounded run only quiesces when no standby probe
/// loop is ticking.
void establish_channels(Fabric& fabric, int channels) {
  std::vector<EstablishRequest> requests;
  for (int i = 0; i < channels; ++i) {
    const std::size_t responder = 8 + static_cast<std::size_t>(i % 8);
    const net::L4Port port = static_cast<net::L4Port>(7000 + i);
    fabric.host(responder).listen(port, [](transport::TcpConnection&) {});
    EstablishRequest r;
    r.initiator_ip = fabric.ip(static_cast<std::size_t>(i % 8));
    r.responder_ip = fabric.ip(responder);
    r.responder_port = port;
    r.flow_count = 1 + i % 2;
    for (int f = 0; f < r.flow_count; ++f) {
      r.initiator_sports.push_back(
          static_cast<net::L4Port>(30000 + 10 * i + f));
    }
    requests.push_back(r);
  }
  for (const auto& result : fabric.mc().establish_batch(requests)) {
    if (!result.ok) {
      std::fprintf(stderr, "establish failed: %s\n", result.error.c_str());
      std::exit(1);
    }
  }
}

struct Rig {
  explicit Rig(int channels) {
    FabricOptions options;
    options.seed = 11;
    fabric = std::make_unique<Fabric>(options);
    establish_channels(*fabric, channels);
    fabric->simulator().run_until();
  }

  std::unique_ptr<Fabric> fabric;
};

struct Point {
  int channels = 0;
  bool truncated = false;
  double recover_wall_ms = 0.0;
  std::size_t journal_records = 0;
  core::MimicController::RecoveryReport report;
  bool audit_ok = false;
};

Point measure(int channels, bool truncated, int reps) {
  Point point;
  point.channels = channels;
  point.truncated = truncated;
  point.recover_wall_ms = 1e9;
  for (int rep = 0; rep < reps; ++rep) {
    Rig rig(channels);
    auto& mc = rig.fabric->mc();
    core::ChannelJournal journal = mc.journal();
    if (truncated) {
      journal.truncate_tail(kTruncateRecords);
    }
    point.journal_records = journal.size();

    mc.crash();
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = mc.recover(journal);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    // Best-of-reps: recovery is deterministic, the variance is host noise.
    if (wall_ms < point.recover_wall_ms) point.recover_wall_ms = wall_ms;
    if (rep == 0) {
      point.report = report;
      rig.fabric->simulator().run_until();
      point.audit_ok = audit::run_all(*rig.fabric).ok;
    }
  }
  return point;
}

// --- warm-standby failover sweep ---------------------------------------------

struct FailoverPoint {
  int channels = 0;
  core::FsyncPolicy policy = core::FsyncPolicy::kEveryRecord;
  sim::SimTime replication_lag = 0;
  double takeover_sim_ms = 0.0;   // kill -> standby active, simulated
  double takeover_wall_ms = 0.0;  // wall time of driving that interval
  std::uint64_t records_replicated = 0;
  core::MimicController::RecoveryReport report;
  bool audit_ok = false;
};

const char* policy_name(core::FsyncPolicy policy) {
  switch (policy) {
    case core::FsyncPolicy::kEveryRecord: return "every-record";
    case core::FsyncPolicy::kEveryN: return "every-8";
    case core::FsyncPolicy::kCommitBoundary: return "commit-bound";
  }
  return "?";
}

FailoverPoint measure_failover(int channels, core::FsyncPolicy policy,
                               sim::SimTime replication_lag) {
  FailoverPoint point;
  point.channels = channels;
  point.policy = policy;
  point.replication_lag = replication_lag;

  FabricOptions fabric_options;
  fabric_options.seed = 11;
  Fabric fabric(fabric_options);
  core::SimBackend backend;
  core::JournalStoreOptions store_options;
  store_options.fsync_policy = policy;
  core::JournalStore store(backend, store_options);
  // Wire durability and the standby *before* any channel exists: what the
  // replica knows at the crash is exactly what the fsync policy shipped.
  fabric.mc().journal().attach_store(&store);
  core::ControllerDirectory directory(fabric.mc());
  ctrl::StandbyOptions standby_options;
  standby_options.replication_lag = replication_lag;
  ctrl::StandbyController standby(fabric.mc(), directory, standby_options);
  standby.start();
  establish_channels(fabric, channels);
  // Bounded settle: the probe loop ticks forever, so an unbounded run
  // would never quiesce.  50ms covers the install + commit round trips of
  // the largest batch with a wide margin.
  fabric.simulator().run_until(fabric.simulator().now() +
                               sim::milliseconds(50));

  // Kill: volatile page cache of the store is lost with the primary, so
  // whatever the fsync policy left unsynced never reached the replica.
  backend.crash();
  fabric.mc().crash();
  const sim::SimTime t_kill = fabric.simulator().now();
  const auto t0 = std::chrono::steady_clock::now();
  // Drive in 10us steps until the missed-heartbeat budget promotes the
  // standby; the step size bounds the latency measurement error.
  const sim::SimTime step = sim::microseconds(10);
  const sim::SimTime deadline = t_kill + sim::milliseconds(100);
  while (!standby.active() && fabric.simulator().now() < deadline) {
    fabric.simulator().run_until(fabric.simulator().now() + step);
  }
  point.takeover_wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  if (!standby.active()) {
    std::fprintf(stderr, "standby never took over (n=%d %s lag=%lldus)\n",
                 channels, policy_name(policy),
                 static_cast<long long>(replication_lag / 1000));
    std::exit(1);
  }
  point.takeover_sim_ms =
      static_cast<double>(fabric.simulator().now() - t_kill) / 1e6;
  point.records_replicated = standby.records_replicated();
  point.report = standby.takeover_report();
  fabric.simulator().run_until();
  point.audit_ok = audit::run_all(standby.mc()).ok;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<int> channel_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16, 64};
  const int reps = smoke ? 1 : 3;

  std::printf("# Controller recovery latency vs channel count (k=4 fat-tree;\n"
              "# wall time of recover(): replay + per-switch dump + diff +\n"
              "# reconcile; best of %d reps)\n", reps);
  std::printf("%-9s %-10s %12s %8s %5s %10s %9s %5s %8s %9s %6s\n",
              "channels", "mode", "recover_ms", "records", "kept",
              "reinstall", "replanned", "lost", "orphans", "switches",
              "audit");

  std::vector<Point> points;
  for (const int n : channel_counts) {
    for (const bool truncated : {false, true}) {
      const Point p = measure(n, truncated, reps);
      points.push_back(p);
      std::printf("%-9d %-10s %12.3f %8zu %5zu %10zu %9zu %5zu %8zu %9zu %6s\n",
                  p.channels, truncated ? "truncated" : "clean",
                  p.recover_wall_ms, p.journal_records, p.report.channels_kept,
                  p.report.channels_reinstalled, p.report.channels_replanned,
                  p.report.channels_lost, p.report.orphan_rules_removed,
                  p.report.switches_resynced, p.audit_ok ? "ok" : "FAIL");
      if (!p.audit_ok) {
        std::fprintf(stderr, "audit failed after recovery (n=%d %s)\n",
                     p.channels, truncated ? "truncated" : "clean");
        return 1;
      }
    }
  }

  // --- failover sweep: takeover latency + replica completeness ---------------
  const std::vector<core::FsyncPolicy> policies =
      smoke ? std::vector<core::FsyncPolicy>{core::FsyncPolicy::kEveryRecord,
                                             core::FsyncPolicy::kCommitBoundary}
            : std::vector<core::FsyncPolicy>{core::FsyncPolicy::kEveryRecord,
                                             core::FsyncPolicy::kEveryN,
                                             core::FsyncPolicy::kCommitBoundary};
  const std::vector<sim::SimTime> lags =
      smoke ? std::vector<sim::SimTime>{sim::microseconds(300)}
            : std::vector<sim::SimTime>{sim::microseconds(100),
                                        sim::microseconds(300),
                                        sim::milliseconds(1)};

  std::printf("\n# Warm-standby failover: simulated takeover latency (primary\n"
              "# kill -> standby active; missed-heartbeat budget dominates)\n"
              "# and replica completeness vs fsync policy / replication lag\n");
  std::printf("%-9s %-13s %7s %12s %9s %9s %5s %5s %8s %6s\n",
              "channels", "fsync", "lag_us", "takeover_ms", "replicated",
              "recovered", "kept", "lost", "orphans", "audit");

  std::vector<FailoverPoint> failover_points;
  for (const int n : channel_counts) {
    for (const core::FsyncPolicy policy : policies) {
      for (const sim::SimTime lag : lags) {
        const FailoverPoint p = measure_failover(n, policy, lag);
        failover_points.push_back(p);
        std::printf(
            "%-9d %-13s %7lld %12.3f %9llu %9zu %5zu %5zu %8zu %6s\n",
            p.channels, policy_name(p.policy),
            static_cast<long long>(p.replication_lag / 1000),
            p.takeover_sim_ms,
            static_cast<unsigned long long>(p.records_replicated),
            p.report.channels_recovered, p.report.channels_kept,
            p.report.channels_lost, p.report.orphan_rules_removed,
            p.audit_ok ? "ok" : "FAIL");
        if (!p.audit_ok) {
          std::fprintf(stderr, "audit failed after failover (n=%d %s)\n",
                       p.channels, policy_name(p.policy));
          return 1;
        }
      }
    }
  }

  std::FILE* out = std::fopen("BENCH_recovery.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::fprintf(out, "{\"bench\":\"controller_recovery\",\"smoke\":%s,"
                    "\"truncate_records\":%zu,\"series\":[",
               smoke ? "true" : "false", kTruncateRecords);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        out,
        "%s{\"channels\":%d,\"mode\":\"%s\",\"recover_wall_ms\":%.3f,"
        "\"journal_records\":%zu,\"channels_recovered\":%zu,"
        "\"channels_kept\":%zu,\"channels_reinstalled\":%zu,"
        "\"channels_replanned\":%zu,\"channels_lost\":%zu,"
        "\"orphan_rules_removed\":%zu,\"switches_resynced\":%zu,"
        "\"audit_ok\":%s}",
        i == 0 ? "" : ",", p.channels, p.truncated ? "truncated" : "clean",
        p.recover_wall_ms, p.journal_records, p.report.channels_recovered,
        p.report.channels_kept, p.report.channels_reinstalled,
        p.report.channels_replanned, p.report.channels_lost,
        p.report.orphan_rules_removed, p.report.switches_resynced,
        p.audit_ok ? "true" : "false");
  }
  std::fprintf(out, "],\"failover_series\":[");
  for (std::size_t i = 0; i < failover_points.size(); ++i) {
    const FailoverPoint& p = failover_points[i];
    std::fprintf(
        out,
        "%s{\"channels\":%d,\"fsync_policy\":\"%s\","
        "\"replication_lag_us\":%lld,\"takeover_sim_ms\":%.3f,"
        "\"takeover_wall_ms\":%.3f,\"records_replicated\":%llu,"
        "\"channels_recovered\":%zu,\"channels_kept\":%zu,"
        "\"channels_replanned\":%zu,\"channels_lost\":%zu,"
        "\"orphan_rules_removed\":%zu,\"audit_ok\":%s}",
        i == 0 ? "" : ",", p.channels, policy_name(p.policy),
        static_cast<long long>(p.replication_lag / 1000), p.takeover_sim_ms,
        p.takeover_wall_ms,
        static_cast<unsigned long long>(p.records_replicated),
        p.report.channels_recovered, p.report.channels_kept,
        p.report.channels_replanned, p.report.channels_lost,
        p.report.orphan_rules_removed, p.audit_ok ? "true" : "false");
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
  std::printf("# wrote BENCH_recovery.json\n");
  return 0;
}
