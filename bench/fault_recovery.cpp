// Bench: failure recovery.
//
// Two series.  First, repair latency: time from a mid-transfer PHY link
// cut to the MC's transparent repair of the affected mimic channel, as a
// function of the switch-side detection latency (the debounce before the
// async port-status message).  Second, availability: goodput under the
// standard chaos schedule (link flaps, a switch crash, install-fault and
// control-drop bursts) relative to an undisturbed run over the same
// horizon, plus the repair/loss counts behind it.
#include <cstdio>

#include "common.hpp"
#include "core/fault_injector.hpp"

namespace {

using namespace mic;
using namespace mic::bench;

struct Rig {
  explicit Rig(FabricOptions options) : fabric(options) {
    server = std::make_unique<MicServer>(fabric.host(kServerHost), 7000,
                                         fabric.rng());
    server->set_on_channel([this](core::MicServerChannel& server_channel) {
      server_channel.set_on_data([this](const transport::ChunkView& view) {
        received += view.length;
      });
    });
    MicChannelOptions mic_options;
    mic_options.responder_ip = fabric.ip(kServerHost);
    mic_options.responder_port = 7000;
    mic_options.auto_reestablish = true;
    channel = std::make_unique<MicChannel>(fabric.host(kClientHost),
                                           fabric.mc(), mic_options,
                                           fabric.rng());
    fabric.simulator().run_until();
  }

  Fabric fabric;
  std::unique_ptr<MicServer> server;
  std::unique_ptr<MicChannel> channel;
  std::uint64_t received = 0;
};

double repair_latency_ms(sim::SimTime detection_latency) {
  FabricOptions options;
  options.seed = 11;
  options.controller.detection_latency = detection_latency;
  Rig rig(options);
  auto& simulator = rig.fabric.simulator();

  rig.channel->send(transport::Chunk::virtual_bytes(8ull * 1024 * 1024));
  simulator.run_until(simulator.now() + sim::milliseconds(5));

  const auto& plan = rig.fabric.mc().channel(rig.channel->id())->flows[0];
  const topo::LinkId victim = rig.fabric.network().graph().link_between(
      plan.path[plan.path.size() / 2], plan.path[plan.path.size() / 2 + 1]);
  const sim::SimTime cut_at = simulator.now();
  rig.fabric.network().set_link_up(victim, false);

  // Poll in 20 us steps until the endpoint hears "repaired".
  const sim::SimTime deadline = cut_at + sim::seconds(1);
  while (rig.channel->repair_count() == 0 && simulator.now() < deadline) {
    simulator.run_until(simulator.now() + sim::microseconds(20));
  }
  return sim::to_millis(simulator.now() - cut_at);
}

struct AvailabilityPoint {
  double goodput_fraction = 0.0;
  std::uint64_t repaired = 0;
  std::uint64_t lost = 0;
  std::uint64_t install_retries = 0;
};

std::uint64_t delivered_over_horizon(std::uint64_t chaos_seed,
                                     AvailabilityPoint* point) {
  FabricOptions options;
  options.seed = 11;
  Rig rig(options);
  auto& simulator = rig.fabric.simulator();

  // More data than the horizon can carry: the channel stays busy.
  rig.channel->send(transport::Chunk::virtual_bytes(64ull * 1024 * 1024));

  if (chaos_seed != 0) {
    core::FaultInjectorOptions fo;
    fo.seed = chaos_seed;
    core::FaultInjector injector(rig.fabric.network(), rig.fabric.mc(), fo);
    injector.arm();
  }
  simulator.run_until(simulator.now() + sim::milliseconds(100));

  if (point != nullptr) {
    point->repaired = rig.fabric.mc().channels_repaired();
    point->lost = rig.fabric.mc().channels_lost();
    point->install_retries = rig.fabric.mc().install_retries();
  }
  return rig.received;
}

}  // namespace

int main() {
  std::printf("# Repair latency vs detection latency (PHY cut mid-transfer,\n"
              "# time until the endpoint's \"repaired\" notification)\n");
  std::printf("%-22s %16s\n", "detection_latency_us", "repair_ms");
  for (const sim::SimTime detect :
       {sim::microseconds(100), sim::microseconds(500), sim::milliseconds(1),
        sim::milliseconds(2)}) {
    std::printf("%-22llu %16.3f\n",
                static_cast<unsigned long long>(detect / 1000),
                repair_latency_ms(detect));
  }

  std::printf("\n# Availability under the standard chaos schedule\n"
              "# (100 ms horizon, goodput relative to an undisturbed run)\n");
  const std::uint64_t baseline = delivered_over_horizon(0, nullptr);
  std::printf("%-12s %14s %10s %6s %16s\n", "chaos_seed", "availability",
              "repaired", "lost", "install_retries");
  double sum = 0.0;
  constexpr int kSeeds = 5;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    AvailabilityPoint point;
    const std::uint64_t delivered = delivered_over_horizon(seed, &point);
    point.goodput_fraction =
        baseline == 0 ? 0.0
                      : static_cast<double>(delivered) /
                            static_cast<double>(baseline);
    sum += point.goodput_fraction;
    std::printf("%-12llu %14.3f %10llu %6llu %16llu\n",
                static_cast<unsigned long long>(seed), point.goodput_fraction,
                static_cast<unsigned long long>(point.repaired),
                static_cast<unsigned long long>(point.lost),
                static_cast<unsigned long long>(point.install_retries));
  }
  std::printf("# mean availability: %.3f\n", sum / kSeeds);
  return 0;
}
