// Figure 7: route setup time vs route length, for MIC, Tor, TCP and SSL.
//
// Paper shape to reproduce: Tor's setup grows steeply with route length
// (each telescoping extension pays a circuit round trip plus DH); MIC's is
// nearly flat (one control round trip to the MC regardless of MN count)
// and sits slightly above the TCP/SSL baselines.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;

  std::printf("# Figure 7: route setup time (ms) vs route length\n");
  std::printf("# route length = MNs per m-flow (MIC) / relays (Tor);\n");
  std::printf("# TCP and SSL have no route stages (flat baselines).\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "route_len", "MIC", "Tor", "TCP",
              "SSL");

  for (int len = 1; len <= 5; ++len) {
    SessionConfig mic_config{System::kMicTcp, len};
    SessionConfig tor_config{System::kTor, len};
    SessionConfig tcp_config{System::kTcp, len};
    SessionConfig ssl_config{System::kSsl, len};
    const RunResult mic = run_session(mic_config);
    const RunResult tor = run_session(tor_config);
    const RunResult tcp = run_session(tcp_config);
    const RunResult ssl = run_session(ssl_config);
    std::printf("%-10d %10.3f %10.3f %10.3f %10.3f\n", len, mic.setup_ms,
                tor.setup_ms, tcp.setup_ms, ssl.setup_ms);
  }
  return 0;
}
