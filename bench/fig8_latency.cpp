// Figure 8: transmission latency after session establishment -- the time
// for 10 bytes to reach the receiver and 10 bytes to come back.
//
// Paper shape to reproduce: Tor is dramatically slower (the paper measured
// ~62x vs TCP); MIC-TCP is comparable with TCP and MIC-SSL with SSL (MNs
// only add flow-table actions).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr int kRounds = 50;

  std::printf("# Figure 8: 10-byte ping-pong latency (us), mean of %d rounds\n",
              kRounds);
  std::printf("# path length 3 (the paper's default)\n");
  std::printf("%-10s %12s %12s\n", "system", "latency_us", "vs_TCP");

  const System systems[] = {System::kTcp, System::kSsl, System::kMicTcp,
                            System::kMicSsl, System::kTor};
  double tcp_latency = 0.0;
  for (const System system : systems) {
    SessionConfig config;
    config.system = system;
    config.route_len = 3;
    config.ping_rounds = kRounds;
    const RunResult result = run_session(config);
    if (system == System::kTcp) tcp_latency = result.latency_us;
    std::printf("%-10s %12.1f %11.2fx\n", system_name(system),
                result.latency_us,
                tcp_latency > 0 ? result.latency_us / tcp_latency : 0.0);
  }
  return 0;
}
