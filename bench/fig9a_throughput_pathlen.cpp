// Figure 9(a): throughput of one flow vs path length.
//
// Paper shape to reproduce: MIC (TCP and SSL variants) stays near the
// TCP/SSL baselines at every path length (rewriting is free at line rate);
// Tor's throughput decays as the path grows (every added relay adds host
// stack traversals, per-cell crypto and fabric crossings).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr std::uint64_t kBytes = 8ull * 1024 * 1024;

  std::printf("# Figure 9(a): single-flow throughput (Mb/s) vs path length\n");
  std::printf("# transfer size %llu MB on the 1 Gb/s fat-tree\n",
              static_cast<unsigned long long>(kBytes >> 20));
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "path_len", "MIC-TCP",
              "MIC-SSL", "Tor", "TCP", "SSL");

  for (int len = 1; len <= 5; ++len) {
    auto run = [&](System system) {
      SessionConfig config;
      config.system = system;
      config.route_len = len;
      config.bulk_bytes = kBytes;
      return run_session(config).mbps;
    };
    std::printf("%-10d %10.1f %10.1f %10.1f %10.1f %10.1f\n", len,
                run(System::kMicTcp), run(System::kMicSsl), run(System::kTor),
                run(System::kTcp), run(System::kSsl));
  }
  return 0;
}
