// Figure 9(b): average per-flow throughput vs number of concurrent flows
// (path length fixed at the default 3).
//
// Paper shape to reproduce: TCP/SSL/MIC degrade gracefully as flows share
// the fabric; Tor collapses much faster because every anonymous flow
// multiplies traffic through the small relay set, saturating the relays'
// access links and CPUs.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr std::uint64_t kBytesPerFlow = 4ull * 1024 * 1024;

  std::printf(
      "# Figure 9(b): average per-flow throughput (Mb/s) vs flow count\n");
  std::printf("# path length 3, %llu MB per flow\n",
              static_cast<unsigned long long>(kBytesPerFlow >> 20));
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "flows", "MIC-TCP", "MIC-SSL",
              "Tor", "TCP", "SSL");

  // Each cell averages several seeded runs: with drop-tail queues and no
  // SACK a single run's retransmission timing is noisy.
  constexpr int kSeeds = 3;
  for (const int flows : {1, 2, 4, 8, 16}) {
    auto run = [&](System system) {
      double sum = 0.0;
      for (int s = 0; s < kSeeds; ++s) {
        MultiFlowConfig config;
        config.system = system;
        config.flows = flows;
        config.bytes_per_flow = kBytesPerFlow;
        config.seed = 42 + static_cast<std::uint64_t>(s);
        sum += run_multi_flow(config).mbps;
      }
      return sum / kSeeds;
    };
    std::printf("%-8d %10.1f %10.1f %10.1f %10.1f %10.1f\n", flows,
                run(System::kMicTcp), run(System::kMicSsl), run(System::kTor),
                run(System::kTcp), run(System::kSsl));
  }
  return 0;
}
