// Figure 9(c): CPU usage while running the Figure 9(a) experiment.
//
// The paper ran everything (hosts, Open vSwitch instances, Tor relays) on
// one Xeon E5-2620 and read the overall CPU usage; we report the summed
// busy fraction of every simulated CPU (hosts + switches + MC) in units of
// one 2 GHz core.
//
// Paper shape to reproduce: MIC has a narrow increase over TCP/SSL (extra
// flow-table actions on the virtual switches); Tor burns far more CPU
// (redundant paths + per-cell crypto at every relay).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mic::bench;
  constexpr std::uint64_t kBytes = 8ull * 1024 * 1024;

  std::printf("# Figure 9(c): CPU usage during the Figure 9(a) run\n");
  std::printf("# summed busy fraction of all simulated CPUs, in 2 GHz cores\n");
  std::printf("%-10s %12s %12s\n", "system", "cpu_cores", "vs_TCP");

  const System systems[] = {System::kTcp, System::kSsl, System::kMicTcp,
                            System::kMicSsl, System::kTor};
  double tcp_cpu = 0.0;
  for (const System system : systems) {
    SessionConfig config;
    config.system = system;
    config.route_len = 3;
    config.bulk_bytes = kBytes;
    const RunResult result = run_session(config);
    if (system == System::kTcp) tcp_cpu = result.cpu_cores;
    std::printf("%-10s %12.3f %11.2fx\n", system_name(system),
                result.cpu_cores,
                tcp_cpu > 0 ? result.cpu_cores / tcp_cpu : 0.0);
  }
  return 0;
}
