// Macro dataplane benchmark for the pod-sharded parallel engine: end-to-end
// packet-hops per second of wall-clock time on a fat-tree carrying MIC
// channels, swept over shard counts.
//
// The workload is the steady-state forwarding regime the sharded engine is
// built for: channels are established serially (control traffic must stay
// in the exact interleave), a warm-up transfer fills TCP windows and the
// per-thread payload arenas, then the measured bulk phase runs with
// conservative-lookahead windows enabled.  The bench reports the arena
// counters across the measured phase -- steady-state slicing must allocate
// nothing (`arena_allocs` stays 0 while `arena_reuses` grows).
//
//   --smoke               tiny k=4 run + invariant checks (CI)
//   --shards N            single run at N shards (default sweep 1,2,4)
//   --k N                 fat-tree arity (default 8)
//   --threads N           worker threads (default 1 = cooperative windows)
//   --flows N             concurrent MIC channels (default 8)
//   --mb N                MiB per flow in the measured phase (default 4)
//   --reps N              best-of-N per configuration (noise control)
//   --min_speedup X       exit 1 unless best-sharded/single pps >= X
//   --sweep_json PATH     write the sweep as JSON (BENCH_parallel.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "transport/apps.hpp"
#include "transport/arena.hpp"

namespace {

using mic::core::Fabric;
using mic::core::FabricOptions;
using mic::core::MicChannel;
using mic::core::MicChannelOptions;
using mic::core::MicServer;

struct RunConfig {
  int k = 8;
  int shards = 1;
  int threads = 1;
  bool parallel = false;
  int flows = 8;
  std::uint64_t bytes_per_flow = 4ull << 20;
  std::uint64_t seed = 42;
};

struct RunResult {
  bool ok = false;
  double wall_s = 0.0;
  double pps = 0.0;            // packet-hops per wall-clock second
  std::uint64_t packets = 0;   // packet-hops in the measured phase
  std::uint64_t sim_ns = 0;    // simulated time the phase covered
  std::uint64_t windows = 0;
  std::uint64_t window_events = 0;
  std::uint64_t serial_events = 0;
  std::uint64_t arena_allocs = 0;  // heap allocations in the measured phase
  std::uint64_t arena_reuses = 0;  // arena refills in the measured phase
};

std::uint64_t total_link_packets(mic::net::Network& network) {
  std::uint64_t packets = 0;
  const std::size_t links = network.graph().link_count();
  for (std::size_t l = 0; l < links; ++l) {
    packets += network.stats(static_cast<mic::topo::LinkId>(l), 0).packets;
    packets += network.stats(static_cast<mic::topo::LinkId>(l), 1).packets;
  }
  return packets;
}

RunResult run_one(const RunConfig& config) {
  RunResult result;
  FabricOptions options;
  options.k = config.k;
  options.seed = config.seed;
  options.sim_shards = config.shards;
  options.sim_threads = config.threads;
  options.sim_parallel = false;  // establishment stays serial-exact
  Fabric fabric(options);
  auto& simulator = fabric.simulator();

  // Clients in the lower half of the pods, servers in the upper half:
  // every channel crosses pods, so the bulk phase exercises edge,
  // aggregation AND core links across shard boundaries.
  const std::size_t hosts = fabric.host_count();
  std::vector<std::unique_ptr<MicServer>> servers;
  std::vector<std::unique_ptr<MicChannel>> channels;
  std::vector<std::unique_ptr<mic::transport::BulkSink>> sinks;
  std::vector<std::unique_ptr<mic::transport::BulkSender>> senders;
  // Warm-up must reach the measured phase's in-flight high-water mark or
  // the arena pool keeps growing (= allocating) into the measurement.
  const std::uint64_t warm_bytes =
      std::max<std::uint64_t>(256 * 1024, config.bytes_per_flow / 2);
  const std::uint64_t sink_bytes = warm_bytes + config.bytes_per_flow;
  for (int i = 0; i < config.flows; ++i) {
    const std::size_t client = static_cast<std::size_t>(i) % (hosts / 2);
    const std::size_t server =
        hosts / 2 + static_cast<std::size_t>(i) % (hosts / 2);
    const mic::net::L4Port port = static_cast<mic::net::L4Port>(7000 + i);
    servers.push_back(std::make_unique<MicServer>(fabric.host(server), port,
                                                  fabric.rng()));
    servers.back()->set_on_channel(
        [&sinks, &simulator, sink_bytes](mic::core::MicServerChannel& ch) {
          sinks.push_back(std::make_unique<mic::transport::BulkSink>(
              ch, simulator, sink_bytes));
        });
    MicChannelOptions mic_options;
    mic_options.responder_ip = fabric.ip(server);
    mic_options.responder_port = port;
    mic_options.mn_count = 3;
    mic_options.flow_count = 2;
    channels.push_back(std::make_unique<MicChannel>(
        fabric.host(client), fabric.mc(), mic_options, fabric.rng()));
  }
  simulator.run_until();
  for (const auto& channel : channels) {
    if (!channel->ready()) {
      std::fprintf(stderr, "macro_dataplane: channel setup failed\n");
      return result;
    }
  }

  // Warm-up: fill TCP windows, fault in server channels, charge the
  // payload arenas so the measured phase sees the steady state.
  for (const auto& channel : channels) {
    channel->send(mic::transport::Chunk::virtual_bytes(warm_bytes));
  }
  simulator.run_until();

  if (config.parallel) fabric.sharded().set_parallel_enabled(true);
  const auto stats_before = fabric.sharded().stats();
  const auto arena_before = mic::transport::PayloadArena::local().stats();
  const std::uint64_t packets_before = total_link_packets(fabric.network());
  const std::uint64_t sim_before = simulator.now();

  const auto wall_start = std::chrono::steady_clock::now();
  for (const auto& channel : channels) {
    channel->send(
        mic::transport::Chunk::virtual_bytes(config.bytes_per_flow));
  }
  simulator.run_until();
  const auto wall_end = std::chrono::steady_clock::now();
  // Teardown (channel close control messages) must not run inside windows.
  fabric.sharded().set_parallel_enabled(false);

  if (sinks.size() != static_cast<std::size_t>(config.flows)) {
    std::fprintf(stderr, "macro_dataplane: only %zu/%d channels delivered\n",
                 sinks.size(), config.flows);
    return result;
  }
  for (const auto& sink : sinks) {
    if (!sink->finished()) {
      std::fprintf(stderr, "macro_dataplane: bulk transfer incomplete\n");
      return result;
    }
  }

  const auto stats_after = fabric.sharded().stats();
  const auto arena_after = mic::transport::PayloadArena::local().stats();
  result.packets = total_link_packets(fabric.network()) - packets_before;
  result.sim_ns = simulator.now() - sim_before;
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.pps = result.wall_s > 0
                   ? static_cast<double>(result.packets) / result.wall_s
                   : 0.0;
  result.windows = stats_after.windows - stats_before.windows;
  result.window_events = stats_after.window_events - stats_before.window_events;
  result.serial_events = stats_after.serial_events - stats_before.serial_events;
  result.arena_allocs = arena_after.allocations - arena_before.allocations;
  result.arena_reuses = arena_after.reuses - arena_before.reuses;
  result.ok = true;
  return result;
}

void print_result(const RunConfig& config, const RunResult& result) {
  std::printf(
      "shards=%d threads=%d parallel=%d  pps=%.0f  packets=%llu  wall=%.3fs  "
      "windows=%llu  window_events=%llu  serial_events=%llu  "
      "arena_allocs=%llu  arena_reuses=%llu\n",
      config.shards, config.threads, config.parallel ? 1 : 0, result.pps,
      static_cast<unsigned long long>(result.packets), result.wall_s,
      static_cast<unsigned long long>(result.windows),
      static_cast<unsigned long long>(result.window_events),
      static_cast<unsigned long long>(result.serial_events),
      static_cast<unsigned long long>(result.arena_allocs),
      static_cast<unsigned long long>(result.arena_reuses));
}

int run_smoke() {
  // Tiny but complete: single engine vs 4 pod shards with cooperative
  // windows on a k=4 fabric, checking the invariants CI cares about.
  RunConfig config;
  config.k = 4;
  config.flows = 4;
  config.bytes_per_flow = 1 << 20;

  config.shards = 1;
  const RunResult single = run_one(config);
  config.shards = 4;
  config.parallel = true;
  const RunResult sharded = run_one(config);
  print_result({.k = 4, .shards = 1}, single);
  print_result(config, sharded);
  if (!single.ok || !sharded.ok) return 1;
  if (sharded.windows == 0 || sharded.window_events == 0) {
    std::fprintf(stderr, "smoke: no parallel windows executed\n");
    return 1;
  }
  if (single.packets != sharded.packets) {
    // Same fabric, same seed, loss-free: the packet-hop count must agree
    // even though same-nanosecond cross-shard ties may reorder.
    std::fprintf(stderr, "smoke: packet-hop counts diverged (%llu vs %llu)\n",
                 static_cast<unsigned long long>(single.packets),
                 static_cast<unsigned long long>(sharded.packets));
    return 1;
  }
  if (sharded.arena_allocs != 0 || sharded.arena_reuses == 0) {
    std::fprintf(stderr,
                 "smoke: steady state allocated (%llu allocs, %llu reuses)\n",
                 static_cast<unsigned long long>(sharded.arena_allocs),
                 static_cast<unsigned long long>(sharded.arena_reuses));
    return 1;
  }
  std::printf("smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int only_shards = 0;
  int reps = 1;
  double min_speedup = 0.0;
  std::string sweep_json;
  RunConfig base;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      only_shards = std::atoi(next("--shards"));
    } else if (std::strcmp(argv[i], "--k") == 0) {
      base.k = std::atoi(next("--k"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      base.threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--flows") == 0) {
      base.flows = std::atoi(next("--flows"));
    } else if (std::strcmp(argv[i], "--mb") == 0) {
      base.bytes_per_flow =
          static_cast<std::uint64_t>(std::atoi(next("--mb"))) << 20;
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::max(1, std::atoi(next("--reps")));
    } else if (std::strcmp(argv[i], "--min_speedup") == 0) {
      min_speedup = std::atof(next("--min_speedup"));
    } else if (std::strcmp(argv[i], "--sweep_json") == 0) {
      sweep_json = next("--sweep_json");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) return run_smoke();

  std::vector<int> shard_counts = {1, 2, 4};
  if (only_shards > 0) shard_counts = {only_shards};

  std::printf("# macro_dataplane: k=%d, %d MIC channels, %llu MiB each, "
              "threads=%d\n",
              base.k, base.flows,
              static_cast<unsigned long long>(base.bytes_per_flow >> 20),
              base.threads);
  std::vector<std::pair<RunConfig, RunResult>> rows;
  for (const int shards : shard_counts) {
    RunConfig config = base;
    config.shards = shards;
    config.parallel = shards > 1;
    RunResult best;
    for (int rep = 0; rep < reps; ++rep) {
      const RunResult result = run_one(config);
      if (!result.ok) return 1;
      if (result.pps > best.pps) best = result;
      best.ok = true;
    }
    print_result(config, best);
    rows.push_back({config, best});
  }

  const double single_pps = rows.front().second.pps;
  double best_pps = 0.0;
  for (const auto& [config, result] : rows) {
    if (config.shards > 1) best_pps = std::max(best_pps, result.pps);
  }
  if (rows.size() > 1 && single_pps > 0) {
    std::printf("# best sharded speedup: %.2fx\n", best_pps / single_pps);
  }

  if (!sweep_json.empty()) {
    std::FILE* f = std::fopen(sweep_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", sweep_json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"macro_dataplane\",\n");
    std::fprintf(f, "  \"k\": %d,\n  \"flows\": %d,\n", base.k, base.flows);
    std::fprintf(f, "  \"bytes_per_flow\": %llu,\n",
                 static_cast<unsigned long long>(base.bytes_per_flow));
    std::fprintf(f, "  \"threads\": %d,\n", base.threads);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& [config, result] = rows[i];
      std::fprintf(
          f,
          "    {\"shards\": %d, \"parallel\": %s, \"pps\": %.0f, "
          "\"packets\": %llu, \"wall_s\": %.6f, \"sim_ns\": %llu, "
          "\"windows\": %llu, \"window_events\": %llu, "
          "\"serial_events\": %llu, \"arena_allocs\": %llu, "
          "\"arena_reuses\": %llu}%s\n",
          config.shards, config.parallel ? "true" : "false", result.pps,
          static_cast<unsigned long long>(result.packets), result.wall_s,
          static_cast<unsigned long long>(result.sim_ns),
          static_cast<unsigned long long>(result.windows),
          static_cast<unsigned long long>(result.window_events),
          static_cast<unsigned long long>(result.serial_events),
          static_cast<unsigned long long>(result.arena_allocs),
          static_cast<unsigned long long>(result.arena_reuses),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_best\": %.4f\n}\n",
                 single_pps > 0 ? best_pps / single_pps : 0.0);
    std::fclose(f);
    std::printf("# wrote %s\n", sweep_json.c_str());
  }

  if (min_speedup > 0) {
    if (rows.size() < 2 || single_pps <= 0) {
      std::fprintf(stderr, "--min_speedup needs a sweep with shards=1\n");
      return 2;
    }
    if (best_pps / single_pps < min_speedup) {
      std::fprintf(stderr, "speedup %.2fx below required %.2fx\n",
                   best_pps / single_pps, min_speedup);
      return 1;
    }
  }
  return 0;
}
