// Micro-benchmarks of the crypto primitives (google-benchmark).  These
// numbers calibrate the cycles-per-byte constants in crypto/cost_model.hpp.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/aes128.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace mic::crypto;

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1500)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  std::vector<std::uint8_t> key(32, 0x0b);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1500);

void BM_ChaCha20(benchmark::State& state) {
  ChaCha20::Key key{};
  ChaCha20::Nonce nonce{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xef);
  for (auto _ : state) {
    ChaCha20::crypt(key, nonce, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(505)->Arg(1500)->Arg(16384);

void BM_Aes128Ctr(benchmark::State& state) {
  Aes128::Key key{};
  Aes128::Block iv{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0x12);
  for (auto _ : state) {
    aes128_ctr(key, iv, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(64)->Arg(1500);

void BM_DhModexp(benchmark::State& state) {
  const auto& group = dh_group_14();
  mic::Rng rng(9);
  const auto priv = group.sample_private_key(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.public_key(priv));
  }
}
BENCHMARK(BM_DhModexp);

}  // namespace

BENCHMARK_MAIN();
