// Micro-benchmark: flow-table lookup cost vs rule count (google-benchmark).
// The software-switch linear TCAM scan is what the per-packet
// switch_lookup_cycles constant models.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "switchd/flow_table.hpp"

namespace {

using namespace mic::switchd;

FlowTable build_table(int rules, mic::Rng& rng) {
  FlowTable table;
  for (int i = 0; i < rules; ++i) {
    FlowRule rule;
    rule.priority = 100;
    rule.match.src = mic::net::Ipv4{static_cast<std::uint32_t>(rng.next())};
    rule.match.dst = mic::net::Ipv4{static_cast<std::uint32_t>(rng.next())};
    rule.match.mpls = static_cast<std::uint32_t>(rng.next()) | 1;
    rule.actions = {Output{1}};
    table.add_rule(std::move(rule));
  }
  // A low-priority catch-all so lookups always hit after the scan.
  FlowRule fallback;
  fallback.priority = 1;
  fallback.actions = {Output{0}};
  table.add_rule(std::move(fallback));
  return table;
}

void BM_FlowTableLookup(benchmark::State& state) {
  mic::Rng rng(7);
  FlowTable table = build_table(static_cast<int>(state.range(0)), rng);
  mic::net::Packet packet;
  packet.src = mic::net::Ipv4(10, 0, 0, 1);
  packet.dst = mic::net::Ipv4(10, 0, 0, 2);
  packet.tcp.payload_len = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(packet, 0, packet.wire_bytes()));
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_FlowTableInstall(benchmark::State& state) {
  mic::Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    FlowTable table;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      FlowRule rule;
      rule.priority = static_cast<std::uint16_t>(rng.below(200));
      rule.match.mpls = static_cast<std::uint32_t>(rng.next()) | 1;
      rule.actions = {Output{1}};
      benchmark::DoNotOptimize(table.add_rule(std::move(rule)));
    }
  }
}
BENCHMARK(BM_FlowTableInstall)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
