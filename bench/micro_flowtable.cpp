// Micro-benchmark: flow-table lookup cost vs rule count, two-tier
// exact-match index vs the reference linear scan (google-benchmark).
//
// Rules are shaped like the Mimic Controller's m-flow rewrites: fully
// specified <in_port, src, dst, sport, dport, mpls> matches, the load that
// scales with channel count, plus a low-priority wildcard catch-all like
// the L3 tier.  Lookups cycle over packets that hit distinct rules, so the
// scan pays its average-depth cost instead of always winning on rule 0.
//
//   micro_flowtable               # google-benchmark tables
//   micro_flowtable --sweep_json  # machine-readable sweep for the bench
//                                 # trajectory: one JSON object on stdout
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/rng.hpp"
#include "switchd/flow_table.hpp"

namespace {

using namespace mic::switchd;

struct BenchTable {
  FlowTable table;
  std::vector<mic::net::Packet> packets;  // packets[i] hits rule i exactly
};

BenchTable build_exact_table(int rules, mic::Rng& rng) {
  BenchTable bench;
  for (int i = 0; i < rules; ++i) {
    FlowRule rule;
    rule.priority = 100;
    rule.match.in_port = 0;
    rule.match.src = mic::net::Ipv4{static_cast<std::uint32_t>(rng.next())};
    rule.match.dst = mic::net::Ipv4{static_cast<std::uint32_t>(rng.next())};
    rule.match.sport = static_cast<mic::net::L4Port>(rng.next());
    rule.match.dport = static_cast<mic::net::L4Port>(rng.next());
    rule.match.mpls = static_cast<std::uint32_t>(rng.next()) | 1;
    rule.actions = {Output{1}};

    mic::net::Packet packet;
    packet.src = *rule.match.src;
    packet.dst = *rule.match.dst;
    packet.sport = *rule.match.sport;
    packet.dport = *rule.match.dport;
    packet.mpls = *rule.match.mpls;
    packet.tcp.payload_len = 64;
    if (bench.table.add_rule(std::move(rule))) {
      bench.packets.push_back(packet);
    }
  }
  // The low-priority wildcard tier underneath (L3-style catch-all).
  FlowRule fallback;
  fallback.priority = 1;
  fallback.actions = {Output{0}};
  bench.table.add_rule(std::move(fallback));
  return bench;
}

void BM_FlowTableLookupIndexed(benchmark::State& state) {
  mic::Rng rng(7);
  BenchTable bench = build_exact_table(static_cast<int>(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = bench.packets[i++ % bench.packets.size()];
    benchmark::DoNotOptimize(bench.table.lookup(p, 0, p.wire_bytes()));
  }
  state.counters["index_hits"] =
      static_cast<double>(bench.table.stats().index_hits);
  state.counters["scan_fallbacks"] =
      static_cast<double>(bench.table.stats().scan_fallbacks);
}
BENCHMARK(BM_FlowTableLookupIndexed)->Arg(16)->Arg(256)->Arg(4096);

void BM_FlowTableLookupReference(benchmark::State& state) {
  mic::Rng rng(7);
  BenchTable bench = build_exact_table(static_cast<int>(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = bench.packets[i++ % bench.packets.size()];
    benchmark::DoNotOptimize(bench.table.reference_lookup(p, 0));
  }
}
BENCHMARK(BM_FlowTableLookupReference)->Arg(16)->Arg(256)->Arg(4096);

void BM_FlowTableLookupMissToWildcard(benchmark::State& state) {
  // The worst case for the two-tier design: index miss, then the wildcard
  // scan serves the catch-all.  Stays O(wildcard rules), not O(all rules).
  mic::Rng rng(7);
  BenchTable bench = build_exact_table(static_cast<int>(state.range(0)), rng);
  mic::net::Packet packet;
  packet.src = mic::net::Ipv4(10, 0, 0, 1);
  packet.dst = mic::net::Ipv4(10, 0, 0, 2);
  packet.tcp.payload_len = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.table.lookup(packet, 0,
                                                packet.wire_bytes()));
  }
}
BENCHMARK(BM_FlowTableLookupMissToWildcard)->Arg(16)->Arg(256)->Arg(4096);

void BM_FlowTableInstall(benchmark::State& state) {
  mic::Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    FlowTable table;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      FlowRule rule;
      rule.priority = static_cast<std::uint16_t>(rng.below(200));
      rule.match.mpls = static_cast<std::uint32_t>(rng.next()) | 1;
      rule.actions = {Output{1}};
      benchmark::DoNotOptimize(table.add_rule(std::move(rule)));
    }
  }
}
BENCHMARK(BM_FlowTableInstall)->Arg(64)->Arg(256);

/// Self-timed sweep, one JSON object on stdout: rule-count trajectory of
/// indexed vs reference lookup cost and the resulting speedup, plus the
/// table's own stats counters so the fast-path share is auditable.
int run_sweep_json() {
  constexpr int kRuleCounts[] = {16, 256, 4096};
  constexpr int kLookups = 200000;
  using clock = std::chrono::steady_clock;

  std::printf("{\"bench\":\"micro_flowtable\",\"lookups_per_point\":%d,"
              "\"series\":[",
              kLookups);
  bool first = true;
  for (const int rules : kRuleCounts) {
    mic::Rng rng(7);
    BenchTable bench = build_exact_table(rules, rng);

    const FlowRule* sink = nullptr;
    auto t0 = clock::now();
    for (int i = 0; i < kLookups; ++i) {
      const auto& p = bench.packets[static_cast<std::size_t>(i) %
                                    bench.packets.size()];
      sink = bench.table.reference_lookup(p, 0);
      benchmark::DoNotOptimize(sink);
    }
    const double ref_ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
        kLookups;

    t0 = clock::now();
    for (int i = 0; i < kLookups; ++i) {
      const auto& p = bench.packets[static_cast<std::size_t>(i) %
                                    bench.packets.size()];
      sink = bench.table.lookup(p, 0, p.wire_bytes());
      benchmark::DoNotOptimize(sink);
    }
    const double idx_ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
        kLookups;

    const TableStats& stats = bench.table.stats();
    std::printf("%s{\"rules\":%d,\"indexed_rules\":%zu,"
                "\"reference_ns_per_lookup\":%.2f,"
                "\"indexed_ns_per_lookup\":%.2f,\"speedup\":%.2f,"
                "\"lookups\":%llu,\"index_hits\":%llu,"
                "\"scan_fallbacks\":%llu,\"misses\":%llu}",
                first ? "" : ",", rules, bench.table.indexed_rule_count(),
                ref_ns, idx_ns, ref_ns / idx_ns,
                static_cast<unsigned long long>(stats.lookups),
                static_cast<unsigned long long>(stats.index_hits),
                static_cast<unsigned long long>(stats.scan_fallbacks),
                static_cast<unsigned long long>(stats.misses));
    first = false;
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--sweep_json") == 0) {
    return run_sweep_json();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
