// Micro-benchmarks for MAGA: hash evaluation, inversion, full tuple
// generation, and the label classifier (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/maga.hpp"
#include "core/maga_registry.hpp"

namespace {

using mic::Rng;
using mic::core::MagaF;
using mic::core::MagaRegistry;
using mic::core::Maga3;
using mic::core::MplsClassifier;

void BM_Maga3Value(benchmark::State& state) {
  Rng rng(1);
  const Maga3 f = Maga3::sample(rng);
  std::uint32_t x = 1, y = 2, z = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.value(x++, y++, z++));
  }
}
BENCHMARK(BM_Maga3Value);

void BM_Maga3Invert(benchmark::State& state) {
  Rng rng(2);
  const Maga3 f = Maga3::sample(rng);
  std::uint32_t v = 1, x = 2, y = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.invert_z(v++, x++, y++));
  }
}
BENCHMARK(BM_Maga3Invert);

void BM_MagaFInvert(benchmark::State& state) {
  Rng rng(3);
  const MagaF f = MagaF::sample(rng);
  std::uint32_t a = 1, b = 2;
  std::uint16_t g = 3, v = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.invert_delta(v++, a++, b++, g++));
  }
}
BENCHMARK(BM_MagaFInvert);

void BM_ClassifierSample(benchmark::State& state) {
  Rng rng(4);
  const MplsClassifier g = MplsClassifier::sample(rng);
  std::uint8_t s_id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.sample_label_half(s_id++, rng));
  }
}
BENCHMARK(BM_ClassifierSample);

void BM_RegistryGenerateTuple(benchmark::State& state) {
  MagaRegistry registry{Rng(5)};
  registry.register_switch(1);
  const auto flow = registry.allocate_flow_id();
  std::vector<mic::net::Ipv4> candidates;
  for (int i = 2; i < 18; ++i) candidates.push_back(mic::net::Ipv4(10, 0, 0, i));
  std::vector<mic::core::MTuple> generated;
  for (auto _ : state) {
    generated.push_back(registry.generate(1, flow, candidates, candidates));
    if (generated.size() >= 4096) {
      state.PauseTiming();
      registry.release_tuples(1, generated);
      generated.clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_RegistryGenerateTuple);

}  // namespace

BENCHMARK_MAIN();
