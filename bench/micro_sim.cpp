// Scheduler throughput: the timing-wheel Simulator versus the frozen
// binary-heap ReferenceSimulator, under the workloads that gate the
// ROADMAP's million-flow trajectory.
//
//   micro_sim                # google-benchmark tables
//   micro_sim --smoke        # fast CI sanity: engines agree, wheel works
//   micro_sim --sweep_json   # machine-readable wheel-vs-heap sweep
//                            # (BENCH_sim.json; see EXPERIMENTS.md)
//
// Two workloads:
//  * hold model -- N concurrent timers, each rearming itself with a random
//    delay when it fires (the classic calendar-queue benchmark; models N
//    flows each holding an RTO + pacing timer).  Reported as fired
//    events/sec at steady state.
//  * churn -- the TCP rearm pattern: schedule + cancel with no firing at
//    all, which the heap engine pays for in tombstones and the wheel in
//    nothing but freelist hits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mic;

/// N self-rearming timers; stops rearming once `target` fires happened so
/// run_until(kNever) drains.  Delays are 1 ns .. 1 ms, exercising level-0
/// slots through multi-level cascades.
template <typename Engine>
struct HoldModel {
  Engine sim;
  Rng rng;
  std::uint64_t fired = 0;
  std::uint64_t target;

  HoldModel(std::uint64_t seed, std::uint64_t fire_target)
      : rng(seed), target(fire_target) {}

  void arm() {
    sim.schedule_in(1 + rng.below(1'000'000), [this] {
      ++fired;
      if (fired < target) arm();
    });
  }

  /// Returns fired events per wall-clock second.
  double run(std::size_t timers) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < timers; ++i) arm();
    sim.run_until(sim::kNever);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(fired) / secs;
  }
};

/// Schedule+cancel pairs per second with `live` armed timers as ballast
/// (so cancel cost is measured against a realistically full scheduler).
template <typename Engine>
double churn_pairs_per_sec(std::size_t live, std::uint64_t pairs) {
  Engine sim;
  Rng rng(7);
  for (std::size_t i = 0; i < live; ++i) {
    sim.schedule_in(1 + rng.below(1'000'000'000), [] {});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const sim::EventId id =
        sim.schedule_in(1 + rng.below(200'000'000), [] {});
    sim.cancel(id);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(pairs) / secs;
}

void BM_WheelHold(benchmark::State& state) {
  const auto timers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    HoldModel<sim::Simulator> model(42, static_cast<std::uint64_t>(timers) * 4);
    benchmark::DoNotOptimize(model.run(timers));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_WheelHold)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_HeapHold(benchmark::State& state) {
  const auto timers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    HoldModel<sim::ReferenceSimulator> model(
        42, static_cast<std::uint64_t>(timers) * 4);
    benchmark::DoNotOptimize(model.run(timers));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_HeapHold)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_WheelChurn(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        churn_pairs_per_sec<sim::Simulator>(live, 100'000));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_WheelChurn)->Arg(1'000)->Arg(100'000);

void BM_HeapChurn(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        churn_pairs_per_sec<sim::ReferenceSimulator>(live, 100'000));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_HeapChurn)->Arg(1'000)->Arg(100'000);

/// Cross-engine agreement on the hold model: same seed => identical fire
/// count and identical final clock.  A cheap differential check that rides
/// along in the CI smoke run.
bool engines_agree(std::size_t timers, std::uint64_t target) {
  HoldModel<sim::Simulator> wheel(42, target);
  HoldModel<sim::ReferenceSimulator> heap(42, target);
  wheel.run(timers);
  heap.run(timers);
  if (wheel.fired != heap.fired) {
    std::fprintf(stderr, "SMOKE FAIL: fired %llu (wheel) vs %llu (heap)\n",
                 static_cast<unsigned long long>(wheel.fired),
                 static_cast<unsigned long long>(heap.fired));
    return false;
  }
  if (wheel.sim.now() != heap.sim.now()) {
    std::fprintf(stderr, "SMOKE FAIL: now %llu (wheel) vs %llu (heap)\n",
                 static_cast<unsigned long long>(wheel.sim.now()),
                 static_cast<unsigned long long>(heap.sim.now()));
    return false;
  }
  return true;
}

int run_smoke() {
  if (!engines_agree(1'000, 50'000)) return 1;
  // Churn must not grow the wheel's pool past its first chunk.
  sim::Simulator sim;
  for (int i = 0; i < 100'000; ++i) {
    sim.cancel(sim.schedule_in(1'000'000, [] {}));
  }
  if (sim.stats().nodes_allocated > 256) {
    std::fprintf(stderr, "SMOKE FAIL: pool grew to %u nodes under churn\n",
                 sim.stats().nodes_allocated);
    return 1;
  }
  std::printf("micro_sim smoke OK\n");
  return 0;
}

/// Perf-regression guard for scripts/check.sh: the wheel must beat the
/// frozen heap engine on the hold model.  Best-of-3 per engine irons out
/// scheduler interference on loaded CI boxes.
int run_min_speedup(double required) {
  constexpr std::size_t kTimers = 10'000;
  constexpr std::uint64_t kTarget = 1'000'000;
  double wheel_eps = 0.0;
  double heap_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    HoldModel<sim::Simulator> wheel(42, kTarget);
    wheel_eps = std::max(wheel_eps, wheel.run(kTimers));
    HoldModel<sim::ReferenceSimulator> heap(42, kTarget);
    heap_eps = std::max(heap_eps, heap.run(kTimers));
  }
  const double speedup = wheel_eps / heap_eps;
  std::printf("wheel %.0f events/s, heap %.0f events/s: %.2fx\n", wheel_eps,
              heap_eps, speedup);
  if (speedup < required) {
    std::fprintf(stderr, "wheel speedup %.2fx below required %.2fx\n",
                 speedup, required);
    return 1;
  }
  return 0;
}

int run_sweep_json() {
  std::printf("{\"bench\":\"micro_sim\",\"hold_model\":[");
  bool first = true;
  for (const std::size_t timers :
       {std::size_t{1'000}, std::size_t{10'000}, std::size_t{100'000},
        std::size_t{1'000'000}}) {
    // Enough fires that the measurement dwarfs CPU frequency ramp-up and
    // arm-phase warmup (sub-10 ms runs are bimodal), without making the
    // heap side of the biggest point take minutes.  Best of two runs per
    // engine irons out scheduler interference.
    const std::uint64_t target =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(timers) * 4,
                                1'000'000);
    HoldModel<sim::Simulator> wheel(42, target);
    double wheel_eps = wheel.run(timers);
    double heap_eps = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      if (rep > 0) {
        HoldModel<sim::Simulator> again(42, target);
        wheel_eps = std::max(wheel_eps, again.run(timers));
      }
      HoldModel<sim::ReferenceSimulator> heap(42, target);
      heap_eps = std::max(heap_eps, heap.run(timers));
    }
    std::printf("%s{\"concurrent_timers\":%zu,\"fired\":%llu,"
                "\"wheel_events_per_sec\":%.0f,\"heap_events_per_sec\":%.0f,"
                "\"speedup\":%.2f,\"wheel_pool_nodes\":%u,"
                "\"wheel_cascades\":%llu}",
                first ? "" : ",", timers,
                static_cast<unsigned long long>(wheel.fired), wheel_eps,
                heap_eps, wheel_eps / heap_eps,
                wheel.sim.stats().nodes_allocated,
                static_cast<unsigned long long>(wheel.sim.stats().cascades));
    first = false;
  }
  std::printf("],\"churn\":[");
  first = true;
  for (const std::size_t live : {std::size_t{1'000}, std::size_t{100'000}}) {
    const double wheel_cps =
        churn_pairs_per_sec<sim::Simulator>(live, 1'000'000);
    const double heap_cps =
        churn_pairs_per_sec<sim::ReferenceSimulator>(live, 1'000'000);
    std::printf("%s{\"live_timers\":%zu,"
                "\"wheel_pairs_per_sec\":%.0f,\"heap_pairs_per_sec\":%.0f,"
                "\"speedup\":%.2f}",
                first ? "" : ",", live, wheel_cps, heap_cps,
                wheel_cps / heap_cps);
    first = false;
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  if (argc > 1 && std::strcmp(argv[1], "--sweep_json") == 0) {
    return run_sweep_json();
  }
  if (argc > 2 && std::strcmp(argv[1], "--min_speedup") == 0) {
    return run_min_speedup(std::atof(argv[2]));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
