// Scalability of the MC's routing calculation (paper Sec VI-C): the claim
// is O(|F|) per channel with near-zero overhead versus TCP.  Measures real
// wall time of MimicController::establish for varying F, N and topology
// size, plus the route-table story behind it: eager all-pairs
// precomputation (the retained AllPairsPaths oracle -- the seed behaviour)
// versus the lazy PathEngine (per-destination BFS rows on demand, epoch
// invalidation on failure, optional parallel warm-up).
//
//   scal_routing_calc               # google-benchmark tables
//   scal_routing_calc --sweep_json  # machine-readable fat-tree sweep for
//                                   # the bench trajectory (BENCH_routing.json)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/fabric.hpp"
#include "topology/fattree.hpp"
#include "topology/path_engine.hpp"
#include "topology/paths.hpp"

namespace {

using namespace mic;
using core::EstablishRequest;
using core::Fabric;
using core::FabricOptions;

void BM_EstablishByFlowCount(benchmark::State& state) {
  Fabric fabric;
  const int flows = static_cast<int>(state.range(0));
  int sport = 20000;
  for (auto _ : state) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(12);
    request.responder_port = 7000;
    request.flow_count = flows;
    request.mn_count = 3;
    for (int f = 0; f < flows; ++f) {
      request.initiator_sports.push_back(static_cast<net::L4Port>(sport++));
      if (sport > 64000) sport = 20000;
    }
    const auto result = fabric.mc().establish(request);
    benchmark::DoNotOptimize(result.ok);
    state.PauseTiming();
    fabric.mc().teardown(result.channel);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_EstablishByFlowCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EstablishByMnCount(benchmark::State& state) {
  Fabric fabric;
  const int mn_count = static_cast<int>(state.range(0));
  int sport = 20000;
  for (auto _ : state) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(12);
    request.responder_port = 7000;
    request.flow_count = 1;
    request.mn_count = mn_count;
    request.initiator_sports = {static_cast<net::L4Port>(sport++)};
    if (sport > 64000) sport = 20000;
    const auto result = fabric.mc().establish(request);
    benchmark::DoNotOptimize(result.ok);
    state.PauseTiming();
    fabric.mc().teardown(result.channel);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EstablishByMnCount)->Arg(1)->Arg(3)->Arg(5);

void BM_EstablishByTopologySize(benchmark::State& state) {
  FabricOptions options;
  options.k = static_cast<int>(state.range(0));
  Fabric fabric(options);
  const std::size_t last = fabric.host_count() - 1;
  int sport = 20000;
  for (auto _ : state) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(last);
    request.responder_port = 7000;
    request.flow_count = 1;
    request.mn_count = 3;
    request.initiator_sports = {static_cast<net::L4Port>(sport++)};
    if (sport > 64000) sport = 20000;
    const auto result = fabric.mc().establish(request);
    benchmark::DoNotOptimize(result.ok);
    state.PauseTiming();
    fabric.mc().teardown(result.channel);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EstablishByTopologySize)->Arg(4)->Arg(6)->Arg(8);

void BM_AllPairsPathsInit(benchmark::State& state) {
  // The seed's one-time cost at MC start: one BFS per node plus an O(n^2)
  // matrix ("calculates all-pairs equal-cost shortest paths when
  // initiation").  Retained as the eager baseline / oracle.
  topo::FatTree ft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    topo::AllPairsPaths paths(ft.graph());
    benchmark::DoNotOptimize(paths.distance(ft.hosts()[0], ft.hosts()[1]));
  }
}
BENCHMARK(BM_AllPairsPathsInit)->Arg(4)->Arg(8)->Arg(16);

void BM_PathEngineLazyRouteSetup(benchmark::State& state) {
  // What the MC actually pays per start-up now: engine construction is
  // O(1); a route setup computes only the rows for the destinations it
  // touches (here: 8 channel establishments between random host pairs).
  topo::FatTree ft(static_cast<int>(state.range(0)));
  const auto& hosts = ft.hosts();
  for (auto _ : state) {
    topo::PathEngine engine(ft.graph());
    Rng rng(42);
    for (int i = 0; i < 8; ++i) {
      const topo::NodeId src = hosts[rng.below(hosts.size())];
      topo::NodeId dst = src;
      while (dst == src) dst = hosts[rng.below(hosts.size())];
      benchmark::DoNotOptimize(engine.sample_shortest_path(src, dst, rng));
    }
  }
}
BENCHMARK(BM_PathEngineLazyRouteSetup)->Arg(4)->Arg(8)->Arg(16);

void BM_PathEngineWarmUp(benchmark::State& state) {
  // Full warm-up of every host row, threaded: Arg is the thread count on a
  // k=16 fat-tree (1024 host rows).
  topo::FatTree ft(16);
  const auto hosts = ft.graph().hosts();
  for (auto _ : state) {
    topo::PathEngine engine(ft.graph());
    engine.warm_up(hosts, static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(engine.cached_rows());
  }
}
BENCHMARK(BM_PathEngineWarmUp)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_McConfigWarmUp(benchmark::State& state) {
  // The production path to the same warm-up: ControllerConfig's
  // path_warmup_threads (Arg), exercised through full Fabric construction
  // rather than a bare engine -- this is what an operator actually tunes.
  FabricOptions options;
  options.k = 8;
  options.controller.path_warmup_threads =
      static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    Fabric fabric(options);
    benchmark::DoNotOptimize(fabric.mc().paths().cached_rows());
  }
  state.counters["rows_precomputed"] = static_cast<double>(
      Fabric(options).mc().paths().cached_rows());
}
BENCHMARK(BM_McConfigWarmUp)->Arg(0)->Arg(1)->Arg(4);

topo::LinkId interior_link(const topo::FatTree& ft) {
  // An edge->aggregation link: on many shortest paths, so its failure
  // exercises real invalidation without disconnecting any host.
  for (const auto& adj : ft.graph().neighbors(ft.edge_switches()[0])) {
    if (ft.graph().is_switch(adj.peer)) return adj.link;
  }
  MIC_ASSERT(false);
  return topo::kInvalidLink;
}

/// Destinations of the flows a reroute actually has to re-answer: the
/// epoch bump is O(cached rows), after which only these rows are
/// recomputed on demand -- never all n sources like the eager rebuild.
std::vector<topo::NodeId> active_flow_dsts(const topo::FatTree& ft,
                                           std::size_t flows) {
  Rng rng(7);
  std::vector<topo::NodeId> dsts;
  const auto& hosts = ft.hosts();
  for (std::size_t i = 0; i < std::min(flows, hosts.size()); ++i) {
    dsts.push_back(hosts[rng.below(hosts.size())]);
  }
  return dsts;
}

/// Re-answer (switch, dst) distances for the active flow destinations,
/// returning a checksum so the work cannot be optimized away.
std::uint64_t requery_flows(const topo::PathEngine& engine,
                            const topo::FatTree& ft,
                            const std::vector<topo::NodeId>& dsts) {
  std::uint64_t sum = 0;
  for (const topo::NodeId dst : dsts) {
    for (const topo::NodeId sw : ft.graph().switches()) {
      sum += engine.distance(sw, dst);
    }
  }
  return sum;
}

void BM_PathEngineFailureReroute(benchmark::State& state) {
  // Reroute after one interior link failure with a warm cache: the epoch
  // bump drops the rows whose BFS tree used the link, then recomputation
  // is driven purely by demand -- here 32 active flows, so at most 32 BFS
  // runs instead of the seed's full-table rebuild (one BFS per *node*;
  // compare BM_AllPairsFailureRebuild).
  topo::FatTree ft(static_cast<int>(state.range(0)));
  topo::PathEngine engine(ft.graph());
  engine.warm_up(ft.graph().hosts(), 4);
  const topo::LinkId victim = interior_link(ft);
  const auto flow_dsts = active_flow_dsts(ft, 32);
  std::uint64_t recomputed = 0;
  for (auto _ : state) {
    const std::uint64_t before = engine.stats().rows_computed;
    engine.link_failed(victim);
    benchmark::DoNotOptimize(requery_flows(engine, ft, flow_dsts));
    recomputed += engine.stats().rows_computed - before;
    state.PauseTiming();
    engine.link_restored(victim);
    engine.warm_up(ft.graph().hosts(), 4);  // re-warm outside the timer
    state.ResumeTiming();
  }
  state.counters["rows_recomputed_per_fail"] =
      static_cast<double>(recomputed) / static_cast<double>(state.iterations());
  state.counters["nodes"] = static_cast<double>(ft.graph().size());
}
BENCHMARK(BM_PathEngineFailureReroute)->Arg(8)->Arg(16);

void BM_AllPairsFailureRebuild(benchmark::State& state) {
  // The seed's failure path: ctrl/l3_routing rebuilt the entire table from
  // scratch with the failed links excluded.
  topo::FatTree ft(static_cast<int>(state.range(0)));
  const std::unordered_set<topo::LinkId> failed{interior_link(ft)};
  for (auto _ : state) {
    topo::AllPairsPaths rebuilt(ft.graph(), &failed);
    benchmark::DoNotOptimize(rebuilt.distance(ft.hosts()[0], ft.hosts()[1]));
  }
}
BENCHMARK(BM_AllPairsFailureRebuild)->Arg(8)->Arg(16);

/// Destination-batched establishment (MimicController::establish_batch)
/// versus naive request-order establishment under a tight LRU row cap
/// (ControllerConfig::path_cache_max_rows): the batch stable-sorts by
/// destination, so each destination's row is computed once and serves its
/// whole group, while interleaved naive requests evict and recompute rows
/// as they thrash the capped cache.
struct EstablishBurst {
  double wall_ms = 0.0;
  std::uint64_t rows_computed = 0;
  std::uint64_t rows_evicted = 0;
};

EstablishBurst run_establish_burst(bool batched, std::size_t cache_cap) {
  using clock = std::chrono::steady_clock;
  FabricOptions options;
  options.seed = 42;
  options.controller.path_cache_max_rows = cache_cap;
  Fabric fabric(options);
  // 32 requests interleaving 4 destinations (hosts 8..11) from 8 sources.
  std::vector<EstablishRequest> requests;
  for (int i = 0; i < 32; ++i) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(static_cast<std::size_t>(i % 8));
    request.responder_ip = fabric.ip(8 + static_cast<std::size_t>(i % 4));
    request.responder_port = static_cast<net::L4Port>(7000 + i % 4);
    request.flow_count = 1;
    request.initiator_sports = {static_cast<net::L4Port>(30000 + i)};
    requests.push_back(request);
  }
  const auto before = fabric.mc().paths().stats();
  const auto t0 = clock::now();
  if (batched) {
    for (const auto& result : fabric.mc().establish_batch(requests)) {
      MIC_ASSERT(result.ok);
    }
  } else {
    for (const auto& request : requests) {
      MIC_ASSERT(fabric.mc().establish(request).ok);
    }
  }
  EstablishBurst burst;
  burst.wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  const auto after = fabric.mc().paths().stats();
  burst.rows_computed = after.rows_computed - before.rows_computed;
  burst.rows_evicted = after.rows_evicted - before.rows_evicted;
  return burst;
}

/// Self-timed sweep, one JSON object on stdout: eager (seed baseline)
/// versus lazy construction and failure-reroute cost over growing
/// fat-trees, plus the engine's own row accounting so the sub-linear
/// invalidation is auditable, and the destination-batched establishment
/// burst under a tight row cap.
int run_sweep_json() {
  using clock = std::chrono::steady_clock;
  const auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0)
        .count();
  };

  std::printf("{\"bench\":\"scal_routing_calc\",\"series\":[");
  bool first = true;
  for (const int k : {4, 8, 16}) {
    const topo::FatTree ft(k);
    const auto& hosts = ft.hosts();

    // Eager baseline: the seed's start-up cost.
    auto t0 = clock::now();
    const topo::AllPairsPaths eager(ft.graph());
    const double eager_construct_ms = ms_since(t0);

    // Lazy route setup: engine + 8 establishments' worth of rows.
    t0 = clock::now();
    topo::PathEngine setup_engine(ft.graph());
    Rng rng(42);
    std::uint64_t sink = 0;
    for (int i = 0; i < 8; ++i) {
      const topo::NodeId src = hosts[rng.below(hosts.size())];
      topo::NodeId dst = src;
      while (dst == src) dst = hosts[rng.below(hosts.size())];
      sink += setup_engine.sample_shortest_path(src, dst, rng).size();
    }
    const double lazy_setup_ms = ms_since(t0);
    benchmark::DoNotOptimize(sink);

    // Warm-up, single- vs multi-threaded.
    t0 = clock::now();
    topo::PathEngine warm1(ft.graph());
    warm1.warm_up(hosts, 1);
    const double warmup_t1_ms = ms_since(t0);
    t0 = clock::now();
    topo::PathEngine warm4(ft.graph());
    warm4.warm_up(hosts, 4);
    const double warmup_t4_ms = ms_since(t0);

    // The same warm-up driven the production way: through
    // ControllerConfig::path_warmup_threads on a full Fabric.  Lazy (0)
    // anchors the construction baseline so the warm-up cost is the delta.
    // Gated to k <= 8: a k=16 fabric has 320 switches, past MAGA's 255
    // S_ID limit, so no full MC exists at that scale (only bare engines).
    std::string mc_fields;
    if (k <= 8) {
      const auto fabric_construct_ms = [&](unsigned threads,
                                           std::size_t* rows) {
        FabricOptions options;
        options.k = k;
        options.controller.path_warmup_threads = threads;
        const auto start = clock::now();
        Fabric fabric(options);
        const double ms = ms_since(start);
        *rows = fabric.mc().paths().cached_rows();
        return ms;
      };
      std::size_t rows_lazy = 0, rows_warm1 = 0, rows_warm4 = 0;
      const double mc_lazy_ms = fabric_construct_ms(0, &rows_lazy);
      const double mc_warm1_ms = fabric_construct_ms(1, &rows_warm1);
      const double mc_warm4_ms = fabric_construct_ms(4, &rows_warm4);
      MIC_ASSERT(rows_warm1 == rows_warm4);  // PE-1: thread count invisible
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "\"mc_construct_lazy_ms\":%.3f,"
                    "\"mc_construct_warm1_ms\":%.3f,"
                    "\"mc_construct_warm4_ms\":%.3f,"
                    "\"mc_rows_lazy\":%zu,\"mc_rows_warm\":%zu,",
                    mc_lazy_ms, mc_warm1_ms, mc_warm4_ms, rows_lazy,
                    rows_warm4);
      mc_fields = buf;
    }

    // Failure reroute with a warm cache: epoch bump + requery of 32 active
    // flows' rows (demand-driven: at most 32 BFS runs) versus the seed's
    // full rebuild (one BFS per node plus the O(n^2) matrix).
    const topo::LinkId victim = interior_link(ft);
    topo::PathEngine engine(ft.graph());
    engine.warm_up(hosts, 4);
    const auto flow_dsts = active_flow_dsts(ft, 32);
    const std::uint64_t computed_before = engine.stats().rows_computed;
    t0 = clock::now();
    engine.link_failed(victim);
    sink = requery_flows(engine, ft, flow_dsts);
    const double reroute_lazy_ms = ms_since(t0);
    benchmark::DoNotOptimize(sink);
    const std::uint64_t recomputed =
        engine.stats().rows_computed - computed_before;

    const std::unordered_set<topo::LinkId> failed{victim};
    t0 = clock::now();
    const topo::AllPairsPaths rebuilt(ft.graph(), &failed);
    const double reroute_eager_ms = ms_since(t0);
    benchmark::DoNotOptimize(rebuilt.distance(hosts[0], hosts[1]));

    // Clustered-failure retention: once an edge switch is partitioned off,
    // failing a host link inside the dead region invalidates only the k/2
    // rows whose BFS tree could reach the link -- every other row is
    // retained, which is the sub-linear invalidation path.
    topo::PathEngine clustered(ft.graph());
    const topo::NodeId dead_edge = ft.edge_switches()[0];
    for (const auto& adj : ft.graph().neighbors(dead_edge)) {
      if (ft.graph().is_switch(adj.peer)) clustered.link_failed(adj.link);
    }
    clustered.warm_up(hosts, 4);
    const auto before_local = clustered.stats();
    clustered.link_failed(ft.graph().neighbors(hosts[0])[0].link);
    const std::uint64_t local_invalidated =
        clustered.stats().rows_invalidated - before_local.rows_invalidated;
    const std::uint64_t local_retained =
        clustered.stats().rows_retained - before_local.rows_retained;

    std::printf(
        "%s{\"k\":%d,\"nodes\":%zu,\"hosts\":%zu,"
        "\"eager_construct_ms\":%.3f,\"lazy_setup8_ms\":%.3f,"
        "\"construct_speedup\":%.1f,"
        "\"warmup_ms_threads1\":%.3f,\"warmup_ms_threads4\":%.3f,%s"
        "\"reroute_lazy_ms\":%.3f,\"reroute_eager_ms\":%.3f,"
        "\"reroute_speedup\":%.1f,"
        "\"reroute_rows_recomputed\":%llu,\"reroute_recompute_fraction\":%.3f,"
        "\"local_fail_invalidated\":%llu,\"local_fail_retained\":%llu,"
        "\"local_fail_retained_fraction\":%.3f}",
        first ? "" : ",", k, ft.graph().size(), hosts.size(),
        eager_construct_ms, lazy_setup_ms,
        eager_construct_ms / lazy_setup_ms, warmup_t1_ms, warmup_t4_ms,
        mc_fields.c_str(), reroute_lazy_ms, reroute_eager_ms,
        reroute_eager_ms / reroute_lazy_ms,
        static_cast<unsigned long long>(recomputed),
        static_cast<double>(recomputed) /
            static_cast<double>(ft.graph().size()),
        static_cast<unsigned long long>(local_invalidated),
        static_cast<unsigned long long>(local_retained),
        static_cast<double>(local_retained) /
            static_cast<double>(local_invalidated + local_retained));
    first = false;
  }
  std::printf("]");

  // Establish burst: 32 requests over 4 interleaved destinations, row cap
  // 2 -- small enough that naive request order must thrash.  Uncapped
  // naive anchors the no-pressure baseline.
  constexpr std::size_t kCap = 2;
  const EstablishBurst naive = run_establish_burst(false, kCap);
  const EstablishBurst batched = run_establish_burst(true, kCap);
  const EstablishBurst uncapped = run_establish_burst(false, 0);
  std::printf(
      ",\"establish_batch\":{\"burst\":32,\"destinations\":4,"
      "\"cache_cap\":%zu,"
      "\"naive_ms\":%.3f,\"batched_ms\":%.3f,\"uncapped_ms\":%.3f,"
      "\"naive_rows_computed\":%llu,\"batched_rows_computed\":%llu,"
      "\"uncapped_rows_computed\":%llu,"
      "\"naive_rows_evicted\":%llu,\"batched_rows_evicted\":%llu}",
      kCap, naive.wall_ms, batched.wall_ms, uncapped.wall_ms,
      static_cast<unsigned long long>(naive.rows_computed),
      static_cast<unsigned long long>(batched.rows_computed),
      static_cast<unsigned long long>(uncapped.rows_computed),
      static_cast<unsigned long long>(naive.rows_evicted),
      static_cast<unsigned long long>(batched.rows_evicted));
  std::printf("}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--sweep_json") == 0) {
    return run_sweep_json();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
