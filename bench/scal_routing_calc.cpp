// Scalability of the MC's routing calculation (paper Sec VI-C): the claim
// is O(|F|) per channel with near-zero overhead versus TCP.  Measures real
// wall time of MimicController::establish for varying F, N and topology
// size, plus teardown (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/fabric.hpp"

namespace {

using namespace mic;
using core::EstablishRequest;
using core::Fabric;
using core::FabricOptions;

void BM_EstablishByFlowCount(benchmark::State& state) {
  Fabric fabric;
  const int flows = static_cast<int>(state.range(0));
  int sport = 20000;
  for (auto _ : state) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(12);
    request.responder_port = 7000;
    request.flow_count = flows;
    request.mn_count = 3;
    for (int f = 0; f < flows; ++f) {
      request.initiator_sports.push_back(static_cast<net::L4Port>(sport++));
      if (sport > 64000) sport = 20000;
    }
    const auto result = fabric.mc().establish(request);
    benchmark::DoNotOptimize(result.ok);
    state.PauseTiming();
    fabric.mc().teardown(result.channel);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_EstablishByFlowCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EstablishByMnCount(benchmark::State& state) {
  Fabric fabric;
  const int mn_count = static_cast<int>(state.range(0));
  int sport = 20000;
  for (auto _ : state) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(12);
    request.responder_port = 7000;
    request.flow_count = 1;
    request.mn_count = mn_count;
    request.initiator_sports = {static_cast<net::L4Port>(sport++)};
    if (sport > 64000) sport = 20000;
    const auto result = fabric.mc().establish(request);
    benchmark::DoNotOptimize(result.ok);
    state.PauseTiming();
    fabric.mc().teardown(result.channel);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EstablishByMnCount)->Arg(1)->Arg(3)->Arg(5);

void BM_EstablishByTopologySize(benchmark::State& state) {
  FabricOptions options;
  options.k = static_cast<int>(state.range(0));
  Fabric fabric(options);
  const std::size_t last = fabric.host_count() - 1;
  int sport = 20000;
  for (auto _ : state) {
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(last);
    request.responder_port = 7000;
    request.flow_count = 1;
    request.mn_count = 3;
    request.initiator_sports = {static_cast<net::L4Port>(sport++)};
    if (sport > 64000) sport = 20000;
    const auto result = fabric.mc().establish(request);
    benchmark::DoNotOptimize(result.ok);
    state.PauseTiming();
    fabric.mc().teardown(result.channel);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EstablishByTopologySize)->Arg(4)->Arg(6)->Arg(8);

void BM_AllPairsPathsInit(benchmark::State& state) {
  // The one-time cost at MC start ("calculates all-pairs equal-cost
  // shortest paths when initiation").
  topo::FatTree ft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    topo::AllPairsPaths paths(ft.graph());
    benchmark::DoNotOptimize(paths.distance(ft.hosts()[0], ft.hosts()[1]));
  }
}
BENCHMARK(BM_AllPairsPathsInit)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
