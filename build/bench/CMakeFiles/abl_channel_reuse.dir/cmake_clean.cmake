file(REMOVE_RECURSE
  "CMakeFiles/abl_channel_reuse.dir/abl_channel_reuse.cpp.o"
  "CMakeFiles/abl_channel_reuse.dir/abl_channel_reuse.cpp.o.d"
  "abl_channel_reuse"
  "abl_channel_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
