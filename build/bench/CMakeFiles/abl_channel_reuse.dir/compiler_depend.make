# Empty compiler generated dependencies file for abl_channel_reuse.
# This may be replaced when dependencies are built.
