file(REMOVE_RECURSE
  "CMakeFiles/abl_multi_mflow.dir/abl_multi_mflow.cpp.o"
  "CMakeFiles/abl_multi_mflow.dir/abl_multi_mflow.cpp.o.d"
  "abl_multi_mflow"
  "abl_multi_mflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multi_mflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
