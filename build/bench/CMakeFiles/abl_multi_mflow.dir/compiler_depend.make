# Empty compiler generated dependencies file for abl_multi_mflow.
# This may be replaced when dependencies are built.
