file(REMOVE_RECURSE
  "CMakeFiles/abl_observer_sweep.dir/abl_observer_sweep.cpp.o"
  "CMakeFiles/abl_observer_sweep.dir/abl_observer_sweep.cpp.o.d"
  "abl_observer_sweep"
  "abl_observer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_observer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
