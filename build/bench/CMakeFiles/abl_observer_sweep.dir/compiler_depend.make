# Empty compiler generated dependencies file for abl_observer_sweep.
# This may be replaced when dependencies are built.
