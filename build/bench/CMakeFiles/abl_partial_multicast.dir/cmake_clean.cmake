file(REMOVE_RECURSE
  "CMakeFiles/abl_partial_multicast.dir/abl_partial_multicast.cpp.o"
  "CMakeFiles/abl_partial_multicast.dir/abl_partial_multicast.cpp.o.d"
  "abl_partial_multicast"
  "abl_partial_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
