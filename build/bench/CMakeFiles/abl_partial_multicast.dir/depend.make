# Empty dependencies file for abl_partial_multicast.
# This may be replaced when dependencies are built.
