file(REMOVE_RECURSE
  "CMakeFiles/abl_privacy_level.dir/abl_privacy_level.cpp.o"
  "CMakeFiles/abl_privacy_level.dir/abl_privacy_level.cpp.o.d"
  "abl_privacy_level"
  "abl_privacy_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_privacy_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
