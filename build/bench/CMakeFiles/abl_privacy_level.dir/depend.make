# Empty dependencies file for abl_privacy_level.
# This may be replaced when dependencies are built.
