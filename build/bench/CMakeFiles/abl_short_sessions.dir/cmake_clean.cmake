file(REMOVE_RECURSE
  "CMakeFiles/abl_short_sessions.dir/abl_short_sessions.cpp.o"
  "CMakeFiles/abl_short_sessions.dir/abl_short_sessions.cpp.o.d"
  "abl_short_sessions"
  "abl_short_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_short_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
