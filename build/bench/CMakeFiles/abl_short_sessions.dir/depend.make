# Empty dependencies file for abl_short_sessions.
# This may be replaced when dependencies are built.
