file(REMOVE_RECURSE
  "CMakeFiles/fig7_route_setup.dir/fig7_route_setup.cpp.o"
  "CMakeFiles/fig7_route_setup.dir/fig7_route_setup.cpp.o.d"
  "fig7_route_setup"
  "fig7_route_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_route_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
