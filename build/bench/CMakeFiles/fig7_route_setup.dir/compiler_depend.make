# Empty compiler generated dependencies file for fig7_route_setup.
# This may be replaced when dependencies are built.
