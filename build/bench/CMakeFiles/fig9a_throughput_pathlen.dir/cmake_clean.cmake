file(REMOVE_RECURSE
  "CMakeFiles/fig9a_throughput_pathlen.dir/fig9a_throughput_pathlen.cpp.o"
  "CMakeFiles/fig9a_throughput_pathlen.dir/fig9a_throughput_pathlen.cpp.o.d"
  "fig9a_throughput_pathlen"
  "fig9a_throughput_pathlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_throughput_pathlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
