# Empty compiler generated dependencies file for fig9a_throughput_pathlen.
# This may be replaced when dependencies are built.
