file(REMOVE_RECURSE
  "CMakeFiles/fig9b_throughput_flows.dir/fig9b_throughput_flows.cpp.o"
  "CMakeFiles/fig9b_throughput_flows.dir/fig9b_throughput_flows.cpp.o.d"
  "fig9b_throughput_flows"
  "fig9b_throughput_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_throughput_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
