# Empty dependencies file for fig9b_throughput_flows.
# This may be replaced when dependencies are built.
