file(REMOVE_RECURSE
  "CMakeFiles/fig9c_cpu_usage.dir/fig9c_cpu_usage.cpp.o"
  "CMakeFiles/fig9c_cpu_usage.dir/fig9c_cpu_usage.cpp.o.d"
  "fig9c_cpu_usage"
  "fig9c_cpu_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9c_cpu_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
