# Empty compiler generated dependencies file for fig9c_cpu_usage.
# This may be replaced when dependencies are built.
