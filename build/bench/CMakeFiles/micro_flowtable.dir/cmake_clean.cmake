file(REMOVE_RECURSE
  "CMakeFiles/micro_flowtable.dir/micro_flowtable.cpp.o"
  "CMakeFiles/micro_flowtable.dir/micro_flowtable.cpp.o.d"
  "micro_flowtable"
  "micro_flowtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flowtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
