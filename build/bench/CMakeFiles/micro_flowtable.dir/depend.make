# Empty dependencies file for micro_flowtable.
# This may be replaced when dependencies are built.
