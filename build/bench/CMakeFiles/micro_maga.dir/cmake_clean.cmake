file(REMOVE_RECURSE
  "CMakeFiles/micro_maga.dir/micro_maga.cpp.o"
  "CMakeFiles/micro_maga.dir/micro_maga.cpp.o.d"
  "micro_maga"
  "micro_maga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_maga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
