# Empty compiler generated dependencies file for micro_maga.
# This may be replaced when dependencies are built.
