file(REMOVE_RECURSE
  "CMakeFiles/scal_routing_calc.dir/scal_routing_calc.cpp.o"
  "CMakeFiles/scal_routing_calc.dir/scal_routing_calc.cpp.o.d"
  "scal_routing_calc"
  "scal_routing_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_routing_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
