# Empty compiler generated dependencies file for scal_routing_calc.
# This may be replaced when dependencies are built.
