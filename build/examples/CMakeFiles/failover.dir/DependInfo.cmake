
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/failover.cpp" "examples/CMakeFiles/failover.dir/failover.cpp.o" "gcc" "examples/CMakeFiles/failover.dir/failover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/mic_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/anonymity/CMakeFiles/mic_anonymity.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mic_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/switchd/CMakeFiles/mic_switchd.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mic_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mic_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mic_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
