# Empty dependencies file for hidden_service.
# This may be replaced when dependencies are built.
