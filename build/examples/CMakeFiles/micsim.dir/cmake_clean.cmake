file(REMOVE_RECURSE
  "CMakeFiles/micsim.dir/micsim.cpp.o"
  "CMakeFiles/micsim.dir/micsim.cpp.o.d"
  "micsim"
  "micsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
