# Empty compiler generated dependencies file for micsim.
# This may be replaced when dependencies are built.
