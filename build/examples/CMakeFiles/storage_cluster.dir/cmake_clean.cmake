file(REMOVE_RECURSE
  "CMakeFiles/storage_cluster.dir/storage_cluster.cpp.o"
  "CMakeFiles/storage_cluster.dir/storage_cluster.cpp.o.d"
  "storage_cluster"
  "storage_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
