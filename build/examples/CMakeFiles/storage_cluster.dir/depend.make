# Empty dependencies file for storage_cluster.
# This may be replaced when dependencies are built.
