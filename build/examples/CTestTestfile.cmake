# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_hidden_service]=] "/root/repo/build/examples/hidden_service")
set_tests_properties([=[example_hidden_service]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_adversary_demo]=] "/root/repo/build/examples/adversary_demo")
set_tests_properties([=[example_adversary_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_storage_cluster]=] "/root/repo/build/examples/storage_cluster")
set_tests_properties([=[example_storage_cluster]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_failover]=] "/root/repo/build/examples/failover")
set_tests_properties([=[example_failover]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_micsim]=] "/root/repo/build/examples/micsim" "--bytes" "1m")
set_tests_properties([=[example_micsim]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
