file(REMOVE_RECURSE
  "CMakeFiles/mic_anonymity.dir/attacks.cpp.o"
  "CMakeFiles/mic_anonymity.dir/attacks.cpp.o.d"
  "libmic_anonymity.a"
  "libmic_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
