file(REMOVE_RECURSE
  "libmic_anonymity.a"
)
