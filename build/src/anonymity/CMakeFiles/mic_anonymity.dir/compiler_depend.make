# Empty compiler generated dependencies file for mic_anonymity.
# This may be replaced when dependencies are built.
