# CMake generated Testfile for 
# Source directory: /root/repo/src/anonymity
# Build directory: /root/repo/build/src/anonymity
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
