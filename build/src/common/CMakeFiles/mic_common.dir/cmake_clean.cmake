file(REMOVE_RECURSE
  "CMakeFiles/mic_common.dir/log.cpp.o"
  "CMakeFiles/mic_common.dir/log.cpp.o.d"
  "CMakeFiles/mic_common.dir/rng.cpp.o"
  "CMakeFiles/mic_common.dir/rng.cpp.o.d"
  "libmic_common.a"
  "libmic_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
