file(REMOVE_RECURSE
  "libmic_common.a"
)
