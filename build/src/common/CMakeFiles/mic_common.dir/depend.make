# Empty dependencies file for mic_common.
# This may be replaced when dependencies are built.
