
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_restrictions.cpp" "src/core/CMakeFiles/mic_core.dir/address_restrictions.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/address_restrictions.cpp.o.d"
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/mic_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/collision_audit.cpp" "src/core/CMakeFiles/mic_core.dir/collision_audit.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/collision_audit.cpp.o.d"
  "/root/repo/src/core/fabric.cpp" "src/core/CMakeFiles/mic_core.dir/fabric.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/fabric.cpp.o.d"
  "/root/repo/src/core/maga_registry.cpp" "src/core/CMakeFiles/mic_core.dir/maga_registry.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/maga_registry.cpp.o.d"
  "/root/repo/src/core/mic_client.cpp" "src/core/CMakeFiles/mic_core.dir/mic_client.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/mic_client.cpp.o.d"
  "/root/repo/src/core/mimic_controller.cpp" "src/core/CMakeFiles/mic_core.dir/mimic_controller.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/mimic_controller.cpp.o.d"
  "/root/repo/src/core/socket_api.cpp" "src/core/CMakeFiles/mic_core.dir/socket_api.cpp.o" "gcc" "src/core/CMakeFiles/mic_core.dir/socket_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mic_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mic_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/switchd/CMakeFiles/mic_switchd.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mic_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mic_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
