file(REMOVE_RECURSE
  "CMakeFiles/mic_core.dir/address_restrictions.cpp.o"
  "CMakeFiles/mic_core.dir/address_restrictions.cpp.o.d"
  "CMakeFiles/mic_core.dir/channel.cpp.o"
  "CMakeFiles/mic_core.dir/channel.cpp.o.d"
  "CMakeFiles/mic_core.dir/collision_audit.cpp.o"
  "CMakeFiles/mic_core.dir/collision_audit.cpp.o.d"
  "CMakeFiles/mic_core.dir/fabric.cpp.o"
  "CMakeFiles/mic_core.dir/fabric.cpp.o.d"
  "CMakeFiles/mic_core.dir/maga_registry.cpp.o"
  "CMakeFiles/mic_core.dir/maga_registry.cpp.o.d"
  "CMakeFiles/mic_core.dir/mic_client.cpp.o"
  "CMakeFiles/mic_core.dir/mic_client.cpp.o.d"
  "CMakeFiles/mic_core.dir/mimic_controller.cpp.o"
  "CMakeFiles/mic_core.dir/mimic_controller.cpp.o.d"
  "CMakeFiles/mic_core.dir/socket_api.cpp.o"
  "CMakeFiles/mic_core.dir/socket_api.cpp.o.d"
  "libmic_core.a"
  "libmic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
