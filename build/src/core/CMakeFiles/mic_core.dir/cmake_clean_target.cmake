file(REMOVE_RECURSE
  "libmic_core.a"
)
