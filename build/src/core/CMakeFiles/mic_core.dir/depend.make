# Empty dependencies file for mic_core.
# This may be replaced when dependencies are built.
