file(REMOVE_RECURSE
  "CMakeFiles/mic_crypto.dir/aes128.cpp.o"
  "CMakeFiles/mic_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/mic_crypto.dir/bigint.cpp.o"
  "CMakeFiles/mic_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/mic_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/mic_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/mic_crypto.dir/dh.cpp.o"
  "CMakeFiles/mic_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/mic_crypto.dir/rsa.cpp.o"
  "CMakeFiles/mic_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/mic_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mic_crypto.dir/sha256.cpp.o.d"
  "libmic_crypto.a"
  "libmic_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
