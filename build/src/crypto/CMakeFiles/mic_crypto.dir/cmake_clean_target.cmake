file(REMOVE_RECURSE
  "libmic_crypto.a"
)
