# Empty dependencies file for mic_crypto.
# This may be replaced when dependencies are built.
