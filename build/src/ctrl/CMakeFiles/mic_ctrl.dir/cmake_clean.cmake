file(REMOVE_RECURSE
  "CMakeFiles/mic_ctrl.dir/controller.cpp.o"
  "CMakeFiles/mic_ctrl.dir/controller.cpp.o.d"
  "CMakeFiles/mic_ctrl.dir/l3_routing.cpp.o"
  "CMakeFiles/mic_ctrl.dir/l3_routing.cpp.o.d"
  "libmic_ctrl.a"
  "libmic_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
