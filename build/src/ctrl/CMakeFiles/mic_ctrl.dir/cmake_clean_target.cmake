file(REMOVE_RECURSE
  "libmic_ctrl.a"
)
