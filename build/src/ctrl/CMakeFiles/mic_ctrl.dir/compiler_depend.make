# Empty compiler generated dependencies file for mic_ctrl.
# This may be replaced when dependencies are built.
