file(REMOVE_RECURSE
  "CMakeFiles/mic_net.dir/network.cpp.o"
  "CMakeFiles/mic_net.dir/network.cpp.o.d"
  "CMakeFiles/mic_net.dir/trace.cpp.o"
  "CMakeFiles/mic_net.dir/trace.cpp.o.d"
  "libmic_net.a"
  "libmic_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
