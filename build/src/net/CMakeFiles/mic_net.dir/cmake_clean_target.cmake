file(REMOVE_RECURSE
  "libmic_net.a"
)
