# Empty dependencies file for mic_net.
# This may be replaced when dependencies are built.
