file(REMOVE_RECURSE
  "CMakeFiles/mic_sim.dir/simulator.cpp.o"
  "CMakeFiles/mic_sim.dir/simulator.cpp.o.d"
  "libmic_sim.a"
  "libmic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
