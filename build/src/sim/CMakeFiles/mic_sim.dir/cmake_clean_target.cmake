file(REMOVE_RECURSE
  "libmic_sim.a"
)
