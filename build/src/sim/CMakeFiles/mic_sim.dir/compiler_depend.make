# Empty compiler generated dependencies file for mic_sim.
# This may be replaced when dependencies are built.
