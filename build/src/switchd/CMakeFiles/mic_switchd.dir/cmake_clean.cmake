file(REMOVE_RECURSE
  "CMakeFiles/mic_switchd.dir/flow_table.cpp.o"
  "CMakeFiles/mic_switchd.dir/flow_table.cpp.o.d"
  "CMakeFiles/mic_switchd.dir/sdn_switch.cpp.o"
  "CMakeFiles/mic_switchd.dir/sdn_switch.cpp.o.d"
  "libmic_switchd.a"
  "libmic_switchd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_switchd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
