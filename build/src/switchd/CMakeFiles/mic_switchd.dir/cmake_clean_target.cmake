file(REMOVE_RECURSE
  "libmic_switchd.a"
)
