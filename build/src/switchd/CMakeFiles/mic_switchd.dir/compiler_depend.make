# Empty compiler generated dependencies file for mic_switchd.
# This may be replaced when dependencies are built.
