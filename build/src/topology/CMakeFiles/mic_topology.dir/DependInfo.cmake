
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/bcube.cpp" "src/topology/CMakeFiles/mic_topology.dir/bcube.cpp.o" "gcc" "src/topology/CMakeFiles/mic_topology.dir/bcube.cpp.o.d"
  "/root/repo/src/topology/fattree.cpp" "src/topology/CMakeFiles/mic_topology.dir/fattree.cpp.o" "gcc" "src/topology/CMakeFiles/mic_topology.dir/fattree.cpp.o.d"
  "/root/repo/src/topology/leafspine.cpp" "src/topology/CMakeFiles/mic_topology.dir/leafspine.cpp.o" "gcc" "src/topology/CMakeFiles/mic_topology.dir/leafspine.cpp.o.d"
  "/root/repo/src/topology/paths.cpp" "src/topology/CMakeFiles/mic_topology.dir/paths.cpp.o" "gcc" "src/topology/CMakeFiles/mic_topology.dir/paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
