file(REMOVE_RECURSE
  "CMakeFiles/mic_topology.dir/bcube.cpp.o"
  "CMakeFiles/mic_topology.dir/bcube.cpp.o.d"
  "CMakeFiles/mic_topology.dir/fattree.cpp.o"
  "CMakeFiles/mic_topology.dir/fattree.cpp.o.d"
  "CMakeFiles/mic_topology.dir/leafspine.cpp.o"
  "CMakeFiles/mic_topology.dir/leafspine.cpp.o.d"
  "CMakeFiles/mic_topology.dir/paths.cpp.o"
  "CMakeFiles/mic_topology.dir/paths.cpp.o.d"
  "libmic_topology.a"
  "libmic_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
