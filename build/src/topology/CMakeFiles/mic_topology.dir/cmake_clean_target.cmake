file(REMOVE_RECURSE
  "libmic_topology.a"
)
