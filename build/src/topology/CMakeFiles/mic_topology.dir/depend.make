# Empty dependencies file for mic_topology.
# This may be replaced when dependencies are built.
