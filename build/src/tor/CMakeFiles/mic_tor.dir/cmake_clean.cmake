file(REMOVE_RECURSE
  "CMakeFiles/mic_tor.dir/client.cpp.o"
  "CMakeFiles/mic_tor.dir/client.cpp.o.d"
  "CMakeFiles/mic_tor.dir/relay.cpp.o"
  "CMakeFiles/mic_tor.dir/relay.cpp.o.d"
  "libmic_tor.a"
  "libmic_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
