file(REMOVE_RECURSE
  "libmic_tor.a"
)
