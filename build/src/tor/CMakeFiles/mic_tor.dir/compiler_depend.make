# Empty compiler generated dependencies file for mic_tor.
# This may be replaced when dependencies are built.
