file(REMOVE_RECURSE
  "CMakeFiles/mic_transport.dir/ssl.cpp.o"
  "CMakeFiles/mic_transport.dir/ssl.cpp.o.d"
  "CMakeFiles/mic_transport.dir/tcp.cpp.o"
  "CMakeFiles/mic_transport.dir/tcp.cpp.o.d"
  "libmic_transport.a"
  "libmic_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
