file(REMOVE_RECURSE
  "libmic_transport.a"
)
