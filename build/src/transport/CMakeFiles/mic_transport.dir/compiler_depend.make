# Empty compiler generated dependencies file for mic_transport.
# This may be replaced when dependencies are built.
