
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_anonymity.cpp" "tests/CMakeFiles/mic_tests.dir/test_anonymity.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_anonymity.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/mic_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/mic_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_ctrl.cpp" "tests/CMakeFiles/mic_tests.dir/test_ctrl.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_ctrl.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/mic_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mic_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_maga.cpp" "tests/CMakeFiles/mic_tests.dir/test_maga.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_maga.cpp.o.d"
  "/root/repo/tests/test_mic.cpp" "tests/CMakeFiles/mic_tests.dir/test_mic.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_mic.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/mic_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/mic_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/mic_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_switchd.cpp" "tests/CMakeFiles/mic_tests.dir/test_switchd.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_switchd.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/mic_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_tor.cpp" "tests/CMakeFiles/mic_tests.dir/test_tor.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_tor.cpp.o.d"
  "/root/repo/tests/test_transport.cpp" "tests/CMakeFiles/mic_tests.dir/test_transport.cpp.o" "gcc" "tests/CMakeFiles/mic_tests.dir/test_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/mic_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/anonymity/CMakeFiles/mic_anonymity.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mic_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/switchd/CMakeFiles/mic_switchd.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mic_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mic_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mic_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
