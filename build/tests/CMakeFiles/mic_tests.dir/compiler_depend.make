# Empty compiler generated dependencies file for mic_tests.
# This may be replaced when dependencies are built.
