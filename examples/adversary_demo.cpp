// Adversary demonstration: reproduces the paper's security analysis
// (Sec V) as a live experiment.  An attacker compromises switches at
// different positions along a mimic channel and we print exactly what each
// vantage can and cannot learn -- then turn on the two traffic-analysis
// countermeasures and watch the attacks degrade.
#include <cstdio>

#include "anonymity/attacks.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"

using namespace mic;

namespace {

void report(const char* where, const anonymity::ExposureReport& exposure) {
  std::printf("  %-28s saw initiator: %-3s  saw responder: %-3s  linked: %s\n",
              where, exposure.saw_initiator ? "YES" : "no",
              exposure.saw_responder ? "YES" : "no",
              exposure.linked ? "YES (broken!)" : "no");
}

}  // namespace

int main() {
  core::Fabric fabric;
  auto& alice = fabric.host(0);
  const net::Ipv4 alice_ip = alice.ip();
  const net::Ipv4 bob_ip = fabric.ip(12);

  core::MicServer server(fabric.host(12), 7000, fabric.rng());
  server.set_on_channel([](core::MicServerChannel& channel) {
    channel.set_on_data([](const transport::ChunkView&) {});
  });

  // ----- phase 1: who sees what along the path ------------------------------
  core::MicChannelOptions options;
  options.responder_ip = bob_ip;
  options.responder_port = 7000;
  options.mn_count = 3;
  core::MicChannel channel(alice, fabric.mc(), options, fabric.rng());
  fabric.simulator().run_until();

  const auto* state = fabric.mc().channel(channel.id());
  const auto& plan = state->flows[0];

  // Compromise three switches: before the first MN (the initiator's edge if
  // it is not itself an MN -- the first MN otherwise), a middle MN, and the
  // last MN.
  anonymity::Observer first, middle, last;
  first.compromise_switch(fabric.network(), plan.path[plan.mn_positions[0]]);
  middle.compromise_switch(fabric.network(), plan.path[plan.mn_positions[1]]);
  last.compromise_switch(fabric.network(), plan.path[plan.mn_positions[2]]);

  channel.send(transport::Chunk::virtual_bytes(256 * 1024));
  fabric.simulator().run_until();

  std::printf("adversary compromises one switch at a time (Sec V):\n");
  report("first MN (near initiator):",
         anonymity::endpoint_exposure(first.records(), alice_ip, bob_ip));
  report("middle MN:",
         anonymity::endpoint_exposure(middle.records(), alice_ip, bob_ip));
  report("last MN (near responder):",
         anonymity::endpoint_exposure(last.records(), alice_ip, bob_ip));
  std::printf("  -> no single vantage links Alice and Bob.\n\n");

  // ----- phase 2: the correlation attack and partial multicast ---------------
  std::printf("ingress/egress correlation at the first MN:\n");
  {
    const auto attack =
        anonymity::correlate_at_switch(first, sim::milliseconds(10));
    std::printf("  decoys=0: expected success %.2f (%.1f candidates per "
                "packet)\n",
                attack.expected_success, attack.mean_candidates);
  }
  {
    // Same channel shape, but with the partially-multicast mechanism on.
    core::Fabric fabric2;
    core::MicServer server2(fabric2.host(12), 7000, fabric2.rng());
    server2.set_on_channel([](core::MicServerChannel& ch) {
      ch.set_on_data([](const transport::ChunkView&) {});
    });
    core::MicChannelOptions opt2 = options;
    opt2.multicast_decoys = 2;
    core::MicChannel ch2(fabric2.host(0), fabric2.mc(), opt2, fabric2.rng());
    fabric2.simulator().run_until();
    const auto& plan2 = fabric2.mc().channel(ch2.id())->flows[0];
    anonymity::Observer observer2;
    observer2.compromise_switch(fabric2.network(),
                                plan2.path[plan2.mn_positions[0]]);
    ch2.send(transport::Chunk::virtual_bytes(256 * 1024));
    fabric2.simulator().run_until();
    const auto attack =
        anonymity::correlate_at_switch(observer2, sim::milliseconds(10));
    std::printf("  decoys=2: expected success %.2f (%.1f candidates per "
                "packet)\n",
                attack.expected_success, attack.mean_candidates);
  }

  // ----- phase 3: size-based analysis and multiple m-flows -------------------
  std::printf("\nsize-based traffic analysis (observe one m-flow):\n");
  for (const int flows : {1, 4}) {
    core::Fabric fabric3;
    core::MicServer server3(fabric3.host(12), 7000, fabric3.rng());
    server3.set_on_channel([](core::MicServerChannel& ch) {
      ch.set_on_data([](const transport::ChunkView&) {});
    });
    core::MicChannelOptions opt3 = options;
    opt3.flow_count = flows;
    core::MicChannel ch3(fabric3.host(0), fabric3.mc(), opt3, fabric3.rng());
    fabric3.simulator().run_until();
    const auto& plan3 = fabric3.mc().channel(ch3.id())->flows[0];
    anonymity::Observer observer3;
    observer3.compromise_switch(fabric3.network(),
                                plan3.path[plan3.mn_positions[1]]);
    constexpr std::uint64_t kBytes = 1024 * 1024;
    ch3.send(transport::Chunk::virtual_bytes(kBytes));
    fabric3.simulator().run_until();
    const auto seen = anonymity::observed_payload_bytes(
        observer3.ingress(), plan3.forward[1].src, plan3.forward[1].dst);
    std::printf("  F=%d: adversary estimates %.0f%% of the real channel "
                "size\n",
                flows, 100.0 * static_cast<double>(seen) / kBytes);
  }
  std::printf("\nwith F>1, per-flow observation no longer reveals the "
              "channel's traffic volume.\n");
  return 0;
}
