// Failover: a mid-transfer link cut is detected by the switches' own
// port-status pipeline (loss of signal -> async notification -> MC), and
// the Mimic Controller re-routes the live mimic channel around it without
// the endpoints noticing -- the SDN dividend of the in-network design (an
// overlay system would have to rebuild its circuits end-to-end).  Nothing
// here reports the failure by hand: cutting the PHY is all it takes.
#include <cstdio>

#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"

using namespace mic;

namespace {

void print_path(const char* label, const core::MFlowPlan& plan) {
  std::printf("%s", label);
  for (const topo::NodeId node : plan.path) std::printf(" %u", node);
  std::printf("   (MNs at");
  for (const std::size_t pos : plan.mn_positions) {
    std::printf(" %u", plan.path[pos]);
  }
  std::printf(")\n");
}

}  // namespace

int main() {
  core::Fabric fabric;
  auto& simulator = fabric.simulator();

  core::MicServer server(fabric.host(12), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      received += view.length;
    });
  });

  core::MicChannelOptions options;
  options.responder_ip = fabric.ip(12);
  options.responder_port = 7000;
  core::MicChannel channel(fabric.host(0), fabric.mc(), options,
                           fabric.rng());
  simulator.run_until();

  const auto& plan_before = fabric.mc().channel(channel.id())->flows[0];
  print_path("route before failure:", plan_before);

  // Start a 8 MB transfer, then cut a link in the middle of the path while
  // it is in flight.
  constexpr std::uint64_t kBytes = 8ull * 1024 * 1024;
  channel.send(transport::Chunk::virtual_bytes(kBytes));
  simulator.run_until(simulator.now() + sim::milliseconds(10));
  std::printf("\n10 ms in: %llu / %llu bytes delivered\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(kBytes));

  const std::size_t mid = plan_before.path.size() / 2;
  const topo::LinkId victim = fabric.network().graph().link_between(
      plan_before.path[mid], plan_before.path[mid + 1]);
  const auto failure_at = simulator.now();
  fabric.network().set_link_up(victim, false);
  std::printf("cutting link %u (between switches %u and %u); no failure "
              "report is sent -- detection is on its own\n",
              victim, plan_before.path[mid], plan_before.path[mid + 1]);

  // Give the detection pipeline (PHY debounce + async port-status message)
  // a moment, then show what the MC worked out by itself.
  simulator.run_until(simulator.now() + sim::milliseconds(2));
  std::printf("MC's failure view: link %u %s, %llu channel(s) repaired\n",
              victim,
              fabric.mc().failed_links().contains(victim) ? "DOWN" : "up",
              static_cast<unsigned long long>(
                  fabric.mc().channels_repaired()));

  simulator.run_until();
  const auto& plan_after = fabric.mc().channel(channel.id())->flows[0];
  print_path("route after repair:  ", plan_after);

  std::printf("\ntransfer completed: %llu bytes "
              "(%.1f ms total, repair downtime absorbed by TCP)\n",
              static_cast<unsigned long long>(received),
              sim::to_millis(simulator.now()));
  std::printf("entry address unchanged: %s:%u -- the initiator's socket "
              "never noticed (%llu transparent repair(s))\n",
              plan_after.forward[0].dst.str().c_str(),
              plan_after.forward[0].dport,
              static_cast<unsigned long long>(channel.repair_count()));
  std::printf("time from failure to completion: %.1f ms\n",
              sim::to_millis(simulator.now() - failure_at));

  // Repairing the cable clears the failure the same way: detection only.
  fabric.network().set_link_up(victim, true);
  simulator.run_until();
  std::printf("link %u repaired; MC failure set %s\n", victim,
              fabric.mc().failed_links().empty() ? "empty again" : "STALE");

  const auto report = mic::audit::run_all(fabric);
  std::printf("invariant audit after repair: %s (%s)\n",
              report.ok ? "CLEAN" : "VIOLATIONS", report.summary().c_str());

  // Finally, kill the controller itself.  The data plane keeps running on
  // the rules already in the switches; recover() replays the write-ahead
  // channel journal and resyncs every switch (DESIGN.md 3e).
  std::printf("\ncrashing the Mimic Controller (channels keep forwarding "
              "on installed rules)\n");
  fabric.mc().crash();
  channel.send(transport::Chunk::virtual_bytes(64 * 1024));
  simulator.run_until();
  const std::uint64_t after_crash = received;
  std::printf("64 KB sent across the dead-MC window: %s\n",
              after_crash == kBytes + 64 * 1024 ? "delivered" : "LOST");

  const auto recovery = fabric.mc().recover(fabric.mc().journal());
  simulator.run_until();
  std::printf("recover(): %zu channel(s) recovered, %zu kept in place, %zu "
              "reinstalled, %zu orphan rule(s) removed, %zu switches "
              "resynced\n",
              recovery.channels_recovered, recovery.channels_kept,
              recovery.channels_reinstalled, recovery.orphan_rules_removed,
              recovery.switches_resynced);
  const auto post_recovery = mic::audit::run_all(fabric);
  std::printf("invariant audit after recovery (incl. RC-1): %s (%s)\n",
              post_recovery.ok ? "CLEAN" : "VIOLATIONS",
              post_recovery.summary().c_str());

  return report.ok && post_recovery.ok &&
                 after_crash == kBytes + 64 * 1024 &&
                 recovery.channels_kept == 1 &&
                 fabric.mc().failed_links().empty() &&
                 channel.repair_count() == 1
             ? 0
             : 1;
}
