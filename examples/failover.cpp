// Failover: the Mimic Controller re-routes live mimic channels around a
// link failure without the endpoints noticing -- the SDN dividend of the
// in-network design (an overlay system would have to rebuild its circuits
// end-to-end).
#include <cstdio>

#include "core/collision_audit.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"

using namespace mic;

namespace {

void print_path(const char* label, const core::MFlowPlan& plan) {
  std::printf("%s", label);
  for (const topo::NodeId node : plan.path) std::printf(" %u", node);
  std::printf("   (MNs at");
  for (const std::size_t pos : plan.mn_positions) {
    std::printf(" %u", plan.path[pos]);
  }
  std::printf(")\n");
}

}  // namespace

int main() {
  core::Fabric fabric;
  auto& simulator = fabric.simulator();

  core::MicServer server(fabric.host(12), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      received += view.length;
    });
  });

  core::MicChannelOptions options;
  options.responder_ip = fabric.ip(12);
  options.responder_port = 7000;
  core::MicChannel channel(fabric.host(0), fabric.mc(), options,
                           fabric.rng());
  simulator.run_until();

  const auto& plan_before = fabric.mc().channel(channel.id())->flows[0];
  print_path("route before failure:", plan_before);

  // Start a 8 MB transfer, then cut a link in the middle of the path while
  // it is in flight.
  constexpr std::uint64_t kBytes = 8ull * 1024 * 1024;
  channel.send(transport::Chunk::virtual_bytes(kBytes));
  simulator.run_until(simulator.now() + sim::milliseconds(10));
  std::printf("\n10 ms in: %llu / %llu bytes delivered\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(kBytes));

  const std::size_t mid = plan_before.path.size() / 2;
  const topo::LinkId victim = fabric.network().graph().link_between(
      plan_before.path[mid], plan_before.path[mid + 1]);
  fabric.network().set_link_up(victim, false);
  std::printf("cutting link %u (between switches %u and %u)...\n", victim,
              plan_before.path[mid], plan_before.path[mid + 1]);

  const auto failure_at = simulator.now();
  const auto outcome = fabric.mc().fail_link(victim);
  std::printf("MC repair: %zu channel(s) re-routed, %zu lost\n",
              outcome.repaired, outcome.lost);

  simulator.run_until();
  const auto& plan_after = fabric.mc().channel(channel.id())->flows[0];
  print_path("route after repair:  ", plan_after);

  std::printf("\ntransfer completed: %llu bytes "
              "(%.1f ms total, repair downtime absorbed by TCP)\n",
              static_cast<unsigned long long>(received),
              sim::to_millis(simulator.now()));
  std::printf("entry address unchanged: %s:%u -- the initiator's socket "
              "never noticed\n",
              plan_after.forward[0].dst.str().c_str(),
              plan_after.forward[0].dport);
  std::printf("time from failure to completion: %.1f ms\n",
              sim::to_millis(simulator.now() - failure_at));

  const auto audit = core::audit_collisions(fabric.mc());
  std::printf("collision audit after repair: %s\n",
              audit.ok ? "CLEAN" : "VIOLATIONS");
  return audit.ok && received == kBytes ? 0 : 1;
}
