// Hidden service: a metadata server registers under a nickname with the
// Mimic Controller; clients connect by nickname and never learn where the
// service actually runs (paper Sec IV-D, "Receiver Anonymity").
//
// The scenario is the paper's own motivation: "If the attacker aims to
// crash the target application ... he can locate some key nodes of the
// system (like the Metadata Servers in distributed file systems) easily".
// With MIC the metadata server's location stays hidden even from its own
// clients.
#include <cstdio>
#include <string>

#include "core/fabric.hpp"
#include "core/mic_client.hpp"

using namespace mic;

int main() {
  core::Fabric fabric;

  // The metadata server lives on host 9 -- but nobody except the MC will
  // ever see that address.
  constexpr std::size_t kSecretHost = 9;
  auto& metadata_host = fabric.host(kSecretHost);

  core::MicServer server(metadata_host, 7000, fabric.rng());
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      const std::string request(view.bytes.begin(), view.bytes.end());
      std::printf("[mds]    lookup request: \"%s\"\n", request.c_str());
      const std::string reply = "inode 4711 -> chunkservers {3, 7, 11}";
      channel.send(transport::Chunk::real(
          std::vector<std::uint8_t>(reply.begin(), reply.end())));
    });
  });

  // Register the nickname.  Clients learn the nickname out of band; the
  // hidden-service map lives only inside the MC.
  fabric.mc().register_hidden_service("metadata-primary", metadata_host.ip(),
                                      7000);
  std::printf("hidden service \"metadata-primary\" registered (actual host "
              "kept secret by the MC)\n\n");

  // Three different clients resolve the service purely by nickname.
  std::vector<std::unique_ptr<core::MicChannel>> channels;
  for (const std::size_t client_index : {0ul, 5ul, 14ul}) {
    auto& client = fabric.host(client_index);
    core::MicChannelOptions options;
    options.service_name = "metadata-primary";
    channels.push_back(std::make_unique<core::MicChannel>(
        client, fabric.mc(), options, fabric.rng()));
    auto* channel = channels.back().get();
    channel->set_on_data([client_index](const transport::ChunkView& view) {
      std::printf("[client %zu] reply: \"%.*s\"\n", client_index,
                  static_cast<int>(view.bytes.size()),
                  reinterpret_cast<const char*>(view.bytes.data()));
    });
    const std::string request = "stat /data/warehouse/part-0042";
    channel->send(transport::Chunk::real(
        std::vector<std::uint8_t>(request.begin(), request.end())));
  }
  fabric.simulator().run_until();

  // What did each client actually dial?
  std::printf("\nwhat the clients saw (never %s):\n",
              metadata_host.ip().str().c_str());
  for (const auto& channel : channels) {
    const auto* state = fabric.mc().channel(channel->id());
    std::printf("  channel %llu dialed entry %s:%u\n",
                static_cast<unsigned long long>(channel->id()),
                state->flows[0].forward[0].dst.str().c_str(),
                state->flows[0].forward[0].dport);
  }
  std::printf("\neven a compromised client cannot point an attacker at the "
              "metadata server.\n");
  return 0;
}
