// micsim: command-line scenario driver for the MIC simulator.
//
//   micsim [--system tcp|ssl|mic|mic-ssl|tor] [--flows N] [--bytes N[kmg]]
//          [--mns N] [--stripe F] [--decoys K] [--k K] [--seed S]
//          [--fail-link] [--loss P] [--ping N] [--verbose]
//
// Runs one measurement scenario on a k-ary fat-tree and prints setup time,
// goodput, latency and CPU cost -- the same metrics as the paper's
// evaluation, but for any parameter combination.  `--fail-link` cuts a
// link on the (first) channel's path mid-transfer and lets the MC repair
// it; `--loss` injects random loss on every link.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "net/trace.hpp"
#include "tor/client.hpp"
#include "tor/relay.hpp"
#include "transport/apps.hpp"
#include "transport/ssl.hpp"

using namespace mic;

namespace {

struct Args {
  std::string system = "mic";
  int flows = 1;           // concurrent sessions
  std::uint64_t bytes = 8ull << 20;
  int mns = 3;             // MIC route length / Tor relays
  int stripe = 1;          // MIC m-flows per channel
  int decoys = 0;
  int k = 4;
  std::uint64_t seed = 42;
  bool fail_link = false;
  double loss = 0.0;
  int ping = 0;
  bool verbose = false;
  std::string trace_path;
};

std::uint64_t parse_bytes(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  switch (*end) {
    case 'k': case 'K': return static_cast<std::uint64_t>(v * 1024);
    case 'm': case 'M': return static_cast<std::uint64_t>(v * 1024 * 1024);
    case 'g': case 'G': return static_cast<std::uint64_t>(v * 1024 * 1024 * 1024);
    default: return static_cast<std::uint64_t>(v);
  }
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--system") {
      const char* v = next();
      if (!v) return false;
      args.system = v;
    } else if (flag == "--flows") {
      const char* v = next();
      if (!v) return false;
      args.flows = std::atoi(v);
    } else if (flag == "--bytes") {
      const char* v = next();
      if (!v) return false;
      args.bytes = parse_bytes(v);
    } else if (flag == "--mns") {
      const char* v = next();
      if (!v) return false;
      args.mns = std::atoi(v);
    } else if (flag == "--stripe") {
      const char* v = next();
      if (!v) return false;
      args.stripe = std::atoi(v);
    } else if (flag == "--decoys") {
      const char* v = next();
      if (!v) return false;
      args.decoys = std::atoi(v);
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return false;
      args.k = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--loss") {
      const char* v = next();
      if (!v) return false;
      args.loss = std::atof(v);
    } else if (flag == "--ping") {
      const char* v = next();
      if (!v) return false;
      args.ping = std::atoi(v);
    } else if (flag == "--trace") {
      const char* v = next();
      if (!v) return false;
      args.trace_path = v;
    } else if (flag == "--fail-link") {
      args.fail_link = true;
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: micsim [--system tcp|ssl|mic|mic-ssl|tor] [--flows N]\n"
      "              [--bytes N[kmg]] [--mns N] [--stripe F] [--decoys K]\n"
      "              [--k K] [--seed S] [--fail-link] [--loss P] [--ping N]\n"
      "              [--trace FILE] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  const bool is_mic = args.system == "mic" || args.system == "mic-ssl";
  const bool is_tor = args.system == "tor";
  const bool use_ssl = args.system == "ssl" || args.system == "mic-ssl";
  if (!is_mic && !is_tor && args.system != "tcp" && args.system != "ssl") {
    usage();
    return 2;
  }

  core::FabricOptions options;
  options.k = args.k;
  options.seed = args.seed;
  options.link.random_drop_probability = args.loss;
  core::Fabric fabric(options);
  auto& simulator = fabric.simulator();
  if (args.verbose) mic::set_log_level(mic::LogLevel::kInfo);

  std::unique_ptr<net::TraceWriter> trace;
  if (!args.trace_path.empty()) {
    trace = std::make_unique<net::TraceWriter>(fabric.network(),
                                               args.trace_path);
  }

  const std::size_t n_hosts = fabric.host_count();
  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::vector<tor::RelayAddr> relay_path;
  if (is_tor) {
    // Relays live on the upper first-half hosts, clients on the lower ones
    // and servers in the second half, so roles never share a machine.
    for (int i = 0; i < args.mns; ++i) {
      const std::size_t host = n_hosts / 4 + static_cast<std::size_t>(i);
      relays.push_back(std::make_unique<tor::TorRelay>(fabric.host(host),
                                                       9001, fabric.rng()));
      relay_path.push_back({fabric.ip(host), 9001});
    }
  }

  std::vector<std::unique_ptr<core::MicServer>> mic_servers;
  std::vector<std::unique_ptr<core::MicChannel>> mic_channels;
  std::vector<std::unique_ptr<tor::TorClient>> tor_clients;
  std::vector<std::unique_ptr<transport::SslSession>> ssl_sessions;
  std::vector<std::unique_ptr<transport::BulkSink>> sinks;
  std::vector<std::unique_ptr<transport::BulkSender>> senders;
  std::vector<std::unique_ptr<transport::PingPongServer>> echo_servers;
  std::vector<std::unique_ptr<transport::PingPongClient>> pingers;

  const std::size_t half = n_hosts / 2;
  // With Tor, relays occupy the upper quarter of the first half; keep
  // clients below them.
  const std::size_t client_pool = is_tor ? n_hosts / 4 : half;
  for (int i = 0; i < args.flows; ++i) {
    const std::size_t ci = static_cast<std::size_t>(i) % client_pool;
    const std::size_t si = half + (static_cast<std::size_t>(i) % half);
    auto& client = fabric.host(ci);
    auto& server = fabric.host(si);
    const net::L4Port port = static_cast<net::L4Port>(5000 + i);

    // Captures main-scope objects only: the callback may fire long after
    // this loop iteration ends.
    auto attach_apps = [&sinks, &senders, &echo_servers, &pingers,
                        &simulator, ping = args.ping, bytes = args.bytes](
                           transport::ByteStream& server_stream,
                           transport::ByteStream& client_stream) {
      if (ping > 0) {
        echo_servers.push_back(
            std::make_unique<transport::PingPongServer>(server_stream));
        pingers.push_back(std::make_unique<transport::PingPongClient>(
            client_stream, simulator, ping));
      } else {
        sinks.push_back(std::make_unique<transport::BulkSink>(
            server_stream, simulator, bytes));
        senders.push_back(std::make_unique<transport::BulkSender>(
            client_stream, bytes));
      }
    };

    if (is_mic) {
      mic_servers.push_back(std::make_unique<core::MicServer>(
          server, port, fabric.rng(), use_ssl));
      core::MicChannelOptions mic_options;
      mic_options.responder_ip = fabric.ip(si);
      mic_options.responder_port = port;
      mic_options.mn_count = args.mns;
      mic_options.flow_count = args.stripe;
      mic_options.multicast_decoys = args.decoys;
      mic_options.use_ssl = use_ssl;
      mic_channels.push_back(std::make_unique<core::MicChannel>(
          client, fabric.mc(), mic_options, fabric.rng()));
      auto* channel = mic_channels.back().get();
      mic_servers.back()->set_on_channel(
          [attach_apps, channel](core::MicServerChannel& sc) {
            attach_apps(sc, *channel);
          });
    } else if (is_tor) {
      tor_clients.push_back(std::make_unique<tor::TorClient>(
          client, relay_path, fabric.ip(si), port, fabric.rng()));
      tor::TorClient* tor_client = tor_clients.back().get();
      server.listen(port,
                    [attach_apps, tor_client](transport::TcpConnection& conn) {
                      attach_apps(conn, *tor_client);
                    });
    } else {
      server.listen(port, [&, use_ssl, srv = &server](
                              transport::TcpConnection& conn) {
        transport::ByteStream* server_stream = &conn;
        if (use_ssl) {
          ssl_sessions.push_back(std::make_unique<transport::SslSession>(
              conn, transport::SslSession::Role::kServer, *srv, fabric.rng()));
          server_stream = ssl_sessions.back().get();
        }
        // Client stream created below; bulk/ping attach on it directly.
        if (args.ping > 0) {
          echo_servers.push_back(
              std::make_unique<transport::PingPongServer>(*server_stream));
        } else {
          sinks.push_back(std::make_unique<transport::BulkSink>(
              *server_stream, simulator, args.bytes));
        }
      });
      auto& conn = client.connect(fabric.ip(si), port);
      transport::ByteStream* client_stream = &conn;
      if (use_ssl) {
        ssl_sessions.push_back(std::make_unique<transport::SslSession>(
            conn, transport::SslSession::Role::kClient, client, fabric.rng()));
        client_stream = ssl_sessions.back().get();
      }
      if (args.ping > 0) {
        pingers.push_back(std::make_unique<transport::PingPongClient>(
            *client_stream, simulator, args.ping));
      } else {
        senders.push_back(std::make_unique<transport::BulkSender>(
            *client_stream, args.bytes));
      }
    }
  }

  // Optional mid-transfer failure on the first MIC channel's path.
  if (args.fail_link) {
    if (!is_mic) {
      std::fprintf(stderr, "--fail-link requires --system mic|mic-ssl\n");
      return 2;
    }
    simulator.run_until(simulator.now() + sim::milliseconds(10));
    const auto* state = fabric.mc().channel(mic_channels.front()->id());
    if (state != nullptr) {
      const auto& path = state->flows[0].path;
      const topo::LinkId victim = fabric.network().graph().link_between(
          path[path.size() / 2], path[path.size() / 2 + 1]);
      fabric.network().set_link_up(victim, false);
      const auto outcome = fabric.mc().fail_link(victim);
      std::printf("injected failure on link %u: repaired=%zu lost=%zu\n",
                  victim, outcome.repaired, outcome.lost);
    }
  }

  simulator.run_until();

  // --- report -------------------------------------------------------------------
  std::printf("system=%s k=%d flows=%d seed=%llu", args.system.c_str(),
              args.k, args.flows,
              static_cast<unsigned long long>(args.seed));
  if (is_mic) {
    std::printf(" mns=%d stripe=%d decoys=%d", args.mns, args.stripe,
                args.decoys);
  }
  if (is_tor) std::printf(" relays=%d", args.mns);
  if (args.loss > 0) std::printf(" loss=%.3f", args.loss);
  std::printf("\n");

  if (args.ping > 0) {
    double sum = 0;
    for (const auto& ping : pingers) sum += ping->mean_rtt_us();
    std::printf("mean RTT: %.1f us over %d rounds x %d flows\n",
                sum / static_cast<double>(pingers.size()), args.ping,
                args.flows);
  } else {
    int done = 0;
    double mbps = 0;
    for (const auto& sink : sinks) {
      if (sink->finished()) {
        ++done;
        mbps += sink->goodput_bps() / 1e6;
      }
    }
    std::printf("%d/%d transfers finished; mean goodput %.1f Mb/s\n", done,
                args.flows, done > 0 ? mbps / done : 0.0);
  }
  for (const auto& channel : mic_channels) {
    if (channel->failed()) {
      std::printf("channel error: %s\n", channel->error().c_str());
    }
  }
  if (trace != nullptr) {
    std::printf("trace: %llu packets -> %s\n",
                static_cast<unsigned long long>(trace->entries_written()),
                args.trace_path.c_str());
  }
  std::printf("simulated time: %.1f ms, drops: %llu\n",
              sim::to_millis(simulator.now()),
              static_cast<unsigned long long>(
                  fabric.network().total_drops()));
  if (is_mic) {
    const auto report = mic::audit::run_all(fabric);
    std::printf("invariant audit: %s (%s)\n",
                report.ok ? "CLEAN" : "VIOLATIONS",
                report.summary().c_str());
    if (!report.ok) return 1;
  }
  return 0;
}
