// Quickstart: open an anonymous mimic channel between two hosts of a
// simulated fat-tree data center and exchange messages.
//
//   build/examples/quickstart
//
// Walks through the whole MIC lifecycle: fabric bring-up, channel
// establishment via the Mimic Controller, anonymous request/response, and
// teardown -- and prints what each side (and the wire) actually sees.
#include <cstdio>

#include "core/fabric.hpp"
#include "core/mic_client.hpp"

using namespace mic;

int main() {
  // 1. Bring up the paper's testbed: a k=4 fat-tree (16 hosts, 20 SDN
  //    switches), a Mimic Controller, and default CF-tagged routing.
  core::Fabric fabric;
  std::printf("fabric: %zu hosts, %zu switches\n", fabric.host_count(),
              fabric.network().graph().switches().size());

  // 2. Alice (host 0) wants to talk to Bob (host 12, another pod) without
  //    any switch -- or Bob himself -- learning that *she* is the peer.
  auto& alice = fabric.host(0);
  auto& bob = fabric.host(12);
  std::printf("alice = %s, bob = %s\n", alice.ip().str().c_str(),
              bob.ip().str().c_str());

  // 3. Bob runs a MIC server: he accepts mimic channels on port 7000.
  core::MicServer server(bob, 7000, fabric.rng());
  server.set_on_channel([&](core::MicServerChannel& channel) {
    std::printf("[bob]   new mimic channel (wire id %u, %zu m-flows known)\n",
                channel.wire_id(), channel.known_flows());
    channel.set_on_data([&](const transport::ChunkView& view) {
      std::printf("[bob]   received %zu bytes: \"%.*s\"\n", view.bytes.size(),
                  static_cast<int>(view.bytes.size()),
                  reinterpret_cast<const char*>(view.bytes.data()));
      std::vector<std::uint8_t> reply{'p', 'o', 'n', 'g'};
      channel.send(transport::Chunk::real(std::move(reply)));
    });
  });

  // 4. Alice opens the channel.  The MC picks the path, selects 3 Mimic
  //    Nodes, generates collision-free m-addresses with MAGA, installs the
  //    rewriting rules, and hands Alice an *entry address* that stands in
  //    for Bob.
  core::MicChannelOptions options;
  options.responder_ip = bob.ip();
  options.responder_port = 7000;
  options.mn_count = 3;
  core::MicChannel channel(alice, fabric.mc(), options, fabric.rng());

  channel.set_on_data([&](const transport::ChunkView& view) {
    std::printf("[alice] received %zu bytes: \"%.*s\"\n", view.bytes.size(),
                static_cast<int>(view.bytes.size()),
                reinterpret_cast<const char*>(view.bytes.data()));
  });

  std::vector<std::uint8_t> ping{'p', 'i', 'n', 'g'};
  channel.send(transport::Chunk::real(std::move(ping)));
  fabric.simulator().run_until();

  // 5. Inspect the plan the MC produced.
  const auto* state = fabric.mc().channel(channel.id());
  const auto& plan = state->flows[0];
  std::printf("\nchannel %llu established in %.2f ms\n",
              static_cast<unsigned long long>(channel.id()),
              sim::to_millis(channel.setup_time()));
  std::printf("entry address alice dials: %s:%u  (not Bob!)\n",
              plan.forward[0].dst.str().c_str(), plan.forward[0].dport);
  std::printf("address bob sees as peer:  %s:%u  (not Alice!)\n",
              plan.forward.back().src.str().c_str(),
              plan.forward.back().sport);
  std::printf("per-hop forward addresses:\n");
  for (std::size_t j = 0; j < plan.forward.size(); ++j) {
    const auto& hop = plan.forward[j];
    std::printf("  segment %zu: %s:%u -> %s:%u  mpls=0x%08x\n", j,
                hop.src.str().c_str(), hop.sport, hop.dst.str().c_str(),
                hop.dport, hop.mpls);
  }

  // 6. Tear down: rules are removed, the m-flow ID and addresses recycled.
  channel.close();
  fabric.simulator().run_until();
  std::printf("\nchannel closed; MC now tracks %zu channels\n",
              fabric.mc().active_channel_count());
  return 0;
}
