// A realistic workload: a small distributed-storage cluster whose control
// traffic runs over MIC while bulk data uses common flows.
//
// The paper's introduction motivates exactly this split: traffic-analysis
// of a storage system's control plane reveals the metadata servers (the
// DoS targets); MIC hides who talks to them, while the heavy chunk traffic
// stays on ordinary (cheap) routing.  This example runs both kinds of
// traffic concurrently, verifies the cluster works, and shows the rule
// audit stays clean under the mixed load.
#include <cstdio>
#include <string>

#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "transport/apps.hpp"

using namespace mic;

int main() {
  core::Fabric fabric;

  // Cluster layout: metadata server on host 10 (hidden service), three
  // chunkservers on hosts 11, 12 and 13, four clients on hosts 0-3.
  constexpr std::size_t kMds = 10;
  const std::size_t chunkservers[] = {11, 12, 13};

  // --- metadata server: a MIC hidden service -----------------------------------
  core::MicServer mds_server(fabric.host(kMds), 7000, fabric.rng());
  int lookups = 0;
  mds_server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      ++lookups;
      const std::string req(view.bytes.begin(), view.bytes.end());
      // Answer with a chunkserver assignment (round robin).
      const std::string reply =
          "chunkserver=" + std::to_string(11 + lookups % 3);
      channel.send(transport::Chunk::real(
          std::vector<std::uint8_t>(reply.begin(), reply.end())));
    });
  });
  fabric.mc().register_hidden_service("mds", fabric.host(kMds).ip(), 7000);

  // --- chunkservers: plain TCP bulk sinks ---------------------------------------
  constexpr std::uint64_t kChunkBytes = 4 * 1024 * 1024;
  std::vector<std::unique_ptr<transport::BulkSink>> sinks;
  for (const std::size_t cs : chunkservers) {
    fabric.host(cs).listen(9100, [&](transport::TcpConnection& conn) {
      sinks.push_back(std::make_unique<transport::BulkSink>(
          conn, fabric.simulator(), kChunkBytes));
    });
  }

  // --- clients: anonymous metadata lookup, then a bulk write --------------------
  struct Client {
    std::unique_ptr<core::MicChannel> channel;
    std::string assignment;
    bool wrote = false;
  };
  std::vector<Client> clients(4);

  for (std::size_t c = 0; c < clients.size(); ++c) {
    auto& host = fabric.host(c);
    core::MicChannelOptions options;
    options.service_name = "mds";
    options.flow_count = 2;  // stripe the control traffic over two m-flows
    clients[c].channel = std::make_unique<core::MicChannel>(
        host, fabric.mc(), options, fabric.rng());
    Client* client = &clients[c];
    auto* channel = client->channel.get();
    channel->set_on_data([&fabric, &host, client,
                          c](const transport::ChunkView& view) {
      client->assignment.append(view.bytes.begin(), view.bytes.end());
      if (!client->wrote && client->assignment.size() >= 14) {
        client->wrote = true;
        // Parse "chunkserver=NN" and push a chunk over a *common* flow.
        const int cs = std::stoi(client->assignment.substr(12));
        std::printf("[client %zu] MDS assigned chunkserver %d; writing %llu "
                    "MB over a common flow\n",
                    c, cs,
                    static_cast<unsigned long long>(kChunkBytes >> 20));
        auto& conn = host.connect(
            fabric.ip(static_cast<std::size_t>(cs)), 9100);
        conn.set_on_ready([&conn] {
          conn.send(transport::Chunk::virtual_bytes(kChunkBytes));
        });
      }
    });
    const std::string lookup = "create /tbl/part-" + std::to_string(c);
    channel->send(transport::Chunk::real(
        std::vector<std::uint8_t>(lookup.begin(), lookup.end())));
  }

  fabric.simulator().run_until();

  // --- results -------------------------------------------------------------------
  std::printf("\nmetadata lookups served anonymously: %d\n", lookups);
  std::uint64_t stored = 0;
  for (const auto& sink : sinks) {
    if (sink->finished()) stored += sink->received();
  }
  std::printf("chunk bytes stored over common flows:  %llu (%.0f MB)\n",
              static_cast<unsigned long long>(stored),
              static_cast<double>(stored) / (1024.0 * 1024.0));

  const auto report = mic::audit::run_all(fabric);
  std::printf("invariant audit over the mixed rule set: %s "
              "(%zu rules, %llu m-flow rules)\n",
              report.ok ? "CLEAN" : "VIOLATIONS",
              report.check("CA-1").items_checked,
              static_cast<unsigned long long>(
                  report.check("FD-1").metric("mflow_rules")));

  std::printf("\nthe MDS location never appeared on any client's wire; "
              "bulk data paid zero anonymity overhead.\n");
  return report.ok && lookups == 4 ? 0 : 1;
}
