#!/usr/bin/env bash
# Tier-1 verification across the sanitizer matrix.
#
#   scripts/check.sh          # plain, then ASan/UBSan, then TSan
#   scripts/check.sh --fast   # plain only
#
# Tiers build into separate trees so they cache independently:
#   build/       plain            (the tier-1 command from ROADMAP.md)
#   build-asan/  MIC_SANITIZE=address   -> -fsanitize=address,undefined
#   build-tsan/  MIC_SANITIZE=thread    -> -fsanitize=thread
#
# The TSan tier exports MIC_PATH_WARMUP_THREADS=4 so every controller in
# the suite constructs its PathEngine through the multi-threaded warm-up
# path (ControllerConfig::effective_warmup_threads honours the override),
# putting the rows_mu_-guarded cache under real contention instead of only
# in the handful of tests that opt in.  It also exports MIC_SIM_SHARDS=4 so
# every default-constructed Fabric runs the pod-sharded engine (serial-exact
# regime), and the sharded-window tests exercise the worker pool under the
# race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1; shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "== plain =="
run_suite build

echo "== perf-regression guards =="
# The timing wheel must beat the frozen heap engine, and the pod-sharded
# engine must not regress against the single engine.  Thresholds leave
# headroom for scheduler noise on loaded single-core CI boxes (the real
# parallel speedup needs cores; BENCH_parallel.json records the honest
# sweep) -- a true regression (accidental serialization, coordination on
# the hot path) lands far below them.
./build/bench/micro_sim --min_speedup 1.0
./build/bench/macro_dataplane --k 4 --flows 4 --mb 2 --reps 3 --min_speedup 0.7

echo "== admission flood guard =="
# Honest establishment p99 under a 10x flood + slowloris trickle must stay
# within a fixed multiple of the unloaded p99 (latencies are simulated
# time, so this is exact, not a wall-clock threshold).
./build/bench/control_flood --smoke

echo "== recovery + failover smoke (audit-gated) =="
# The crash/recover sweep plus the warm-standby failover leg; each point
# re-checks audit::run_all, so a reconciliation bug fails the run even if
# the latency numbers look fine.
(cd build && ./bench/controller_recovery --smoke)

echo "== soak trace-hash replay (single + 4 shards) =="
# Every seeded chaos / MC-crash / failover soak fingerprint must replay
# bit-identically against the recorded golden file, on both engines.
scripts/record_trace_hashes.sh verify build

if [[ "${1:-}" != "--fast" ]]; then
  echo "== sanitized (address,undefined) =="
  run_suite build-asan -DMIC_SANITIZE=address

  echo "== sanitized (thread, warm-up threads >= 4, 4 sim shards) =="
  MIC_PATH_WARMUP_THREADS=4 MIC_SIM_SHARDS=4 run_suite build-tsan \
    -DMIC_SANITIZE=thread

  echo "== flood soak under TSan (sharded attack replay) =="
  # The admission flood + slowloris soak on the sharded engine under the
  # race detector: the attack schedule draws all randomness at arm() time,
  # so the shard pool must replay it bit-identically.
  MIC_PATH_WARMUP_THREADS=4 MIC_SIM_SHARDS=4 ./build-tsan/tests/mic_tests \
    --gtest_filter='FloodSoak.*'

  echo "== scheduler differential, deep (SIM-2 oracle x20k ops/seed) =="
  # The default suite already fuzzes >10k ops; the instrumented tier is
  # the cheapest place to go deeper, so rerun the wheel-vs-reference
  # oracle with the per-seed op count raised an order of magnitude.
  MIC_SIM_DIFF_CASES=20000 ./build-tsan/tests/mic_tests \
    --gtest_filter='SimulatorDiff.*'
fi

echo "OK"
