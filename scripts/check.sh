#!/usr/bin/env bash
# Tier-1 verification, plain and sanitized.
#
#   scripts/check.sh          # plain build + ctest, then ASan/UBSan build + ctest
#   scripts/check.sh --fast   # plain only
#
# The sanitized pass builds into build-asan/ with MIC_SANITIZE=ON, which
# wires -fsanitize=address,undefined into every target (see the top-level
# CMakeLists.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1; shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "== plain =="
run_suite build

if [[ "${1:-}" != "--fast" ]]; then
  echo "== sanitized (address,undefined) =="
  run_suite build-asan -DMIC_SANITIZE=ON
fi

echo "OK"
