#!/usr/bin/env bash
# Record or verify the bit-reproducibility fingerprints of every seeded
# soak in one run.
#
# The chaos, MC-crash and failover soaks fingerprint every packet on every
# link into an event-trace hash (see net::TraceHash); identical seeds must
# produce identical hashes on any engine configuration.  This script
# replaces the manual two-command recipe that used to live in
# EXPERIMENTS.md:
#
#   scripts/record_trace_hashes.sh record [build-dir]
#       Run all soaks single-engine and write the sorted fingerprints to
#       tests/golden_trace_hashes.txt (checked into the repo).
#
#   scripts/record_trace_hashes.sh verify [build-dir]
#       Re-run the soaks twice -- single-engine and pod-sharded
#       (MIC_SIM_SHARDS=4) -- and diff both against the recorded file.
#       Exits non-zero on any divergence.  scripts/check.sh runs this
#       after the plain tier when the golden file exists.
#
# The golden file is a *machine-local* baseline unless the whole fleet
# builds with identical flags: record on the machine that verifies.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-verify}"
build_dir="${2:-build}"
tests_bin="$build_dir/tests/mic_tests"
golden="tests/golden_trace_hashes.txt"
filter='ChaosSoak.*:McCrashSoak.*:FailoverSoak.*'

if [[ ! -x "$tests_bin" ]]; then
  echo "error: $tests_bin not built (cmake --build $build_dir)" >&2
  exit 2
fi

collect() {  # collect [VAR=val ...]
  # The soaks print one "TRACE_HASH <label> seed=... hash=... n=..." line
  # per schedule on stderr; everything else is noise here.  A failing soak
  # fails the pipeline (pipefail), which fails the script.
  env "$@" MIC_PRINT_TRACE_HASH=1 "$tests_bin" --gtest_filter="$filter" \
    2>&1 | grep '^TRACE_HASH' | sort
}

case "$mode" in
  record)
    collect > "$golden"
    echo "recorded $(wc -l < "$golden") fingerprints to $golden"
    ;;
  verify)
    if [[ ! -f "$golden" ]]; then
      echo "error: $golden missing -- run '$0 record $build_dir' first" >&2
      exit 2
    fi
    tmp_single="$(mktemp)"
    tmp_sharded="$(mktemp)"
    trap 'rm -f "$tmp_single" "$tmp_sharded"' EXIT
    collect > "$tmp_single"
    if ! diff -u "$golden" "$tmp_single"; then
      echo "FAIL: single-engine trace hashes diverged from $golden" >&2
      exit 1
    fi
    collect MIC_SIM_SHARDS=4 > "$tmp_sharded"
    if ! diff -u "$golden" "$tmp_sharded"; then
      echo "FAIL: MIC_SIM_SHARDS=4 trace hashes diverged from $golden" >&2
      exit 1
    fi
    echo "OK: $(wc -l < "$golden") fingerprints replay bit-identically" \
         "(single engine and MIC_SIM_SHARDS=4)"
    ;;
  *)
    echo "usage: $0 {record|verify} [build-dir]" >&2
    exit 2
    ;;
esac
