#!/usr/bin/env bash
# clang-tidy gate over src/ (config: .clang-tidy, WarningsAsErrors '*').
#
#   scripts/tidy.sh [build-dir]      # default build dir: build/
#
# Needs a compile database; the top-level CMakeLists.txt always exports
# compile_commands.json.  When clang-tidy is not installed (the local
# container ships only GCC) the gate reports SKIPPED and exits 0 -- the
# `tidy` job in .github/workflows/ci.yml is the enforcing run.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

tidy_bin=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$cand" > /dev/null 2>&1; then
    tidy_bin="$cand"
    break
  fi
done
if [[ -z "$tidy_bin" ]]; then
  echo "tidy: SKIPPED (clang-tidy not installed; CI runs the enforcing gate)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S . > /dev/null
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "tidy: $tidy_bin over ${#sources[@]} files (db: $build_dir)"

run_one() {
  "$tidy_bin" -p "$build_dir" --quiet "$1"
}

status=0
for f in "${sources[@]}"; do
  run_one "$f" || status=1
done

if [[ "$status" -ne 0 ]]; then
  echo "tidy: FAILED"
  exit 1
fi
echo "tidy: OK"
