#include "anonymity/attacks.hpp"

#include <cmath>
#include <unordered_map>

namespace mic::anonymity {

ExposureReport endpoint_exposure(const std::vector<PacketRecord>& records,
                                 net::Ipv4 initiator, net::Ipv4 responder) {
  ExposureReport report;
  for (const auto& record : records) {
    const bool has_initiator =
        record.src == initiator || record.dst == initiator;
    const bool has_responder =
        record.src == responder || record.dst == responder;
    report.saw_initiator |= has_initiator;
    report.saw_responder |= has_responder;
    report.linked |= has_initiator && has_responder;
  }
  return report;
}

CorrelationReport correlate_at_switch(const Observer& observer,
                                      sim::SimTime window) {
  CorrelationReport report;
  const auto ingress = observer.ingress();
  const auto egress = observer.egress();

  // Index egress packets by payload fingerprint.
  std::unordered_map<std::uint64_t, std::vector<const PacketRecord*>> by_tag;
  for (const auto& record : egress) {
    if (record.payload_bytes > 0) by_tag[record.content_tag].push_back(&record);
  }

  double candidate_sum = 0.0;
  double success_sum = 0.0;
  for (const auto& record : ingress) {
    if (record.payload_bytes == 0) continue;
    ++report.ingress_packets;
    const auto it = by_tag.find(record.content_tag);
    if (it == by_tag.end()) continue;
    std::size_t candidates = 0;
    for (const PacketRecord* out : it->second) {
      if (out->time >= record.time && out->time - record.time <= window) {
        ++candidates;
      }
    }
    if (candidates == 0) continue;
    ++report.matched_packets;
    candidate_sum += static_cast<double>(candidates);
    success_sum += 1.0 / static_cast<double>(candidates);
  }
  if (report.matched_packets > 0) {
    report.mean_candidates =
        candidate_sum / static_cast<double>(report.matched_packets);
    report.expected_success =
        success_sum / static_cast<double>(report.matched_packets);
  }
  return report;
}

std::uint64_t observed_payload_bytes(const std::vector<PacketRecord>& records,
                                     net::Ipv4 src, net::Ipv4 dst) {
  std::uint64_t bytes = 0;
  for (const auto& record : records) {
    if (record.src == src && record.dst == dst) bytes += record.payload_bytes;
  }
  return bytes;
}

EndToEndTrace global_content_trace(const std::vector<PacketRecord>& records,
                                   std::uint64_t content_tag) {
  EndToEndTrace trace;
  const PacketRecord* first = nullptr;
  const PacketRecord* last = nullptr;
  for (const auto& record : records) {
    if (record.content_tag != content_tag || record.payload_bytes == 0) {
      continue;
    }
    ++trace.hops_seen;
    if (first == nullptr || record.time < first->time) first = &record;
    if (last == nullptr || record.time > last->time) last = &record;
  }
  if (first == nullptr || last == nullptr) return trace;
  trace.source = first->src;
  trace.destination = last->dst;
  // A single sighting cannot link two endpoints; the chain must span at
  // least an entry and an exit segment with different headers.
  trace.linked = trace.hops_seen >= 2 &&
                 !(first->src == last->src && first->dst == last->dst);
  return trace;
}

double observed_rate_bps(const std::vector<PacketRecord>& records,
                         net::Ipv4 src, net::Ipv4 dst) {
  std::uint64_t bytes = 0;
  sim::SimTime first = sim::kNever;
  sim::SimTime last = 0;
  for (const auto& record : records) {
    if (record.src != src || record.dst != dst) continue;
    bytes += record.payload_bytes;
    first = std::min(first, record.time);
    last = std::max(last, record.time);
  }
  if (first >= last) return 0.0;
  return static_cast<double>(bytes) * 8.0 / sim::to_seconds(last - first);
}

double sender_entropy_bits(bool source_visible, std::size_t candidate_count) {
  if (source_visible || candidate_count <= 1) return 0.0;
  return std::log2(static_cast<double>(candidate_count));
}

}  // namespace mic::anonymity
