// Executable versions of the paper's attacks (Sec V, "Security Analysis"),
// so the security claims become measurable quantities and regression tests.
#pragma once

#include <cstdint>
#include <vector>

#include "anonymity/observer.hpp"

namespace mic::anonymity {

/// Which real communication endpoints were visible at a vantage point.
struct ExposureReport {
  bool saw_initiator = false;  // a packet carried the initiator's address
  bool saw_responder = false;
  bool linked = false;  // some single packet carried BOTH (unlinkability broken)
};

ExposureReport endpoint_exposure(const std::vector<PacketRecord>& records,
                                 net::Ipv4 initiator, net::Ipv4 responder);

/// The single-MN ingress/egress correlation attack: for every ingress data
/// packet, the adversary looks for egress packets with the same payload
/// fingerprint (MNs rewrite headers, never payloads) and guesses uniformly
/// among them.  Partial multicast inflates the candidate set, dropping the
/// expected success rate toward 1/(1 + decoys).
struct CorrelationReport {
  std::uint64_t ingress_packets = 0;
  std::uint64_t matched_packets = 0;   // had >= 1 egress candidate
  double mean_candidates = 0.0;        // average egress candidates per packet
  double expected_success = 0.0;       // mean of 1/candidates over matches
};

CorrelationReport correlate_at_switch(const Observer& observer,
                                      sim::SimTime window);

/// Size-based traffic analysis against the multiple-m-flows mechanism: the
/// adversary observes one m-flow of a channel and takes its byte count as
/// the channel's size.  Returns observed bytes; with F striped flows the
/// relative error approaches 1 - 1/F.
std::uint64_t observed_payload_bytes(const std::vector<PacketRecord>& records,
                                     net::Ipv4 src, net::Ipv4 dst);

/// The global end-to-end correlation attack: an adversary observing EVERY
/// link chains a payload fingerprint across hops (MNs rewrite headers,
/// never payloads) and recovers both true endpoints.  The paper concedes
/// this is out of scope ("MIC cannot defeat such end-to-end correlation";
/// the global adversary is outside the threat model) -- this function makes
/// that boundary executable: it succeeds against a global trace and fails
/// when the observation set misses the first or last plaintext-address
/// segment.
struct EndToEndTrace {
  bool linked = false;
  net::Ipv4 source;       // src of the earliest sighting
  net::Ipv4 destination;  // dst of the latest sighting
  std::size_t hops_seen = 0;
};

EndToEndTrace global_content_trace(const std::vector<PacketRecord>& records,
                                   std::uint64_t content_tag);

/// Rate-based traffic analysis (paper Sec V, "Size- or rate-based
/// traffic-analysis"): the adversary estimates a flow's transmission rate
/// from the packets observed for one (src, dst) pair.  With F striped
/// m-flows the per-flow rate under-reports the channel rate by ~1/F.
/// Returns bits/second over the observation span (0 if < 2 packets).
double observed_rate_bps(const std::vector<PacketRecord>& records,
                         net::Ipv4 src, net::Ipv4 dst);

/// Sender anonymity-set entropy at a vantage: if the real source address is
/// directly visible the entropy is zero; otherwise the adversary is left
/// guessing uniformly among `candidate_count` plausible senders (the
/// per-port restriction set, which is exactly what MAGA draws from).
double sender_entropy_bits(bool source_visible, std::size_t candidate_count);

}  // namespace mic::anonymity
