// Adversary vantage points (paper Sec III-B / Sec V).
//
// An observer records every packet on a set of links exactly as it appears
// on the wire -- header fields after whatever rewriting has happened
// upstream, plus the payload fingerprint (MNs never touch payloads, which
// is what the paper's content-correlation adversary exploits).  Compromised
// switches are modeled as observers on all links incident to the switch.
#pragma once

#include <vector>

#include "net/network.hpp"

namespace mic::anonymity {

struct PacketRecord {
  sim::SimTime time = 0;
  topo::LinkId link = 0;
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;

  net::Ipv4 src;
  net::Ipv4 dst;
  net::L4Port sport = 0;
  net::L4Port dport = 0;
  net::MplsLabel mpls = net::kNoMpls;
  std::uint32_t wire_bytes = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t content_tag = 0;
  std::uint64_t packet_id = 0;
};

class Observer {
 public:
  /// Tap a single link (both directions).
  void tap_link(net::Network& network, topo::LinkId link) {
    network.add_link_tap(link, recorder());
  }

  /// Compromise a switch: tap every incident link.  Records ingress and
  /// egress traffic of the node, the full view of a compromised device.
  void compromise_switch(net::Network& network, topo::NodeId sw) {
    focus_ = sw;
    for (const auto& adj : network.graph().neighbors(sw)) {
      network.add_link_tap(adj.link, recorder());
    }
  }

  const std::vector<PacketRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

  /// For a compromised switch: packets entering / leaving it.
  std::vector<PacketRecord> ingress() const { return filter(true); }
  std::vector<PacketRecord> egress() const { return filter(false); }

 private:
  net::Network::Tap recorder() {
    return [this](topo::LinkId link, topo::NodeId from, topo::NodeId to,
                  const net::Packet& packet, sim::SimTime time) {
      records_.push_back({time, link, from, to, packet.src, packet.dst,
                          packet.sport, packet.dport, packet.mpls,
                          packet.wire_bytes(), packet.payload_bytes(),
                          packet.content_tag, packet.packet_id});
    };
  }

  std::vector<PacketRecord> filter(bool toward_focus) const {
    std::vector<PacketRecord> out;
    for (const auto& record : records_) {
      if ((record.to == focus_) == toward_focus) out.push_back(record);
    }
    return out;
  }

  topo::NodeId focus_ = topo::kInvalidNode;
  std::vector<PacketRecord> records_;
};

}  // namespace mic::anonymity
