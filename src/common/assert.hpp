// Always-on invariant checking for the MIC libraries.
//
// Simulation and control-plane code is full of invariants whose violation
// means a *logic* bug (e.g. a routing collision slipping past the collision
// avoidance mechanism), not a recoverable runtime condition.  We check them
// unconditionally in every build type and abort with a location message.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mic {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "MIC_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace mic

#define MIC_ASSERT(expr)                                          \
  do {                                                            \
    if (!(expr)) ::mic::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MIC_ASSERT_MSG(expr, msg)                                    \
  do {                                                               \
    if (!(expr)) ::mic::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
