// Bit-manipulation helpers shared by the MAGA hash family and the crypto
// primitives.  Everything here is constexpr and branch-free.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace mic {

/// 128-bit arithmetic helper (GCC/Clang extension, hidden from -Wpedantic).
__extension__ using uint128 = unsigned __int128;

/// Rotate left within the value's own width.  Unlike raw shifts, rotation is
/// a bijection for every rotation count, which is what makes the MAGA hash
/// functions invertible (see maga.hpp).
template <typename T>
constexpr T rotl(T v, unsigned r) noexcept {
  return std::rotl(v, static_cast<int>(r));
}

template <typename T>
constexpr T rotr(T v, unsigned r) noexcept {
  return std::rotr(v, static_cast<int>(r));
}

/// Fold a 32-bit value to 16 bits by XORing the halves.
constexpr std::uint16_t fold16(std::uint32_t v) noexcept {
  return static_cast<std::uint16_t>(v ^ (v >> 16));
}

/// Fold a 16-bit value to 8 bits by XORing the halves.
constexpr std::uint8_t fold8(std::uint16_t v) noexcept {
  return static_cast<std::uint8_t>(v ^ (v >> 8));
}

constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

constexpr void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

constexpr void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

constexpr std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

constexpr void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace mic
