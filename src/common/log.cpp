#include "common/log.hpp"

#include <cstdio>

namespace mic {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    case LogLevel::kOff: return "OFF";
  }
  return "???";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace detail

#define MIC_DEFINE_LOG_FN(name, level)          \
  void name(const char* fmt, ...) {             \
    std::va_list args;                          \
    va_start(args, fmt);                        \
    detail::vlog(level, fmt, args);             \
    va_end(args);                               \
  }

MIC_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
MIC_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
MIC_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
MIC_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef MIC_DEFINE_LOG_FN

}  // namespace mic
