// Minimal leveled logger.
//
// The simulator is single-threaded by design (a discrete-event loop), so the
// logger keeps no locks; it is a thin formatting shim over stderr that can be
// silenced globally (benchmarks) or per-level.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace mic {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
}  // namespace detail

// printf-style logging entry points.
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mic
