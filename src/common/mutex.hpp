// Annotated mutex wrappers for Clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::scoped_lock carry no capability
// attributes, so -Wthread-safety cannot see them acquire anything and
// every MIC_GUARDED_BY access would be flagged.  These zero-overhead
// wrappers re-export exactly the std behaviour with the attributes the
// analysis needs.  Use mic::Mutex for any lock that guards annotated
// state and mic::MutexLock as the RAII guard.
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace mic {

class MIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MIC_ACQUIRE() { mu_.lock(); }
  void unlock() MIC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII guard; the scoped_lockable attribute tells the analysis the
/// capability is held exactly for the guard's lifetime.
class MIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MIC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MIC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace mic
