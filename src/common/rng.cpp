#include "common/rng.hpp"

#include <cmath>

namespace mic {

double Rng::exponential(double mean) noexcept {
  MIC_ASSERT(mean > 0.0);
  // -mean * ln(U) with U in (0,1]; uniform01() returns [0,1), so flip it.
  const double u = 1.0 - uniform01();
  return -mean * std::log(u);
}

}  // namespace mic
