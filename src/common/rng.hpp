// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator and in the Mimic Controller
// (path selection, m-address generation, workload arrival) draws from an
// explicitly seeded Rng so that a run is reproducible bit-for-bit from its
// seed (invariant SIM-1 in DESIGN.md).  The generator is xoshiro256**,
// seeded through SplitMix64.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace mic {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator.  Satisfies the bare minimum of
/// UniformRandomBitGenerator so it composes with <algorithm> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    MIC_ASSERT(bound > 0);
    // Debiased multiply-shift (Lemire).
    for (;;) {
      const std::uint64_t x = next();
      const uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    MIC_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed sample with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Uniformly pick one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    MIC_ASSERT(!v.empty());
    return v[below(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child generator; used to give each component its
  /// own stream so that adding draws in one place does not perturb others.
  Rng fork() noexcept { return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static constexpr std::uint64_t rotl64(std::uint64_t v, int r) noexcept {
    return (v << r) | (v >> (64 - r));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mic
