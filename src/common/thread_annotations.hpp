// Clang thread-safety-analysis annotations (a.k.a. capability analysis).
//
// The macros expand to Clang's `capability` attributes when the compiler
// supports them and to nothing otherwise, so GCC builds are unaffected
// while any Clang build with -Wthread-safety statically rejects lock
// discipline violations: touching a MIC_GUARDED_BY member without holding
// its mutex, calling a MIC_REQUIRES function unlocked, double-acquiring a
// MIC_EXCLUDES lock, and so on.  The top-level CMakeLists.txt turns
// -Wthread-safety into an error on Clang, and
// tests/compile_fail/thread_safety_violation.cpp pins the analysis with a
// compile-must-fail test.
//
// Naming follows the LLVM documentation (mutex.h example); only the
// annotations this codebase actually uses are defined.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define MIC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MIC_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability (e.g. a mutex wrapper).
/// std::mutex is already known to the analysis, so plain members need no
/// wrapper type.
#define MIC_CAPABILITY(name) MIC_THREAD_ANNOTATION(capability(name))

/// An RAII type that acquires a capability for its lifetime
/// (std::scoped_lock / std::lock_guard are already annotated by libc++;
/// this is for home-grown guards).
#define MIC_SCOPED_CAPABILITY MIC_THREAD_ANNOTATION(scoped_lockable)

/// Data member that may only be read or written while holding `mu`.
#define MIC_GUARDED_BY(mu) MIC_THREAD_ANNOTATION(guarded_by(mu))

/// Pointer member whose *pointee* is protected by `mu`.
#define MIC_PT_GUARDED_BY(mu) MIC_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function that must be called with `mu` held.
#define MIC_REQUIRES(...) \
  MIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with `mu` NOT held (it acquires it
/// internally; calling it with the lock held would deadlock).
#define MIC_EXCLUDES(...) MIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases `mu` and returns with it held / free.
#define MIC_ACQUIRE(...) \
  MIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MIC_RELEASE(...) \
  MIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function whose return value is a reference into `mu`-guarded state.
#define MIC_RETURN_CAPABILITY(x) MIC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. init paths that
/// provably run before any thread is spawned).  Use sparingly and say why.
#define MIC_NO_THREAD_SAFETY_ANALYSIS \
  MIC_THREAD_ANNOTATION(no_thread_safety_analysis)
