#include "core/address_restrictions.hpp"

namespace mic::core {

AddressRestrictions::AddressRestrictions(
    const topo::Graph& graph, const topo::PathEngine& paths,
    const ctrl::HostAddressing& addressing) {
  const auto hosts = graph.hosts();

  for (const topo::NodeId sw : graph.switches()) {
    for (const auto& adj : graph.neighbors(sw)) {
      PortSets sets;
      const topo::NodeId peer = adj.peer;

      // Both plausibility checks are phrased with the host as the
      // destination: distances under the host-no-transit rule are
      // symmetric, and host-destination rows are exactly the ones the
      // lazy engine already computes for routing, so this sweep touches
      // one cached BFS row per host instead of one per node.
      for (const topo::NodeId h : hosts) {
        const net::Ipv4 ip = addressing.ip_of(h);

        // Destination plausibility: the egress lies on a shortest path
        // toward h.
        const bool dst_ok =
            peer == h ||
            (graph.is_switch(peer) &&
             paths.distance(peer, h) + 1 == paths.distance(sw, h));
        if (dst_ok) sets.dst.push_back(ip);

        // Source plausibility: traffic from h that transits sw could
        // continue through this port (moving away from h).
        const bool src_ok =
            h != peer && graph.is_switch(peer) &&
            paths.distance(peer, h) == paths.distance(sw, h) + 1;
        if (src_ok) sets.src.push_back(ip);
      }

      sets_.emplace(key(sw, adj.local_port), std::move(sets));
    }
  }
}

}  // namespace mic::core
