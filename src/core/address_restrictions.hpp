// Per-port m-address plausibility restrictions (paper Sec IV-B3, Fig. 5).
//
// "To avoid an adversary distinguish[ing] the m-flows and common flows by
// observing the source/destination IP addresses, the m_src_ip and m_dst_ip
// should [be] subject to different restrictions on different MNs": a packet
// leaving switch S through port p must carry a source a real flow could
// carry there (a host "behind" S relative to p) and a destination that is
// actually routed through p.  We precompute both candidate sets for every
// (switch, egress port) from the shortest-path structure.
#pragma once

#include <vector>

#include "ctrl/controller.hpp"
#include "topology/path_engine.hpp"

namespace mic::core {

class AddressRestrictions {
 public:
  AddressRestrictions(const topo::Graph& graph,
                      const topo::PathEngine& paths,
                      const ctrl::HostAddressing& addressing);

  /// Host IPs a packet leaving `sw` via `port` may plausibly carry as its
  /// source: hosts whose shortest paths continue through that port.
  const std::vector<net::Ipv4>& allowed_src(topo::NodeId sw,
                                            topo::PortId port) const {
    return at(sw, port).src;
  }

  /// Host IPs a packet leaving `sw` via `port` may plausibly carry as its
  /// destination: hosts for which `port` lies on a shortest path.
  const std::vector<net::Ipv4>& allowed_dst(topo::NodeId sw,
                                            topo::PortId port) const {
    return at(sw, port).dst;
  }

 private:
  struct PortSets {
    std::vector<net::Ipv4> src;
    std::vector<net::Ipv4> dst;
  };

  const PortSets& at(topo::NodeId sw, topo::PortId port) const {
    const auto it = sets_.find(key(sw, port));
    MIC_ASSERT_MSG(it != sets_.end(), "no restrictions for switch port");
    return it->second;
  }

  static std::uint64_t key(topo::NodeId sw, topo::PortId port) noexcept {
    return (static_cast<std::uint64_t>(sw) << 16) | port;
  }

  std::unordered_map<std::uint64_t, PortSets> sets_;
};

}  // namespace mic::core
