#include "core/audit_registry.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/channel_journal.hpp"
#include "core/collision_audit.hpp"
#include "core/mimic_controller.hpp"

namespace mic::audit {

namespace {

CheckResult from_audit_report(const core::AuditReport& report) {
  CheckResult result;
  result.ok = report.ok;
  result.items_checked = report.rules_checked;
  result.violations = report.violations;
  result.metrics.emplace_back("mflow_rules",
                              static_cast<std::uint64_t>(report.mflow_rules));
  return result;
}

CheckResult check_flow_tables(core::MimicController& mc) {
  // FT-1: on every switch, the two-tier lookup agrees with the reference
  // linear scan (structurally and for a probe per rule).
  CheckResult result;
  for (const topo::NodeId sw : mc.graph().switches()) {
    std::vector<std::string> violations;
    result.items_checked +=
        mc.switch_at(sw)->table().self_check(violations);
    for (auto& v : violations) {
      result.violations.push_back("switch " + std::to_string(sw) + ": " +
                                  std::move(v));
    }
  }
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_recovery_consistency(core::MimicController& mc) {
  // RC-1: the durable journal and the fabric agree.  Replaying the journal
  // must yield exactly the live channel set (structurally equal state),
  // and every switch must hold exactly the rules those channels derive
  // (content-compared; group references through their buckets).  This is
  // what makes crash()+recover() safe at any instant: whatever the journal
  // claims is what the data plane serves.
  CheckResult result;
  const core::JournalImage image = mc.journal().replay();
  result.metrics.emplace_back(
      "journaled_channels",
      static_cast<std::uint64_t>(image.channels.size()));

  for (const core::ChannelId id : mc.channel_ids()) {
    const auto it = image.channels.find(id);
    if (it == image.channels.end()) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " is live but absent from the journal");
    } else if (!core::structurally_equal(it->second, *mc.channel(id))) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " diverges from its journaled state");
    }
  }
  for (const auto& [id, state] : image.channels) {
    if (mc.channel(id) == nullptr) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " is journaled but not live");
      continue;
    }
    result.items_checked += mc.verify_channel_rules(state, &result.violations);
  }
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_path_rows(core::MimicController& mc) {
  // PE-1: every cached path row equals a fresh recomputation against the
  // current failure set.
  CheckResult result;
  std::vector<std::string> violations;
  result.items_checked = mc.path_engine().self_check(violations);
  result.violations = std::move(violations);
  result.ok = result.violations.empty();
  return result;
}

}  // namespace

const CheckResult& RunReport::check(std::string_view id) const {
  for (const auto& c : checks) {
    if (c.id == id) return c;
  }
  MIC_ASSERT_MSG(false, "audit check id not registered");
  __builtin_unreachable();
}

std::string RunReport::first_violation() const {
  for (const auto& c : checks) {
    if (!c.violations.empty()) return c.id + ": " + c.violations.front();
  }
  return {};
}

std::string RunReport::summary() const {
  std::string out;
  for (const auto& c : checks) {
    if (!out.empty()) out += ", ";
    out += c.id;
    out += c.ok ? " ok (" : " FAILED (";
    out += std::to_string(c.ok ? c.items_checked : c.violations.size());
    out += c.ok ? " checked)" : " violations)";
  }
  return out;
}

Registry::Registry() {
  add("FT-1", "flow-table lookup equivalence", check_flow_tables);
  add("CA-1", "collision / MAGA label audit",
      [](core::MimicController& mc) {
        return from_audit_report(core::audit_collisions(mc));
      });
  add("PE-1", "path-row determinism", check_path_rows);
  add("FD-1", "orphan-rule / live-channel audit",
      [](core::MimicController& mc) {
        return from_audit_report(core::audit_orphan_rules(mc));
      });
  add("RC-1", "journal / switch-resync consistency",
      check_recovery_consistency);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::string id, std::string name, CheckFn fn) {
  for (const auto& e : checks_) {
    MIC_ASSERT_MSG(e.id != id, "duplicate audit check id");
  }
  checks_.push_back(Entry{std::move(id), std::move(name), std::move(fn)});
}

RunReport Registry::run_all(core::MimicController& mc) const {
  RunReport report;
  report.checks.reserve(checks_.size());
  for (const auto& e : checks_) {
    CheckResult result = e.fn(mc);
    result.id = e.id;
    result.name = e.name;
    report.ok = report.ok && result.ok;
    report.checks.push_back(std::move(result));
  }
  return report;
}

CheckResult Registry::run(std::string_view id,
                          core::MimicController& mc) const {
  for (const auto& e : checks_) {
    if (e.id == id) {
      CheckResult result = e.fn(mc);
      result.id = e.id;
      result.name = e.name;
      return result;
    }
  }
  MIC_ASSERT_MSG(false, "audit check id not registered");
  __builtin_unreachable();
}

std::vector<std::string> Registry::ids() const {
  std::vector<std::string> out;
  out.reserve(checks_.size());
  for (const auto& e : checks_) out.push_back(e.id);
  return out;
}

RunReport run_all(core::MimicController& mc) {
  return Registry::instance().run_all(mc);
}

}  // namespace mic::audit
