#include "core/audit_registry.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/channel_journal.hpp"
#include "core/collision_audit.hpp"
#include "core/mimic_controller.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"

namespace mic::audit {

namespace {

CheckResult from_audit_report(const core::AuditReport& report) {
  CheckResult result;
  result.ok = report.ok;
  result.items_checked = report.rules_checked;
  result.violations = report.violations;
  result.metrics.emplace_back("mflow_rules",
                              static_cast<std::uint64_t>(report.mflow_rules));
  return result;
}

CheckResult check_flow_tables(core::MimicController& mc) {
  // FT-1: on every switch, the two-tier lookup agrees with the reference
  // linear scan (structurally and for a probe per rule).
  CheckResult result;
  for (const topo::NodeId sw : mc.graph().switches()) {
    std::vector<std::string> violations;
    result.items_checked +=
        mc.switch_at(sw)->table().self_check(violations);
    for (auto& v : violations) {
      result.violations.push_back("switch " + std::to_string(sw) + ": " +
                                  std::move(v));
    }
  }
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_recovery_consistency(core::MimicController& mc) {
  // RC-1: the durable journal and the fabric agree.  Replaying the journal
  // must yield exactly the live channel set (structurally equal state),
  // and every switch must hold exactly the rules those channels derive
  // (content-compared; group references through their buckets).  This is
  // what makes crash()+recover() safe at any instant: whatever the journal
  // claims is what the data plane serves.
  CheckResult result;
  const core::JournalImage image = mc.journal().replay();
  result.metrics.emplace_back(
      "journaled_channels",
      static_cast<std::uint64_t>(image.channels.size()));

  for (const core::ChannelId id : mc.channel_ids()) {
    const auto it = image.channels.find(id);
    if (it == image.channels.end()) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " is live but absent from the journal");
    } else if (!core::structurally_equal(it->second, *mc.channel(id))) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " diverges from its journaled state");
    }
  }
  for (const auto& [id, state] : image.channels) {
    if (mc.channel(id) == nullptr) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " is journaled but not live");
      continue;
    }
    result.items_checked += mc.verify_channel_rules(state, &result.violations);
  }
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_path_rows(core::MimicController& mc) {
  // PE-1: every cached path row equals a fresh recomputation against the
  // current failure set.
  CheckResult result;
  std::vector<std::string> violations;
  result.items_checked = mc.path_engine().self_check(violations);
  result.violations = std::move(violations);
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_scheduler_equivalence(core::MimicController&) {
  // SIM-2: the timing-wheel Simulator agrees with the binary-heap
  // ReferenceSimulator.  The full oracle lives in
  // tests/test_simulator_diff.cpp; this is a bounded always-on replica --
  // a short randomized schedule/cancel/run program driven through both
  // engines -- so every audit::run_all() call (chaos soaks, recovery
  // tests, CLI) re-attests the wheel on the exact binary under test.  It
  // ignores the controller: the scheduler invariant is engine-global.
  CheckResult result;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::Simulator wheel;
    sim::ReferenceSimulator ref;
    std::vector<std::uint64_t> wheel_fired;
    std::vector<std::uint64_t> ref_fired;
    std::vector<sim::EventId> wheel_ids;
    std::vector<sim::EventId> ref_ids;
    Rng rng(seed * 0x51ED);
    std::uint64_t token = 0;
    for (int op = 0; op < 300; ++op) {
      const std::uint64_t dice = rng.below(100);
      if (dice < 55) {
        // Delays spanning level-0 slots, cascades, and the overflow list.
        std::uint64_t delay = rng.below(64);
        const std::uint64_t kind = rng.below(10);
        if (kind >= 4 && kind < 8) delay = rng.below(1'000'000);
        if (kind >= 8) delay = rng.below(1ULL << 44);
        const sim::SimTime when = wheel.now() + delay;
        const std::uint64_t t = token++;
        wheel_ids.push_back(
            wheel.schedule_at(when, [&wheel_fired, t] {
              wheel_fired.push_back(t);
            }));
        ref_ids.push_back(ref.schedule_at(when, [&ref_fired, t] {
          ref_fired.push_back(t);
        }));
      } else if (dice < 72 && !wheel_ids.empty()) {
        const std::size_t pick = rng.below(wheel_ids.size());
        wheel.cancel(wheel_ids[pick]);  // stale handles included: no-ops
        ref.cancel(ref_ids[pick]);
      } else if (dice < 97) {
        const sim::SimTime horizon = wheel.now() + rng.below(1 << 20);
        wheel.run_until(horizon);
        ref.run_until(horizon);
      } else {
        wheel.run_until(sim::kNever);
        ref.run_until(sim::kNever);
      }
      ++result.items_checked;
    }
    wheel.run_until(sim::kNever);
    ref.run_until(sim::kNever);
    if (wheel_fired != ref_fired) {
      result.violations.push_back(
          "seed " + std::to_string(seed) + ": firing order diverged (" +
          std::to_string(wheel_fired.size()) + " wheel vs " +
          std::to_string(ref_fired.size()) + " reference fires)");
    }
    if (wheel.now() != ref.now()) {
      result.violations.push_back(
          "seed " + std::to_string(seed) + ": clocks diverged (" +
          std::to_string(wheel.now()) + " wheel vs " +
          std::to_string(ref.now()) + " reference)");
    }
    if (wheel.events_executed() != ref.events_executed() || !wheel.idle()) {
      result.violations.push_back("seed " + std::to_string(seed) +
                                  ": executed counts or idle() diverged");
    }
  }
  result.metrics.emplace_back(
      "diff_ops", static_cast<std::uint64_t>(result.items_checked));
  result.ok = result.violations.empty();
  return result;
}

}  // namespace

const CheckResult& RunReport::check(std::string_view id) const {
  for (const auto& c : checks) {
    if (c.id == id) return c;
  }
  MIC_ASSERT_MSG(false, "audit check id not registered");
  __builtin_unreachable();
}

std::string RunReport::first_violation() const {
  for (const auto& c : checks) {
    if (!c.violations.empty()) return c.id + ": " + c.violations.front();
  }
  return {};
}

std::string RunReport::summary() const {
  std::string out;
  for (const auto& c : checks) {
    if (!out.empty()) out += ", ";
    out += c.id;
    out += c.ok ? " ok (" : " FAILED (";
    out += std::to_string(c.ok ? c.items_checked : c.violations.size());
    out += c.ok ? " checked)" : " violations)";
  }
  return out;
}

Registry::Registry() {
  add("FT-1", "flow-table lookup equivalence", check_flow_tables);
  add("CA-1", "collision / MAGA label audit",
      [](core::MimicController& mc) {
        return from_audit_report(core::audit_collisions(mc));
      });
  add("PE-1", "path-row determinism", check_path_rows);
  add("FD-1", "orphan-rule / live-channel audit",
      [](core::MimicController& mc) {
        return from_audit_report(core::audit_orphan_rules(mc));
      });
  add("RC-1", "journal / switch-resync consistency",
      check_recovery_consistency);
  add("SIM-2", "timing-wheel / reference-scheduler equivalence",
      check_scheduler_equivalence);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::string id, std::string name, CheckFn fn) {
  for (const auto& e : checks_) {
    MIC_ASSERT_MSG(e.id != id, "duplicate audit check id");
  }
  checks_.push_back(Entry{std::move(id), std::move(name), std::move(fn)});
}

RunReport Registry::run_all(core::MimicController& mc) const {
  RunReport report;
  report.checks.reserve(checks_.size());
  for (const auto& e : checks_) {
    CheckResult result = e.fn(mc);
    result.id = e.id;
    result.name = e.name;
    report.ok = report.ok && result.ok;
    report.checks.push_back(std::move(result));
  }
  return report;
}

CheckResult Registry::run(std::string_view id,
                          core::MimicController& mc) const {
  for (const auto& e : checks_) {
    if (e.id == id) {
      CheckResult result = e.fn(mc);
      result.id = e.id;
      result.name = e.name;
      return result;
    }
  }
  MIC_ASSERT_MSG(false, "audit check id not registered");
  __builtin_unreachable();
}

std::vector<std::string> Registry::ids() const {
  std::vector<std::string> out;
  out.reserve(checks_.size());
  for (const auto& e : checks_) out.push_back(e.id);
  return out;
}

RunReport run_all(core::MimicController& mc) {
  return Registry::instance().run_all(mc);
}

}  // namespace mic::audit
