#include "core/audit_registry.hpp"

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/channel_journal.hpp"
#include "core/collision_audit.hpp"
#include "core/mimic_controller.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"

namespace mic::audit {

namespace {

CheckResult from_audit_report(const core::AuditReport& report) {
  CheckResult result;
  result.ok = report.ok;
  result.items_checked = report.rules_checked;
  result.violations = report.violations;
  result.metrics.emplace_back("mflow_rules",
                              static_cast<std::uint64_t>(report.mflow_rules));
  return result;
}

CheckResult check_flow_tables(core::MimicController& mc) {
  // FT-1: on every switch, the two-tier lookup agrees with the reference
  // linear scan (structurally and for a probe per rule).
  CheckResult result;
  for (const topo::NodeId sw : mc.graph().switches()) {
    std::vector<std::string> violations;
    result.items_checked +=
        mc.switch_at(sw)->table().self_check(violations);
    for (auto& v : violations) {
      result.violations.push_back("switch " + std::to_string(sw) + ": " +
                                  std::move(v));
    }
  }
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_recovery_consistency(core::MimicController& mc) {
  // RC-1: the durable journal and the fabric agree.  Replaying the journal
  // must yield exactly the live channel set (structurally equal state),
  // and every switch must hold exactly the rules those channels derive
  // (content-compared; group references through their buckets).  This is
  // what makes crash()+recover() safe at any instant: whatever the journal
  // claims is what the data plane serves.
  CheckResult result;
  const core::JournalImage image = mc.journal().replay();
  result.metrics.emplace_back(
      "journaled_channels",
      static_cast<std::uint64_t>(image.channels.size()));

  for (const core::ChannelId id : mc.channel_ids()) {
    const auto it = image.channels.find(id);
    if (it == image.channels.end()) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " is live but absent from the journal");
    } else if (!core::structurally_equal(it->second, *mc.channel(id))) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " diverges from its journaled state");
    }
  }
  for (const auto& [id, state] : image.channels) {
    if (mc.channel(id) == nullptr) {
      result.violations.push_back("channel " + std::to_string(id) +
                                  " is journaled but not live");
      continue;
    }
    result.items_checked += mc.verify_channel_rules(state, &result.violations);
  }
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_failover_consistency(core::MimicController& mc) {
  // RC-2: controller-generation (failover) consistency.  The audited MC
  // must be the fabric's one true primary: its journal epoch and fence
  // epoch agree, every journal record was stamped at or below that epoch,
  // and no switch has admitted an op from a *newer* generation (a switch
  // fenced above the auditee means a second primary installed something --
  // the dual-primary scenario fencing exists to prevent).  Together with
  // RC-1 (journal replay == live channels == installed rules, which after
  // a takeover is exactly "live == standby replay minus swept"), this is
  // what makes a failover safe to audit at any quiescent instant.
  CheckResult result;
  if (mc.crashed()) {
    result.violations.push_back("audited controller is crashed");
  }
  if (mc.deposed()) {
    result.violations.push_back(
        "audited controller was deposed by a newer-epoch primary");
  }
  ++result.items_checked;

  const std::uint64_t epoch = mc.journal().epoch();
  if (epoch == 0) {
    result.violations.push_back("journal epoch was never initialised");
  }
  if (mc.fence_epoch() != epoch) {
    result.violations.push_back(
        "fence epoch " + std::to_string(mc.fence_epoch()) +
        " != journal epoch " + std::to_string(epoch));
  }
  ++result.items_checked;

  for (const core::JournalRecord& record : mc.journal().records()) {
    if (record.epoch > epoch) {
      result.violations.push_back(
          "journal record seq " + std::to_string(record.seq) +
          " stamped with future epoch " + std::to_string(record.epoch));
    }
    ++result.items_checked;
  }

  std::uint64_t stale_ops = 0;
  for (const topo::NodeId sw : mc.graph().switches()) {
    const std::uint64_t sw_epoch = mc.switch_at(sw)->fence_epoch();
    if (sw_epoch > epoch) {
      result.violations.push_back(
          "switch " + std::to_string(sw) + " is fenced at epoch " +
          std::to_string(sw_epoch) + " > ours " + std::to_string(epoch) +
          " (a newer primary owns the fabric)");
    }
    stale_ops += mc.switch_at(sw)->stale_ops_rejected();
    ++result.items_checked;
  }

  result.metrics.emplace_back("journal_epoch", epoch);
  result.metrics.emplace_back("stale_ops_rejected", stale_ops);
  result.metrics.emplace_back("fenced_ops", mc.fenced_ops());
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_path_rows(core::MimicController& mc) {
  // PE-1: every cached path row equals a fresh recomputation against the
  // current failure set.
  CheckResult result;
  std::vector<std::string> violations;
  result.items_checked = mc.path_engine().self_check(violations);
  result.violations = std::move(violations);
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_scheduler_equivalence(core::MimicController&) {
  // SIM-2: the timing-wheel Simulator agrees with the binary-heap
  // ReferenceSimulator.  The full oracle lives in
  // tests/test_simulator_diff.cpp; this is a bounded always-on replica --
  // a short randomized schedule/cancel/run program driven through both
  // engines -- so every audit::run_all() call (chaos soaks, recovery
  // tests, CLI) re-attests the wheel on the exact binary under test.  It
  // ignores the controller: the scheduler invariant is engine-global.
  CheckResult result;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::Simulator wheel;
    sim::ReferenceSimulator ref;
    std::vector<std::uint64_t> wheel_fired;
    std::vector<std::uint64_t> ref_fired;
    std::vector<sim::EventId> wheel_ids;
    std::vector<sim::EventId> ref_ids;
    Rng rng(seed * 0x51ED);
    std::uint64_t token = 0;
    for (int op = 0; op < 300; ++op) {
      const std::uint64_t dice = rng.below(100);
      if (dice < 55) {
        // Delays spanning level-0 slots, cascades, and the overflow list.
        std::uint64_t delay = rng.below(64);
        const std::uint64_t kind = rng.below(10);
        if (kind >= 4 && kind < 8) delay = rng.below(1'000'000);
        if (kind >= 8) delay = rng.below(1ULL << 44);
        const sim::SimTime when = wheel.now() + delay;
        const std::uint64_t t = token++;
        wheel_ids.push_back(
            wheel.schedule_at(when, [&wheel_fired, t] {
              wheel_fired.push_back(t);
            }));
        ref_ids.push_back(ref.schedule_at(when, [&ref_fired, t] {
          ref_fired.push_back(t);
        }));
      } else if (dice < 72 && !wheel_ids.empty()) {
        const std::size_t pick = rng.below(wheel_ids.size());
        wheel.cancel(wheel_ids[pick]);  // stale handles included: no-ops
        ref.cancel(ref_ids[pick]);
      } else if (dice < 97) {
        const sim::SimTime horizon = wheel.now() + rng.below(1 << 20);
        wheel.run_until(horizon);
        ref.run_until(horizon);
      } else {
        wheel.run_until(sim::kNever);
        ref.run_until(sim::kNever);
      }
      ++result.items_checked;
    }
    wheel.run_until(sim::kNever);
    ref.run_until(sim::kNever);
    if (wheel_fired != ref_fired) {
      result.violations.push_back(
          "seed " + std::to_string(seed) + ": firing order diverged (" +
          std::to_string(wheel_fired.size()) + " wheel vs " +
          std::to_string(ref_fired.size()) + " reference fires)");
    }
    if (wheel.now() != ref.now()) {
      result.violations.push_back(
          "seed " + std::to_string(seed) + ": clocks diverged (" +
          std::to_string(wheel.now()) + " wheel vs " +
          std::to_string(ref.now()) + " reference)");
    }
    if (wheel.events_executed() != ref.events_executed() || !wheel.idle()) {
      result.violations.push_back("seed " + std::to_string(seed) +
                                  ": executed counts or idle() diverged");
    }
  }
  result.metrics.emplace_back(
      "diff_ops", static_cast<std::uint64_t>(result.items_checked));
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_sharded_equivalence(core::MimicController&) {
  // SIM-3: the pod-sharded coordinator is the single engine, exactly.
  // Leg A (serial-exact): a randomized program scattered over 3 device
  // shards plus the global engine -- with callbacks chaining follow-ups
  // onto OTHER engines -- fires in the identical global order, with
  // identical clocks and counts, as the same program on one Simulator.
  // Leg B (parallel windows, cooperative): shard-local event chains
  // punctuated by global barrier events produce identical per-engine
  // firing logs with windows enabled and disabled, and at least one
  // window actually executes.  Ignores the controller: the invariant is
  // engine-global.
  CheckResult result;
  constexpr int kShards = 3;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::Simulator single;
    sim::ShardedSimulator sharded({.shards = kShards, .threads = 1});
    std::vector<std::uint64_t> single_fired;
    std::vector<std::uint64_t> sharded_fired;
    std::vector<sim::EventId> single_ids;
    std::vector<sim::EventId> sharded_ids;
    std::vector<int> sharded_id_home;  // ids are per-engine handles
    Rng rng(seed * 0x51D3);
    std::uint64_t token = 0;
    for (int op = 0; op < 300; ++op) {
      const std::uint64_t dice = rng.below(100);
      if (dice < 58) {
        const int home = static_cast<int>(rng.below(kShards + 1));
        const int chain_home = (home + 1) % (kShards + 1);
        std::uint64_t delay = rng.below(64);
        const std::uint64_t kind = rng.below(10);
        if (kind >= 5 && kind < 8) delay = rng.below(1'000'000);
        if (kind >= 8) delay = rng.below(1ULL << 40);
        const bool chain = rng.below(4) == 0;
        const std::uint64_t chain_delay = rng.below(1000);
        const std::uint64_t t = token++;
        single_ids.push_back(single.schedule_at(
            single.now() + delay,
            [&single, &single_fired, t, chain, chain_delay] {
              single_fired.push_back(t);
              if (chain) {
                single.schedule_at(single.now() + chain_delay,
                                   [&single_fired, t] {
                                     single_fired.push_back(t | (1ULL << 63));
                                   });
              }
            }));
        sim::Simulator& engine = sharded.engine(home);
        sim::Simulator& chain_engine = sharded.engine(chain_home);
        sharded_id_home.push_back(home);
        sharded_ids.push_back(engine.schedule_at(
            engine.now() + delay,
            [&chain_engine, &sharded_fired, t, chain, chain_delay] {
              sharded_fired.push_back(t);
              if (chain) {
                // Cross-engine child relative to now(): clock alignment
                // before every serial-exact fire makes this legal.
                chain_engine.schedule_at(
                    chain_engine.now() + chain_delay, [&sharded_fired, t] {
                      sharded_fired.push_back(t | (1ULL << 63));
                    });
              }
            }));
      } else if (dice < 72 && !single_ids.empty()) {
        const std::size_t pick = rng.below(single_ids.size());
        single.cancel(single_ids[pick]);  // stale handles included: no-ops
        sharded.engine(sharded_id_home[pick]).cancel(sharded_ids[pick]);
      } else if (dice < 97) {
        const sim::SimTime horizon = single.now() + rng.below(1 << 20);
        single.run_until(horizon);
        sharded.global().run_until(horizon);
      } else {
        single.run_until(sim::kNever);
        sharded.global().run_until(sim::kNever);
      }
      ++result.items_checked;
    }
    single.run_until(sim::kNever);
    sharded.global().run_until(sim::kNever);
    if (single_fired != sharded_fired) {
      result.violations.push_back(
          "seed " + std::to_string(seed) + ": firing order diverged (" +
          std::to_string(single_fired.size()) + " single vs " +
          std::to_string(sharded_fired.size()) + " sharded fires)");
    }
    if (single.now() != sharded.global().now()) {
      result.violations.push_back(
          "seed " + std::to_string(seed) + ": clocks diverged (" +
          std::to_string(single.now()) + " single vs " +
          std::to_string(sharded.global().now()) + " sharded global)");
    }
    std::uint64_t sharded_executed = 0;
    for (int e = 0; e <= kShards; ++e) {
      sharded_executed += sharded.engine(e).events_executed();
    }
    if (single.events_executed() != sharded_executed ||
        !sharded.global().idle()) {
      result.violations.push_back(std::to_string(seed) +
                                  ": executed counts or idle() diverged");
    }
  }

  // Leg B: the same workload with conservative-lookahead windows enabled
  // must produce the identical per-engine firing log as with them off.
  // Each shard runs a self-chaining event train (rescheduling DURING the
  // window exercises the strided seq ranges); the global engine fires
  // sparse punctuation events that bound every window.
  auto run_leg_b = [](bool parallel, std::uint64_t* windows) {
    sim::ShardedSimulator sharded({.shards = kShards, .threads = 1});
    sharded.set_lookahead(5'000);  // ns, the usual propagation delay
    sharded.set_parallel_enabled(parallel);
    std::array<std::vector<sim::SimTime>, kShards + 1> logs;
    std::vector<std::unique_ptr<std::function<void()>>> keepers;
    for (int s = 0; s < kShards; ++s) {
      sim::Simulator& engine = sharded.engine(s);
      auto fn = std::make_unique<std::function<void()>>();
      auto left = std::make_shared<int>(400);
      std::function<void()>* fp = fn.get();
      std::vector<sim::SimTime>* log = &logs[static_cast<std::size_t>(s)];
      const sim::SimTime delta = 100 + static_cast<sim::SimTime>(s) * 37;
      *fp = [&engine, log, delta, left, fp] {
        log->push_back(engine.now());
        if (--*left > 0) engine.schedule_in(delta, *fp);
      };
      engine.schedule_in(delta, *fp);
      keepers.push_back(std::move(fn));
    }
    for (int g = 1; g <= 5; ++g) {
      sharded.global().schedule_at(
          static_cast<sim::SimTime>(g) * 9'000,
          [&sharded, &logs] { logs[kShards].push_back(sharded.global().now()); });
    }
    sharded.global().run_until(sim::kNever);
    *windows = sharded.stats().windows;
    return logs;
  };
  std::uint64_t serial_windows = 0;
  std::uint64_t parallel_windows = 0;
  const auto serial_logs = run_leg_b(false, &serial_windows);
  const auto parallel_logs = run_leg_b(true, &parallel_windows);
  if (serial_logs != parallel_logs) {
    result.violations.push_back(
        "parallel windows diverged from serial-exact per-engine logs");
  }
  if (parallel_windows == 0) {
    result.violations.push_back(
        "parallel leg executed no windows (lookahead machinery inert)");
  }
  result.items_checked += static_cast<std::uint64_t>(kShards) * 400 + 5;
  result.metrics.emplace_back("parallel_windows", parallel_windows);

  result.metrics.emplace_back(
      "diff_ops", static_cast<std::uint64_t>(result.items_checked));
  result.ok = result.violations.empty();
  return result;
}

CheckResult check_admission_conservation(core::MimicController& mc) {
  // AC-1: queued + admitted + shed == offered, and no tenant exceeds its
  // quota.  Concretely: (a) every offered establish is accounted exactly
  // once -- admitted (past or in flight), shed with a Busy reply, or still
  // queued; (b) the same conservation holds for half-open control sessions
  // (opened == completed + reaped + live); (c) with limits enabled, no
  // tenant holds more pending work or half-open sessions than its quota
  // and no bucket holds more than burst tokens; (d) every half-open
  // session past its idle deadline has a live reaper timer (no zombies).
  CheckResult result;
  const ctrl::AdmissionController& ac = mc.admission();
  const ctrl::AdmissionController::Stats& stats = ac.stats();
  const ctrl::AdmissionConfig& config = ac.config();

  const std::uint64_t accounted =
      stats.admitted + stats.shed + static_cast<std::uint64_t>(ac.queued_count());
  if (stats.offered != accounted) {
    result.violations.push_back(
        "request conservation broken: offered=" + std::to_string(stats.offered) +
        " != admitted+shed+queued=" + std::to_string(accounted));
  }
  ++result.items_checked;

  const std::uint64_t sessions_accounted =
      stats.sessions_completed + stats.sessions_reaped +
      static_cast<std::uint64_t>(ac.half_open_count());
  if (stats.sessions_opened != sessions_accounted) {
    result.violations.push_back(
        "session conservation broken: opened=" +
        std::to_string(stats.sessions_opened) +
        " != completed+reaped+live=" + std::to_string(sessions_accounted));
  }
  ++result.items_checked;

  for (const auto& tenant : ac.tenant_snapshot()) {
    const std::string who = "tenant " + std::to_string(tenant.tenant);
    if (config.enabled && tenant.pending > config.tenant_pending_quota) {
      result.violations.push_back(
          who + " exceeds pending quota: " + std::to_string(tenant.pending) +
          " > " + std::to_string(config.tenant_pending_quota));
    }
    if (config.enabled && tenant.half_open > config.tenant_half_open_quota) {
      result.violations.push_back(
          who + " exceeds half-open quota: " +
          std::to_string(tenant.half_open) + " > " +
          std::to_string(config.tenant_half_open_quota));
    }
    if (tenant.tokens < -1e-6 || tenant.tokens > config.tenant_burst + 1e-6) {
      result.violations.push_back(who + " bucket out of range [0, burst]");
    }
    ++result.items_checked;
  }

  for (const std::uint64_t id : ac.zombie_sessions()) {
    result.violations.push_back("half-open session " + std::to_string(id) +
                                " is past its deadline with no reaper armed");
  }
  ++result.items_checked;

  result.metrics.emplace_back("offered", stats.offered);
  result.metrics.emplace_back("admitted", stats.admitted);
  result.metrics.emplace_back("shed", stats.shed);
  result.metrics.emplace_back("exempt", stats.exempt);
  result.metrics.emplace_back(
      "queued", static_cast<std::uint64_t>(ac.queued_count()));
  result.metrics.emplace_back(
      "half_open", static_cast<std::uint64_t>(ac.half_open_count()));
  result.metrics.emplace_back("sessions_reaped", stats.sessions_reaped);
  result.ok = result.violations.empty();
  return result;
}

}  // namespace

const CheckResult& RunReport::check(std::string_view id) const {
  for (const auto& c : checks) {
    if (c.id == id) return c;
  }
  MIC_ASSERT_MSG(false, "audit check id not registered");
  __builtin_unreachable();
}

std::string RunReport::first_violation() const {
  for (const auto& c : checks) {
    if (!c.violations.empty()) return c.id + ": " + c.violations.front();
  }
  return {};
}

std::string RunReport::summary() const {
  std::string out;
  for (const auto& c : checks) {
    if (!out.empty()) out += ", ";
    out += c.id;
    out += c.ok ? " ok (" : " FAILED (";
    out += std::to_string(c.ok ? c.items_checked : c.violations.size());
    out += c.ok ? " checked)" : " violations)";
  }
  return out;
}

Registry::Registry() {
  add("FT-1", "flow-table lookup equivalence", check_flow_tables);
  add("CA-1", "collision / MAGA label audit",
      [](core::MimicController& mc) {
        return from_audit_report(core::audit_collisions(mc));
      });
  add("PE-1", "path-row determinism", check_path_rows);
  add("FD-1", "orphan-rule / live-channel audit",
      [](core::MimicController& mc) {
        return from_audit_report(core::audit_orphan_rules(mc));
      });
  add("RC-1", "journal / switch-resync consistency",
      check_recovery_consistency);
  add("RC-2", "controller-generation (failover) consistency",
      check_failover_consistency);
  add("SIM-2", "timing-wheel / reference-scheduler equivalence",
      check_scheduler_equivalence);
  add("SIM-3", "sharded / single-engine equivalence",
      check_sharded_equivalence);
  add("AC-1", "control-plane admission conservation",
      check_admission_conservation);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::string id, std::string name, CheckFn fn) {
  for (const auto& e : checks_) {
    MIC_ASSERT_MSG(e.id != id, "duplicate audit check id");
  }
  checks_.push_back(Entry{std::move(id), std::move(name), std::move(fn)});
}

RunReport Registry::run_all(core::MimicController& mc) const {
  RunReport report;
  report.checks.reserve(checks_.size());
  for (const auto& e : checks_) {
    CheckResult result = e.fn(mc);
    result.id = e.id;
    result.name = e.name;
    report.ok = report.ok && result.ok;
    report.checks.push_back(std::move(result));
  }
  return report;
}

CheckResult Registry::run(std::string_view id,
                          core::MimicController& mc) const {
  for (const auto& e : checks_) {
    if (e.id == id) {
      CheckResult result = e.fn(mc);
      result.id = e.id;
      result.name = e.name;
      return result;
    }
  }
  MIC_ASSERT_MSG(false, "audit check id not registered");
  __builtin_unreachable();
}

std::vector<std::string> Registry::ids() const {
  std::vector<std::string> out;
  out.reserve(checks_.size());
  for (const auto& e : checks_) out.push_back(e.id);
  return out;
}

RunReport run_all(core::MimicController& mc) {
  return Registry::instance().run_all(mc);
}

}  // namespace mic::audit
