// Unified invariant-audit registry (DESIGN.md "Invariant catalog").
//
// The repo accumulated four executable runtime invariants in four places:
// FT-1 (two-tier flow-table lookup equivalence), CA-1 (collision audit),
// PE-1 (path-row determinism) and FD-1 (orphan-rule audit).  Tests, the
// chaos soak and the examples each grew their own ad-hoc call sites, which
// meant a new subsystem's invariant had to be wired into every checkpoint
// by hand -- and usually wasn't.
//
// audit::Registry is the single choke point: the built-in invariants
// register themselves once (in audit_registry.cpp), future subsystems call
// Registry::instance().add(...) from their own translation unit, and every
// checkpoint -- a test's quiescence assertion, the chaos soak, an
// example's exit status -- invokes one run_all(fabric) and gets every
// registered invariant, including ones that did not exist when the
// checkpoint was written.
//
// Checks run on the single-threaded event loop between simulator runs
// (they walk flow tables and the path-row cache); the registry itself is
// immutable after static registration.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mic::core {
class MimicController;
}  // namespace mic::core

namespace mic::audit {

/// Outcome of one invariant's audit pass.
struct CheckResult {
  std::string id;    // stable identifier, e.g. "FT-1"
  std::string name;  // human label, e.g. "flow-table lookup equivalence"
  bool ok = true;
  std::size_t items_checked = 0;  // rules / rows / probes the check walked
  std::vector<std::string> violations;
  /// Check-specific counters (e.g. FD-1 exposes "mflow_rules" so tests can
  /// assert a fabric holds literally zero channel rules).
  std::vector<std::pair<std::string, std::uint64_t>> metrics;

  std::uint64_t metric(std::string_view key) const noexcept {
    for (const auto& [k, v] : metrics) {
      if (k == key) return v;
    }
    return 0;
  }
};

/// One run_all() checkpoint: every registered invariant, in registration
/// order.
struct RunReport {
  bool ok = true;
  std::vector<CheckResult> checks;

  /// The named check; aborts if the id was never registered (a typo in a
  /// test should fail loudly, not vacuously pass).
  const CheckResult& check(std::string_view id) const;

  /// First violation across all checks, prefixed with its invariant id --
  /// the one-line diagnosis for EXPECT_TRUE(report.ok) << ... messages.
  std::string first_violation() const;

  /// "FT-1 ok (123 checked), CA-1 ok (...), ..." -- for example binaries.
  std::string summary() const;
};

class Registry {
 public:
  using CheckFn = std::function<CheckResult(core::MimicController&)>;

  /// The process-wide registry, with the four built-in invariants (FT-1,
  /// CA-1, PE-1, FD-1) already registered.
  static Registry& instance();

  /// Register an invariant.  `fn` fills ok/items_checked/violations; id
  /// and name are stamped by the registry.  Duplicate ids abort: two
  /// subsystems claiming one identifier is a wiring bug.
  void add(std::string id, std::string name, CheckFn fn);

  /// Run every registered invariant against the controller's fabric view.
  RunReport run_all(core::MimicController& mc) const;

  /// Run one invariant by id; aborts on unknown ids.
  CheckResult run(std::string_view id, core::MimicController& mc) const;

  std::vector<std::string> ids() const;

 private:
  Registry();

  struct Entry {
    std::string id;
    std::string name;
    CheckFn fn;
  };
  std::vector<Entry> checks_;  // registration order == report order
};

/// The one-call checkpoint: run every registered invariant.
RunReport run_all(core::MimicController& mc);

/// Convenience overload for anything fabric-shaped (core::Fabric,
/// core::GenericFabric, test beds): run against its Mimic Controller.
template <typename FabricT>
  requires requires(FabricT& f) {
    { f.mc() } -> std::convertible_to<core::MimicController&>;
  }
RunReport run_all(FabricT& fabric) {
  return run_all(fabric.mc());
}

}  // namespace mic::audit
