#include "core/channel.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace mic::core {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t& at) {
  MIC_ASSERT(at + 2 <= in.size());
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(in[at]) << 8) | in[at + 1]);
  at += 2;
  return v;
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& at) {
  const std::uint32_t hi = get_u16(in, at);
  return (hi << 16) | get_u16(in, at);
}

}  // namespace

std::vector<std::uint8_t> serialize_request(const EstablishRequest& req) {
  std::vector<std::uint8_t> out;
  put_u32(out, req.initiator_ip.value);
  put_u32(out, req.responder_ip.value);
  put_u16(out, req.responder_port);
  out.push_back(static_cast<std::uint8_t>(req.flow_count));
  out.push_back(static_cast<std::uint8_t>(req.mn_count));
  out.push_back(static_cast<std::uint8_t>(req.multicast_decoys));
  out.push_back(static_cast<std::uint8_t>(req.service_name.size()));
  out.insert(out.end(), req.service_name.begin(), req.service_name.end());
  put_u16(out, static_cast<std::uint16_t>(req.initiator_sports.size()));
  for (const auto port : req.initiator_sports) put_u16(out, port);
  return out;
}

EstablishRequest deserialize_request(const std::vector<std::uint8_t>& bytes) {
  EstablishRequest req;
  std::size_t at = 0;
  req.initiator_ip = net::Ipv4{get_u32(bytes, at)};
  req.responder_ip = net::Ipv4{get_u32(bytes, at)};
  req.responder_port = get_u16(bytes, at);
  MIC_ASSERT(at + 4 <= bytes.size());
  req.flow_count = bytes[at++];
  req.mn_count = bytes[at++];
  req.multicast_decoys = bytes[at++];
  const std::size_t name_len = bytes[at++];
  MIC_ASSERT(at + name_len <= bytes.size());
  req.service_name.assign(bytes.begin() + static_cast<long>(at),
                          bytes.begin() + static_cast<long>(at + name_len));
  at += name_len;
  const std::size_t n_ports = get_u16(bytes, at);
  req.initiator_sports.reserve(n_ports);
  for (std::size_t i = 0; i < n_ports; ++i) {
    req.initiator_sports.push_back(get_u16(bytes, at));
  }
  return req;
}

void crypt_control_message(const crypto::Aes128::Key& key,
                           std::uint64_t message_counter,
                           std::vector<std::uint8_t>& bytes) {
  crypto::Aes128::Block iv{};
  store_be64(iv.data(), message_counter);
  crypto::aes128_ctr(key, iv, bytes);
}

}  // namespace mic::core
