// Mimic-channel data model shared by the Mimic Controller and the client
// library: per-hop address plans, establishment requests/results, and the
// (real, AES-encrypted) control-message serialization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/maga_registry.hpp"
#include "crypto/aes128.hpp"
#include "net/addr.hpp"
#include "sim/time.hpp"
#include "topology/graph.hpp"

namespace mic::core {

using ChannelId = std::uint64_t;

/// The addresses a packet carries on one path segment.  mpls == kNoMpls on
/// the first segment (host cannot tag) and the last (the last MN pops).
struct HopAddresses {
  net::Ipv4 src;
  net::Ipv4 dst;
  net::L4Port sport = 0;
  net::L4Port dport = 0;
  net::MplsLabel mpls = net::kNoMpls;
  bool operator==(const HopAddresses&) const noexcept = default;
};

/// One decoy replica emitted by the partially-multicast mechanism.
struct DecoyPlan {
  MTuple tuple;
  topo::PortId out_port = topo::kInvalidPort;
  topo::NodeId next_switch = topo::kInvalidNode;
  topo::PortId next_in_port = topo::kInvalidPort;
  FlowId flow_id = kInvalidFlowId;
  bool operator==(const DecoyPlan&) const noexcept = default;
};

/// Complete routing plan of one m-flow (paper Sec IV-B2): a path, the MN
/// positions on it, and the address sequence in both directions.
struct MFlowPlan {
  FlowId flow_id = kInvalidFlowId;
  topo::Path path;                        // forward, hosts at both ends
  std::vector<std::size_t> mn_positions;  // ascending indices into `path`
  std::vector<HopAddresses> forward;      // size N+1; [0]=initial, [N]=final
  std::vector<HopAddresses> reverse;      // same, along the reversed path
  std::vector<DecoyPlan> decoys;          // at the first forward MN
  bool operator==(const MFlowPlan&) const noexcept = default;
};

struct ChannelState {
  ChannelId id = 0;
  topo::NodeId initiator = topo::kInvalidNode;
  topo::NodeId responder = topo::kInvalidNode;
  std::vector<MFlowPlan> flows;
  std::vector<topo::NodeId> touched_switches;
  bool idle = false;
  std::uint64_t idle_since = 0;  // sim time of the last idle notification
  /// Install-transaction generation.  Bumped whenever the channel's rules
  /// are (re-)issued; in-flight commits from an older generation must not
  /// retry, roll back, or otherwise touch the cookie they no longer own.
  std::uint64_t install_txn = 0;
};

struct EstablishRequest {
  net::Ipv4 initiator_ip;
  /// Either a hidden-service nickname or an explicit responder address.
  std::string service_name;
  net::Ipv4 responder_ip{0};
  net::L4Port responder_port = 0;

  int flow_count = 1;  // F: m-flows per channel
  int mn_count = 3;    // N: MNs per m-flow (the paper's default route length)
  /// The initiator pre-binds one source port per m-flow so the MC can
  /// install exact reverse-path rewrites.
  std::vector<net::L4Port> initiator_sports;
  /// Partial multicast: number of decoy replicas at the first MN (0 = off).
  int multicast_decoys = 0;
};

struct EntryAddress {
  net::Ipv4 ip;
  net::L4Port port = 0;
};

struct EstablishResult {
  bool ok = false;
  /// Load-shed by admission control: the MC is alive but refused the work.
  /// Distinct from ok == false errors (which are final) and from silence
  /// (which means the MC is down) -- the client should back off for
  /// `retry_after` and try again.
  bool busy = false;
  sim::SimTime retry_after = 0;
  std::string error;
  ChannelId channel = 0;
  std::vector<EntryAddress> entries;  // one per m-flow
};

/// The Busy{retry_after} control reply admission control sheds with.
inline EstablishResult busy_result(sim::SimTime retry_after) {
  EstablishResult result;
  result.busy = true;
  result.retry_after = retry_after;
  result.error = "controller busy; retry after backoff";
  return result;
}

// --- control-channel wire format -------------------------------------------
//
// The client<->MC request really is serialized and AES-128-CTR encrypted
// with the pre-shared key (paper Sec VI: "The communication between the
// client and the MC is encrypted using private key", with AES for the
// request packet).

std::vector<std::uint8_t> serialize_request(const EstablishRequest& req);
EstablishRequest deserialize_request(const std::vector<std::uint8_t>& bytes);

/// In-place CTR encryption/decryption with a per-message IV derived from a
/// message counter.
void crypt_control_message(const crypto::Aes128::Key& key,
                           std::uint64_t message_counter,
                           std::vector<std::uint8_t>& bytes);

}  // namespace mic::core
