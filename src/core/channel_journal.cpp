#include "core/channel_journal.hpp"

#include <algorithm>
#include <utility>

namespace mic::core {

bool structurally_equal(const ChannelState& a, const ChannelState& b) {
  return a.id == b.id && a.initiator == b.initiator &&
         a.responder == b.responder && a.flows == b.flows &&
         a.touched_switches == b.touched_switches &&
         a.install_txn == b.install_txn;
}

void ChannelJournal::record_establish(const ChannelState& state,
                                      ChannelId next_channel,
                                      std::uint32_t next_group) {
  JournalRecord record;
  record.type = JournalRecordType::kEstablish;
  record.channel = state.id;
  record.state = state;
  record.next_channel = next_channel;
  record.next_group = next_group;
  append(std::move(record));
}

void ChannelJournal::record_repair(const ChannelState& state,
                                   ChannelId next_channel,
                                   std::uint32_t next_group) {
  JournalRecord record;
  record.type = JournalRecordType::kRepair;
  record.channel = state.id;
  record.state = state;
  record.next_channel = next_channel;
  record.next_group = next_group;
  append(std::move(record));
}

void ChannelJournal::record_teardown(ChannelId channel) {
  JournalRecord record;
  record.type = JournalRecordType::kTeardown;
  record.channel = channel;
  append(std::move(record));
}

JournalImage ChannelJournal::replay() const {
  JournalImage image;
  for (const JournalRecord& record : records_) {
    switch (record.type) {
      case JournalRecordType::kEstablish:
      case JournalRecordType::kRepair:
      case JournalRecordType::kSnapshot: {
        ChannelState state = record.state;
        // Idle bookkeeping is soft state: a recovered channel restarts
        // its idle clock rather than inheriting a stale timestamp.
        state.idle = false;
        state.idle_since = 0;
        image.channels.insert_or_assign(record.channel, std::move(state));
        image.next_channel = std::max(image.next_channel, record.next_channel);
        image.next_group = std::max(image.next_group, record.next_group);
        break;
      }
      case JournalRecordType::kTeardown:
        image.channels.erase(record.channel);
        break;
    }
  }
  return image;
}

void ChannelJournal::compact() {
  JournalImage image = replay();
  records_.clear();
  for (auto& [id, state] : image.channels) {
    JournalRecord record;
    record.type = JournalRecordType::kSnapshot;
    record.channel = id;
    record.state = std::move(state);
    record.next_channel = image.next_channel;
    record.next_group = image.next_group;
    record.seq = next_seq_++;
    records_.push_back(std::move(record));
  }
  ++compactions_;
}

void ChannelJournal::truncate_tail(std::size_t n) {
  records_.resize(records_.size() - std::min(n, records_.size()));
}

void ChannelJournal::clear() { records_.clear(); }

void ChannelJournal::append(JournalRecord record) {
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
  if (compaction_threshold_ != 0 && records_.size() > compaction_threshold_) {
    compact();
  }
}

}  // namespace mic::core
