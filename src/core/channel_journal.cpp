#include "core/channel_journal.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "core/journal_store.hpp"

namespace mic::core {

bool structurally_equal(const ChannelState& a, const ChannelState& b) {
  return a.id == b.id && a.initiator == b.initiator &&
         a.responder == b.responder && a.flows == b.flows &&
         a.touched_switches == b.touched_switches &&
         a.install_txn == b.install_txn;
}

ChannelJournal::ChannelJournal(const ChannelJournal& other)
    : records_(other.records_),
      next_seq_(other.next_seq_),
      compaction_threshold_(other.compaction_threshold_),
      compactions_(other.compactions_),
      epoch_(other.epoch_) {}

ChannelJournal& ChannelJournal::operator=(const ChannelJournal& other) {
  if (this == &other) return *this;
  records_ = other.records_;
  next_seq_ = other.next_seq_;
  compaction_threshold_ = other.compaction_threshold_;
  compactions_ = other.compactions_;
  epoch_ = other.epoch_;
  // store_/listener_/unshipped_ deliberately untouched: the plumbing stays
  // with whatever this journal was wired to (see header).
  return *this;
}

void ChannelJournal::record_establish(const ChannelState& state,
                                      ChannelId next_channel,
                                      std::uint32_t next_group) {
  JournalRecord record;
  record.type = JournalRecordType::kEstablish;
  record.channel = state.id;
  record.state = state;
  record.next_channel = next_channel;
  record.next_group = next_group;
  append(std::move(record));
}

void ChannelJournal::record_repair(const ChannelState& state,
                                   ChannelId next_channel,
                                   std::uint32_t next_group) {
  JournalRecord record;
  record.type = JournalRecordType::kRepair;
  record.channel = state.id;
  record.state = state;
  record.next_channel = next_channel;
  record.next_group = next_group;
  append(std::move(record));
}

void ChannelJournal::record_teardown(ChannelId channel) {
  JournalRecord record;
  record.type = JournalRecordType::kTeardown;
  record.channel = channel;
  append(std::move(record));
}

void ChannelJournal::adopt_record(JournalRecord record) {
  next_seq_ = std::max(next_seq_, record.seq + 1);
  epoch_ = std::max(epoch_, record.epoch);
  records_.push_back(std::move(record));
  if (compaction_threshold_ != 0 && records_.size() > compaction_threshold_) {
    compact();
  }
}

JournalImage ChannelJournal::replay() const {
  JournalImage image;
  for (const JournalRecord& record : records_) {
    image.epoch = std::max(image.epoch, record.epoch);
    switch (record.type) {
      case JournalRecordType::kEstablish:
      case JournalRecordType::kRepair:
      case JournalRecordType::kSnapshot: {
        ChannelState state = record.state;
        // Idle bookkeeping is soft state: a recovered channel restarts
        // its idle clock rather than inheriting a stale timestamp.
        state.idle = false;
        state.idle_since = 0;
        image.channels.insert_or_assign(record.channel, std::move(state));
        image.next_channel = std::max(image.next_channel, record.next_channel);
        image.next_group = std::max(image.next_group, record.next_group);
        break;
      }
      case JournalRecordType::kTeardown:
        image.channels.erase(record.channel);
        break;
    }
  }
  return image;
}

void ChannelJournal::compact() {
  JournalImage image = replay();
  records_.clear();
  for (auto& [id, state] : image.channels) {
    JournalRecord record;
    record.type = JournalRecordType::kSnapshot;
    record.channel = id;
    record.state = std::move(state);
    record.next_channel = image.next_channel;
    record.next_group = image.next_group;
    record.seq = next_seq_++;
    record.epoch = epoch_;
    records_.push_back(std::move(record));
  }
  ++compactions_;
  if (store_ != nullptr) {
    store_->compact(records_);
    // A compaction syncs everything: whatever was pending is durable now.
    maybe_ship();
  }
}

void ChannelJournal::truncate_tail(std::size_t n) {
  records_.resize(records_.size() - std::min(n, records_.size()));
}

void ChannelJournal::clear() {
  records_.clear();
  // Records that never reached the commit frontier die with the crash:
  // they must not ship to a standby after the fact.
  unshipped_.clear();
  if (store_ != nullptr) store_->compact({});
}

void ChannelJournal::attach_store(JournalStore* store) {
  if (store != nullptr) {
    MIC_ASSERT_MSG(records_.empty() && next_seq_ == 1,
                   "attach_store after records were written");
  }
  store_ = store;
}

void ChannelJournal::set_commit_listener(
    std::function<void(const JournalRecord&)> listener) {
  listener_ = std::move(listener);
  if (!listener_) return;
  // Catch-up: everything already committed (= in the log minus the
  // still-unshipped tail) is the follower's starting history.
  MIC_ASSERT(unshipped_.size() <= records_.size());
  const std::size_t committed = records_.size() - unshipped_.size();
  for (std::size_t i = 0; i < committed; ++i) listener_(records_[i]);
}

void ChannelJournal::commit_boundary() {
  if (store_ != nullptr) store_->commit_boundary();
  maybe_ship();
}

std::uint64_t ChannelJournal::durable_frontier() const {
  return store_ != nullptr ? store_->records_durable() : real_appends_;
}

void ChannelJournal::maybe_ship() {
  while (!unshipped_.empty() &&
         real_appends_ - unshipped_.size() < durable_frontier()) {
    JournalRecord record = std::move(unshipped_.front());
    unshipped_.pop_front();
    ++shipped_;
    if (listener_) listener_(record);
  }
}

void ChannelJournal::append(JournalRecord record) {
  record.seq = next_seq_++;
  record.epoch = epoch_;
  records_.push_back(record);
  ++real_appends_;
  if (store_ != nullptr) {
    store_->append(record);
    unshipped_.push_back(std::move(record));
    maybe_ship();
  } else if (listener_) {
    ++shipped_;
    listener_(record);
  }
  if (compaction_threshold_ != 0 && records_.size() > compaction_threshold_) {
    compact();
  }
}

}  // namespace mic::core
