// Write-ahead channel journal: the Mimic Controller's durable record of
// every channel it has planned.  Each establish/repair commits a compact
// record (channel id, flow ids, MN list, m-address tuples, MPLS labels,
// install-txn generation — i.e. the full ChannelState) together with the
// allocator high-water marks needed to restart id allocation; teardowns
// append a tombstone.  `replay()` folds the log into the image a restarted
// MC adopts, `compact()` rewrites the log as one snapshot record per live
// channel, and `truncate_tail()` models a crash mid-commit (the tail
// record never made it to stable storage).
//
// The in-memory log can be backed by a JournalStore (journal_store.hpp):
// every append is mirrored into the store's CRC-framed segment log, and the
// store's fsync policy decides when a record becomes *committed* (durable).
// Committed records are what the journal ships to a subscribed follower
// (the warm standby's replica stream): a record lost to a crash before its
// fsync is, by construction, also a record the standby never saw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "core/channel.hpp"

namespace mic::core {

class JournalStore;

enum class JournalRecordType : std::uint8_t {
  kEstablish,  // full ChannelState at plan time
  kRepair,     // full ChannelState after a replan (install_txn bumped)
  kTeardown,   // tombstone: only `channel` is meaningful
  kSnapshot,   // one live channel, produced by compact()
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kEstablish;
  std::uint64_t seq = 0;  // monotone across compactions
  /// Journal epoch (controller generation) at commit time: bumped on every
  /// recovery/takeover, stamped into this record and fenced at the
  /// switches so a deposed ex-primary's ops are refused.
  std::uint64_t epoch = 0;
  ChannelId channel = 0;
  /// Valid for kEstablish/kRepair/kSnapshot.
  ChannelState state;
  /// Allocator high-water marks at commit time (kEstablish/kRepair/
  /// kSnapshot): the next channel id and the next SELECT-group id the MC
  /// would hand out.  Replay takes the max so a recovered MC never reuses
  /// an id that may still be wired into a switch.
  ChannelId next_channel = 0;
  std::uint32_t next_group = 0;
};

/// The folded view of the log: what a restarted MC believes exists.
struct JournalImage {
  std::map<ChannelId, ChannelState> channels;  // ordered => deterministic
  ChannelId next_channel = 0;
  std::uint32_t next_group = 0;
  /// Highest epoch seen in the log; a recovering controller resumes at
  /// epoch + 1.
  std::uint64_t epoch = 0;
};

/// Structural identity of two channel states: everything the data plane
/// and the allocators depend on.  Soft liveness state (`idle`,
/// `idle_since`) is deliberately excluded — it is not journaled and a
/// recovered channel restarts its idle clock.
bool structurally_equal(const ChannelState& a, const ChannelState& b);

class ChannelJournal {
 public:
  ChannelJournal() = default;
  /// Copies carry the log, not the plumbing: an attached store, commit
  /// listener, and unshipped queue stay with the original (the chaos
  /// harness copies journals to model torn tails; a copy must never write
  /// to the primary's disk or ship to its standby).
  ChannelJournal(const ChannelJournal& other);
  ChannelJournal& operator=(const ChannelJournal& other);

  void record_establish(const ChannelState& state, ChannelId next_channel,
                        std::uint32_t next_group);
  void record_repair(const ChannelState& state, ChannelId next_channel,
                     std::uint32_t next_group);
  void record_teardown(ChannelId channel);

  /// Append a record verbatim, preserving its seq/epoch stamps: how a
  /// standby's replica ingests shipped records, and how a log loaded from
  /// a JournalStore is rebuilt.
  void adopt_record(JournalRecord record);

  /// Fold the log into the image a recovering MC adopts.
  JournalImage replay() const;

  /// Rewrite the log as one kSnapshot record per live channel (id order).
  /// Sequence numbers keep increasing: a snapshot is an append that
  /// obsoletes the prefix, not a history rewrite.
  void compact();

  /// Drop the last `n` records, as if the process died before they hit
  /// stable storage.  Clamped to the log length.
  void truncate_tail(std::size_t n);

  void clear();

  /// Auto-compact whenever the log exceeds `records` entries (0 = never).
  void set_compaction_threshold(std::size_t records) {
    compaction_threshold_ = records;
  }

  // --- durability + replication plumbing -------------------------------------

  /// Mirror every subsequent append into `store` (nullptr detaches).  Must
  /// be attached before the first record is written: the store is the
  /// journal's stable storage, not a partial backup.
  void attach_store(JournalStore* store);
  JournalStore* store() const noexcept { return store_; }

  /// Subscribe to committed records (the standby's replication stream).
  /// Records already committed are delivered immediately, then every
  /// record as soon as its bytes are durable under the store's fsync
  /// policy (instantly when no store is attached).
  void set_commit_listener(std::function<void(const JournalRecord&)> listener);

  /// Transaction boundary: under FsyncPolicy::kCommitBoundary this is
  /// where the store syncs and pending records become committed/shipped.
  void commit_boundary();

  std::uint64_t epoch() const noexcept { return epoch_; }
  void set_epoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }

  const std::vector<JournalRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  /// Total records ever appended (monotone; survives compaction).
  std::uint64_t appends() const noexcept { return next_seq_ - 1; }
  std::uint64_t compactions() const noexcept { return compactions_; }
  /// Committed records delivered to the commit listener so far.
  std::uint64_t records_shipped() const noexcept { return shipped_; }

 private:
  void append(JournalRecord record);
  /// Deliver queued records whose bytes the store has made durable.
  void maybe_ship();
  std::uint64_t durable_frontier() const;

  std::vector<JournalRecord> records_;
  std::uint64_t next_seq_ = 1;
  std::size_t compaction_threshold_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t epoch_ = 0;

  JournalStore* store_ = nullptr;
  std::function<void(const JournalRecord&)> listener_;
  /// Appended but not yet known-durable records, pending shipment.
  std::deque<JournalRecord> unshipped_;
  std::uint64_t real_appends_ = 0;  // via append(); excludes snapshots
  std::uint64_t shipped_ = 0;
};

}  // namespace mic::core
