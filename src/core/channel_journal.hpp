// Write-ahead channel journal: the Mimic Controller's durable record of
// every channel it has planned.  Each establish/repair commits a compact
// record (channel id, flow ids, MN list, m-address tuples, MPLS labels,
// install-txn generation — i.e. the full ChannelState) together with the
// allocator high-water marks needed to restart id allocation; teardowns
// append a tombstone.  `replay()` folds the log into the image a restarted
// MC adopts, `compact()` rewrites the log as one snapshot record per live
// channel, and `truncate_tail()` models a crash mid-commit (the tail
// record never made it to stable storage).
//
// The journal is in-memory: this simulation models the *protocol* (what
// must be logged, and how a restarted controller reconciles switches
// against the log), not the storage engine underneath it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/channel.hpp"

namespace mic::core {

enum class JournalRecordType : std::uint8_t {
  kEstablish,  // full ChannelState at plan time
  kRepair,     // full ChannelState after a replan (install_txn bumped)
  kTeardown,   // tombstone: only `channel` is meaningful
  kSnapshot,   // one live channel, produced by compact()
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kEstablish;
  std::uint64_t seq = 0;  // monotone across compactions
  ChannelId channel = 0;
  /// Valid for kEstablish/kRepair/kSnapshot.
  ChannelState state;
  /// Allocator high-water marks at commit time (kEstablish/kRepair/
  /// kSnapshot): the next channel id and the next SELECT-group id the MC
  /// would hand out.  Replay takes the max so a recovered MC never reuses
  /// an id that may still be wired into a switch.
  ChannelId next_channel = 0;
  std::uint32_t next_group = 0;
};

/// The folded view of the log: what a restarted MC believes exists.
struct JournalImage {
  std::map<ChannelId, ChannelState> channels;  // ordered => deterministic
  ChannelId next_channel = 0;
  std::uint32_t next_group = 0;
};

/// Structural identity of two channel states: everything the data plane
/// and the allocators depend on.  Soft liveness state (`idle`,
/// `idle_since`) is deliberately excluded — it is not journaled and a
/// recovered channel restarts its idle clock.
bool structurally_equal(const ChannelState& a, const ChannelState& b);

class ChannelJournal {
 public:
  void record_establish(const ChannelState& state, ChannelId next_channel,
                        std::uint32_t next_group);
  void record_repair(const ChannelState& state, ChannelId next_channel,
                     std::uint32_t next_group);
  void record_teardown(ChannelId channel);

  /// Fold the log into the image a recovering MC adopts.
  JournalImage replay() const;

  /// Rewrite the log as one kSnapshot record per live channel (id order).
  /// Sequence numbers keep increasing: a snapshot is an append that
  /// obsoletes the prefix, not a history rewrite.
  void compact();

  /// Drop the last `n` records, as if the process died before they hit
  /// stable storage.  Clamped to the log length.
  void truncate_tail(std::size_t n);

  void clear();

  /// Auto-compact whenever the log exceeds `records` entries (0 = never).
  void set_compaction_threshold(std::size_t records) {
    compaction_threshold_ = records;
  }

  const std::vector<JournalRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  /// Total records ever appended (monotone; survives compaction).
  std::uint64_t appends() const noexcept { return next_seq_ - 1; }
  std::uint64_t compactions() const noexcept { return compactions_; }

 private:
  void append(JournalRecord record);

  std::vector<JournalRecord> records_;
  std::uint64_t next_seq_ = 1;
  std::size_t compaction_threshold_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace mic::core
