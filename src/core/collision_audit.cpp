#include "core/collision_audit.hpp"

#include <algorithm>
#include <sstream>

namespace mic::core {

namespace {

std::string describe(topo::NodeId sw, const switchd::FlowRule& rule,
                     const char* what) {
  std::ostringstream out;
  out << "switch " << sw << " prio " << rule.priority << " cookie "
      << rule.cookie << ": " << what;
  return out.str();
}

}  // namespace

AuditReport audit_collisions(MimicController& mc) {
  AuditReport report;
  auto& registry = mc.registry();

  for (const topo::NodeId sw : mc.graph().switches()) {
    const auto& rules = mc.switch_at(sw)->table().rules();

    // 1. No duplicate (priority, match).
    for (std::size_t i = 0; i < rules.size(); ++i) {
      ++report.rules_checked;
      for (std::size_t j = i + 1; j < rules.size(); ++j) {
        if (rules[i].priority == rules[j].priority &&
            rules[i].match == rules[j].match) {
          report.ok = false;
          report.violations.push_back(
              describe(sw, rules[i], "duplicate (priority, match) pair"));
        }
      }
    }

    for (const auto& rule : rules) {
      // 2. Matched MF tuples must belong to an active flow of the MN that
      //    generated them (identified through the label class).
      if (rule.priority >= ctrl::kPriorityMFlow && rule.match.mpls) {
        ++report.mflow_rules;
        const net::MplsLabel label = *rule.match.mpls;
        const std::uint8_t cls = registry.class_of_label(label);
        if (cls == registry.c_id()) {
          report.ok = false;
          report.violations.push_back(
              describe(sw, rule, "m-flow rule matches a CF-class label"));
          continue;
        }
        const topo::NodeId generator = registry.switch_of_class(cls);
        if (generator == topo::kInvalidNode) {
          report.ok = false;
          report.violations.push_back(
              describe(sw, rule, "MF label class maps to no registered MN"));
          continue;
        }
        MTuple tuple{*rule.match.src, *rule.match.dst, *rule.match.sport,
                     *rule.match.dport, label};
        const FlowId flow = registry.flow_id_of(generator, tuple);
        if (!registry.flow_id_active(flow)) {
          report.ok = false;
          report.violations.push_back(describe(
              sw, rule, "matched m-tuple does not hash to an active flow ID"));
        }
      }

      // 3. Rewrite targets produced *by this switch* must hash to an active
      //    flow under this switch's own function and carry its own label
      //    class (MAGA-1); CF tags written by ingress rules must classify
      //    as C_ID.
      auto check_actions = [&](const std::vector<switchd::Action>& actions) {
        net::Ipv4 new_src{}, new_dst{};
        net::L4Port new_sport = 0, new_dport = 0;
        net::MplsLabel new_label = net::kNoMpls;
        bool has_set_mpls = false, has_set_ips = false;
        for (const auto& action : actions) {
          if (const auto* set_src = std::get_if<switchd::SetSrc>(&action)) {
            new_src = set_src->ip;
            has_set_ips = true;
          } else if (const auto* set_dst =
                         std::get_if<switchd::SetDst>(&action)) {
            new_dst = set_dst->ip;
          } else if (const auto* set_sport =
                         std::get_if<switchd::SetSport>(&action)) {
            new_sport = set_sport->port;
          } else if (const auto* set_dport =
                         std::get_if<switchd::SetDport>(&action)) {
            new_dport = set_dport->port;
          } else if (const auto* set_mpls =
                         std::get_if<switchd::SetMpls>(&action)) {
            new_label = set_mpls->label;
            has_set_mpls = true;
          }
        }
        if (!has_set_mpls) return;
        const std::uint8_t cls = registry.class_of_label(new_label);
        if (!has_set_ips) {
          // Ingress CF tagging: the label must be in the common class.
          if (cls != registry.c_id()) {
            report.ok = false;
            report.violations.push_back(describe(
                sw, rule, "CF ingress tag label not in the common class"));
          }
          return;
        }
        // A full MN rewrite: label class must be this switch's S_ID and the
        // produced tuple must hash to an active flow under this switch.
        if (cls != registry.s_id(sw)) {
          report.ok = false;
          report.violations.push_back(describe(
              sw, rule, "MN rewrite label not in this switch's class"));
          return;
        }
        const MTuple tuple{new_src, new_dst, new_sport, new_dport, new_label};
        if (!registry.flow_id_active(registry.flow_id_of(sw, tuple))) {
          report.ok = false;
          report.violations.push_back(describe(
              sw, rule, "MN rewrite tuple does not hash to an active flow"));
        }
      };
      check_actions(rule.actions);
      for (const auto& action : rule.actions) {
        if (const auto* grp = std::get_if<switchd::GroupAction>(&action)) {
          const auto* group = mc.switch_at(sw)->table().group(grp->group_id);
          if (group == nullptr) {
            report.ok = false;
            report.violations.push_back(
                describe(sw, rule, "dangling group reference"));
            continue;
          }
          for (const auto& bucket : group->buckets) check_actions(bucket);
        }
      }
    }
  }
  return report;
}

AuditReport audit_orphan_rules(MimicController& mc) {
  AuditReport report;
  const std::vector<ChannelId> live = mc.channel_ids();
  const auto is_live = [&live](std::uint64_t cookie) {
    return std::binary_search(live.begin(), live.end(), cookie);
  };

  // 1. Every installed cookie belongs to a live channel (or is CF state).
  for (const topo::NodeId sw : mc.graph().switches()) {
    const auto& table = mc.switch_at(sw)->table();
    for (const auto& rule : table.rules()) {
      ++report.rules_checked;
      if (rule.cookie == ctrl::kL3Cookie) continue;
      ++report.mflow_rules;
      if (!is_live(rule.cookie)) {
        report.ok = false;
        report.violations.push_back(
            describe(sw, rule, "orphan rule: cookie has no live channel"));
      }
    }
    for (const auto& group : table.groups()) {
      ++report.rules_checked;
      if (group.cookie == ctrl::kL3Cookie || is_live(group.cookie)) continue;
      report.ok = false;
      report.violations.push_back(
          "switch " + std::to_string(sw) + " group " +
          std::to_string(group.group_id) +
          ": orphan group: cookie has no live channel");
    }
  }

  // 2. Every live channel's rules actually exist where its plan says.
  for (const ChannelId id : live) {
    const ChannelState* state = mc.channel(id);
    for (const topo::NodeId sw : state->touched_switches) {
      bool found = false;
      for (const auto& rule : mc.switch_at(sw)->table().rules()) {
        if (rule.cookie == id) {
          found = true;
          break;
        }
      }
      if (!found) {
        report.ok = false;
        report.violations.push_back(
            "channel " + std::to_string(id) + ": no rules on switch " +
            std::to_string(sw) + " despite touching it");
      }
    }
  }
  return report;
}

}  // namespace mic::core
