// Collision audit: an executable check of the Collision Avoidance
// Mechanism's invariants (DESIGN.md CA-1, MAGA-1..3).
//
// Walks every switch's flow table and verifies that
//  1. no two rules share (priority, match) -- the data-plane precondition
//     for deterministic forwarding,
//  2. every m-flow rule's matched three-tuple hashes to an *active* flow ID
//     under the owning switch's MAGA function,
//  3. every MF label's class equals the switch's S_ID, every CF label's
//     class equals C_ID, and the two never mix.
#pragma once

#include <string>
#include <vector>

#include "core/mimic_controller.hpp"

namespace mic::core {

struct AuditReport {
  bool ok = true;
  std::vector<std::string> violations;
  std::size_t rules_checked = 0;
  std::size_t mflow_rules = 0;
};

AuditReport audit_collisions(MimicController& mc);

/// Orphan-rule audit (DESIGN.md FD-1): after quiescence, the installed
/// rule set and the live channel set must coincide --
///  1. every rule and group on every switch is either common-flow state
///     (cookie == ctrl::kL3Cookie) or tagged with a *live* channel ID, and
///  2. every live channel has at least one rule on each switch its plan
///     says it touches.
/// Violations mean a teardown/repair/rollback leaked state (1) or a commit
/// claimed success it never delivered (2).
AuditReport audit_orphan_rules(MimicController& mc);

}  // namespace mic::core
