#include "core/fabric.hpp"

#include "switchd/sdn_switch.hpp"

namespace mic::core {

Fabric::Fabric(FabricOptions options)
    : options_(options),
      fattree_(options.k),
      network_(simulator_, fattree_.graph(), options.link),
      rng_(options.seed) {
  ctrl::HostAddressing addressing;
  for (const topo::NodeId sw : fattree_.graph().switches()) {
    network_.set_device(sw, std::make_unique<switchd::SdnSwitch>());
  }
  for (const topo::NodeId h : fattree_.hosts()) {
    const net::Ipv4 ip{fattree_.host_ip(h)};
    auto host = std::make_unique<transport::Host>(ip);
    hosts_.push_back(host.get());
    addressing.add(h, ip);
    network_.set_device(h, std::move(host));
  }
  mc_ = std::make_unique<MimicController>(network_, std::move(addressing),
                                          rng_.next(), options_.mic,
                                          options_.controller);
  if (options_.install_default_routing) {
    mc_->install_default_routing();
  }
  // Loss of signal anywhere in the fabric reaches the MC by itself; the
  // harness only has to flip links, never to report them.
  mc_->enable_failure_detection();
}

GenericFabric::GenericFabric(
    const topo::Graph& graph,
    std::vector<std::pair<topo::NodeId, net::Ipv4>> host_addrs,
    FabricOptions options)
    : host_addrs_(std::move(host_addrs)),
      network_(simulator_, graph, options.link),
      rng_(options.seed) {
  ctrl::HostAddressing addressing;
  for (const topo::NodeId sw : graph.switches()) {
    network_.set_device(sw, std::make_unique<switchd::SdnSwitch>());
  }
  for (const auto& [node, ip] : host_addrs_) {
    MIC_ASSERT_MSG(graph.is_host(node), "host address on a switch node");
    auto host = std::make_unique<transport::Host>(ip);
    hosts_.push_back(host.get());
    addressing.add(node, ip);
    network_.set_device(node, std::move(host));
  }
  mc_ = std::make_unique<MimicController>(network_, std::move(addressing),
                                          rng_.next(), options.mic,
                                          options.controller);
  if (options.install_default_routing) {
    mc_->install_default_routing();
  }
  mc_->enable_failure_detection();
}

}  // namespace mic::core
