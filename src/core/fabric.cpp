#include "core/fabric.hpp"

#include <cstdlib>

#include "switchd/sdn_switch.hpp"

namespace mic::core {

namespace {

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return fallback;
}

sim::ShardedOptions resolve_sharding(const FabricOptions& options) {
  sim::ShardedOptions out;
  out.shards = options.sim_shards > 0 ? options.sim_shards
                                      : env_int("MIC_SIM_SHARDS", 1);
  out.threads = options.sim_threads > 0 ? options.sim_threads
                                        : env_int("MIC_SIM_THREADS", 0);
  return out;
}

bool resolve_parallel(const FabricOptions& options) {
  return options.sim_parallel || env_int("MIC_SIM_PARALLEL", 0) != 0;
}

/// Deterministic shard for nodes without a pod (core switches, arbitrary
/// topologies): splitmix64 finalizer on the node id.
int hash_shard(topo::NodeId node, int shards) {
  std::uint64_t x = static_cast<std::uint64_t>(node) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(shards));
}

}  // namespace

Fabric::Fabric(FabricOptions options)
    : options_(options),
      sharded_(resolve_sharding(options)),
      fattree_(options.k),
      network_(sharded_, fattree_.graph(), options.link),
      rng_(options.seed) {
  if (sharded_.coordinated()) {
    // Pod-sharded partition: a pod's edge/agg switches and hosts share a
    // shard (pods are where the traffic locality is); core switches have
    // no pod and spread deterministically by hash.  Installed before any
    // set_device so devices cache their shard engine.
    std::vector<int> shard_of(fattree_.graph().size());
    for (topo::NodeId n = 0; n < fattree_.graph().size(); ++n) {
      const int pod = fattree_.pod_of(n);
      shard_of[n] = pod >= 0 ? pod % sharded_.shards()
                             : hash_shard(n, sharded_.shards());
    }
    network_.set_shard_map(shard_of);
    sharded_.set_parallel_enabled(resolve_parallel(options_));
  }
  ctrl::HostAddressing addressing;
  for (const topo::NodeId sw : fattree_.graph().switches()) {
    network_.set_device(sw, std::make_unique<switchd::SdnSwitch>());
  }
  for (const topo::NodeId h : fattree_.hosts()) {
    const net::Ipv4 ip{fattree_.host_ip(h)};
    auto host = std::make_unique<transport::Host>(ip);
    hosts_.push_back(host.get());
    addressing.add(h, ip);
    network_.set_device(h, std::move(host));
  }
  mc_ = std::make_unique<MimicController>(network_, std::move(addressing),
                                          rng_.next(), options_.mic,
                                          options_.controller);
  if (options_.install_default_routing) {
    mc_->install_default_routing();
  }
  // Loss of signal anywhere in the fabric reaches the MC by itself; the
  // harness only has to flip links, never to report them.
  mc_->enable_failure_detection();
}

GenericFabric::GenericFabric(
    const topo::Graph& graph,
    std::vector<std::pair<topo::NodeId, net::Ipv4>> host_addrs,
    FabricOptions options)
    : sharded_(resolve_sharding(options)),
      host_addrs_(std::move(host_addrs)),
      network_(sharded_, graph, options.link),
      rng_(options.seed) {
  if (sharded_.coordinated()) {
    // No pod structure to exploit: every node spreads by hash.
    std::vector<int> shard_of(graph.size());
    for (topo::NodeId n = 0; n < graph.size(); ++n) {
      shard_of[n] = hash_shard(n, sharded_.shards());
    }
    network_.set_shard_map(shard_of);
    sharded_.set_parallel_enabled(resolve_parallel(options));
  }
  ctrl::HostAddressing addressing;
  for (const topo::NodeId sw : graph.switches()) {
    network_.set_device(sw, std::make_unique<switchd::SdnSwitch>());
  }
  for (const auto& [node, ip] : host_addrs_) {
    MIC_ASSERT_MSG(graph.is_host(node), "host address on a switch node");
    auto host = std::make_unique<transport::Host>(ip);
    hosts_.push_back(host.get());
    addressing.add(node, ip);
    network_.set_device(node, std::move(host));
  }
  mc_ = std::make_unique<MimicController>(network_, std::move(addressing),
                                          rng_.next(), options.mic,
                                          options.controller);
  if (options.install_default_routing) {
    mc_->install_default_routing();
  }
  mc_->enable_failure_detection();
}

}  // namespace mic::core
