// Turn-key simulated data center: a k-ary fat-tree with SDN switches on
// every switch node, a TCP/SSL-capable host on every host node, and a Mimic
// Controller with default routing installed.  This is the paper's testbed
// (Mininet, Fig. 5) in one object; examples, tests and every benchmark
// build on it.
#pragma once

#include <memory>

#include "core/mimic_controller.hpp"
#include "sim/sharded_simulator.hpp"
#include "topology/fattree.hpp"
#include "transport/tcp.hpp"

namespace mic::core {

struct FabricOptions {
  int k = 4;  // fat-tree arity (k=4 gives the paper's 16-host, 20-switch pod)
  std::uint64_t seed = 42;
  net::LinkConfig link;  // 1 Gb/s, 5 us, 150 KB queues by default
  MicConfig mic;
  ctrl::ControllerConfig controller;
  bool install_default_routing = true;
  /// Device shards for the pod-sharded simulation engine.  0 = take the
  /// MIC_SIM_SHARDS environment variable (default 1: single engine).
  /// Devices map shard = pod % shards; core switches hash deterministically.
  int sim_shards = 0;
  /// Worker threads for parallel windows.  0 = MIC_SIM_THREADS env, else
  /// auto (hardware concurrency; 1 thread = cooperative windows).
  int sim_threads = 0;
  /// Enable conservative-lookahead parallel windows.  Off by default: the
  /// serial-exact interleave is always bit-identical to a single engine;
  /// windows additionally trade same-nanosecond cross-shard tie order and
  /// are what the throughput benches opt into (or MIC_SIM_PARALLEL=1).
  bool sim_parallel = false;
};

class Fabric {
 public:
  explicit Fabric(FabricOptions options = {});

  /// The global/control engine; `run_until` on it drives every shard.
  sim::Simulator& simulator() noexcept { return sharded_.global(); }
  sim::ShardedSimulator& sharded() noexcept { return sharded_; }
  const topo::FatTree& fattree() const noexcept { return fattree_; }
  net::Network& network() noexcept { return network_; }
  MimicController& mc() noexcept { return *mc_; }
  Rng& rng() noexcept { return rng_; }

  std::size_t host_count() const noexcept { return hosts_.size(); }
  /// The i-th host (in fat-tree order: pod by pod, edge by edge).
  transport::Host& host(std::size_t i) noexcept { return *hosts_[i]; }
  net::Ipv4 ip(std::size_t i) const {
    return net::Ipv4{fattree_.host_ip(fattree_.hosts()[i])};
  }
  topo::NodeId host_node(std::size_t i) const { return fattree_.hosts()[i]; }

 private:
  FabricOptions options_;
  sim::ShardedSimulator sharded_;
  topo::FatTree fattree_;
  net::Network network_;
  Rng rng_;
  std::vector<transport::Host*> hosts_;  // owned by network_
  std::unique_ptr<MimicController> mc_;
};

/// MIC on an arbitrary SDN topology.  The caller supplies any graph (which
/// must outlive the fabric) plus (host node, IP) assignments; everything
/// else -- SDN switches, hosts, the Mimic Controller, default routing --
/// is wired identically to the fat-tree Fabric.  Demonstrates that nothing
/// in MIC is fat-tree specific.
class GenericFabric {
 public:
  GenericFabric(const topo::Graph& graph,
                std::vector<std::pair<topo::NodeId, net::Ipv4>> host_addrs,
                FabricOptions options = {});

  sim::Simulator& simulator() noexcept { return sharded_.global(); }
  sim::ShardedSimulator& sharded() noexcept { return sharded_; }
  net::Network& network() noexcept { return network_; }
  MimicController& mc() noexcept { return *mc_; }
  Rng& rng() noexcept { return rng_; }

  std::size_t host_count() const noexcept { return hosts_.size(); }
  transport::Host& host(std::size_t i) noexcept { return *hosts_[i]; }
  net::Ipv4 ip(std::size_t i) const { return host_addrs_[i].second; }
  topo::NodeId host_node(std::size_t i) const { return host_addrs_[i].first; }

 private:
  sim::ShardedSimulator sharded_;
  std::vector<std::pair<topo::NodeId, net::Ipv4>> host_addrs_;
  net::Network network_;
  Rng rng_;
  std::vector<transport::Host*> hosts_;  // owned by network_
  std::unique_ptr<MimicController> mc_;
};

}  // namespace mic::core
