#include "core/fault_injector.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace mic::core {

namespace {

std::string us(sim::SimTime t) {
  return std::to_string(t / 1000) + "us";
}

}  // namespace

FaultInjector::FaultInjector(net::Network& network, MimicController& mc,
                             FaultInjectorOptions options)
    : network_(network), mc_(mc), options_(options), rng_(options.seed) {
  MIC_ASSERT(options_.min_outage > 0 &&
             options_.min_outage <= options_.max_outage);
}

void FaultInjector::arm() {
  MIC_ASSERT_MSG(!armed_, "FaultInjector::arm called twice");
  armed_ = true;

  sim::Simulator& sim = network_.simulator();
  const topo::Graph& graph = mc_.graph();
  auto fault_time = [this] {
    return options_.start + rng_.below(std::max<sim::SimTime>(options_.window, 1));
  };
  auto outage_time = [this] {
    return options_.min_outage +
           rng_.below(options_.max_outage - options_.min_outage + 1);
  };

  // Crash victims first; flap victims then avoid their incident links, so a
  // flap's restore can never half-revive a switch the schedule crashed.
  std::vector<topo::NodeId> switches = graph.switches();
  rng_.shuffle(switches);
  const std::size_t crash_count =
      std::min<std::size_t>(static_cast<std::size_t>(
                                std::max(options_.switch_crashes, 0)),
                            switches.size());
  std::unordered_set<topo::NodeId> crash_victims(
      switches.begin(), switches.begin() + crash_count);

  for (std::size_t i = 0; i < crash_count; ++i) {
    const topo::NodeId sw = switches[i];
    const sim::SimTime down_at = fault_time();
    const sim::SimTime up_at = down_at + outage_time();
    schedule_log_.push_back("crash switch " + std::to_string(sw) + " @" +
                            us(down_at) + " until " + us(up_at));
    sim.schedule_in(down_at, [this, sw, &graph] {
      crashed_now_.insert(sw);
      for (const auto& adj : graph.neighbors(sw)) {
        network_.set_link_up(adj.link, false);
      }
      mc_.fail_switch(sw);
      ++switches_crashed_;
    });
    sim.schedule_in(up_at, [this, sw, &graph] {
      crashed_now_.erase(sw);
      // Leave links to a still-crashed peer down; that peer's own recovery
      // raises them, so a zombie neighbour is never routed through.
      for (const auto& adj : graph.neighbors(sw)) {
        if (!crashed_now_.contains(adj.peer)) {
          network_.set_link_up(adj.link, true);
        }
      }
      mc_.restore_switch(sw);
    });
  }

  // Link flaps: distinct victims, switch-switch links preferred (in a
  // server-centric topology like BCube every link touches a host and all
  // are eligible), never incident to a crash victim.
  std::vector<topo::LinkId> interior, any;
  for (topo::LinkId link = 0;
       link < static_cast<topo::LinkId>(graph.link_count()); ++link) {
    const auto [a, b] = graph.link_endpoints(link);
    if (crash_victims.contains(a) || crash_victims.contains(b)) continue;
    any.push_back(link);
    if (graph.is_switch(a) && graph.is_switch(b)) interior.push_back(link);
  }
  std::vector<topo::LinkId>& candidates = interior.empty() ? any : interior;
  rng_.shuffle(candidates);
  const std::size_t flap_count = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(options_.link_flaps, 0)),
      candidates.size());
  for (std::size_t i = 0; i < flap_count; ++i) {
    const topo::LinkId link = candidates[i];
    const sim::SimTime down_at = fault_time();
    const sim::SimTime up_at = down_at + outage_time();
    schedule_log_.push_back("flap link " + std::to_string(link) + " @" +
                            us(down_at) + " until " + us(up_at));
    sim.schedule_in(down_at, [this, link] {
      network_.set_link_up(link, false);
      ++links_flapped_;
    });
    sim.schedule_in(up_at,
                    [this, link] { network_.set_link_up(link, true); });
  }

  // Install-fault bursts: one switch per burst starts rejecting flow-mods.
  for (int i = 0; i < options_.install_fault_bursts && !switches.empty();
       ++i) {
    const topo::NodeId sw =
        switches[rng_.below(static_cast<std::uint64_t>(switches.size()))];
    const sim::SimTime at = fault_time();
    const std::uint64_t fault_seed = rng_.next();
    schedule_log_.push_back("install faults on switch " + std::to_string(sw) +
                            " @" + us(at) + " for " +
                            us(options_.install_fault_duration));
    sim.schedule_in(at, [this, sw, fault_seed] {
      mc_.switch_at(sw)->inject_install_faults(
          options_.install_fault_probability, fault_seed);
      ++bursts_fired_;
    });
    sim.schedule_in(at + options_.install_fault_duration, [this, sw] {
      mc_.switch_at(sw)->clear_install_faults();
    });
  }

  // Control-message drop bursts (controller-wide).
  for (int i = 0; i < options_.control_drop_bursts; ++i) {
    const sim::SimTime at = fault_time();
    schedule_log_.push_back("control drops @" + us(at) + " for " +
                            us(options_.control_drop_duration));
    sim.schedule_in(at, [this] {
      mc_.set_control_drop_probability(options_.control_drop_probability);
      ++bursts_fired_;
    });
    sim.schedule_in(at + options_.control_drop_duration, [this] {
      mc_.set_control_drop_probability(0.0);
    });
  }

  // MC crash/recover cycles.  Drawn last so mc_crashes = 0 reproduces the
  // pre-existing schedule for any seed bit-for-bit.
  for (int i = 0; i < options_.mc_crashes; ++i) {
    const sim::SimTime down_at = fault_time();
    const sim::SimTime up_at = down_at + outage_time();
    schedule_log_.push_back("crash MC @" + us(down_at) + " until " +
                            us(up_at));
    sim.schedule_in(down_at, [this] {
      if (mc_.crashed()) return;  // an earlier cycle is still down
      mc_.crash();
      ++mc_crashes_fired_;
    });
    sim.schedule_in(up_at, [this] {
      if (!mc_.crashed()) return;  // paired crash was skipped
      if (options_.mc_crash_truncate_records > 0) {
        ChannelJournal damaged = mc_.journal();
        damaged.truncate_tail(
            static_cast<std::size_t>(options_.mc_crash_truncate_records));
        recoveries_.push_back(mc_.recover(damaged));
      } else {
        recoveries_.push_back(mc_.recover(mc_.journal()));
      }
    });
  }
}

}  // namespace mic::core
