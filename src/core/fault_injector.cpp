#include "core/fault_injector.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "core/journal_store.hpp"
#include "ctrl/standby.hpp"

namespace mic::core {

namespace {

std::string us(sim::SimTime t) {
  return std::to_string(t / 1000) + "us";
}

}  // namespace

FaultInjector::FaultInjector(net::Network& network, MimicController& mc,
                             FaultInjectorOptions options)
    : network_(network), mc_(mc), options_(options), rng_(options.seed) {
  MIC_ASSERT(options_.min_outage > 0 &&
             options_.min_outage <= options_.max_outage);
}

void FaultInjector::arm() {
  MIC_ASSERT_MSG(!armed_, "FaultInjector::arm called twice");
  armed_ = true;

  sim::Simulator& sim = network_.simulator();
  const topo::Graph& graph = mc_.graph();
  auto fault_time = [this] {
    return options_.start + rng_.below(std::max<sim::SimTime>(options_.window, 1));
  };
  auto outage_time = [this] {
    return options_.min_outage +
           rng_.below(options_.max_outage - options_.min_outage + 1);
  };

  // Crash victims first; flap victims then avoid their incident links, so a
  // flap's restore can never half-revive a switch the schedule crashed.
  std::vector<topo::NodeId> switches = graph.switches();
  rng_.shuffle(switches);
  const std::size_t crash_count =
      std::min<std::size_t>(static_cast<std::size_t>(
                                std::max(options_.switch_crashes, 0)),
                            switches.size());
  std::unordered_set<topo::NodeId> crash_victims(
      switches.begin(), switches.begin() + crash_count);

  for (std::size_t i = 0; i < crash_count; ++i) {
    const topo::NodeId sw = switches[i];
    const sim::SimTime down_at = fault_time();
    const sim::SimTime up_at = down_at + outage_time();
    schedule_log_.push_back("crash switch " + std::to_string(sw) + " @" +
                            us(down_at) + " until " + us(up_at));
    sim.schedule_in(down_at, [this, sw, &graph] {
      crashed_now_.insert(sw);
      for (const auto& adj : graph.neighbors(sw)) {
        network_.set_link_up(adj.link, false);
      }
      mc_.fail_switch(sw);
      ++switches_crashed_;
    });
    sim.schedule_in(up_at, [this, sw, &graph] {
      crashed_now_.erase(sw);
      // Leave links to a still-crashed peer down; that peer's own recovery
      // raises them, so a zombie neighbour is never routed through.
      for (const auto& adj : graph.neighbors(sw)) {
        if (!crashed_now_.contains(adj.peer)) {
          network_.set_link_up(adj.link, true);
        }
      }
      mc_.restore_switch(sw);
    });
  }

  // Link flaps: distinct victims, switch-switch links preferred (in a
  // server-centric topology like BCube every link touches a host and all
  // are eligible), never incident to a crash victim.
  std::vector<topo::LinkId> interior, any;
  for (topo::LinkId link = 0;
       link < static_cast<topo::LinkId>(graph.link_count()); ++link) {
    const auto [a, b] = graph.link_endpoints(link);
    if (crash_victims.contains(a) || crash_victims.contains(b)) continue;
    any.push_back(link);
    if (graph.is_switch(a) && graph.is_switch(b)) interior.push_back(link);
  }
  std::vector<topo::LinkId>& candidates = interior.empty() ? any : interior;
  rng_.shuffle(candidates);
  const std::size_t flap_count = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(options_.link_flaps, 0)),
      candidates.size());
  for (std::size_t i = 0; i < flap_count; ++i) {
    const topo::LinkId link = candidates[i];
    const sim::SimTime down_at = fault_time();
    const sim::SimTime up_at = down_at + outage_time();
    schedule_log_.push_back("flap link " + std::to_string(link) + " @" +
                            us(down_at) + " until " + us(up_at));
    sim.schedule_in(down_at, [this, link] {
      network_.set_link_up(link, false);
      ++links_flapped_;
    });
    sim.schedule_in(up_at,
                    [this, link] { network_.set_link_up(link, true); });
  }

  // Install-fault bursts: one switch per burst starts rejecting flow-mods.
  for (int i = 0; i < options_.install_fault_bursts && !switches.empty();
       ++i) {
    const topo::NodeId sw =
        switches[rng_.below(static_cast<std::uint64_t>(switches.size()))];
    const sim::SimTime at = fault_time();
    const std::uint64_t fault_seed = rng_.next();
    schedule_log_.push_back("install faults on switch " + std::to_string(sw) +
                            " @" + us(at) + " for " +
                            us(options_.install_fault_duration));
    sim.schedule_in(at, [this, sw, fault_seed] {
      mc_.switch_at(sw)->inject_install_faults(
          options_.install_fault_probability, fault_seed);
      ++bursts_fired_;
    });
    sim.schedule_in(at + options_.install_fault_duration, [this, sw] {
      mc_.switch_at(sw)->clear_install_faults();
    });
  }

  // Control-message drop bursts (controller-wide).
  for (int i = 0; i < options_.control_drop_bursts; ++i) {
    const sim::SimTime at = fault_time();
    schedule_log_.push_back("control drops @" + us(at) + " for " +
                            us(options_.control_drop_duration));
    sim.schedule_in(at, [this] {
      mc_.set_control_drop_probability(options_.control_drop_probability);
      ++bursts_fired_;
    });
    sim.schedule_in(at + options_.control_drop_duration, [this] {
      mc_.set_control_drop_probability(0.0);
    });
  }

  // MC crash/recover cycles.  Drawn last so mc_crashes = 0 reproduces the
  // pre-existing schedule for any seed bit-for-bit.
  for (int i = 0; i < options_.mc_crashes; ++i) {
    const sim::SimTime down_at = fault_time();
    const sim::SimTime up_at = down_at + outage_time();
    schedule_log_.push_back("crash MC @" + us(down_at) + " until " +
                            us(up_at));
    sim.schedule_in(down_at, [this] {
      if (mc_.crashed()) return;  // an earlier cycle is still down
      mc_.crash();
      ++mc_crashes_fired_;
    });
    sim.schedule_in(up_at, [this] {
      if (!mc_.crashed()) return;  // paired crash was skipped
      if (options_.mc_crash_truncate_records > 0) {
        ChannelJournal damaged = mc_.journal();
        damaged.truncate_tail(
            static_cast<std::size_t>(options_.mc_crash_truncate_records));
        recoveries_.push_back(mc_.recover(damaged));
      } else {
        recoveries_.push_back(mc_.recover(mc_.journal()));
      }
    });
  }

  // Control-plane attack traffic, drawn after every fault draw above (the
  // same append-only rule as the MC crashes): enabling the flood or the
  // slow-client trickle never perturbs an existing seed's fault schedule.
  // All randomness is drawn here at arm() time -- the scheduled callbacks
  // touch no rng, so the attack replays bit-identically under sharding.
  if (options_.establish_floods > 0 || options_.slow_client_sessions > 0) {
    std::vector<topo::NodeId> hosts = graph.hosts();
    MIC_ASSERT(!hosts.empty());
    rng_.shuffle(hosts);
    std::size_t next_host = 0;
    auto pick_host = [&] { return hosts[next_host++ % hosts.size()]; };

    for (int burst = 0; burst < options_.establish_floods; ++burst) {
      const sim::SimTime burst_at = fault_time();
      for (int a = 0; a < options_.flood_attackers; ++a) {
        const topo::NodeId attacker_host = pick_host();
        const net::Ipv4 attacker = mc_.addressing().ip_of(attacker_host);
        // Key exchange done in advance (register_client is idempotent and
        // keys survive MC crashes), so the flood itself spends no MC rng.
        mc_.register_client(attacker);
        attacker_ips_.push_back(attacker);
        schedule_log_.push_back(
            "flood " + std::to_string(options_.flood_requests) +
            " establishes from host " + std::to_string(attacker_host) +
            " @" + us(burst_at) + " over " + us(options_.flood_duration));
        for (int r = 0; r < options_.flood_requests; ++r) {
          const sim::SimTime at =
              burst_at +
              rng_.below(std::max<sim::SimTime>(options_.flood_duration, 1));
          const std::uint64_t counter = rng_.next();
          sim.schedule_in(at, [this, attacker, counter] {
            send_flood_request(attacker, counter);
          });
        }
      }
    }

    for (int s = 0; s < options_.slow_client_sessions; ++s) {
      const topo::NodeId host = pick_host();
      const net::Ipv4 client = mc_.addressing().ip_of(host);
      const sim::SimTime open_at = fault_time();
      schedule_log_.push_back("slow-client session from host " +
                              std::to_string(host) + " @" + us(open_at) +
                              ", " +
                              std::to_string(options_.slow_client_touches) +
                              " touches, abandoned");
      // The id is only known once the open fires; the touch events share it.
      auto id = std::make_shared<MimicController::ControlSessionId>(0);
      sim.schedule_in(open_at, [this, client, id] {
        *id = mc_.open_control_session(client);
        if (*id != 0) ++slow_sessions_opened_;
      });
      for (int t = 1; t <= options_.slow_client_touches; ++t) {
        sim.schedule_in(open_at + t * options_.slow_client_touch_gap,
                        [this, id] {
                          if (*id != 0) mc_.touch_control_session(*id);
                        });
      }
      // ...and never completed: the half-open reaper must collect it.
    }
  }

  // Durable-storage faults and primary kills, drawn after every draw above
  // (the same append-only rule): enabling them never perturbs an existing
  // seed's fault, flood or slow-client schedule.  All randomness is drawn
  // here at arm() time; the callbacks touch no rng.
  if (options_.storage_bit_flips > 0 || options_.fsync_lapse_windows > 0) {
    MIC_ASSERT_MSG(backend_ != nullptr,
                   "storage faults need attach_journal_backend()");
  }
  for (int i = 0; i < options_.storage_bit_flips; ++i) {
    const sim::SimTime at = fault_time();
    const std::uint64_t which = rng_.next();
    schedule_log_.push_back("flip journal bit @" + us(at));
    sim.schedule_in(at, [this, which] {
      backend_->flip_bit(which);
      ++storage_faults_fired_;
    });
  }
  for (int i = 0; i < options_.fsync_lapse_windows; ++i) {
    const sim::SimTime at = fault_time();
    schedule_log_.push_back(
        "fsync lapse x" + std::to_string(options_.fsync_lapse_count) + " @" +
        us(at));
    sim.schedule_in(at, [this] {
      backend_->lapse_fsyncs(options_.fsync_lapse_count);
      ++storage_faults_fired_;
    });
  }

  using KillMode = FaultInjectorOptions::PrimaryKillMode;
  if (options_.primary_kills > 0) {
    MIC_ASSERT_MSG(standby_ != nullptr,
                   "primary kills need attach_standby()");
  }
  for (int i = 0; i < options_.primary_kills; ++i) {
    const sim::SimTime kill_at = fault_time();
    // Drawn unconditionally so every mode shares one draw sequence: the
    // same seed produces kills at the same instants in all four modes.
    const std::uint64_t torn_bytes = 1 + rng_.below(48);
    const char* mode = "clean";
    switch (options_.primary_kill_mode) {
      case KillMode::kClean: break;
      case KillMode::kTornTail: mode = "torn-tail"; break;
      case KillMode::kFsyncLapse: mode = "fsync-lapse"; break;
      case KillMode::kZombie: mode = "zombie"; break;
    }
    schedule_log_.push_back("kill primary MC (" + std::string(mode) + ") @" +
                            us(kill_at));
    if (options_.primary_kill_mode == KillMode::kFsyncLapse) {
      // Open the lapse window shortly before the kill: the final commits
      // look durable to the primary but never ship to the standby.
      const sim::SimTime lapse_at = kill_at > options_.fsync_lapse_lead
                                        ? kill_at - options_.fsync_lapse_lead
                                        : sim::SimTime{0};
      sim.schedule_in(lapse_at, [this] {
        if (backend_ != nullptr) {
          backend_->lapse_fsyncs(options_.fsync_lapse_count);
        }
      });
    }
    sim.schedule_in(kill_at, [this, torn_bytes] {
      ++primary_kills_fired_;
      if (options_.primary_kill_mode == KillMode::kZombie) {
        // The primary is healthy; only the standby's view of it dies.
        // The missed-heartbeat takeover fences every switch, and the
        // zombie's next southbound op deposes it.
        standby_->set_partitioned(true);
        return;
      }
      if (options_.primary_kill_mode == KillMode::kTornTail) {
        if (backend_ != nullptr) backend_->arm_torn_tail(torn_bytes);
        standby_->drop_replica_tail(
            static_cast<std::size_t>(options_.kill_truncate_records));
      }
      if (backend_ != nullptr) backend_->crash();
      if (!mc_.crashed()) mc_.crash();
    });
  }
}

void FaultInjector::send_flood_request(net::Ipv4 attacker,
                                       std::uint64_t counter) {
  // A well-formed, correctly encrypted request for a hidden service that
  // does not exist: the MC pays admission, decrypt and parse, then fails
  // planning -- pure control-plane load, no channel state left behind.
  EstablishRequest request;
  request.initiator_ip = attacker;
  request.service_name = "__chaff__";
  request.flow_count = 1;
  request.mn_count = 3;
  request.initiator_sports = {40000};
  std::vector<std::uint8_t> bytes = serialize_request(request);
  crypt_control_message(mc_.register_client(attacker), counter, bytes);
  ++flood_sent_;
  mc_.async_establish(attacker, std::move(bytes), counter,
                      [this](const EstablishResult& result) {
                        ++flood_answered_;
                        if (result.busy) ++flood_shed_;
                      });
}

}  // namespace mic::core
