// Deterministic fault-injection harness: a seeded schedule of link flaps,
// switch crash/recover cycles, rule-install fault bursts and control-message
// drop bursts, all scheduled on the simulator at arm() time.  Every fault it
// injects is transient (the schedule always restores what it broke), so a
// run that reaches quiescence does so on a healed fabric -- which is what
// the chaos soak's invariants (FD-1, CA-1, delivery) are defined against.
//
// The injector only touches public knobs: net::Network::set_link_up (the
// PHY), MimicController::fail_switch/restore_switch (operator-style crash
// semantics; the port-status pipeline detects the link side on its own),
// SdnSwitch::inject_install_faults and the controller's control-message
// drop probability.  Identical seed + topology + workload => identical
// schedule => identical simulation (SIM-1).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "core/mimic_controller.hpp"

namespace mic::ctrl {
class StandbyController;
}

namespace mic::core {

class SimBackend;

struct FaultInjectorOptions {
  std::uint64_t seed = 1;
  /// Faults fire at uniformly random offsets in [start, start + window),
  /// measured from the moment arm() is called.
  sim::SimTime start = sim::milliseconds(1);
  sim::SimTime window = sim::milliseconds(60);

  /// Link flaps: a link goes down, stays down for a uniform outage in
  /// [min_outage, max_outage], and comes back.  Victims prefer
  /// switch-switch links when the topology has any (fat-tree, leaf-spine);
  /// in server-centric topologies (BCube) every link is a host link and
  /// all are eligible.
  int link_flaps = 4;
  sim::SimTime min_outage = sim::milliseconds(1);
  sim::SimTime max_outage = sim::milliseconds(15);

  /// Whole-switch crash/recover cycles (same outage distribution).  Crash
  /// victims and flap victims are kept disjoint so a flap's restore cannot
  /// half-revive a crashed switch.
  int switch_crashes = 1;

  /// Rule-install fault bursts: one random switch rejects each install
  /// with `install_fault_probability` for `install_fault_duration`.
  int install_fault_bursts = 1;
  double install_fault_probability = 0.5;
  sim::SimTime install_fault_duration = sim::milliseconds(3);

  /// Control-message drop bursts: checked flow-mods/replies anywhere in
  /// the fabric are dropped with `control_drop_probability`.
  int control_drop_bursts = 1;
  double control_drop_probability = 0.25;
  sim::SimTime control_drop_duration = sim::milliseconds(3);

  /// Mimic-controller crash/recover cycles (same outage distribution):
  /// crash() wipes the MC's soft state mid-run, recover() replays the
  /// journal and resyncs every switch.  Scheduled after all other fault
  /// draws, so enabling them never perturbs an existing seed's link-flap /
  /// switch-crash schedule.  A crash landing while the MC is already down
  /// is skipped (one controller, one outage at a time).
  int mc_crashes = 0;
  /// Recover from a tail-truncated copy of the journal instead of the
  /// intact one -- models a crash that lost the last few commits.  The
  /// resync sweep then finds switches ahead of the journal and tears the
  /// unknown cookies down (reconcile-by-audit).
  int mc_crash_truncate_records = 0;

  /// Establishment floods: per burst, `flood_attackers` random hosts each
  /// fire `flood_requests` properly-encrypted establish requests (to an
  /// unknown hidden service -- pure control-plane load: the MC pays
  /// admission, decrypt and parse for every admitted one) at uniformly
  /// random offsets over `flood_duration`.  Drawn after the MC-crash draws
  /// (the same append-only rule), so enabling floods never perturbs an
  /// existing seed's schedule.
  int establish_floods = 0;
  int flood_attackers = 2;
  int flood_requests = 100;
  sim::SimTime flood_duration = sim::milliseconds(5);

  /// Slowloris-style trickle: this many control sessions are opened by
  /// random hosts at random times, touched `slow_client_touches` times at
  /// `slow_client_touch_gap` intervals, then abandoned -- never completed.
  /// The admission reaper must clean every one of them up.
  int slow_client_sessions = 0;
  int slow_client_touches = 2;
  sim::SimTime slow_client_touch_gap = sim::milliseconds(2);

  /// --- durable-storage faults (journal_store.hpp SimBackend) ----------------
  /// Require attach_journal_backend().  Drawn after the slow-client draws
  /// (append-only, like every extension before them), so enabling them
  /// never perturbs an existing seed's schedule.

  /// Latent single-bit corruptions of already-durable journal bytes at
  /// random times: the live run never notices (nothing re-reads the
  /// store), but a later load() must degrade to a clean parse error.
  int storage_bit_flips = 0;
  /// Windows in which fsync silently does nothing (firmware write-cache
  /// lie): the MC believes the records committed (they ship to the standby
  /// -- the lie is undetectable), but the primary's own disk drops them at
  /// the next power cut, so a reload from that disk is behind the replica.
  int fsync_lapse_windows = 0;
  int fsync_lapse_count = 4;

  /// --- primary-kill / failover schedule -------------------------------------
  /// Requires attach_standby(); the kill leaves the primary down (or, in
  /// zombie mode, running but partitioned) and the standby's heartbeat
  /// machinery performs the takeover on its own.
  enum class PrimaryKillMode : std::uint8_t {
    kClean,       // crash the primary, nothing else
    kTornTail,    // partial sector write + replica lag at the kill
    kFsyncLapse,  // fsyncs lapse shortly before the kill (stale replica)
    kZombie,      // partition the standby instead: the primary keeps
                  // running until a fenced op forces it to step down
  };
  int primary_kills = 0;
  PrimaryKillMode primary_kill_mode = PrimaryKillMode::kClean;
  /// kTornTail: replica records dropped at the kill (in-flight replication
  /// lost with the primary).
  int kill_truncate_records = 2;
  /// kFsyncLapse: how long before the kill the lapse window opens.
  sim::SimTime fsync_lapse_lead = sim::milliseconds(3);
};

class FaultInjector {
 public:
  FaultInjector(net::Network& network, MimicController& mc,
                FaultInjectorOptions options = {});

  /// Derive the full fault schedule from the seed and put every event on
  /// the simulator.  Call once, before (or while) traffic runs.
  void arm();

  /// Target of the storage-fault schedules (the SimBackend under the MC's
  /// JournalStore).  Must be attached before arm() when storage_bit_flips,
  /// fsync_lapse_windows or a storage-kill mode is configured.
  void attach_journal_backend(SimBackend* backend) noexcept {
    backend_ = backend;
  }
  /// Target of the primary-kill schedule.  Must be attached before arm()
  /// when primary_kills > 0.
  void attach_standby(ctrl::StandbyController* standby) noexcept {
    standby_ = standby;
  }

  std::size_t links_flapped() const noexcept { return links_flapped_; }
  std::size_t switches_crashed() const noexcept { return switches_crashed_; }
  std::size_t bursts_fired() const noexcept { return bursts_fired_; }
  std::size_t mc_crashes_fired() const noexcept { return mc_crashes_fired_; }
  std::size_t primary_kills_fired() const noexcept {
    return primary_kills_fired_;
  }
  std::size_t storage_faults_fired() const noexcept {
    return storage_faults_fired_;
  }
  /// Flood-attack outcome: requests sent, answers seen, and how many of
  /// those answers were admission sheds (Busy replies).  Dropped requests
  /// (MC crashed mid-flood) answer nothing.
  std::uint64_t flood_sent() const noexcept { return flood_sent_; }
  std::uint64_t flood_answered() const noexcept { return flood_answered_; }
  std::uint64_t flood_shed() const noexcept { return flood_shed_; }
  /// Slow-client sessions actually opened (quota rejections excluded).
  std::uint64_t slow_sessions_opened() const noexcept {
    return slow_sessions_opened_;
  }
  /// Tenants the flood schedule fires from (known once arm() ran) -- the
  /// flood bench keeps its honest clients disjoint from these.
  const std::vector<net::Ipv4>& attacker_ips() const noexcept {
    return attacker_ips_;
  }
  /// Recovery reports from every MC recover() the schedule performed.
  const std::vector<MimicController::RecoveryReport>& recoveries()
      const noexcept {
    return recoveries_;
  }
  /// Human-readable schedule, in injection order (diagnostics; also handy
  /// as determinism evidence -- same seed, same log).
  const std::vector<std::string>& schedule_log() const noexcept {
    return schedule_log_;
  }

 private:
  net::Network& network_;
  MimicController& mc_;
  FaultInjectorOptions options_;
  Rng rng_;
  bool armed_ = false;
  SimBackend* backend_ = nullptr;
  ctrl::StandbyController* standby_ = nullptr;
  /// Switches currently down, as the *injector* sequenced them (the MC has
  /// its own view that lags by the detection pipeline).
  std::unordered_set<topo::NodeId> crashed_now_;
  /// Fire one encrypted chaff establish and count its (possible) answer.
  void send_flood_request(net::Ipv4 attacker, std::uint64_t counter);

  std::size_t links_flapped_ = 0;
  std::size_t switches_crashed_ = 0;
  std::size_t bursts_fired_ = 0;
  std::size_t mc_crashes_fired_ = 0;
  std::size_t primary_kills_fired_ = 0;
  std::size_t storage_faults_fired_ = 0;
  std::uint64_t flood_sent_ = 0;
  std::uint64_t flood_answered_ = 0;
  std::uint64_t flood_shed_ = 0;
  std::uint64_t slow_sessions_opened_ = 0;
  std::vector<net::Ipv4> attacker_ips_;
  std::vector<MimicController::RecoveryReport> recoveries_;
  std::vector<std::string> schedule_log_;
};

}  // namespace mic::core
