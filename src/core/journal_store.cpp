#include "core/journal_store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace mic::core {
namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
/// A single record cannot plausibly exceed this; a bigger length field is
/// corruption, reported as such instead of waiting for more bytes forever.
constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;
constexpr char kCompactScratch[] = "compact.tmp";

/// Engine-owned segment files are exactly "seg-<digits>".  Anything else
/// in the backend (a stray file, an editor backup) is not ours: adopting
/// it would corrupt segment ordering, and parsing its name as an index
/// would read past short strings.
bool is_segment_name(const std::string& name) {
  if (name.size() <= 4 || name.compare(0, 4, "seg-") != 0) return false;
  for (std::size_t i = 4; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

// --- bounded little-endian writer/reader ------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    out_.resize(out_.size() + 4);
    store_le32(out_.data() + out_.size() - 4, v);
  }
  void u64(std::uint64_t v) {
    out_.resize(out_.size() + 8);
    store_le64(out_.data() + out_.size() - 8, v);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Every read is bounds-checked: past-the-end sets `failed` and yields
/// zeros, so a forged length or count degrades to a parse error upstream.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = load_le32(data_ + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    const std::uint64_t v = load_le64(data_ + pos_);
    pos_ += 8;
    return v;
  }
  /// Element count for a vector whose elements need >= `min_elem` bytes
  /// each; a count the remaining payload cannot possibly hold fails the
  /// parse immediately instead of attempting a huge allocation.
  std::size_t count(std::size_t min_elem) {
    const std::uint32_t n = u32();
    if (failed_ || (min_elem > 0 && n > (size_ - pos_) / min_elem)) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  bool failed() const noexcept { return failed_; }
  bool exhausted() const noexcept { return pos_ == size_; }

 private:
  bool need(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

void encode_hop(Writer& w, const HopAddresses& hop) {
  w.u32(hop.src.value);
  w.u32(hop.dst.value);
  w.u16(hop.sport);
  w.u16(hop.dport);
  w.u32(hop.mpls);
}

HopAddresses decode_hop(Reader& r) {
  HopAddresses hop;
  hop.src.value = r.u32();
  hop.dst.value = r.u32();
  hop.sport = r.u16();
  hop.dport = r.u16();
  hop.mpls = r.u32();
  return hop;
}

void encode_flow(Writer& w, const MFlowPlan& flow) {
  w.u16(flow.flow_id);
  w.u32(static_cast<std::uint32_t>(flow.path.size()));
  for (const topo::NodeId node : flow.path) w.u32(node);
  w.u32(static_cast<std::uint32_t>(flow.mn_positions.size()));
  for (const std::size_t pos : flow.mn_positions) w.u64(pos);
  w.u32(static_cast<std::uint32_t>(flow.forward.size()));
  for (const HopAddresses& hop : flow.forward) encode_hop(w, hop);
  w.u32(static_cast<std::uint32_t>(flow.reverse.size()));
  for (const HopAddresses& hop : flow.reverse) encode_hop(w, hop);
  w.u32(static_cast<std::uint32_t>(flow.decoys.size()));
  for (const DecoyPlan& decoy : flow.decoys) {
    w.u32(decoy.tuple.src.value);
    w.u32(decoy.tuple.dst.value);
    w.u16(decoy.tuple.sport);
    w.u16(decoy.tuple.dport);
    w.u32(decoy.tuple.mpls);
    w.u16(decoy.out_port);
    w.u32(decoy.next_switch);
    w.u16(decoy.next_in_port);
    w.u16(decoy.flow_id);
  }
}

MFlowPlan decode_flow(Reader& r) {
  MFlowPlan flow;
  flow.flow_id = r.u16();
  flow.path.resize(r.count(4));
  for (topo::NodeId& node : flow.path) node = r.u32();
  flow.mn_positions.resize(r.count(8));
  for (std::size_t& pos : flow.mn_positions) {
    pos = static_cast<std::size_t>(r.u64());
  }
  flow.forward.resize(r.count(16));
  for (HopAddresses& hop : flow.forward) hop = decode_hop(r);
  flow.reverse.resize(r.count(16));
  for (HopAddresses& hop : flow.reverse) hop = decode_hop(r);
  flow.decoys.resize(r.count(26));
  for (DecoyPlan& decoy : flow.decoys) {
    decoy.tuple.src.value = r.u32();
    decoy.tuple.dst.value = r.u32();
    decoy.tuple.sport = r.u16();
    decoy.tuple.dport = r.u16();
    decoy.tuple.mpls = r.u32();
    decoy.out_port = r.u16();
    decoy.next_switch = r.u32();
    decoy.next_in_port = r.u16();
    decoy.flow_id = r.u16();
  }
  return flow;
}

}  // namespace

std::uint32_t journal_crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ data[i]) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_journal_record(const JournalRecord& record) {
  std::vector<std::uint8_t> payload;
  payload.reserve(64);
  Writer w(payload);
  w.u8(static_cast<std::uint8_t>(record.type));
  w.u64(record.seq);
  w.u64(record.epoch);
  w.u64(record.channel);
  w.u64(record.next_channel);
  w.u32(record.next_group);
  if (record.type == JournalRecordType::kTeardown) {
    return payload;  // tombstone: only `channel` is meaningful
  }
  const ChannelState& state = record.state;
  w.u64(state.id);
  w.u32(state.initiator);
  w.u32(state.responder);
  w.u64(state.install_txn);
  w.u32(static_cast<std::uint32_t>(state.touched_switches.size()));
  for (const topo::NodeId sw : state.touched_switches) w.u32(sw);
  w.u32(static_cast<std::uint32_t>(state.flows.size()));
  for (const MFlowPlan& flow : state.flows) encode_flow(w, flow);
  return payload;
}

RecordParse decode_journal_record(const std::uint8_t* log, std::size_t size,
                                  std::size_t offset, JournalRecord* out) {
  RecordParse parse;
  parse.error_offset = offset;
  if (offset == size) {
    parse.status = RecordParse::Status::kEndOfLog;
    return parse;
  }
  MIC_ASSERT(offset < size);
  if (size - offset < kFrameHeaderBytes) {
    parse.status = RecordParse::Status::kTorn;
    parse.error = "torn frame header";
    return parse;
  }
  const std::uint32_t length = load_le32(log + offset);
  const std::uint32_t crc = load_le32(log + offset + 4);
  if (length > kMaxPayloadBytes) {
    parse.status = RecordParse::Status::kBadPayload;
    parse.error = "implausible record length (corrupt header)";
    return parse;
  }
  if (size - offset - kFrameHeaderBytes < length) {
    parse.status = RecordParse::Status::kTorn;
    parse.error = "torn record payload";
    return parse;
  }
  const std::uint8_t* payload = log + offset + kFrameHeaderBytes;
  if (journal_crc32(payload, length) != crc) {
    parse.status = RecordParse::Status::kBadCrc;
    parse.error = "record CRC mismatch";
    return parse;
  }

  Reader r(payload, length);
  JournalRecord record;
  record.type = static_cast<JournalRecordType>(r.u8());
  record.seq = r.u64();
  record.epoch = r.u64();
  record.channel = r.u64();
  record.next_channel = r.u64();
  record.next_group = r.u32();
  if (static_cast<std::uint8_t>(record.type) >
      static_cast<std::uint8_t>(JournalRecordType::kSnapshot)) {
    parse.status = RecordParse::Status::kBadPayload;
    parse.error = "unknown record type";
    return parse;
  }
  if (record.type != JournalRecordType::kTeardown) {
    record.state.id = r.u64();
    record.state.initiator = r.u32();
    record.state.responder = r.u32();
    record.state.install_txn = r.u64();
    record.state.touched_switches.resize(r.count(4));
    for (topo::NodeId& sw : record.state.touched_switches) sw = r.u32();
    record.state.flows.resize(r.count(2));
    for (MFlowPlan& flow : record.state.flows) flow = decode_flow(r);
  }
  if (r.failed() || !r.exhausted()) {
    parse.status = RecordParse::Status::kBadPayload;
    parse.error = r.failed() ? "payload truncated mid-field"
                             : "trailing bytes after payload";
    return parse;
  }
  if (out != nullptr) *out = std::move(record);
  parse.status = RecordParse::Status::kOk;
  parse.next_offset = offset + kFrameHeaderBytes + length;
  return parse;
}

// --- FileBackend ------------------------------------------------------------

FileBackend::FileBackend(std::string dir) : dir_(std::move(dir)) {
  struct stat st{};
  MIC_ASSERT_MSG(::stat(dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
                 "FileBackend directory missing");
}

std::string FileBackend::path_of(const std::string& name) const {
  return dir_ + "/" + name;
}

void FileBackend::sync_dir() const {
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  MIC_ASSERT_MSG(fd >= 0, "journal directory open-for-fsync failed");
  MIC_ASSERT_MSG(::fsync(fd) == 0, "journal directory fsync failed");
  ::close(fd);
}

void FileBackend::create(const std::string& name) {
  const int fd = ::open(path_of(name).c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  MIC_ASSERT_MSG(fd >= 0, "journal segment create failed");
  ::close(fd);
  sync_dir();
}

void FileBackend::append(const std::string& name, const std::uint8_t* data,
                         std::size_t size) {
  const int fd = ::open(path_of(name).c_str(),
                        O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  MIC_ASSERT_MSG(fd >= 0, "journal segment open failed");
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0 && errno == EINTR) continue;
    MIC_ASSERT_MSG(n > 0, "journal segment write failed");
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

void FileBackend::sync(const std::string& name) {
  const int fd = ::open(path_of(name).c_str(), O_RDONLY | O_CLOEXEC);
  MIC_ASSERT_MSG(fd >= 0, "journal segment open-for-fsync failed");
  MIC_ASSERT_MSG(::fsync(fd) == 0, "journal segment fsync failed");
  ::close(fd);
}

void FileBackend::rename(const std::string& from, const std::string& to) {
  MIC_ASSERT_MSG(::rename(path_of(from).c_str(), path_of(to).c_str()) == 0,
                 "journal segment rename failed");
  // File fsync makes the bytes durable; only the directory fsync makes the
  // *name* durable.  Without it the compaction atomic-swap rename (or a
  // just-created segment) can vanish across power loss.
  sync_dir();
}

void FileBackend::remove(const std::string& name) {
  MIC_ASSERT_MSG(::unlink(path_of(name).c_str()) == 0,
                 "journal segment unlink failed");
  sync_dir();
}

std::vector<std::string> FileBackend::list() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(dir_.c_str());
  MIC_ASSERT_MSG(dir != nullptr, "journal directory opendir failed");
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::uint8_t> FileBackend::read(const std::string& name) const {
  const int fd = ::open(path_of(name).c_str(), O_RDONLY | O_CLOEXEC);
  MIC_ASSERT_MSG(fd >= 0, "journal segment open-for-read failed");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    MIC_ASSERT_MSG(n >= 0, "journal segment read failed");
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

// --- SimBackend -------------------------------------------------------------

void SimBackend::create(const std::string& name) {
  files_[name] = File{};
}

void SimBackend::append(const std::string& name, const std::uint8_t* data,
                        std::size_t size) {
  auto it = files_.find(name);
  MIC_ASSERT_MSG(it != files_.end(), "append to missing sim file");
  it->second.bytes.insert(it->second.bytes.end(), data, data + size);
  last_appended_ = name;
}

void SimBackend::sync(const std::string& name) {
  auto it = files_.find(name);
  MIC_ASSERT_MSG(it != files_.end(), "sync of missing sim file");
  if (fsync_lapses_ > 0) {
    --fsync_lapses_;
    ++syncs_lapsed_;
    return;  // the lie: caller believes the bytes are durable
  }
  it->second.durable = it->second.bytes.size();
  ++syncs_;
}

void SimBackend::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  MIC_ASSERT_MSG(it != files_.end(), "rename of missing sim file");
  File file = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(file);
  if (last_appended_ == from) last_appended_ = to;
}

void SimBackend::remove(const std::string& name) {
  files_.erase(name);
  if (last_appended_ == name) last_appended_.clear();
}

std::vector<std::string> SimBackend::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::uint8_t> SimBackend::read(const std::string& name) const {
  const auto it = files_.find(name);
  MIC_ASSERT_MSG(it != files_.end(), "read of missing sim file");
  return it->second.bytes;
}

void SimBackend::crash() {
  ++crashes_;
  for (auto& [name, file] : files_) {
    std::size_t keep = file.durable;
    if (torn_tail_bytes_ > 0 && name == last_appended_ &&
        file.bytes.size() > file.durable) {
      keep = std::min(file.bytes.size(), file.durable + torn_tail_bytes_);
      ++torn_applied_;
    }
    bytes_dropped_ += file.bytes.size() - keep;
    file.bytes.resize(keep);
    file.durable = keep;
  }
  torn_tail_bytes_ = 0;
  fsync_lapses_ = 0;
}

void SimBackend::flip_bit(std::uint64_t which) {
  const auto it = files_.find(last_appended_);
  if (it == files_.end() || it->second.durable == 0) return;
  const std::uint64_t bit = which % (it->second.durable * 8u);
  it->second.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  ++bits_flipped_;
}

std::size_t SimBackend::durable_bytes(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.durable;
}

// --- JournalStore -----------------------------------------------------------

JournalStore::JournalStore(StorageBackend& backend, JournalStoreOptions options)
    : backend_(backend), options_(options) {
  MIC_ASSERT(options_.fsync_every_n > 0);
  MIC_ASSERT(options_.segment_rotate_bytes > 0);
  // Adopt any segments already present (a restarted engine over the same
  // backend); a leftover compaction scratch file is an aborted compaction
  // and is discarded.  Files that are not "seg-<digits>" are not ours and
  // are left alone -- never parsed as segments.
  for (const std::string& name : backend_.list()) {
    if (name == kCompactScratch) {
      backend_.remove(name);
      continue;
    }
    if (!is_segment_name(name)) continue;
    segments_.push_back(name);
    const std::uint64_t index = std::strtoull(name.c_str() + 4, nullptr, 10);
    next_segment_index_ = std::max(next_segment_index_, index + 1);
  }
  if (segments_.empty()) {
    open_fresh_segment();
  } else {
    active_bytes_ = backend_.read(segments_.back()).size();
  }
}

std::string JournalStore::segment_name(std::uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%010llu",
                static_cast<unsigned long long>(index));
  return buf;
}

void JournalStore::open_fresh_segment() {
  segments_.push_back(segment_name(next_segment_index_++));
  backend_.create(segments_.back());
  active_bytes_ = 0;
}

void JournalStore::sync_active() {
  backend_.sync(segments_.back());
  ++syncs_requested_;
  records_durable_ = records_appended_;
  unsynced_records_ = 0;
}

void JournalStore::rotate_if_needed() {
  if (active_bytes_ < options_.segment_rotate_bytes) return;
  // Seal the outgoing segment: its bytes must be durable before anything
  // lands in the next one, or a crash could lose a middle segment's tail
  // while keeping later records.
  if (unsynced_records_ > 0) sync_active();
  open_fresh_segment();
  ++segments_rotated_;
}

void JournalStore::append(const JournalRecord& record) {
  rotate_if_needed();
  const std::vector<std::uint8_t> payload = encode_journal_record(record);
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  store_le32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  store_le32(frame.data() + 4,
             journal_crc32(payload.data(), payload.size()));
  std::copy(payload.begin(), payload.end(), frame.begin() + kFrameHeaderBytes);
  backend_.append(segments_.back(), frame.data(), frame.size());
  active_bytes_ += frame.size();
  bytes_appended_ += frame.size();
  ++records_appended_;
  ++unsynced_records_;
  switch (options_.fsync_policy) {
    case FsyncPolicy::kEveryRecord:
      sync_active();
      break;
    case FsyncPolicy::kEveryN:
      if (unsynced_records_ >= options_.fsync_every_n) sync_active();
      break;
    case FsyncPolicy::kCommitBoundary:
      break;
  }
}

void JournalStore::commit_boundary() {
  if (unsynced_records_ > 0) sync_active();
}

void JournalStore::compact(const std::vector<JournalRecord>& records) {
  backend_.create(kCompactScratch);
  std::size_t scratch_bytes = 0;
  for (const JournalRecord& record : records) {
    const std::vector<std::uint8_t> payload = encode_journal_record(record);
    std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
    store_le32(frame.data(), static_cast<std::uint32_t>(payload.size()));
    store_le32(frame.data() + 4,
               journal_crc32(payload.data(), payload.size()));
    std::copy(payload.begin(), payload.end(),
              frame.begin() + kFrameHeaderBytes);
    backend_.append(kCompactScratch, frame.data(), frame.size());
    scratch_bytes += frame.size();
  }
  backend_.sync(kCompactScratch);
  // Crash-safe swap ordering: the synced scratch becomes the fresh
  // highest-index segment *before* the old segments go.  A crash before
  // the rename leaves the old log intact (the leftover scratch is
  // discarded at startup and compaction simply re-runs); a crash after it
  // leaves old history followed by the snapshot segment, which replay()
  // folds to the same image -- snapshot records overwrite by channel id,
  // and a channel torn down in the old history is absent from the
  // snapshot, so nothing resurrects.  At no point is the only copy of the
  // committed log a file the next startup would discard.
  const std::string fresh = segment_name(next_segment_index_++);
  backend_.rename(kCompactScratch, fresh);
  for (const std::string& name : segments_) backend_.remove(name);
  segments_.clear();
  segments_.push_back(fresh);
  active_bytes_ = scratch_bytes;
  unsynced_records_ = 0;
  records_durable_ = records_appended_;
  ++compactions_;
}

JournalLoadResult JournalStore::load() const {
  JournalLoadResult result;
  for (const std::string& name : backend_.list()) {
    // Skip aborted-compaction scratch and any file that is not one of our
    // segments: stray bytes must never be decoded as journal history.
    if (!is_segment_name(name)) continue;
    const std::vector<std::uint8_t> bytes = backend_.read(name);
    ++result.segments_scanned;
    std::size_t offset = 0;
    for (;;) {
      JournalRecord record;
      const RecordParse parse =
          decode_journal_record(bytes.data(), bytes.size(), offset, &record);
      if (parse.status == RecordParse::Status::kOk) {
        result.records.push_back(std::move(record));
        offset = parse.next_offset;
        continue;
      }
      if (parse.status == RecordParse::Status::kEndOfLog) break;
      // Torn / CRC-failed / unparseable record: end-of-log.  The decoded
      // prefix stands; the recovering MC reconciles the rest by audit.
      result.clean = false;
      result.error = parse.error;
      result.error_segment = name;
      result.error_offset = parse.error_offset;
      result.bytes_scanned += offset;
      return result;
    }
    result.bytes_scanned += bytes.size();
  }
  return result;
}

}  // namespace mic::core
