// Durable storage engine under the write-ahead ChannelJournal.
//
// The journal's records are serialized into an append-only segment log:
// every record is framed as [u32 payload length][u32 CRC32][payload], the
// active segment rotates once it exceeds a size threshold, and compaction
// rewrites the live records into a fresh segment and atomically swaps it
// for the old ones.  The byte-level storage sits behind StorageBackend so
// the same engine runs against two worlds:
//
//   FileBackend  - real POSIX files (open/write/fsync/rename) with a
//                  configurable fsync policy: every record, every N
//                  records, or on explicit commit boundaries.
//   SimBackend   - a deterministic in-memory model whose simulated
//                  volatile page cache makes the fsync policy observable:
//                  appended bytes sit in the cache until sync(), and
//                  crash() drops everything unsynced.  Seeded fault hooks
//                  (torn tail, bit flip, fsync lapse) let the chaos
//                  harness corrupt stable storage deterministically.
//
// Recovery (load()) treats a CRC-failed or torn record as end-of-log: the
// scan stops cleanly with the offending offset, and the records decoded so
// far form the recovered prefix.  A reader never trusts a length field
// beyond the bytes actually present, so corrupt input degrades to a parse
// error -- never UB (proven by the journal-bytes fuzzer in
// tests/test_journal_store.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/channel_journal.hpp"

namespace mic::core {

/// CRC32 (IEEE 802.3 polynomial, reflected) over a byte range.
std::uint32_t journal_crc32(const std::uint8_t* data, std::size_t size);

// --- record codec -----------------------------------------------------------

/// Serialize one journal record (including the full ChannelState) into the
/// frame payload.  Soft liveness state (idle, idle_since) is deliberately
/// not encoded -- replay resets it anyway.
std::vector<std::uint8_t> encode_journal_record(const JournalRecord& record);

struct RecordParse {
  enum class Status : std::uint8_t {
    kOk,          // record decoded; next_offset points past its frame
    kEndOfLog,    // offset == log size: clean end
    kTorn,        // frame or payload extends past the bytes present
    kBadCrc,      // payload present but its CRC32 does not match
    kBadPayload,  // CRC ok but the payload does not parse (impossible for
                  // bytes we wrote; reachable for spliced/forged input)
  };
  Status status = Status::kOk;
  /// Offset of the first byte after the decoded frame (kOk only).
  std::size_t next_offset = 0;
  /// Where the scan stopped (the start of the offending frame).
  std::size_t error_offset = 0;
  std::string error;  // human-readable parse error (non-kOk)
};

/// Decode the record framed at `offset`.  Never reads past `size`; a
/// malformed frame yields a status + offset instead of a crash.
RecordParse decode_journal_record(const std::uint8_t* log, std::size_t size,
                                  std::size_t offset, JournalRecord* out);

// --- storage backend --------------------------------------------------------

/// The slice of POSIX the segment engine needs: a flat directory of
/// append-only files with atomic rename.  Names are engine-chosen;
/// list() returns them sorted so segment order is their creation order.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Create (or truncate) a file.
  virtual void create(const std::string& name) = 0;
  virtual void append(const std::string& name, const std::uint8_t* data,
                      std::size_t size) = 0;
  /// Make every byte appended so far durable (fsync).
  virtual void sync(const std::string& name) = 0;
  /// Atomic replace: `to` is created or replaced in one step.
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void remove(const std::string& name) = 0;
  /// All file names, lexicographically sorted.
  virtual std::vector<std::string> list() const = 0;
  /// Current contents (durable + still-volatile bytes).
  virtual std::vector<std::uint8_t> read(const std::string& name) const = 0;
};

/// Real files under a directory.  Failures of the underlying syscalls are
/// programming/environment errors for this simulation and assert.
/// Namespace mutations (create/rename/remove) fsync the directory too:
/// a new or renamed name is not durable until its directory entry is.
class FileBackend final : public StorageBackend {
 public:
  /// `dir` must exist and be writable.
  explicit FileBackend(std::string dir);

  void create(const std::string& name) override;
  void append(const std::string& name, const std::uint8_t* data,
              std::size_t size) override;
  void sync(const std::string& name) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;
  std::vector<std::string> list() const override;
  std::vector<std::uint8_t> read(const std::string& name) const override;

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string path_of(const std::string& name) const;
  /// fsync the backing directory, making create/rename/remove durable.
  void sync_dir() const;

  std::string dir_;
};

/// Deterministic in-memory storage with a simulated volatile page cache:
/// append() lands in the cache, sync() moves the file's bytes to the
/// durable prefix, crash() drops everything above it.  The fault hooks
/// model the three classic stable-storage betrayals; all of them are
/// armed with values the FaultInjector draws at arm() time, so a seeded
/// schedule replays bit-identically.
class SimBackend final : public StorageBackend {
 public:
  void create(const std::string& name) override;
  void append(const std::string& name, const std::uint8_t* data,
              std::size_t size) override;
  void sync(const std::string& name) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;
  std::vector<std::string> list() const override;
  std::vector<std::uint8_t> read(const std::string& name) const override;

  /// Power loss: every file keeps only its durable prefix -- except that a
  /// pending torn-tail arms `arm_torn_tail(k)` lets k unsynced bytes of
  /// the *last-appended* file survive, modelling a partial sector write
  /// that splits the final record (the CRC scan stops there).
  void crash();

  /// The next crash() keeps up to `keep_bytes` of the unsynced tail.
  void arm_torn_tail(std::size_t keep_bytes) { torn_tail_bytes_ = keep_bytes; }
  /// Flip one bit of the last-appended file's durable bytes; `which` is
  /// reduced modulo the durable size (no-op while nothing is durable).
  void flip_bit(std::uint64_t which);
  /// The next `count` sync() calls silently do nothing (firmware lies /
  /// write-cache lapse): the caller believes the bytes are durable.
  void lapse_fsyncs(int count) { fsync_lapses_ += count; }

  std::uint64_t crashes() const noexcept { return crashes_; }
  std::uint64_t syncs() const noexcept { return syncs_; }
  std::uint64_t syncs_lapsed() const noexcept { return syncs_lapsed_; }
  std::uint64_t torn_tails_applied() const noexcept { return torn_applied_; }
  std::uint64_t bits_flipped() const noexcept { return bits_flipped_; }
  std::uint64_t bytes_dropped() const noexcept { return bytes_dropped_; }

  /// Durable prefix length of one file (tests).
  std::size_t durable_bytes(const std::string& name) const;

 private:
  struct File {
    std::vector<std::uint8_t> bytes;
    std::size_t durable = 0;
  };

  std::map<std::string, File> files_;  // ordered => deterministic list()
  std::string last_appended_;
  std::size_t torn_tail_bytes_ = 0;
  int fsync_lapses_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t syncs_lapsed_ = 0;
  std::uint64_t torn_applied_ = 0;
  std::uint64_t bits_flipped_ = 0;
  std::uint64_t bytes_dropped_ = 0;
};

// --- segment engine ---------------------------------------------------------

enum class FsyncPolicy : std::uint8_t {
  kEveryRecord,     // sync after every append (safest, slowest)
  kEveryN,          // sync once per fsync_every_n appends
  kCommitBoundary,  // sync only at explicit commit_boundary() calls
};

struct JournalStoreOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  std::size_t fsync_every_n = 8;
  /// Rotate the active segment once it holds at least this many bytes.
  std::size_t segment_rotate_bytes = 256 * 1024;
};

struct JournalLoadResult {
  std::vector<JournalRecord> records;
  std::size_t segments_scanned = 0;
  std::size_t bytes_scanned = 0;
  /// False when the scan stopped early (torn tail / CRC failure).  The
  /// decoded records are still the valid prefix: recovery proceeds with
  /// them and the switch resync sweeps whatever the lost tail explained.
  bool clean = true;
  std::string error;          // why the scan stopped (clean == false)
  std::string error_segment;  // which segment
  std::size_t error_offset = 0;  // byte offset inside that segment
};

/// The append-only segment engine.  One instance owns the backend's
/// namespace: segment files are "seg-<index>", plus a "compact.tmp"
/// scratch file during compaction.
class JournalStore {
 public:
  explicit JournalStore(StorageBackend& backend,
                        JournalStoreOptions options = {});

  /// Frame + append one record to the active segment, then sync per
  /// policy.  Rotates first when the active segment is over the limit.
  void append(const JournalRecord& record);

  /// Sync point for FsyncPolicy::kCommitBoundary (no-op otherwise unless
  /// appends are pending under kEveryN, which it also flushes).
  void commit_boundary();

  /// Rewrite the log as exactly `records` (the journal's post-compaction
  /// contents): they are written to a scratch file, synced, atomically
  /// renamed to a fresh segment, and the old segments removed.
  void compact(const std::vector<JournalRecord>& records);

  /// Decode every segment in order.  Stops cleanly at the first torn or
  /// CRC-failed record (end-of-log semantics).
  JournalLoadResult load() const;

  /// Records whose bytes have been handed to sync() -- the durability
  /// frontier the journal uses to ship only committed records.
  std::uint64_t records_durable() const noexcept { return records_durable_; }

  std::uint64_t records_appended() const noexcept { return records_appended_; }
  std::uint64_t bytes_appended() const noexcept { return bytes_appended_; }
  std::uint64_t syncs_requested() const noexcept { return syncs_requested_; }
  std::uint64_t segments_rotated() const noexcept { return segments_rotated_; }
  std::uint64_t compactions() const noexcept { return compactions_; }
  std::size_t segment_count() const noexcept { return segments_.size(); }

  const JournalStoreOptions& options() const noexcept { return options_; }

 private:
  std::string segment_name(std::uint64_t index) const;
  void open_fresh_segment();
  void sync_active();
  void rotate_if_needed();

  StorageBackend& backend_;
  JournalStoreOptions options_;
  std::vector<std::string> segments_;  // oldest first; back() is active
  std::uint64_t next_segment_index_ = 0;
  std::size_t active_bytes_ = 0;
  std::size_t unsynced_records_ = 0;
  std::uint64_t records_durable_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t syncs_requested_ = 0;
  std::uint64_t segments_rotated_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace mic::core
