// MAGA: the M-Address Generation Algorithm (paper Sec IV-B3).
//
// MAGA assigns every m-flow a unique flow ID and constrains every m-address
// tuple the flow uses on a Mimic Node to hash to that ID under the MN's
// *private* hash function.  Because two different IDs can never share a
// tuple under the same function, m-addresses of different m-flows on one MN
// are collision-free by construction; disjoint per-MN MPLS label sets (the
// g() partition) extend the guarantee across MNs.
//
// Fidelity note (also in DESIGN.md): the paper's example hash (Eq. 1) mixes
// with XOR and *shifts*, but a plain shift discards bits, so the printed
// "inverse" (Eq. 2) is not actually an inverse for C1 > 0.  We keep the
// XOR/shift spirit but use *rotations*, which are bijective for every
// rotation count, making the inverse exact.  Each MN draws its own random
// parameters, exactly as the paper prescribes ("parameters, which can be
// different for different MN to build different hash functions").
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace mic::core {

/// One XOR-rotate mixing key: v -> rotl(v ^ x1, r1) ^ rotl(v ^ x2, r2).
template <typename T>
struct MixKey {
  T xor1 = 0;
  T xor2 = 0;
  unsigned rot1 = 0;
  unsigned rot2 = 0;

  static MixKey sample(Rng& rng) {
    constexpr unsigned bits = sizeof(T) * 8;
    MixKey k;
    k.xor1 = static_cast<T>(rng.next());
    k.xor2 = static_cast<T>(rng.next());
    k.rot1 = static_cast<unsigned>(rng.range(1, bits - 1));
    k.rot2 = static_cast<unsigned>(rng.range(1, bits - 1));
    return k;
  }

  T mix(T v) const noexcept {
    return static_cast<T>(rotl(static_cast<T>(v ^ xor1), rot1) ^
                          rotl(static_cast<T>(v ^ xor2), rot2));
  }
};

/// The paper's three-variable f(x, y, z): used when m-addresses are only
/// constrained by the flow ID (didactic form; the deployed path uses MagaF
/// below).  Invertible in z.
class Maga3 {
 public:
  static Maga3 sample(Rng& rng) {
    Maga3 f;
    f.a_ = MixKey<std::uint32_t>::sample(rng);
    f.b_ = MixKey<std::uint32_t>::sample(rng);
    f.c0_ = static_cast<std::uint32_t>(rng.next());
    f.c1_ = static_cast<unsigned>(rng.range(1, 31));
    return f;
  }

  std::uint32_t value(std::uint32_t x, std::uint32_t y,
                      std::uint32_t z) const noexcept {
    return a_.mix(x) ^ b_.mix(y) ^ rotl(static_cast<std::uint32_t>(z ^ c0_), c1_);
  }

  /// The z that makes value(x, y, z) == v.
  std::uint32_t invert_z(std::uint32_t v, std::uint32_t x,
                         std::uint32_t y) const noexcept {
    return rotr(static_cast<std::uint32_t>(v ^ a_.mix(x) ^ b_.mix(y)), c1_) ^
           c0_;
  }

 private:
  MixKey<std::uint32_t> a_;
  MixKey<std::uint32_t> b_;
  std::uint32_t c0_ = 0;
  unsigned c1_ = 1;
};

/// The four-variable F(alpha, beta, gamma, delta) used by the deployed
/// generation path (paper: "getting a satisfied three-tuple <m_src, m_dst,
/// mpls> is equivalent to getting a four-tuple <m_src, m_dst, mpls1,
/// mpls2>").  alpha/beta are the 32-bit IPs, gamma is the MN-distinguishing
/// label half (mpls1), delta the free half (mpls2).  Output is the 16-bit
/// flow ID space; F is invertible in delta.
class MagaF {
 public:
  static MagaF sample(Rng& rng) {
    MagaF f;
    f.a_ = MixKey<std::uint32_t>::sample(rng);
    f.b_ = MixKey<std::uint32_t>::sample(rng);
    f.g_ = MixKey<std::uint16_t>::sample(rng);
    f.d0_ = static_cast<std::uint16_t>(rng.next());
    f.d1_ = static_cast<unsigned>(rng.range(1, 15));
    return f;
  }

  std::uint16_t value(std::uint32_t alpha, std::uint32_t beta,
                      std::uint16_t gamma, std::uint16_t delta) const noexcept {
    return static_cast<std::uint16_t>(
        fixed_part(alpha, beta, gamma) ^
        rotl(static_cast<std::uint16_t>(delta ^ d0_), d1_));
  }

  /// The delta that makes value(alpha, beta, gamma, delta) == v.
  std::uint16_t invert_delta(std::uint16_t v, std::uint32_t alpha,
                             std::uint32_t beta,
                             std::uint16_t gamma) const noexcept {
    return static_cast<std::uint16_t>(
        rotr(static_cast<std::uint16_t>(v ^ fixed_part(alpha, beta, gamma)),
             d1_) ^
        d0_);
  }

 private:
  std::uint16_t fixed_part(std::uint32_t alpha, std::uint32_t beta,
                           std::uint16_t gamma) const noexcept {
    return static_cast<std::uint16_t>(fold16(a_.mix(alpha) ^ b_.mix(beta)) ^
                                      g_.mix(gamma));
  }

  MixKey<std::uint32_t> a_;
  MixKey<std::uint32_t> b_;
  MixKey<std::uint16_t> g_;
  std::uint16_t d0_ = 0;
  unsigned d1_ = 1;
};

/// The label partition function g(): classifies the MN-distinguishing label
/// half (mpls1, 16 bits) into an 8-bit space of switch IDs (S_IDs) plus the
/// reserved common-flow class C_ID.  Following the paper, the variable is
/// split into two byte-halves x1, x2 and h(x1, x2) is built like f;
/// generation fixes x1 randomly and inverts for x2.
///
/// g() is *network-global* (every switch's labels are classified by the
/// same function; only the MC knows it) -- this is what makes label sets of
/// different MNs disjoint.
class MplsClassifier {
 public:
  static MplsClassifier sample(Rng& rng) {
    MplsClassifier g;
    g.hi_ = MixKey<std::uint8_t>::sample(rng);
    g.p0_ = static_cast<std::uint8_t>(rng.next());
    g.p1_ = static_cast<unsigned>(rng.range(1, 7));
    return g;
  }

  /// g(mpls1): the class of a label half.
  std::uint8_t classify(std::uint16_t mpls1) const noexcept {
    const auto hi = static_cast<std::uint8_t>(mpls1 >> 8);
    const auto lo = static_cast<std::uint8_t>(mpls1);
    return static_cast<std::uint8_t>(
        hi_.mix(hi) ^ rotl(static_cast<std::uint8_t>(lo ^ p0_), p1_));
  }

  /// Sample a label half with g(mpls1) == s_id: random high byte, low byte
  /// by inversion.
  std::uint16_t sample_label_half(std::uint8_t s_id, Rng& rng) const noexcept {
    const auto hi = static_cast<std::uint8_t>(rng.next());
    const auto lo = static_cast<std::uint8_t>(
        rotr(static_cast<std::uint8_t>(s_id ^ hi_.mix(hi)), p1_) ^ p0_);
    return static_cast<std::uint16_t>((static_cast<std::uint16_t>(hi) << 8) |
                                      lo);
  }

 private:
  MixKey<std::uint8_t> hi_;
  std::uint8_t p0_ = 0;
  unsigned p1_ = 1;
};

}  // namespace mic::core
