#include "core/maga_registry.hpp"

#include "common/assert.hpp"

namespace mic::core {

MagaRegistry::MagaRegistry(Rng rng, FlowIdRange flow_ids)
    : rng_(rng),
      classifier_(MplsClassifier::sample(rng_)),
      c_id_(static_cast<std::uint8_t>(rng_.next())),
      flow_ids_(flow_ids),
      next_flow_id_(flow_ids.base) {
  MIC_ASSERT_MSG(flow_ids.base != kInvalidFlowId && flow_ids.size > 0,
                 "flow ID range must exclude the invalid ID 0");
  used_s_ids_.insert(c_id_);
}

void MagaRegistry::register_switch(topo::NodeId sw) {
  if (switches_.contains(sw)) return;
  MIC_ASSERT_MSG(used_s_ids_.size() < 256,
                 "S_ID space exhausted (max 255 MNs); use label stacking");
  SwitchState state;
  do {
    state.s_id = static_cast<std::uint8_t>(rng_.next());
  } while (used_s_ids_.contains(state.s_id));
  used_s_ids_.insert(state.s_id);
  class_to_switch_.emplace(state.s_id, sw);
  state.hash = MagaF::sample(rng_);
  switches_.emplace(sw, std::move(state));
}

std::uint8_t MagaRegistry::s_id(topo::NodeId sw) const {
  const auto it = switches_.find(sw);
  MIC_ASSERT_MSG(it != switches_.end(), "switch not registered with MAGA");
  return it->second.s_id;
}

net::MplsLabel MagaRegistry::sample_cf_label() {
  const std::uint16_t mpls1 = classifier_.sample_label_half(c_id_, rng_);
  net::MplsLabel label;
  do {
    const auto mpls2 = static_cast<std::uint16_t>(rng_.next());
    label = (static_cast<net::MplsLabel>(mpls1) << 16) | mpls2;
  } while (label == net::kNoMpls);
  return label;
}

FlowId MagaRegistry::allocate_flow_id() {
  FlowId id;
  if (!free_flow_ids_.empty()) {
    id = free_flow_ids_.back();
    free_flow_ids_.pop_back();
  } else {
    MIC_ASSERT_MSG(
        next_flow_id_ < flow_ids_.base + flow_ids_.size &&
            next_flow_id_ >= flow_ids_.base,
        "this controller's m-flow ID range is exhausted");
    id = next_flow_id_++;
  }
  active_ids_.insert(id);
  return id;
}

void MagaRegistry::release_flow_id(FlowId id) {
  const auto erased = active_ids_.erase(id);
  MIC_ASSERT_MSG(erased == 1, "releasing a flow ID that is not active");
  free_flow_ids_.push_back(id);
}

MTuple MagaRegistry::generate(topo::NodeId mn, FlowId flow,
                              const std::vector<net::Ipv4>& src_candidates,
                              const std::vector<net::Ipv4>& dst_candidates) {
  auto it = switches_.find(mn);
  MIC_ASSERT_MSG(it != switches_.end(), "MN not registered with MAGA");
  MIC_ASSERT(!src_candidates.empty() && !dst_candidates.empty());
  SwitchState& state = it->second;

  for (;;) {
    MTuple t;
    t.src = src_candidates[rng_.below(src_candidates.size())];
    t.dst = dst_candidates[rng_.below(dst_candidates.size())];
    t.sport = static_cast<net::L4Port>(rng_.range(1024, 65535));
    t.dport = static_cast<net::L4Port>(rng_.range(1024, 65535));
    const std::uint16_t mpls1 =
        classifier_.sample_label_half(state.s_id, rng_);
    const std::uint16_t mpls2 =
        state.hash.invert_delta(flow, t.src.value, t.dst.value, mpls1);
    t.mpls = (static_cast<net::MplsLabel>(mpls1) << 16) | mpls2;
    if (t.mpls == net::kNoMpls) {
      ++retries_;
      continue;  // the "untagged" sentinel must stay unused
    }
    if (!state.allocated.insert(fingerprint(t)).second) {
      ++retries_;
      continue;  // extremely unlikely duplicate; resample
    }
    return t;
  }
}

void MagaRegistry::release_tuples(topo::NodeId mn,
                                  const std::vector<MTuple>& tuples) {
  auto it = switches_.find(mn);
  if (it == switches_.end()) return;
  for (const auto& t : tuples) it->second.allocated.erase(fingerprint(t));
}

void MagaRegistry::reset_allocations() {
  next_flow_id_ = flow_ids_.base;
  free_flow_ids_.clear();
  active_ids_.clear();
  for (auto& [sw, state] : switches_) state.allocated.clear();
}

void MagaRegistry::adopt_flow_id(FlowId id) {
  MIC_ASSERT_MSG(id >= flow_ids_.base && id < flow_ids_.base + flow_ids_.size,
                 "adopted flow ID outside this controller's range");
  MIC_ASSERT_MSG(active_ids_.insert(id).second,
                 "adopting a flow ID that is already active");
  if (id >= next_flow_id_) next_flow_id_ = static_cast<FlowId>(id + 1);
}

void MagaRegistry::adopt_tuples(topo::NodeId mn,
                                const std::vector<MTuple>& tuples) {
  auto it = switches_.find(mn);
  MIC_ASSERT_MSG(it != switches_.end(), "MN not registered with MAGA");
  for (const auto& t : tuples) it->second.allocated.insert(fingerprint(t));
}

void MagaRegistry::rebuild_free_list() {
  free_flow_ids_.clear();
  for (FlowId id = flow_ids_.base; id < next_flow_id_; ++id) {
    if (!active_ids_.contains(id)) free_flow_ids_.push_back(id);
  }
}

FlowId MagaRegistry::flow_id_of(topo::NodeId mn, const MTuple& tuple) const {
  const auto it = switches_.find(mn);
  MIC_ASSERT_MSG(it != switches_.end(), "MN not registered with MAGA");
  return it->second.hash.value(tuple.src.value, tuple.dst.value,
                               static_cast<std::uint16_t>(tuple.mpls >> 16),
                               static_cast<std::uint16_t>(tuple.mpls));
}

}  // namespace mic::core
