// The Mimic Controller's private MAGA state: the network-global label
// classifier g(), the per-MN hash functions F, the S_ID assignment, the
// C_ID class for common flows, and the m-flow ID allocator.
//
// Only the MC holds this object (paper: "Only the MC knows which MPLS
// labels are in CF and which are in MF"; "only the MC knows which MN the
// label corresponds to").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/maga.hpp"
#include "net/addr.hpp"
#include "topology/graph.hpp"

namespace mic::core {

using FlowId = std::uint16_t;
inline constexpr FlowId kInvalidFlowId = 0;  // reserved, never allocated

/// A slice of the m-flow ID space.  Multiple Mimic Controllers sharing one
/// fabric each get a disjoint range (paper Sec VI-C: "we can assign a
/// unique ID space for each controller to make MIC work among multiple
/// controllers"); the collision avoidance then holds globally because the
/// hash functions are deployment-wide and the IDs never overlap.
struct FlowIdRange {
  FlowId base = 1;
  FlowId size = 0xFFFE;
};

/// One generated m-address tuple (plus the free-entropy L4 ports).
struct MTuple {
  net::Ipv4 src;
  net::Ipv4 dst;
  net::L4Port sport = 0;
  net::L4Port dport = 0;
  net::MplsLabel mpls = net::kNoMpls;  // mpls1 << 16 | mpls2

  bool operator==(const MTuple&) const noexcept = default;
};

class MagaRegistry {
 public:
  /// The rng seeds the deployment-wide secrets (classifier, per-MN hash
  /// parameters): two registries built from equal-seeded rngs share them,
  /// which is how distributed controllers stay collision-free as long as
  /// their FlowIdRanges are disjoint.
  explicit MagaRegistry(Rng rng, FlowIdRange flow_ids = {});

  /// Assign an S_ID and a private hash function to a switch.  Idempotent.
  void register_switch(topo::NodeId sw);

  std::uint8_t s_id(topo::NodeId sw) const;
  std::uint8_t c_id() const noexcept { return c_id_; }

  /// A label tagging common flows: g(mpls1) == C_ID, mpls2 free.
  net::MplsLabel sample_cf_label();

  // --- m-flow IDs -----------------------------------------------------------

  /// Allocate a fresh m-flow ID ("monotonically increase the ID when a new
  /// m-flow arrives, and recover the expired ID when an m-flow is closed").
  FlowId allocate_flow_id();
  void release_flow_id(FlowId id);
  std::size_t active_flow_count() const noexcept { return active_ids_.size(); }

  // --- tuple generation -----------------------------------------------------

  /// Generate an m-address tuple on `mn` for `flow`: random src/dst from
  /// the candidate sets, random ports, mpls1 sampled in the MN's label
  /// class, mpls2 solved by F^-1 so that F(tuple) == flow.  Retries until
  /// the tuple is distinct from every tuple currently allocated on `mn`
  /// (defense in depth; MAGA already separates distinct flow IDs).
  MTuple generate(topo::NodeId mn, FlowId flow,
                  const std::vector<net::Ipv4>& src_candidates,
                  const std::vector<net::Ipv4>& dst_candidates);

  /// Release the tuples a channel allocated on `mn`.
  void release_tuples(topo::NodeId mn, const std::vector<MTuple>& tuples);

  // --- crash recovery -------------------------------------------------------
  //
  // A restarted MC keeps its deployment-wide secrets (classifier, per-MN
  // hashes, S_IDs — all derived from the shared seed) but loses the
  // dynamic allocation state.  Recovery resets it and re-adopts ids and
  // tuples from the replayed channel journal.

  /// Drop every allocated flow id and tuple fingerprint; keep the secrets
  /// and switch registrations.
  void reset_allocations();

  /// Re-mark `id` active after a restart.  The free list is rebuilt by
  /// `rebuild_free_list()` once every journaled id has been adopted.
  void adopt_flow_id(FlowId id);

  /// Re-insert the fingerprints of journaled tuples on `mn` so future
  /// generation keeps avoiding them.
  void adopt_tuples(topo::NodeId mn, const std::vector<MTuple>& tuples);

  /// Recreate the free list as every id below the adopted high-water mark
  /// that is not active (ascending — deterministic, though not necessarily
  /// the pre-crash LIFO order).
  void rebuild_free_list();

  // --- verification (used by the collision audit and tests) -----------------

  /// F_mn(tuple) -- must equal the owning flow's ID.
  FlowId flow_id_of(topo::NodeId mn, const MTuple& tuple) const;
  /// g(mpls1 of label) -- must equal s_id(mn) for labels generated on mn.
  std::uint8_t class_of_label(net::MplsLabel label) const {
    return classifier_.classify(static_cast<std::uint16_t>(label >> 16));
  }

  bool flow_id_active(FlowId id) const { return active_ids_.contains(id); }

  /// The switch owning a label class; kInvalidNode for C_ID or unassigned
  /// classes.
  topo::NodeId switch_of_class(std::uint8_t s_id) const {
    const auto it = class_to_switch_.find(s_id);
    return it == class_to_switch_.end() ? topo::kInvalidNode : it->second;
  }

  std::uint64_t generation_retries() const noexcept { return retries_; }

 private:
  struct SwitchState {
    std::uint8_t s_id = 0;
    MagaF hash;
    std::unordered_set<std::uint64_t> allocated;  // tuple fingerprints
  };

  static std::uint64_t fingerprint(const MTuple& t) noexcept {
    std::uint64_t state = (static_cast<std::uint64_t>(t.src.value) << 32) |
                          t.dst.value;
    state ^= (static_cast<std::uint64_t>(t.sport) << 48) |
             (static_cast<std::uint64_t>(t.dport) << 32) | t.mpls;
    return splitmix64(state);
  }

  Rng rng_;
  MplsClassifier classifier_;
  std::uint8_t c_id_;
  std::unordered_map<topo::NodeId, SwitchState> switches_;
  std::unordered_map<std::uint8_t, topo::NodeId> class_to_switch_;
  std::unordered_set<std::uint8_t> used_s_ids_;

  FlowIdRange flow_ids_;
  FlowId next_flow_id_ = 1;
  std::vector<FlowId> free_flow_ids_;
  std::unordered_set<FlowId> active_ids_;
  std::uint64_t retries_ = 0;
};

}  // namespace mic::core
