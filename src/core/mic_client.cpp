#include "core/mic_client.hpp"

#include "common/log.hpp"

namespace mic::core {

namespace {

transport::ChunkView view_of(const transport::Chunk& chunk) {
  if (chunk.is_real()) return {chunk.length, *chunk.data};
  return {chunk.length, {}};
}

}  // namespace

// --- MicChannel --------------------------------------------------------------

MicChannel::MicChannel(transport::Host& host, MimicController& mc,
                       MicChannelOptions options, Rng& rng)
    : host_(host), mc_fixed_(&mc), options_(std::move(options)), rng_(rng) {
  started_at_ = host_.simulator().now();
  start_establish();
}

MicChannel::MicChannel(transport::Host& host, ControllerDirectory& directory,
                       MicChannelOptions options, Rng& rng)
    : host_(host),
      directory_(&directory),
      options_(std::move(options)),
      rng_(rng) {
  started_at_ = host_.simulator().now();
  start_establish();
}

MicChannel::~MicChannel() {
  if (channel_id_ != 0) mc().clear_channel_listener(channel_id_);
}

void MicChannel::start_establish() {
  // First contact: run the one-time key exchange with the MC (both sides
  // pay the asymmetric cost once per client).
  const bool known = mc().client_registered(host_.ip());
  const crypto::Aes128::Key key = mc().register_client(host_.ip());
  if (!known) {
    host_.charge(2 * host_.costs().dh_modexp_cycles);
  }

  sports_.clear();
  sports_.reserve(static_cast<std::size_t>(options_.flow_count));
  for (int i = 0; i < options_.flow_count; ++i) {
    sports_.push_back(host_.reserve_port());
  }

  EstablishRequest request;
  request.initiator_ip = host_.ip();
  request.service_name = options_.service_name;
  request.responder_ip = options_.responder_ip;
  request.responder_port = options_.responder_port;
  request.flow_count = options_.flow_count;
  request.mn_count = options_.mn_count;
  request.multicast_decoys = options_.multicast_decoys;
  request.initiator_sports = sports_;

  // The request really is serialized and AES-encrypted (paper Sec VI).
  std::vector<std::uint8_t> bytes = serialize_request(request);
  host_.charge(host_.costs().aes_crypt_cycles(bytes.size()));
  control_counter_ = host_.fresh_stream_uid();
  crypt_control_message(key, control_counter_, bytes);

  // Re-establishments of a lost channel ride the admission controller's
  // repair class, which outranks fresh establishes in its queue.
  const ctrl::AdmitPriority priority = reestablish_attempts_ > 0
                                           ? ctrl::AdmitPriority::kRepair
                                           : ctrl::AdmitPriority::kFresh;
  const std::uint64_t gen = generation_;
  mc().async_establish(host_.ip(), std::move(bytes), control_counter_,
                      [this, gen](const EstablishResult& result) {
                        if (gen != generation_ || user_closed_) {
                          // A stale ack for a generation we gave up on: the
                          // MC holds a live channel nobody owns.  Release
                          // it rather than stranding its rules.
                          if (result.ok) mc().teardown(result.channel, false);
                          return;
                        }
                        on_established(result);
                      },
                      priority);
  if (options_.control_timeout > 0) arm_establish_timeout();
}

sim::SimTime MicChannel::backoff_for(int attempt) const {
  const sim::SimTime base = options_.reestablish_backoff_base;
  const int shift = std::min(attempt - 1, 20);
  sim::SimTime backoff = base << shift;
  if (backoff > options_.reestablish_backoff_cap ||
      (shift > 0 && (backoff >> shift) != base)) {
    backoff = options_.reestablish_backoff_cap;
  }
  const sim::SimTime jitter = base == 0 ? 0 : rng_.below(base);
  return backoff + jitter;
}

void MicChannel::arm_establish_timeout() {
  const std::uint64_t gen = generation_;
  host_.simulator().schedule_in(options_.control_timeout, [this, gen] {
    if (gen != generation_ || user_closed_ || failed_) return;
    if (channel_id_ != 0) return;  // the ack landed
    // Controller silence: a live MC always answers (even a failed
    // establishment gets an error ack); only a crashed one says nothing.
    ++silences_;
    ++silence_streak_;
    log_warn("MIC channel: no establish ack after %llu us (silence %d)",
             static_cast<unsigned long long>(options_.control_timeout / 1000),
             silence_streak_);
    retire_flows();  // bumps the generation; a late ack hits the stale path
    if (silence_streak_ > options_.control_retry_limit) {
      fail_with("controller unreachable: establishment unacknowledged");
      return;
    }
    const std::uint64_t next = generation_;
    host_.simulator().schedule_in(backoff_for(silence_streak_),
                                  [this, next] {
                                    if (next != generation_ || user_closed_) {
                                      return;
                                    }
                                    start_establish();
                                  });
  });
}

void MicChannel::schedule_heartbeat() {
  const std::uint64_t gen = generation_;
  host_.simulator().schedule_in(options_.heartbeat_interval, [this, gen] {
    if (gen != generation_ || user_closed_ || failed_) return;
    probe_once(gen);
  });
}

void MicChannel::probe_once(std::uint64_t gen) {
  auto answered = std::make_shared<bool>(false);
  mc().probe_channel(
      channel_id_,
      [this, gen](MimicController::ChannelEvent event,
                  const std::string& reason) {
        if (gen != generation_) return;
        on_channel_event(event, reason);
      },
      [this, gen, answered](bool alive) {
        if (gen != generation_ || user_closed_ || failed_) return;
        *answered = true;
        silence_streak_ = 0;
        if (!alive) {
          // The channel died while the MC was away (or was reclaimed);
          // take the normal lost path -- auto_reestablish still applies.
          on_channel_event(MimicController::ChannelEvent::kLost,
                           "channel not found after MC restart");
          return;
        }
        schedule_heartbeat();
      });
  // A crashed MC drops the probe on the floor; the watchdog keeps probing
  // (data still flows -- the rules outlive the MC) until the retry budget
  // is spent.
  const sim::SimTime timeout =
      options_.control_timeout > 0
          ? options_.control_timeout
          : 4 * mc().mic_config().control_latency + sim::milliseconds(1);
  host_.simulator().schedule_in(timeout, [this, gen, answered] {
    if (gen != generation_ || user_closed_ || failed_ || *answered) return;
    ++silences_;
    ++silence_streak_;
    if (silence_streak_ > options_.control_retry_limit) {
      fail_with("controller unreachable: heartbeat unanswered");
      return;
    }
    probe_once(gen);
  });
}

void MicChannel::fail_with(const std::string& reason) {
  failed_ = true;
  error_ = reason;
  ready_ = false;
  log_warn("MIC channel failed: %s", reason.c_str());
  if (on_lost_) on_lost_(reason);
  if (!closed_notified_) {
    closed_notified_ = true;
    notify_closed();
  }
}

void MicChannel::retire_flows() {
  // De-generation first: the closes below must not be mistaken for a peer
  // shutdown, and late data/ready callbacks on the old connections are
  // stale by definition.
  ++generation_;
  ready_ = false;
  flows_ready_ = 0;
  send_seq_ = 0;
  reorderer_ = SliceReorderer{};
  channel_id_ = 0;
  for (Flow& flow : flows_) {
    if (flow.stream != nullptr) flow.stream->close();
  }
  for (Flow& flow : flows_) retired_flows_.push_back(std::move(flow));
  flows_.clear();
}

void MicChannel::on_channel_event(MimicController::ChannelEvent event,
                                  const std::string& reason) {
  if (event == MimicController::ChannelEvent::kRepaired) {
    // Transparent repair: entry addresses survived, the TCP connections
    // never noticed.  Nothing to do but count it.
    ++repairs_;
    return;
  }
  // kLost: the channel no longer exists at the MC.  Either give up or ask
  // for a fresh one (new entry addresses, new m-flow connections).
  if (user_closed_) return;
  if (options_.auto_reestablish &&
      reestablish_attempts_ < options_.reestablish_limit) {
    ++reestablish_attempts_;
    retire_flows();
    const std::uint64_t gen = generation_;
    host_.simulator().schedule_in(backoff_for(reestablish_attempts_),
                                  [this, gen] {
                                    if (gen != generation_ || user_closed_) {
                                      return;
                                    }
                                    start_establish();
                                  });
    return;
  }
  retire_flows();
  fail_with(reason);
}

void MicChannel::on_established(const EstablishResult& result) {
  if (result.busy) {
    // The MC is alive but shed the request under load: back off for the
    // server-provided interval (plus jitter so a shed herd does not
    // return in lockstep), not the generic silence/timeout path -- the
    // reply itself proves the controller is up.
    ++times_shed_;
    silence_streak_ = 0;
    retire_flows();  // bumps the generation; the watchdog goes stale
    if (times_shed_ > static_cast<std::uint64_t>(options_.shed_retry_limit)) {
      fail_with("controller busy: shed retry budget exhausted");
      return;
    }
    const sim::SimTime base = std::max<sim::SimTime>(result.retry_after, 1);
    const sim::SimTime wait = base + rng_.below(base / 2 + 1);
    const std::uint64_t gen = generation_;
    host_.simulator().schedule_in(wait, [this, gen] {
      if (gen != generation_ || user_closed_) return;
      start_establish();
    });
    return;
  }
  if (!result.ok) {
    if (options_.auto_reestablish &&
        reestablish_attempts_ < options_.reestablish_limit &&
        reestablish_attempts_ > 0) {
      // A re-establishment raced a still-unrepaired fabric; try again.
      on_channel_event(MimicController::ChannelEvent::kLost, result.error);
      return;
    }
    fail_with(result.error);
    return;
  }
  channel_id_ = result.channel;
  failed_ = false;
  error_.clear();
  silence_streak_ = 0;  // the MC answered; silences start counting afresh
  const std::uint64_t gen = generation_;
  mc().set_channel_listener(
      channel_id_, [this, gen](MimicController::ChannelEvent event,
                               const std::string& reason) {
        if (gen != generation_) return;
        on_channel_event(event, reason);
      });
  if (options_.heartbeat_interval > 0) schedule_heartbeat();
  // Decrypting the acknowledgement costs the client another AES pass.
  host_.charge(host_.costs().aes_crypt_cycles(
      8.0 * static_cast<double>(result.entries.size()) + 16.0));

  flows_.resize(result.entries.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& flow = flows_[i];
    flow.tcp = &host_.connect_from(sports_[i], result.entries[i].ip,
                                   result.entries[i].port);
    if (options_.use_ssl) {
      flow.ssl = std::make_unique<transport::SslSession>(
          *flow.tcp, transport::SslSession::Role::kClient, host_, rng_);
      flow.stream = flow.ssl.get();
    } else {
      flow.stream = flow.tcp;
    }

    flow.stream->set_on_ready([this, gen] {
      if (gen != generation_) return;
      if (++flows_ready_ == static_cast<int>(flows_.size())) {
        ready_ = true;
        ready_at_ = host_.simulator().now();
        // Hello slices teach the responder which connections form this
        // channel; they carry no payload.
        for (std::size_t f = 0; f < flows_.size(); ++f) {
          SliceHeader hello;
          hello.channel = static_cast<std::uint32_t>(channel_id_);
          hello.seq = send_seq_++;
          hello.length = 0;
          hello.flow = static_cast<std::uint16_t>(f);
          flows_[f].stream->send(
              slice_header_chunk(hello));
        }
        notify_ready();
        flush_pending();
      }
    });
    flow.stream->set_on_data([this, i, gen](const transport::ChunkView& view) {
      if (gen != generation_) return;
      flows_[i].parser.feed(view, [this](const SliceHeader& header,
                                         transport::Chunk payload) {
        reorderer_.push(header.seq, std::move(payload),
                        [this](transport::Chunk chunk) {
                          notify_data(view_of(chunk));
                        });
      });
    });
    flow.stream->set_on_closed([this, gen] {
      if (gen != generation_) return;
      if (!closed_notified_) {
        closed_notified_ = true;
        notify_closed();
      }
    });
  }
}

void MicChannel::send(transport::Chunk chunk) {
  if (!ready_) {
    pending_.push_back(std::move(chunk));
    return;
  }
  std::uint64_t offset = 0;
  while (offset < chunk.length) {
    const std::uint64_t slice_len = std::min<std::uint64_t>(
        chunk.length - offset,
        rng_.range(options_.min_slice, options_.max_slice));
    send_slice(transport::sub_chunk(chunk, offset, slice_len));
    offset += slice_len;
  }
}

void MicChannel::send_slice(transport::Chunk payload) {
  const std::size_t flow_index = rng_.below(flows_.size());
  Flow& flow = flows_[flow_index];
  SliceHeader header;
  header.channel = static_cast<std::uint32_t>(channel_id_);
  header.seq = send_seq_++;
  header.length = static_cast<std::uint32_t>(payload.length);
  header.flow = static_cast<std::uint16_t>(flow_index);
  flow.bytes_sent += kSliceHeaderBytes + payload.length;
  flow.stream->send(slice_header_chunk(header));
  if (payload.length > 0) flow.stream->send(std::move(payload));
}

void MicChannel::flush_pending() {
  while (!pending_.empty()) {
    transport::Chunk chunk = std::move(pending_.front());
    pending_.pop_front();
    send(std::move(chunk));
  }
}

void MicChannel::close() {
  user_closed_ = true;
  for (Flow& flow : flows_) {
    if (flow.stream != nullptr) flow.stream->close();
  }
  if (channel_id_ != 0) mc().clear_channel_listener(channel_id_);
  // The shutdown notification travels the control channel, addressed to
  // whoever is primary right now.
  const ChannelId id = channel_id_;
  auto& target = mc();
  host_.simulator().schedule_in(target.mic_config().control_latency,
                                [&target, id] { target.teardown(id, false); });
}

void MicChannel::release_for_reuse() {
  const ChannelId id = channel_id_;
  auto& target = mc();
  host_.simulator().schedule_in(target.mic_config().control_latency,
                                [&target, id] { target.mark_idle(id, true); });
}

void MicChannel::reacquire() {
  const ChannelId id = channel_id_;
  auto& target = mc();
  host_.simulator().schedule_in(
      target.mic_config().control_latency,
      [&target, id] { target.mark_idle(id, false); });
}

// --- MicChannelPool --------------------------------------------------------------

MicChannel& MicChannelPool::acquire(const MicChannelOptions& options) {
  for (Entry& entry : entries_) {
    if (entry.idle && same_target(entry.options, options) &&
        !entry.channel->failed()) {
      entry.idle = false;
      entry.channel->reacquire();
      return *entry.channel;
    }
  }
  Entry entry;
  entry.options = options;
  entry.channel =
      directory_ != nullptr
          ? std::make_unique<MicChannel>(host_, *directory_, options, rng_)
          : std::make_unique<MicChannel>(host_, *mc_fixed_, options, rng_);
  entries_.push_back(std::move(entry));
  return *entries_.back().channel;
}

void MicChannelPool::release(MicChannel& channel) {
  for (Entry& entry : entries_) {
    if (entry.channel.get() == &channel) {
      entry.idle = true;
      channel.release_for_reuse();
      return;
    }
  }
  MIC_ASSERT_MSG(false, "releasing a channel this pool does not own");
}

void MicChannelPool::drain() {
  for (Entry& entry : entries_) entry.channel->close();
  entries_.clear();
}

std::size_t MicChannelPool::idle_count() const {
  std::size_t idle = 0;
  for (const Entry& entry : entries_) idle += entry.idle;
  return idle;
}

// --- MicServerChannel ----------------------------------------------------------

void MicServerChannel::add_stream(transport::ByteStream* stream) {
  streams_.push_back(stream);
}

void MicServerChannel::deliver(std::uint32_t seq, transport::Chunk payload) {
  reorderer_.push(seq, std::move(payload), [this](transport::Chunk chunk) {
    notify_data(view_of(chunk));
  });
}

void MicServerChannel::send(transport::Chunk chunk) {
  MIC_ASSERT_MSG(!streams_.empty(), "no m-flow connections known yet");
  std::uint64_t offset = 0;
  while (offset < chunk.length) {
    const std::uint64_t slice_len = std::min<std::uint64_t>(
        chunk.length - offset, rng_.range(min_slice_, max_slice_));
    const std::size_t flow_index = rng_.below(streams_.size());
    SliceHeader header;
    header.channel = wire_id_;
    header.seq = send_seq_++;
    header.length = static_cast<std::uint32_t>(slice_len);
    header.flow = static_cast<std::uint16_t>(flow_index);
    streams_[flow_index]->send(
        slice_header_chunk(header));
    streams_[flow_index]->send(transport::sub_chunk(chunk, offset, slice_len));
    offset += slice_len;
  }
}

void MicServerChannel::close() {
  for (transport::ByteStream* stream : streams_) stream->close();
}

// --- MicServer ------------------------------------------------------------------

MicServer::MicServer(transport::Host& host, net::L4Port port, Rng& rng,
                     bool use_ssl)
    : host_(host), rng_(rng), use_ssl_(use_ssl) {
  host_.listen(port, [this](transport::TcpConnection& conn) {
    on_accept(conn);
  });
}

void MicServer::on_accept(transport::TcpConnection& conn) {
  auto flow = std::make_unique<FlowCtx>();
  flow->tcp = &conn;
  if (use_ssl_) {
    flow->ssl = std::make_unique<transport::SslSession>(
        conn, transport::SslSession::Role::kServer, host_, rng_);
    flow->stream = flow->ssl.get();
  } else {
    flow->stream = &conn;
  }
  FlowCtx* raw = flow.get();
  raw->stream->set_on_data([this, raw](const transport::ChunkView& view) {
    on_flow_data(*raw, view);
  });
  flows_.push_back(std::move(flow));
}

void MicServer::on_flow_data(FlowCtx& flow, const transport::ChunkView& view) {
  flow.parser.feed(view, [this, &flow](const SliceHeader& header,
                                       transport::Chunk payload) {
    if (flow.channel == nullptr) {
      auto it = channels_.find(header.channel);
      if (it == channels_.end()) {
        auto channel = std::make_unique<MicServerChannel>(
            header.channel, rng_, 8 * 1024, 32 * 1024);
        it = channels_.emplace(header.channel, std::move(channel)).first;
        if (on_channel_) on_channel_(*it->second);
      }
      flow.channel = it->second.get();
      flow.channel->add_stream(flow.stream);
    }
    flow.channel->deliver(header.seq, std::move(payload));
  });
}

}  // namespace mic::core
