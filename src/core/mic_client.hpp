// MIC user-end library: "MIC employs typical C/S model, providing socket
// like programming APIs, and thus a programmer can use MIC for anonymous
// communication easily" (paper Sec VI).
//
// MicChannel is the initiator side: it asks the MC (over the encrypted
// control channel) to establish a mimic channel with F m-flows and N MNs,
// opens one TCP (or SSL, for MIC-SSL) connection per m-flow to the entry
// addresses it gets back, and stripes application data across the flows in
// randomly sized slices.  MicServer is the responder side: it accepts the
// m-flow connections (seeing only presented m-addresses, never the
// initiator), regroups them into channels and reassembles the byte stream.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/mic_wire.hpp"
#include "core/mimic_controller.hpp"
#include "transport/ssl.hpp"
#include "transport/tcp.hpp"

namespace mic::core {

struct MicChannelOptions {
  /// Hidden-service nickname, or explicit responder address.
  std::string service_name;
  net::Ipv4 responder_ip{0};
  net::L4Port responder_port = 0;

  int flow_count = 1;       // F
  int mn_count = 3;         // N (privacy level; paper default 3)
  int multicast_decoys = 0; // partial multicast replicas at the first MN
  bool use_ssl = false;     // MIC-SSL: SSL inside each m-flow

  /// Slice sizing for the striping (uniform in [min, max]).
  std::uint32_t min_slice = 8 * 1024;
  std::uint32_t max_slice = 32 * 1024;

  // --- failure handling ------------------------------------------------------
  /// When the MC reports the channel lost (unrepairable failure, idle
  /// reclamation), automatically request a fresh establishment instead of
  /// failing: new m-flow connections, new entry addresses, same responder.
  /// Buffered data survives; in-flight slices on the dead flows do not.
  bool auto_reestablish = false;
  /// Capped exponential backoff (plus seeded jitter) between automatic
  /// re-establishment attempts, and how many to try before giving up.
  sim::SimTime reestablish_backoff_base = sim::milliseconds(2);
  sim::SimTime reestablish_backoff_cap = sim::milliseconds(50);
  int reestablish_limit = 4;

  // --- controller-silence survival -------------------------------------------
  /// Detect a silent MC (crashed, not merely slow): if the establishment
  /// acknowledgement has not arrived within `control_timeout`, the request
  /// is retried under the same capped jittered backoff as re-establishment,
  /// up to `control_retry_limit` consecutive silences.  Sends queue while
  /// unestablished and flush once the MC answers.  0 disables detection
  /// (the default, so existing workloads stay event-for-event identical).
  sim::SimTime control_timeout = 0;
  int control_retry_limit = 8;
  /// Budget for Busy{retry_after} shed replies: each one is retried after
  /// the server-provided interval (plus jitter), up to this many times
  /// before the channel gives up.  Distinct from the silence budget above:
  /// a busy MC is alive and asking for patience, not crashed.
  int shed_retry_limit = 16;
  /// Opt-in liveness heartbeat: every `heartbeat_interval` the client
  /// probes the MC for this channel, re-registering its event listener on
  /// the way (an MC restart wipes subscriptions; kept channels would
  /// otherwise never hear kLost again).  A silent probe counts a
  /// controller silence and re-probes; a "not alive" reply follows the
  /// normal channel-lost path.  0 = off (the default -- a perpetual
  /// heartbeat keeps the simulator from ever going quiescent).
  sim::SimTime heartbeat_interval = 0;
};

class MicChannel : public transport::ByteStream {
 public:
  /// Starts establishment immediately; the stream becomes ready() once the
  /// MC acknowledged and all F m-flow connections are up.
  MicChannel(transport::Host& host, MimicController& mc,
             MicChannelOptions options, Rng& rng);
  /// Directory-resolved variant: every control interaction (establish,
  /// probe, teardown, idle marking) is addressed to the directory's
  /// *current* primary at send time, so a standby takeover transparently
  /// redirects this channel -- the watchdog/heartbeat machinery notices
  /// the old primary's silence and the retry lands at the new one.
  MicChannel(transport::Host& host, ControllerDirectory& directory,
             MicChannelOptions options, Rng& rng);
  ~MicChannel() override;

  void send(transport::Chunk chunk) override;
  void close() override;
  bool ready() const override { return ready_; }

  /// Channel-loss callback: fires when the MC declares this channel lost
  /// (after any automatic re-establishment attempts are exhausted).  The
  /// reason string is the MC's (e.g. "link failure: responder
  /// unreachable", "idle channel reclaimed").
  void set_on_lost(std::function<void(const std::string&)> handler) {
    on_lost_ = std::move(handler);
  }

  /// Mark the channel idle at the MC instead of tearing it down
  /// (Sec IV-B1 channel reuse).
  void release_for_reuse();
  /// Reactivate a released channel for another session.
  void reacquire();

  ChannelId id() const noexcept { return channel_id_; }
  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }
  /// MC-side transparent repairs survived (endpoints kept, path moved).
  std::uint64_t repair_count() const noexcept { return repairs_; }
  /// Establishment requests the MC load-shed (Busy{retry_after} replies);
  /// each was retried after the server-provided backoff.
  std::uint64_t times_shed() const noexcept { return times_shed_; }
  /// Automatic re-establishments attempted so far.
  int reestablish_attempts() const noexcept { return reestablish_attempts_; }
  /// Control-channel timeouts observed (unacknowledged establishments and
  /// unanswered heartbeat probes) -- how often the MC went silent on us.
  std::uint64_t controller_silences() const noexcept { return silences_; }
  /// Time from construction to ready (the paper's "MIC connect" time).
  sim::SimTime setup_time() const noexcept { return ready_at_ - started_at_; }
  int flow_count() const noexcept { return static_cast<int>(flows_.size()); }
  std::uint64_t bytes_sent_on_flow(std::size_t i) const {
    return flows_[i].bytes_sent;
  }
  /// Introspection for tests and diagnostics.
  transport::TcpConnection* debug_tcp(std::size_t i) { return flows_[i].tcp; }

 private:
  struct Flow {
    transport::TcpConnection* tcp = nullptr;
    std::unique_ptr<transport::SslSession> ssl;
    transport::ByteStream* stream = nullptr;  // tcp or ssl
    SliceParser parser;
    std::uint64_t bytes_sent = 0;
  };

  void start_establish();
  void on_established(const EstablishResult& result);
  /// Backoff before retry `attempt` (1-based): base * 2^(attempt-1),
  /// clamped to the cap, plus seeded jitter in [0, base).
  sim::SimTime backoff_for(int attempt) const;
  /// Watchdog armed alongside every establishment request when
  /// `control_timeout` is set; fires the silence-retry path if the ack
  /// never lands.
  void arm_establish_timeout();
  void schedule_heartbeat();
  void probe_once(std::uint64_t gen);
  void on_channel_event(MimicController::ChannelEvent event,
                        const std::string& reason);
  /// Park the current m-flows (their callbacks are de-generationed, the
  /// streams closed) and reset the wire state for a fresh establishment.
  void retire_flows();
  void fail_with(const std::string& reason);
  void send_slice(transport::Chunk payload);
  void flush_pending();

  /// The control-plane endpoint, resolved per interaction: through the
  /// directory when one was given (failover-aware), else the fixed MC.
  MimicController& mc() const noexcept {
    return directory_ != nullptr ? directory_->current() : *mc_fixed_;
  }

  transport::Host& host_;
  MimicController* mc_fixed_ = nullptr;
  ControllerDirectory* directory_ = nullptr;
  MicChannelOptions options_;
  Rng& rng_;

  ChannelId channel_id_ = 0;
  std::vector<Flow> flows_;
  /// Flows from previous establishments: kept alive (their transport
  /// callbacks still reference them) but ignored via the generation guard.
  std::vector<Flow> retired_flows_;
  std::vector<net::L4Port> sports_;
  SliceReorderer reorderer_;
  std::deque<transport::Chunk> pending_;
  std::function<void(const std::string&)> on_lost_;
  std::uint32_t send_seq_ = 0;
  /// Establishment generation: bumped each time the flows are retired, so
  /// callbacks wired to an older generation become no-ops.
  std::uint64_t generation_ = 1;
  bool ready_ = false;
  bool failed_ = false;
  bool closed_notified_ = false;
  bool user_closed_ = false;
  std::string error_;
  int flows_ready_ = 0;
  int reestablish_attempts_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t times_shed_ = 0;
  std::uint64_t silences_ = 0;
  /// Consecutive unanswered control requests; reset on any MC reply.
  int silence_streak_ = 0;
  sim::SimTime started_at_ = 0;
  sim::SimTime ready_at_ = 0;
  std::uint64_t control_counter_ = 0;
};

/// One accepted channel on the responder.  The responder never sees the
/// initiator's address: its peer addresses are the presented m-addresses.
class MicServerChannel : public transport::ByteStream {
 public:
  explicit MicServerChannel(std::uint32_t wire_id, Rng& rng,
                            std::uint32_t min_slice, std::uint32_t max_slice)
      : wire_id_(wire_id),
        rng_(rng),
        min_slice_(min_slice),
        max_slice_(max_slice) {}

  void send(transport::Chunk chunk) override;
  void close() override;
  bool ready() const override { return !streams_.empty(); }

  std::uint32_t wire_id() const noexcept { return wire_id_; }
  std::size_t known_flows() const noexcept { return streams_.size(); }

 private:
  friend class MicServer;

  void add_stream(transport::ByteStream* stream);
  void deliver(std::uint32_t seq, transport::Chunk payload);

  std::uint32_t wire_id_;
  Rng& rng_;
  std::uint32_t min_slice_;
  std::uint32_t max_slice_;
  std::vector<transport::ByteStream*> streams_;
  SliceReorderer reorderer_;
  std::uint32_t send_seq_ = 0;
};

/// Client-side channel cache implementing the paper's channel-reuse policy
/// (Sec IV-B1): "we should reuse the mimic channel among the communications
/// between the same participants ... the sender does not send shutdown
/// request to the MC immediately when the communication is finished".
/// acquire() hands back an idle channel with matching options when one
/// exists; release() parks it (notifying the MC it is idle) instead of
/// tearing it down.
class MicChannelPool {
 public:
  MicChannelPool(transport::Host& host, MimicController& mc, Rng& rng)
      : host_(host), mc_fixed_(&mc), rng_(rng) {}
  /// Failover-aware pool: channels it creates resolve the MC through the
  /// directory (see the MicChannel directory constructor).
  MicChannelPool(transport::Host& host, ControllerDirectory& directory,
                 Rng& rng)
      : host_(host), directory_(&directory), rng_(rng) {}

  /// Non-copyable: entries hold raw pointers into the pool.
  MicChannelPool(const MicChannelPool&) = delete;
  MicChannelPool& operator=(const MicChannelPool&) = delete;

  MicChannel& acquire(const MicChannelOptions& options);
  /// Park a channel acquired from this pool.
  void release(MicChannel& channel);
  /// Tear down every pooled channel.
  void drain();

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t idle_count() const;

 private:
  struct Entry {
    MicChannelOptions options;
    std::unique_ptr<MicChannel> channel;
    bool idle = false;
  };

  static bool same_target(const MicChannelOptions& a,
                          const MicChannelOptions& b) {
    return a.service_name == b.service_name && a.responder_ip == b.responder_ip &&
           a.responder_port == b.responder_port && a.flow_count == b.flow_count &&
           a.mn_count == b.mn_count && a.use_ssl == b.use_ssl &&
           a.multicast_decoys == b.multicast_decoys;
  }

  transport::Host& host_;
  MimicController* mc_fixed_ = nullptr;
  ControllerDirectory* directory_ = nullptr;
  Rng& rng_;
  std::vector<Entry> entries_;
};

class MicServer {
 public:
  using ChannelHandler = std::function<void(MicServerChannel&)>;

  /// Listens on `port` for m-flow connections.  With use_ssl the responder
  /// runs MIC-SSL (an SSL server inside every m-flow).
  MicServer(transport::Host& host, net::L4Port port, Rng& rng,
            bool use_ssl = false);

  void set_on_channel(ChannelHandler handler) {
    on_channel_ = std::move(handler);
  }

  std::size_t channel_count() const noexcept { return channels_.size(); }

 private:
  struct FlowCtx {
    transport::TcpConnection* tcp = nullptr;
    std::unique_ptr<transport::SslSession> ssl;
    transport::ByteStream* stream = nullptr;
    SliceParser parser;
    MicServerChannel* channel = nullptr;
  };

  void on_accept(transport::TcpConnection& conn);
  void on_flow_data(FlowCtx& flow, const transport::ChunkView& view);

  transport::Host& host_;
  Rng& rng_;
  bool use_ssl_;
  std::vector<std::unique_ptr<FlowCtx>> flows_;
  std::unordered_map<std::uint32_t, std::unique_ptr<MicServerChannel>>
      channels_;
  ChannelHandler on_channel_;
};

}  // namespace mic::core
