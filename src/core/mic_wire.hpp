// The MIC slice wire format (the multiple-m-flows mechanism, Sec IV-C).
//
// "The initiator divides the user data into slices, and each m-flow carries
// different amount of slices."  Each slice is a 16-byte header plus payload;
// slices carry a channel-level sequence number so the receiver can restore
// order across m-flows that raced each other through different paths.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "transport/stream.hpp"

namespace mic::core {

inline constexpr std::uint16_t kSliceMagic = 0x4D43;  // "MC"
inline constexpr std::uint32_t kSliceHeaderBytes = 16;

struct SliceHeader {
  std::uint32_t channel = 0;
  std::uint32_t seq = 0;
  std::uint32_t length = 0;
  std::uint16_t flow = 0;
  std::uint16_t magic = kSliceMagic;
};

inline void write_slice_header(std::uint8_t* out, const SliceHeader& header) {
  store_be32(out, header.channel);
  store_be32(out + 4, header.seq);
  store_be32(out + 8, header.length);
  out[12] = static_cast<std::uint8_t>(header.flow >> 8);
  out[13] = static_cast<std::uint8_t>(header.flow);
  out[14] = static_cast<std::uint8_t>(header.magic >> 8);
  out[15] = static_cast<std::uint8_t>(header.magic);
}

inline std::vector<std::uint8_t> serialize_slice_header(
    const SliceHeader& header) {
  std::vector<std::uint8_t> out(kSliceHeaderBytes);
  write_slice_header(out.data(), header);
  return out;
}

/// The header as an arena-backed chunk: serialized into a stack scratch and
/// copied through the thread's PayloadArena, so steady-state slicing does
/// not heap-allocate per slice.
inline transport::Chunk slice_header_chunk(const SliceHeader& header) {
  std::array<std::uint8_t, kSliceHeaderBytes> scratch;
  write_slice_header(scratch.data(), header);
  return transport::Chunk::copy(scratch);
}

inline SliceHeader parse_slice_header(const std::vector<std::uint8_t>& bytes) {
  MIC_ASSERT(bytes.size() == kSliceHeaderBytes);
  SliceHeader header;
  header.channel = load_be32(bytes.data());
  header.seq = load_be32(bytes.data() + 4);
  header.length = load_be32(bytes.data() + 8);
  header.flow = static_cast<std::uint16_t>((bytes[12] << 8) | bytes[13]);
  header.magic = static_cast<std::uint16_t>((bytes[14] << 8) | bytes[15]);
  MIC_ASSERT_MSG(header.magic == kSliceMagic, "bad slice magic");
  return header;
}

/// Incremental slice parser for one m-flow connection.
class SliceParser {
 public:
  /// Feed stream data; `on_slice(header, payload)` fires per whole slice.
  template <typename OnSlice>
  void feed(const transport::ChunkView& view, OnSlice&& on_slice) {
    reader_.append(view);
    for (;;) {
      if (!have_header_) {
        auto raw = reader_.read_real(kSliceHeaderBytes);
        if (!raw) return;
        header_ = parse_slice_header(*raw);
        have_header_ = true;
        consumed_ = 0;
        real_bytes_.clear();
        any_real_ = false;
      }
      while (consumed_ < header_.length && reader_.available() > 0) {
        transport::Chunk piece =
            reader_.take_up_to(header_.length - consumed_);
        if (piece.is_real()) {
          if (!any_real_) {
            any_real_ = true;
            real_bytes_.assign(header_.length, 0);
          }
          std::copy(piece.data->begin(), piece.data->end(),
                    real_bytes_.begin() + static_cast<long>(consumed_));
        }
        consumed_ += piece.length;
      }
      if (consumed_ < header_.length) return;

      transport::Chunk payload =
          any_real_ ? transport::Chunk::real(std::move(real_bytes_))
                    : transport::Chunk::virtual_bytes(header_.length);
      real_bytes_ = {};
      have_header_ = false;
      on_slice(header_, std::move(payload));
    }
  }

 private:
  transport::ByteReader reader_;
  bool have_header_ = false;
  SliceHeader header_{};
  std::uint64_t consumed_ = 0;
  std::vector<std::uint8_t> real_bytes_;
  bool any_real_ = false;
};

/// Restores channel order across m-flows: slices are delivered strictly by
/// sequence number.
class SliceReorderer {
 public:
  /// Returns slices that became deliverable, in order.
  template <typename Deliver>
  void push(std::uint32_t seq, transport::Chunk payload, Deliver&& deliver) {
    if (seq < next_seq_) return;  // duplicate (should not happen over TCP)
    pending_.emplace(seq, std::move(payload));
    while (!pending_.empty() && pending_.begin()->first == next_seq_) {
      transport::Chunk chunk = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_seq_;
      if (chunk.length > 0) deliver(std::move(chunk));
    }
  }

  std::size_t buffered() const noexcept { return pending_.size(); }

 private:
  std::uint32_t next_seq_ = 0;
  std::map<std::uint32_t, transport::Chunk> pending_;
};

}  // namespace mic::core
