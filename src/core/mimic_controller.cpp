#include "core/mimic_controller.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "common/log.hpp"

namespace mic::core {

namespace {
constexpr int kMaxEndpointTries = 4096;
constexpr int kMaxRouteTries = 64;
}  // namespace

MimicController::MimicController(net::Network& network,
                                 ctrl::HostAddressing addressing,
                                 std::uint64_t seed, MicConfig mic_config,
                                 ctrl::ControllerConfig ctrl_config)
    : ctrl::Controller(network, std::move(addressing), ctrl_config),
      mic_config_(mic_config),
      seed_(seed),
      rng_(seed),
      registry_(mic_config.shared_secret_seed != 0
                    ? Rng(mic_config.shared_secret_seed)
                    : rng_.fork(),
                mic_config.flow_ids),
      restrictions_(network.graph(), paths(), Controller::addressing()),
      admission_(network.simulator(), mic_config.admission) {
  // Namespacing for co-deployed controllers: channel IDs (and therefore
  // rule cookies) and group IDs never collide across instances.
  next_channel_ =
      (static_cast<ChannelId>(mic_config_.instance_id) << 32) + 1;
  next_group_ = (mic_config_.instance_id << 24) + 1;
  journal_.set_compaction_threshold(mic_config_.journal_compaction_threshold);
  // First controller generation.  Every southbound op is stamped with the
  // journal epoch; recoveries and takeovers bump it (see recover()).
  journal_.set_epoch(1);
  set_fence_epoch(1);

  // Every switch is a potential MN (paper: "Any switches in the network are
  // potential MNs"), so all get MAGA state up front.
  for (const topo::NodeId sw : graph().switches()) {
    registry_.register_switch(sw);
  }
}

void MimicController::install_default_routing() {
  ctrl::L3RoutingApp::install(
      *this, [this](topo::NodeId host) { return cf_label_for(host); });
  default_routing_installed_ = true;
}

void MimicController::adopt_default_routing() {
  ctrl::L3RoutingApp::adopt(*this);
  default_routing_installed_ = true;
}

net::MplsLabel MimicController::cf_label_for(topo::NodeId host) {
  const auto it = cf_labels_.find(host);
  if (it != cf_labels_.end()) return it->second;
  const net::MplsLabel label = registry_.sample_cf_label();
  cf_labels_.emplace(host, label);
  return label;
}

void MimicController::register_hidden_service(const std::string& name,
                                              net::Ipv4 ip,
                                              net::L4Port port) {
  hidden_services_[name] = {ip, port};
}

const crypto::Aes128::Key& MimicController::register_client(net::Ipv4 client) {
  auto it = client_keys_.find(client.value);
  if (it != client_keys_.end()) return it->second;
  // The paper prescribes a one-time asymmetric exchange (RSA or D-H); we
  // charge the MC its side of the exchange and derive the key.
  mc_cpu_.charge(network().simulator().now(),
                 2 * crypto::default_cost_model().dh_modexp_cycles);
  crypto::Aes128::Key key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng_.next());
  return client_keys_.emplace(client.value, key).first->second;
}

// --- planning helpers ---------------------------------------------------------

bool MimicController::path_avoids_failures(const topo::Path& path) const {
  if (failed_links_.empty()) return true;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const topo::LinkId link = graph().link_between(path[i], path[i + 1]);
    if (failed_links_.contains(link)) return false;
  }
  return true;
}

bool MimicController::sample_route_and_positions(const PlanContext& ctx,
                                                 std::size_t n,
                                                 MFlowPlan& out,
                                                 std::string& error) {
  if (!paths().reachable(ctx.initiator, ctx.responder)) {
    error = "responder unreachable";
    return false;
  }

  // Build into locals and commit only on success, so a failed replan
  // leaves the plan's previous route intact for resource release.
  topo::Path route;
  for (int attempt = 0; attempt < kMaxRouteTries; ++attempt) {
    topo::Path candidate;
    if (paths().switch_hops(ctx.initiator, ctx.responder) >= n) {
      candidate =
          paths().sample_shortest_path(ctx.initiator, ctx.responder, rng_);
    } else {
      auto longer =
          paths().sample_long_path(ctx.initiator, ctx.responder,
                                   static_cast<std::uint32_t>(n), rng_);
      if (!longer) continue;
      candidate = std::move(*longer);
    }
    if (!path_avoids_failures(candidate)) continue;
    route = std::move(candidate);
    break;
  }
  if (route.empty()) {
    error = "no usable path with the requested MN count";
    return false;
  }

  const std::size_t sw_count = route.size() - 2;
  MIC_ASSERT(sw_count >= n);
  std::vector<std::size_t> positions(sw_count);
  for (std::size_t i = 0; i < sw_count; ++i) positions[i] = i + 1;
  rng_.shuffle(positions);
  positions.resize(n);
  std::sort(positions.begin(), positions.end());
  out.path = std::move(route);
  out.mn_positions = std::move(positions);
  return true;
}

void MimicController::generate_middle_tuples(const PlanContext& ctx,
                                             MFlowPlan& plan) {
  const auto& g = graph();
  const std::size_t n = plan.mn_positions.size();

  // Intermediate m-addresses never display the real endpoints: a middle
  // vantage must see *neither* participant (Sec V).  Falls back to the raw
  // restriction set only if filtering would empty it.
  const auto hide_endpoints = [&ctx](const std::vector<net::Ipv4>& in) {
    std::vector<net::Ipv4> out;
    for (const net::Ipv4 ip : in) {
      if (ip != ctx.initiator_ip && ip != ctx.responder_ip) out.push_back(ip);
    }
    return out.empty() ? in : out;
  };

  for (std::size_t j = 1; j < n; ++j) {
    const std::size_t pos = plan.mn_positions[j - 1];
    const topo::NodeId mn = plan.path[pos];
    const topo::PortId egress = g.port_towards(mn, plan.path[pos + 1]);
    const MTuple tuple = registry_.generate(
        mn, plan.flow_id,
        hide_endpoints(restrictions_.allowed_src(mn, egress)),
        hide_endpoints(restrictions_.allowed_dst(mn, egress)));
    plan.forward[j] = {tuple.src, tuple.dst, tuple.sport, tuple.dport,
                       tuple.mpls};
  }

  topo::Path rpath(plan.path.rbegin(), plan.path.rend());
  std::vector<std::size_t> rpositions;
  rpositions.reserve(n);
  for (const std::size_t pos : plan.mn_positions) {
    rpositions.push_back(plan.path.size() - 1 - pos);
  }
  std::sort(rpositions.begin(), rpositions.end());
  for (std::size_t j = 1; j < n; ++j) {
    const std::size_t pos = rpositions[j - 1];
    const topo::NodeId mn = rpath[pos];
    const topo::PortId egress = g.port_towards(mn, rpath[pos + 1]);
    const MTuple tuple = registry_.generate(
        mn, plan.flow_id,
        hide_endpoints(restrictions_.allowed_src(mn, egress)),
        hide_endpoints(restrictions_.allowed_dst(mn, egress)));
    plan.reverse[j] = {tuple.src, tuple.dst, tuple.sport, tuple.dport,
                       tuple.mpls};
  }
}

void MimicController::generate_decoys(int count, MFlowPlan& plan) {
  if (count <= 0 || plan.mn_positions.empty()) return;
  const auto& g = graph();
  const std::size_t first_pos = plan.mn_positions[0];
  const topo::NodeId first_mn = plan.path[first_pos];
  const topo::PortId real_egress =
      g.port_towards(first_mn, plan.path[first_pos + 1]);
  const topo::PortId ingress =
      g.port_towards(first_mn, plan.path[first_pos - 1]);

  std::vector<const topo::Adjacency*> decoy_ports;
  for (const auto& adj : g.neighbors(first_mn)) {
    if (adj.local_port != real_egress && adj.local_port != ingress &&
        g.is_switch(adj.peer)) {
      decoy_ports.push_back(&adj);
    }
  }
  if (decoy_ports.empty()) {
    log_warn("channel: first MN %u has no spare switch ports for decoys",
             first_mn);
    return;
  }
  for (int d = 0; d < count; ++d) {
    const auto& adj =
        *decoy_ports[static_cast<std::size_t>(d) % decoy_ports.size()];
    DecoyPlan decoy;
    decoy.flow_id = registry_.allocate_flow_id();
    decoy.tuple = registry_.generate(
        first_mn, decoy.flow_id,
        restrictions_.allowed_src(first_mn, adj.local_port),
        restrictions_.allowed_dst(first_mn, adj.local_port));
    decoy.out_port = adj.local_port;
    decoy.next_switch = adj.peer;
    decoy.next_in_port = adj.peer_port;
    plan.decoys.push_back(decoy);
  }
}

bool MimicController::plan_mflow(const PlanContext& ctx, int mn_count,
                                 net::L4Port initiator_sport, int decoys,
                                 MFlowPlan& out, std::string& error) {
  const auto& g = graph();
  const std::size_t n = static_cast<std::size_t>(mn_count);

  out.flow_id = registry_.allocate_flow_id();
  if (!sample_route_and_positions(ctx, n, out, error)) {
    registry_.release_flow_id(out.flow_id);
    return false;
  }

  const auto all_host_ips = [this, &g] {
    std::vector<net::Ipv4> ips;
    for (const topo::NodeId h : g.hosts()) ips.push_back(addressing().ip_of(h));
    return ips;
  };

  // --- entry address ----------------------------------------------------------
  // Plausible at the first link the packet takes out of the edge switch.
  std::vector<net::Ipv4> entry_candidates;
  {
    const topo::NodeId first_sw = out.path[1];
    const topo::PortId egress = g.port_towards(first_sw, out.path[2]);
    for (const net::Ipv4 ip : restrictions_.allowed_dst(first_sw, egress)) {
      if (ip != ctx.initiator_ip && ip != ctx.responder_ip) {
        entry_candidates.push_back(ip);
      }
    }
    if (entry_candidates.empty()) {
      for (const net::Ipv4 ip : all_host_ips()) {
        if (ip != ctx.initiator_ip) entry_candidates.push_back(ip);
      }
    }
    MIC_ASSERT_MSG(!entry_candidates.empty(), "no entry-address candidates");
  }
  net::Ipv4 entry_ip;
  net::L4Port entry_port = 0;
  for (int attempt = 0;; ++attempt) {
    MIC_ASSERT_MSG(attempt < kMaxEndpointTries, "entry address space exhausted");
    entry_ip = entry_candidates[rng_.below(entry_candidates.size())];
    entry_port = static_cast<net::L4Port>(rng_.range(1024, 65535));
    if (reserved_endpoints_
            .insert(endpoint_key(ctx.initiator_ip, 0, entry_ip, entry_port))
            .second) {
      break;
    }
  }

  const std::size_t sw_count = out.path.size() - 2;
  (void)sw_count;
  out.forward.resize(n + 1);
  out.reverse.resize(n + 1);
  out.forward[0] = {ctx.initiator_ip, entry_ip, initiator_sport, entry_port,
                    net::kNoMpls};

  // --- presented (final) address ------------------------------------------------
  {
    const std::size_t last_pos = out.mn_positions[n - 1];
    const topo::NodeId last_mn = out.path[last_pos];
    const topo::PortId egress =
        g.port_towards(last_mn, out.path[last_pos + 1]);
    std::vector<net::Ipv4> presented_candidates;
    for (const net::Ipv4 ip : restrictions_.allowed_src(last_mn, egress)) {
      if (ip != ctx.responder_ip && ip != ctx.initiator_ip) {
        presented_candidates.push_back(ip);
      }
    }
    if (presented_candidates.empty()) {
      for (const net::Ipv4 ip : all_host_ips()) {
        if (ip != ctx.responder_ip) presented_candidates.push_back(ip);
      }
    }
    MIC_ASSERT_MSG(!presented_candidates.empty(),
                   "no presented-address candidates");
    net::Ipv4 presented_ip;
    net::L4Port presented_port = 0;
    for (int attempt = 0;; ++attempt) {
      MIC_ASSERT_MSG(attempt < kMaxEndpointTries,
                     "presented address space exhausted");
      presented_ip =
          presented_candidates[rng_.below(presented_candidates.size())];
      presented_port = static_cast<net::L4Port>(rng_.range(1024, 65535));
      if (reserved_endpoints_
              .insert(endpoint_key(presented_ip, presented_port,
                                   ctx.responder_ip, ctx.responder_port))
              .second) {
        break;
      }
    }
    out.forward[n] = {presented_ip, ctx.responder_ip, presented_port,
                      ctx.responder_port, net::kNoMpls};
  }

  out.reverse[0] = {ctx.responder_ip, out.forward[n].src, ctx.responder_port,
                    out.forward[n].sport, net::kNoMpls};
  out.reverse[n] = {entry_ip, ctx.initiator_ip, entry_port, initiator_sport,
                    net::kNoMpls};

  generate_middle_tuples(ctx, out);
  generate_decoys(decoys, out);
  return true;
}

bool MimicController::replan_flow(const PlanContext& ctx, MFlowPlan& plan,
                                  std::string& error) {
  const std::size_t n = plan.mn_positions.size();

  // Release the middle tuples and decoys of the old route; the endpoint
  // addresses, ports and flow ID stay -- the transport connection must not
  // notice the migration.
  auto tuple_of = [](const HopAddresses& hop) {
    return MTuple{hop.src, hop.dst, hop.sport, hop.dport, hop.mpls};
  };
  {
    topo::Path rpath(plan.path.rbegin(), plan.path.rend());
    std::vector<std::size_t> rpositions;
    for (const std::size_t pos : plan.mn_positions) {
      rpositions.push_back(plan.path.size() - 1 - pos);
    }
    std::sort(rpositions.begin(), rpositions.end());
    for (std::size_t j = 1; j < n; ++j) {
      registry_.release_tuples(plan.path[plan.mn_positions[j - 1]],
                               {tuple_of(plan.forward[j])});
      registry_.release_tuples(rpath[rpositions[j - 1]],
                               {tuple_of(plan.reverse[j])});
    }
    const topo::NodeId first_mn = plan.path[plan.mn_positions[0]];
    for (const DecoyPlan& decoy : plan.decoys) {
      registry_.release_flow_id(decoy.flow_id);
      registry_.release_tuples(first_mn, {decoy.tuple});
    }
  }
  const int decoy_count = static_cast<int>(plan.decoys.size());
  plan.decoys.clear();

  if (!sample_route_and_positions(ctx, n, plan, error)) return false;
  generate_middle_tuples(ctx, plan);
  generate_decoys(decoy_count, plan);
  return true;
}

void MimicController::install_direction(
    ChannelId id, const MFlowPlan& plan, const topo::Path& path,
    const std::vector<std::size_t>& mn_positions,
    const std::vector<HopAddresses>& hops,
    const std::vector<DecoyPlan>& decoys, std::vector<InstallOp>& ops,
    std::uint32_t& group_alloc) const {
  const auto& g = graph();
  const std::size_t n = mn_positions.size();

  auto make_match = [&](const HopAddresses& hop, topo::PortId in_port) {
    switchd::Match match;
    match.in_port = in_port;
    match.src = hop.src;
    match.dst = hop.dst;
    match.sport = hop.sport;
    match.dport = hop.dport;
    if (hop.mpls == net::kNoMpls) {
      match.require_no_mpls = true;
    } else {
      match.mpls = hop.mpls;
    }
    // Every m-flow rule must stay fully specified so it is served by the
    // switches' exact-match index -- per-packet cost must not grow with
    // the number of channels (the Fig. 9 scaling argument).
    MIC_ASSERT_MSG(match.is_exact(), "m-flow match left a wildcard field");
    return match;
  };
  auto rewrite_actions = [&](const HopAddresses& to) {
    std::vector<switchd::Action> actions;
    actions.push_back(switchd::SetSrc{to.src});
    actions.push_back(switchd::SetDst{to.dst});
    actions.push_back(switchd::SetSport{to.sport});
    actions.push_back(switchd::SetDport{to.dport});
    if (to.mpls == net::kNoMpls) {
      actions.push_back(switchd::PopMpls{});
    } else {
      actions.push_back(switchd::SetMpls{to.mpls});
    }
    return actions;
  };

  for (std::size_t t = 1; t + 1 < path.size(); ++t) {
    const topo::NodeId sw = path[t];
    const topo::PortId in_port = g.port_towards(sw, path[t - 1]);
    const topo::PortId egress = g.port_towards(sw, path[t + 1]);

    // Segment index carried into this switch.
    std::size_t seg = 0;
    while (seg < n && mn_positions[seg] < t) ++seg;
    const bool is_mn = seg < n && mn_positions[seg] == t;

    switchd::FlowRule rule;
    rule.priority = ctrl::kPriorityMFlow;
    rule.cookie = id;
    rule.match = make_match(hops[seg], in_port);

    if (!is_mn) {
      rule.actions = {switchd::Output{egress}};
      ops.push_back({sw, std::move(rule)});
      continue;
    }

    auto actions = rewrite_actions(hops[seg + 1]);
    actions.push_back(switchd::Output{egress});

    if (seg == 0 && !decoys.empty()) {
      // Partially-multicast: an ALL group replicates the packet with
      // different m-addresses out different ports; only the real copy
      // survives its next hop.
      switchd::GroupEntry group;
      group.group_id = group_alloc++;
      group.type = switchd::GroupType::kAll;
      group.cookie = id;
      group.buckets.push_back(std::move(actions));
      for (const DecoyPlan& decoy : decoys) {
        const HopAddresses decoy_hop{decoy.tuple.src, decoy.tuple.dst,
                                     decoy.tuple.sport, decoy.tuple.dport,
                                     decoy.tuple.mpls};
        auto bucket = rewrite_actions(decoy_hop);
        bucket.push_back(switchd::Output{decoy.out_port});
        group.buckets.push_back(std::move(bucket));

        // The decoy dies at its next hop.
        switchd::FlowRule drop;
        drop.priority = ctrl::kPriorityDecoyDrop;
        drop.cookie = id;
        drop.match = make_match(decoy_hop, decoy.next_in_port);
        drop.actions = {switchd::DropAction{}};
        ops.push_back({decoy.next_switch, std::move(drop)});
      }
      // The group precedes the rule that references it; commits preserve
      // op order, so the reference is never dangling.
      ops.push_back({sw, std::move(group)});
      rule.actions = {switchd::GroupAction{group_alloc - 1}};
    } else {
      rule.actions = std::move(actions);
    }
    ops.push_back({sw, std::move(rule)});
  }
  (void)plan;
}

void MimicController::install_flow(ChannelId id, const MFlowPlan& plan,
                                   std::vector<InstallOp>& ops,
                                   std::uint32_t& group_alloc) const {
  install_direction(id, plan, plan.path, plan.mn_positions, plan.forward,
                    plan.decoys, ops, group_alloc);
  topo::Path rpath(plan.path.rbegin(), plan.path.rend());
  std::vector<std::size_t> rpositions;
  for (const std::size_t pos : plan.mn_positions) {
    rpositions.push_back(plan.path.size() - 1 - pos);
  }
  std::sort(rpositions.begin(), rpositions.end());
  install_direction(id, plan, rpath, rpositions, plan.reverse, {}, ops,
                    group_alloc);
}

std::vector<topo::NodeId> MimicController::touched_switches(
    const std::vector<InstallOp>& ops) const {
  std::vector<topo::NodeId> nodes;
  nodes.reserve(ops.size());
  for (const InstallOp& op : ops) nodes.push_back(op.sw);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

bool MimicController::commit_now(std::uint64_t cookie,
                                 const std::vector<InstallOp>& ops) {
  for (const InstallOp& op : ops) {
    const bool ok =
        std::holds_alternative<switchd::FlowRule>(op.payload)
            ? install_rule_now(op.sw, std::get<switchd::FlowRule>(op.payload))
            : install_group_now(op.sw,
                                std::get<switchd::GroupEntry>(op.payload));
    if (!ok) {
      for (const topo::NodeId sw : touched_switches(ops)) {
        remove_cookie(sw, cookie, /*immediate=*/true);
      }
      return false;
    }
  }
  return true;
}

sim::SimTime MimicController::retry_delay(int attempt) {
  const sim::SimTime base = mic_config_.install_backoff_base;
  const sim::SimTime cap = mic_config_.install_backoff_cap;
  const int shift = std::min(attempt - 1, 20);
  sim::SimTime backoff = base << shift;
  if (backoff > cap || (shift > 0 && (backoff >> shift) != base)) {
    backoff = cap;
  }
  const sim::SimTime jitter = base == 0 ? 0 : rng_.below(base);
  return config().southbound_latency + backoff + jitter;
}

void MimicController::commit_async(ChannelId id, std::uint64_t txn,
                                   std::vector<InstallOp> ops,
                                   std::function<void(bool)> on_done,
                                   int attempt) {
  {
    const auto it = channels_.find(id);
    if (it == channels_.end() || it->second.install_txn != txn) {
      // Torn down or superseded since this commit (or retry) was issued;
      // the cookie's current owner manages the rules now.
      on_done(false);
      return;
    }
  }
  if (ops.empty()) {
    on_done(true);
    return;
  }

  struct Txn {
    std::vector<InstallOp> ops;
    std::function<void(bool)> on_done;
    std::size_t pending = 0;
    bool failed = false;
  };
  auto txn_state = std::make_shared<Txn>();
  txn_state->ops = std::move(ops);
  txn_state->on_done = std::move(on_done);
  txn_state->pending = txn_state->ops.size();

  auto settle = [this, id, txn, txn_state, attempt](bool ok) {
    if (!ok) txn_state->failed = true;
    if (--txn_state->pending != 0) return;
    if (!txn_state->failed) {
      txn_state->on_done(true);
      return;
    }
    const auto it = channels_.find(id);
    if (it == channels_.end() || it->second.install_txn != txn) {
      txn_state->on_done(false);
      return;
    }
    // All-or-nothing: pull whatever landed before trying again.  A lost
    // reply may have left its rule installed; rollback-by-cookie makes the
    // retry start from a clean slate either way.
    for (const topo::NodeId sw : touched_switches(txn_state->ops)) {
      remove_cookie(sw, id, /*immediate=*/false);
    }
    if (attempt >= mic_config_.install_retry_limit) {
      txn_state->on_done(false);
      return;
    }
    ++install_retries_;
    network().simulator().schedule_in(
        retry_delay(attempt), [this, id, txn, txn_state, attempt] {
          commit_async(id, txn, std::move(txn_state->ops),
                       std::move(txn_state->on_done), attempt + 1);
        });
  };

  for (const InstallOp& op : txn_state->ops) {
    if (const auto* rule = std::get_if<switchd::FlowRule>(&op.payload)) {
      install_rule_checked(op.sw, *rule, settle);
    } else {
      install_group_checked(op.sw, std::get<switchd::GroupEntry>(op.payload),
                            settle);
    }
  }
}

MimicController::PlanContext MimicController::context_of(
    const ChannelState& state) const {
  PlanContext ctx;
  ctx.initiator = state.initiator;
  ctx.responder = state.responder;
  const MFlowPlan& first = state.flows.front();
  ctx.initiator_ip = first.forward.front().src;
  ctx.responder_ip = first.forward.back().dst;
  ctx.responder_port = first.forward.back().dport;
  return ctx;
}

EstablishResult MimicController::plan_channel(const EstablishRequest& request,
                                              std::vector<InstallOp>& ops) {
  ++requests_;
  EstablishResult result;

  PlanContext ctx;
  ctx.initiator_ip = request.initiator_ip;
  if (!request.service_name.empty()) {
    const auto it = hidden_services_.find(request.service_name);
    if (it == hidden_services_.end()) {
      result.error = "unknown hidden service: " + request.service_name;
      return result;
    }
    ctx.responder_ip = it->second.first;
    ctx.responder_port = it->second.second;
  } else {
    ctx.responder_ip = request.responder_ip;
    ctx.responder_port = request.responder_port;
  }
  ctx.initiator = addressing().host_of(ctx.initiator_ip);
  ctx.responder = addressing().host_of(ctx.responder_ip);
  if (ctx.initiator == topo::kInvalidNode ||
      ctx.responder == topo::kInvalidNode) {
    result.error = "unknown initiator or responder address";
    return result;
  }
  if (ctx.initiator == ctx.responder) {
    result.error = "initiator and responder must differ";
    return result;
  }
  if (request.flow_count < 1 || request.mn_count < 1 ||
      request.initiator_sports.size() !=
          static_cast<std::size_t>(request.flow_count)) {
    result.error = "malformed request (F, N, or source ports)";
    return result;
  }

  ChannelState state;
  state.id = next_channel_++;
  state.initiator = ctx.initiator;
  state.responder = ctx.responder;

  for (int f = 0; f < request.flow_count; ++f) {
    MFlowPlan plan;
    std::string error;
    if (!plan_mflow(ctx, request.mn_count,
                    request.initiator_sports[static_cast<std::size_t>(f)],
                    request.multicast_decoys, plan, error)) {
      for (const MFlowPlan& planned : state.flows) {
        release_plan_resources(planned);
      }
      result.error = error;
      return result;
    }
    state.flows.push_back(std::move(plan));
  }

  std::vector<InstallOp> planned;
  for (const MFlowPlan& plan : state.flows) {
    install_flow(state.id, plan, planned, next_group_);
  }
  state.touched_switches = touched_switches(planned);
  state.install_txn = 1;

  result.ok = true;
  result.channel = state.id;
  for (const MFlowPlan& plan : state.flows) {
    result.entries.push_back({plan.forward[0].dst, plan.forward[0].dport});
  }
  // Write-ahead: the journal learns the channel before any rule reaches a
  // switch, so a crash mid-commit recovers to "journal ahead of switches"
  // and the resync reinstalls (never the unrecoverable inverse).
  journal_.record_establish(state, next_channel_, next_group_);
  channels_.emplace(state.id, std::move(state));
  ops = std::move(planned);
  return result;
}

EstablishResult MimicController::establish(const EstablishRequest& request) {
  if (crashed_) {
    EstablishResult down;
    down.error = "controller unavailable";
    return down;
  }
  const ctrl::AdmissionController::Ticket ticket =
      admission_.offer_sync(request.initiator_ip);
  if (!ticket.admitted) return busy_result(ticket.retry_after);
  std::vector<InstallOp> ops;
  EstablishResult result = plan_channel(request, ops);
  if (!result.ok) return result;
  if (!commit_now(result.channel, ops)) {
    const auto it = channels_.find(result.channel);
    for (const MFlowPlan& plan : it->second.flows) {
      release_plan_resources(plan);
    }
    journal_.record_teardown(result.channel);
    journal_.commit_boundary();
    channels_.erase(it);
    EstablishResult failed;
    failed.error = "rule install rejected; channel rolled back";
    return failed;
  }
  // The ack is the commit boundary: under FsyncPolicy::kCommitBoundary the
  // establish record must be durable before the client hears "ok".
  journal_.commit_boundary();
  return result;
}

std::vector<EstablishResult> MimicController::establish_batch(
    const std::vector<EstablishRequest>& requests) {
  // Group by destination so one warm PathEngine row serves every channel
  // headed there before the planner moves on; stable so same-destination
  // requests keep their relative order (and with it the rng_ draw order).
  // Admission happens per request inside establish(), so a batch spends
  // tokens exactly like the same requests sent one at a time -- batching
  // is a planner-cache optimization, not a quota bypass.  Which requests
  // of an over-budget batch get shed follows this destination-grouped
  // processing order; the results still come back in request order.
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto dest_key = [](const EstablishRequest& r) {
    return std::make_tuple(r.service_name, r.responder_ip.value,
                           r.responder_port);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return dest_key(requests[a]) < dest_key(requests[b]);
                   });
  std::vector<EstablishResult> results(requests.size());
  for (const std::size_t i : order) results[i] = establish(requests[i]);
  return results;
}

void MimicController::async_establish(
    net::Ipv4 client, std::vector<std::uint8_t> encrypted_request,
    std::uint64_t message_counter,
    std::function<void(EstablishResult)> on_result,
    ctrl::AdmitPriority priority) {
  if (crashed_) return;  // a dead MC answers nothing, not even errors
  auto& simulator = network().simulator();
  simulator.schedule_in(
      mic_config_.control_latency,
      [this, client, priority, enc = std::move(encrypted_request),
       message_counter, cb = std::move(on_result)]() mutable {
        if (crashed_) return;  // crashed while the request was in flight
        // Admission happens on arrival, before any decrypt CPU is spent --
        // the tenant (the client address) and the priority class are
        // transport-level facts, so a shed request costs the MC nothing
        // but the Busy reply.  Exactly one of run/shed fires, so sharing
        // the callback is safe.
        auto shared_cb =
            std::make_shared<std::function<void(EstablishResult)>>(
                std::move(cb));
        admission_.offer(
            client, priority,
            /*run=*/
            [this, client, enc = std::move(enc), message_counter,
             shared_cb]() mutable {
              service_establish(client, std::move(enc), message_counter,
                                std::move(*shared_cb));
            },
            /*shed=*/
            [this, shared_cb](sim::SimTime retry_after) {
              network().simulator().schedule_in(
                  mic_config_.control_latency,
                  [shared_cb, retry_after] {
                    (*shared_cb)(busy_result(retry_after));
                  });
            });
      });
}

void MimicController::service_establish(
    net::Ipv4 client, std::vector<std::uint8_t> bytes,
    std::uint64_t message_counter,
    std::function<void(EstablishResult)> on_result) {
  const auto key_it = client_keys_.find(client.value);
  MIC_ASSERT_MSG(key_it != client_keys_.end(),
                 "client must register_client() before establishing");
  crypt_control_message(key_it->second, message_counter, bytes);
  const EstablishRequest request = deserialize_request(bytes);
  // The admission service slot is held until the ack (or error) leaves:
  // in-service covers the whole plan/install pipeline.  The epoch guard
  // keeps a completion that straddles a crash from corrupting the books
  // of the next MC life.
  const std::uint64_t admit_epoch = admission_.epoch();
  auto cb = std::move(on_result);

  const auto& costs = crypto::default_cost_model();
  const double cycles =
      costs.mic_request_fixed_cycles +
      costs.aes_crypt_cycles(bytes.size()) +
      costs.mic_route_calc_cycles_per_flow * request.flow_count;
  const sim::SimTime done =
      mc_cpu_.charge(network().simulator().now(), cycles);

  network().simulator().schedule_at(done, [this, client, request, admit_epoch,
                                           cb = std::move(cb)] {
    if (crashed_) return;
    std::vector<InstallOp> ops;
    EstablishResult result = plan_channel(request, ops);
    if (!result.ok) {
      admission_.finish(client, admit_epoch);
      network().simulator().schedule_in(
          config().southbound_latency + mic_config_.control_latency,
          [cb = std::move(cb), result = std::move(result)] {
            cb(result);
          });
      return;
    }
    // The acknowledgement leaves once every rule is confirmed (an
    // install that fails after retries rolls the channel back and
    // turns the ack into an error).
    const ChannelId id = result.channel;
    commit_async(
        id, /*txn=*/1, std::move(ops),
        [this, client, id, admit_epoch, result = std::move(result),
         cb = std::move(cb)](bool committed) mutable {
          if (crashed_) return;  // true silence: the client times out
          admission_.finish(client, admit_epoch);
          const auto it = channels_.find(id);
          const bool alive = it != channels_.end();
          const bool current =
              alive && it->second.install_txn == 1;
          if (!committed && current) {
            for (const MFlowPlan& plan : it->second.flows) {
              release_plan_resources(plan);
            }
            journal_.record_teardown(id);
            channels_.erase(it);
            listeners_.erase(id);
            result = EstablishResult{};
            result.error = "rule install failed after retries";
          } else if (!committed && !alive) {
            result = EstablishResult{};
            result.error = "channel lost during establishment";
          }
          // Ack time is the commit boundary for the async path too.
          journal_.commit_boundary();
          // committed, or superseded by a repair with the channel
          // still alive: the entry addresses are stable across
          // re-planning, so the original acknowledgement stands.
          network().simulator().schedule_in(
              mic_config_.control_latency,
              [cb = std::move(cb), result = std::move(result)] {
                cb(result);
              });
        });
  });
}

MimicController::ControlSessionId MimicController::open_control_session(
    net::Ipv4 client) {
  if (crashed_) return 0;  // silent, like every control entry point
  return admission_.open_session(client);
}

bool MimicController::touch_control_session(ControlSessionId id) {
  if (crashed_) return false;
  return admission_.touch_session(id);
}

bool MimicController::complete_control_session(
    ControlSessionId id, net::Ipv4 client,
    std::vector<std::uint8_t> encrypted_request,
    std::uint64_t message_counter,
    std::function<void(EstablishResult)> on_result,
    ctrl::AdmitPriority priority) {
  if (crashed_) return false;
  // A reaped (or pre-crash) session is gone: the late completion is
  // dropped, which is exactly how the tracker keeps a slow client from
  // pinning state -- it has to start over.
  if (!admission_.complete_session(id)) return false;
  async_establish(client, std::move(encrypted_request), message_counter,
                  std::move(on_result), priority);
  return true;
}

void MimicController::release_plan_resources(const MFlowPlan& plan) {
  registry_.release_flow_id(plan.flow_id);
  const std::size_t n = plan.mn_positions.size();

  auto tuple_of = [](const HopAddresses& hop) {
    return MTuple{hop.src, hop.dst, hop.sport, hop.dport, hop.mpls};
  };

  for (std::size_t j = 1; j < n; ++j) {
    const topo::NodeId mn = plan.path[plan.mn_positions[j - 1]];
    registry_.release_tuples(mn, {tuple_of(plan.forward[j])});
  }
  topo::Path rpath(plan.path.rbegin(), plan.path.rend());
  std::vector<std::size_t> rpositions;
  for (const std::size_t pos : plan.mn_positions) {
    rpositions.push_back(plan.path.size() - 1 - pos);
  }
  std::sort(rpositions.begin(), rpositions.end());
  for (std::size_t j = 1; j < n; ++j) {
    const topo::NodeId mn = rpath[rpositions[j - 1]];
    registry_.release_tuples(mn, {tuple_of(plan.reverse[j])});
  }
  if (!plan.mn_positions.empty()) {
    const topo::NodeId first_mn = plan.path[plan.mn_positions[0]];
    for (const DecoyPlan& decoy : plan.decoys) {
      registry_.release_flow_id(decoy.flow_id);
      registry_.release_tuples(first_mn, {decoy.tuple});
    }
  }

  // Release the entry / presented endpoint reservations.
  reserved_endpoints_.erase(endpoint_key(plan.forward[0].src, 0,
                                         plan.forward[0].dst,
                                         plan.forward[0].dport));
  reserved_endpoints_.erase(endpoint_key(plan.forward[n].src,
                                         plan.forward[n].sport,
                                         plan.forward[n].dst,
                                         plan.forward[n].dport));
}

void MimicController::teardown(ChannelId id, bool immediate) {
  if (crashed_) return;
  const auto it = channels_.find(id);
  if (it == channels_.end()) return;
  journal_.record_teardown(id);
  journal_.commit_boundary();
  for (const topo::NodeId sw : it->second.touched_switches) {
    remove_cookie(sw, id, immediate);
  }
  for (const MFlowPlan& plan : it->second.flows) {
    release_plan_resources(plan);
  }
  channels_.erase(it);
  listeners_.erase(id);
}

// --- failure handling ---------------------------------------------------------

void MimicController::enable_failure_detection() {
  if (detection_enabled_) return;
  detection_enabled_ = true;
  subscribe_port_status();
}

void MimicController::reroute_default_routing() {
  if (!default_routing_installed_) return;
  reroute_stats_ += ctrl::L3RoutingApp::reroute_around(
      *this, [this](topo::NodeId host) { return cf_label_for(host); },
      failed_links_);
}

void MimicController::on_port_status(topo::NodeId sw, topo::PortId port,
                                     bool up) {
  // A crashed MC hears nothing; resync_failure_view() re-derives the
  // missed transitions from the PHY at recovery.
  if (crashed_) return;
  // Map the reporting port back to its link.
  topo::LinkId link = topo::kInvalidLink;
  for (const auto& adj : graph().neighbors(sw)) {
    if (adj.local_port == port) {
      link = adj.link;
      break;
    }
  }
  if (link == topo::kInvalidLink) return;
  // Both ends of a switch-switch link report the same failure, and the
  // harness may have reported it by hand already: only the first report
  // per transition acts.
  if (!up && !failed_links_.contains(link)) {
    fail_link(link);
  } else if (up && failed_links_.contains(link)) {
    restore_link(link);
  }
}

void MimicController::set_channel_listener(ChannelId id,
                                           ChannelListener listener) {
  listeners_[id] = std::move(listener);
}

void MimicController::clear_channel_listener(ChannelId id) {
  listeners_.erase(id);
}

void MimicController::notify_channel_event(ChannelId id, ChannelEvent event,
                                           std::string reason) {
  const auto it = listeners_.find(id);
  if (it == listeners_.end()) {
    if (event == ChannelEvent::kLost) listeners_.erase(id);
    return;
  }
  network().simulator().schedule_in(
      mic_config_.control_latency,
      [listener = it->second, event, reason = std::move(reason)] {
        listener(event, reason);
      });
  // A lost channel's listener can never fire again.
  if (event == ChannelEvent::kLost) listeners_.erase(it);
}

void MimicController::lose_channel(ChannelId id, const std::string& reason) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return;
  log_warn("channel %llu lost: %s", static_cast<unsigned long long>(id),
           reason.c_str());
  journal_.record_teardown(id);
  for (const topo::NodeId sw : it->second.touched_switches) {
    remove_cookie(sw, id, /*immediate=*/false);
  }
  for (const MFlowPlan& plan : it->second.flows) {
    release_plan_resources(plan);
  }
  channels_.erase(it);
  ++channels_lost_;
  journal_.commit_boundary();
  notify_channel_event(id, ChannelEvent::kLost, reason);
}

MimicController::RepairOutcome MimicController::repair_channels(
    const std::vector<ChannelId>& affected, const std::string& cause) {
  RepairOutcome outcome;
  for (const ChannelId id : affected) {
    ChannelState& state = channels_.at(id);
    const PlanContext ctx = context_of(state);

    // Pull the old rules everywhere this channel touched.
    for (const topo::NodeId sw : state.touched_switches) {
      remove_cookie(sw, id, /*immediate=*/false);
    }
    state.touched_switches.clear();

    bool ok = true;
    std::string error;
    for (MFlowPlan& plan : state.flows) {
      if (!replan_flow(ctx, plan, error)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      lose_channel(id, cause + ": " + error);
      ++outcome.lost;
      continue;
    }

    std::vector<InstallOp> ops;
    for (const MFlowPlan& plan : state.flows) {
      install_flow(id, plan, ops, next_group_);
    }
    state.touched_switches = touched_switches(ops);
    const std::uint64_t txn = ++state.install_txn;
    journal_.record_repair(state, next_channel_, next_group_);
    commit_async(id, txn, std::move(ops),
                 [this, id, txn, cause](bool committed) {
                   const auto it = channels_.find(id);
                   if (it == channels_.end() ||
                       it->second.install_txn != txn) {
                     return;  // superseded by a later repair or teardown
                   }
                   if (committed) {
                     ++channels_repaired_;
                     notify_channel_event(id, ChannelEvent::kRepaired, cause);
                   } else {
                     lose_channel(id,
                                  cause + ": rule re-install failed after "
                                          "retries");
                   }
                 });
    ++outcome.repaired;
  }
  // One boundary per repair fan-out: a failure storm's repair records sync
  // together instead of once per channel (the kCommitBoundary win).
  journal_.commit_boundary();
  return outcome;
}

MimicController::RepairOutcome MimicController::fail_link(topo::LinkId link) {
  if (crashed_) return {};  // learned from the PHY at recovery
  if (!failed_links_.insert(link).second) return {};  // already known
  // Bump the path engine's failure epoch first: only the cached BFS rows
  // whose shortest-path DAG used the link are dropped, so both the L3
  // reroute and the m-flow re-planning below see failure-aware distances
  // without a full-table rebuild.
  path_engine().link_failed(link);

  // Common flows first: re-install the default routing around the failure
  // (fast failover; ECMP absorbs single-link failures in Clos fabrics).
  reroute_default_routing();

  // Which channels cross the failed link?  (Forward and reverse use the
  // same physical links, so checking the forward path suffices.)
  std::vector<ChannelId> affected;
  for (const auto& [id, state] : channels_) {
    for (const MFlowPlan& plan : state.flows) {
      bool uses = false;
      for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
        if (graph().link_between(plan.path[i], plan.path[i + 1]) == link) {
          uses = true;
          break;
        }
      }
      if (uses) {
        affected.push_back(id);
        break;
      }
    }
  }
  // channels_ is unordered; repair in ID order so the rng_ draws (and with
  // them the whole run) stay deterministic (SIM-1).
  std::sort(affected.begin(), affected.end());
  return repair_channels(affected, "link failure");
}

void MimicController::restore_link(topo::LinkId link) {
  if (crashed_) return;
  if (failed_links_.erase(link) == 0) return;
  path_engine().link_restored(link);
  // The failure detours must not outlive the failure: re-optimize the
  // common-flow routing against the shrunken failure set, or every future
  // CF keeps paying the detour forever.
  reroute_default_routing();
}

MimicController::RepairOutcome MimicController::fail_switch(topo::NodeId sw) {
  if (crashed_) {
    // The switch dies whether or not the MC is up: its soft state is gone.
    // The control-plane reaction waits for recovery (the injector lowered
    // the incident links in the PHY, so resync_failure_view sees them).
    switch_at(sw)->table().clear();
    return {};
  }
  if (!failed_switches_.insert(sw).second) return {};
  // Every incident link goes down with the switch.
  for (const auto& adj : graph().neighbors(sw)) {
    if (failed_links_.insert(adj.link).second) {
      path_engine().link_failed(adj.link);
    }
  }
  // The crash loses all soft state; purging mirrors what the re-connected
  // switch would report (an empty table), and keeps the orphan-rule audit
  // honest about rules that no longer exist anywhere.
  switch_at(sw)->table().clear();

  reroute_default_routing();

  // Re-plan every channel that traversed the dead switch (as relay or MN;
  // incident-link checks would miss none, but the node check is direct) or
  // parked a decoy drop rule on it.
  std::vector<ChannelId> affected;
  for (const auto& [id, state] : channels_) {
    bool uses = false;
    for (const MFlowPlan& plan : state.flows) {
      for (const topo::NodeId node : plan.path) {
        if (node == sw) {
          uses = true;
          break;
        }
      }
      if (!uses) {
        for (const DecoyPlan& decoy : plan.decoys) {
          if (decoy.next_switch == sw) {
            uses = true;
            break;
          }
        }
      }
      if (uses) break;
    }
    if (uses) affected.push_back(id);
  }
  std::sort(affected.begin(), affected.end());
  // MN re-selection avoiding the node falls out of replan_flow: every path
  // through `sw` crosses a failed incident link, so sampling excludes it.
  return repair_channels(affected, "switch failure");
}

void MimicController::restore_switch(topo::NodeId sw) {
  if (crashed_) return;  // resync_failure_view re-learns the reboot
  if (failed_switches_.erase(sw) == 0) return;
  for (const auto& adj : graph().neighbors(sw)) {
    // A link is only usable when both of its endpoints are alive.
    if (failed_switches_.contains(adj.peer)) continue;
    if (failed_links_.erase(adj.link) != 0) {
      path_engine().link_restored(adj.link);
    }
  }
  // The rebooted switch comes back with an empty table; the reroute
  // re-installs the default routing everywhere, which both repopulates it
  // and drops the detours the failure forced elsewhere.
  reroute_default_routing();
}

void MimicController::mark_idle(ChannelId id, bool idle) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return;
  it->second.idle = idle;
  if (idle) it->second.idle_since = network().simulator().now();
}

std::size_t MimicController::reclaim_idle(sim::SimTime max_idle) {
  const sim::SimTime now = network().simulator().now();
  std::vector<ChannelId> stale;
  for (const auto& [id, state] : channels_) {
    if (state.idle && now - state.idle_since >= max_idle) {
      stale.push_back(id);
    }
  }
  std::sort(stale.begin(), stale.end());
  for (const ChannelId id : stale) {
    // Notify before teardown: the endpoint learns its idle channel is gone
    // rather than discovering a black hole on the next send.
    ++channels_lost_;
    notify_channel_event(id, ChannelEvent::kLost, "idle channel reclaimed");
    teardown(id, /*immediate=*/false);
  }
  return stale.size();
}

// --- crash recovery -----------------------------------------------------------

void MimicController::crash() {
  if (crashed_) return;
  ++crashes_;
  crashed_ = true;
  // Soft state dies with the process.  The journal (stable storage), the
  // deployment config, client keys, hidden services, the CF label map and
  // the failure view (re-learned from the NOS at recovery anyway) survive.
  channels_.clear();
  listeners_.clear();
  reserved_endpoints_.clear();
  registry_.reset_allocations();
  // Admission state (queued requests, half-open sessions, buckets) is soft
  // too: queued work dies silently and the reaper timers are cancelled.
  admission_.reset();
  next_channel_ =
      (static_cast<ChannelId>(mic_config_.instance_id) << 32) + 1;
  next_group_ = (mic_config_.instance_id << 24) + 1;
}

void MimicController::adopt_channel_resources(const ChannelState& state) {
  auto tuple_of = [](const HopAddresses& hop) {
    return MTuple{hop.src, hop.dst, hop.sport, hop.dport, hop.mpls};
  };
  for (const MFlowPlan& plan : state.flows) {
    registry_.adopt_flow_id(plan.flow_id);
    const std::size_t n = plan.mn_positions.size();
    for (std::size_t j = 1; j < n; ++j) {
      registry_.adopt_tuples(plan.path[plan.mn_positions[j - 1]],
                             {tuple_of(plan.forward[j])});
    }
    topo::Path rpath(plan.path.rbegin(), plan.path.rend());
    std::vector<std::size_t> rpositions;
    for (const std::size_t pos : plan.mn_positions) {
      rpositions.push_back(plan.path.size() - 1 - pos);
    }
    std::sort(rpositions.begin(), rpositions.end());
    for (std::size_t j = 1; j < n; ++j) {
      registry_.adopt_tuples(rpath[rpositions[j - 1]],
                             {tuple_of(plan.reverse[j])});
    }
    if (!plan.mn_positions.empty()) {
      const topo::NodeId first_mn = plan.path[plan.mn_positions[0]];
      for (const DecoyPlan& decoy : plan.decoys) {
        registry_.adopt_flow_id(decoy.flow_id);
        registry_.adopt_tuples(first_mn, {decoy.tuple});
      }
    }
    reserved_endpoints_.insert(endpoint_key(plan.forward[0].src, 0,
                                            plan.forward[0].dst,
                                            plan.forward[0].dport));
    reserved_endpoints_.insert(endpoint_key(plan.forward[n].src,
                                            plan.forward[n].sport,
                                            plan.forward[n].dst,
                                            plan.forward[n].dport));
  }
}

std::size_t MimicController::resync_failure_view() {
  std::size_t transitions = 0;

  // Switches first: a "failed" switch whose every incident link came back
  // up in the PHY rebooted while the MC was down.
  std::vector<topo::NodeId> rebooted;
  for (const topo::NodeId sw : failed_switches_) {
    bool all_up = true;
    for (const auto& adj : graph().neighbors(sw)) {
      if (!network().link_up(adj.link)) {
        all_up = false;
        break;
      }
    }
    if (all_up) rebooted.push_back(sw);
  }
  std::sort(rebooted.begin(), rebooted.end());
  for (const topo::NodeId sw : rebooted) {
    restore_switch(sw);
    ++transitions;
  }

  // Links: the PHY is the truth, plus failed-switch incidence (a dead
  // switch's links are unusable even while their PHY reports up).
  for (topo::LinkId link = 0;
       link < static_cast<topo::LinkId>(graph().link_count()); ++link) {
    const auto [a, b] = graph().link_endpoints(link);
    const bool want_failed = !network().link_up(link) ||
                             failed_switches_.contains(a) ||
                             failed_switches_.contains(b);
    if (want_failed && !failed_links_.contains(link)) {
      fail_link(link);
      ++transitions;
    } else if (!want_failed && failed_links_.contains(link)) {
      restore_link(link);
      ++transitions;
    }
  }
  return transitions;
}

bool MimicController::channel_path_dead(const ChannelState& state) const {
  for (const MFlowPlan& plan : state.flows) {
    for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
      if (failed_links_.contains(
              graph().link_between(plan.path[i], plan.path[i + 1]))) {
        return true;
      }
    }
    for (const topo::NodeId node : plan.path) {
      if (failed_switches_.contains(node)) return true;
    }
    for (const DecoyPlan& decoy : plan.decoys) {
      if (failed_switches_.contains(decoy.next_switch)) return true;
    }
  }
  return false;
}

std::size_t MimicController::verify_channel_rules(
    const ChannelState& state, std::vector<std::string>* violations) {
  // Regenerate the channel's expected ops with a scratch group allocator:
  // group ids are re-allocated on every (re)install, so group identity is
  // compared through the referenced group's type and buckets, never by id.
  std::uint32_t scratch_group = 1;
  std::vector<InstallOp> expected;
  for (const MFlowPlan& plan : state.flows) {
    install_flow(state.id, plan, expected, scratch_group);
  }

  struct SwExpect {
    std::vector<const switchd::FlowRule*> rules;
    std::vector<const switchd::GroupEntry*> groups;
  };
  std::map<topo::NodeId, SwExpect> expect;
  std::unordered_map<std::uint32_t, const switchd::GroupEntry*>
      expected_groups;
  for (const InstallOp& op : expected) {
    if (const auto* rule = std::get_if<switchd::FlowRule>(&op.payload)) {
      expect[op.sw].rules.push_back(rule);
    } else {
      const auto* group = &std::get<switchd::GroupEntry>(op.payload);
      expect[op.sw].groups.push_back(group);
      expected_groups.emplace(group->group_id, group);
    }
  }

  const auto note = [violations](std::string message) {
    if (violations != nullptr) violations->push_back(std::move(message));
  };
  const auto tag = [&state](topo::NodeId sw) {
    return "channel " + std::to_string(state.id) + " @switch " +
           std::to_string(sw) + ": ";
  };

  std::size_t checked = 0;
  for (const auto& [sw, want] : expect) {
    if (failed_switches_.contains(sw)) {
      note(tag(sw) + "switch is down");
      continue;
    }
    switchd::DumpFilter filter;
    filter.cookie = state.id;
    const switchd::FlowDump dump = switch_at(sw)->dump(filter);
    checked += dump.rules.size() + dump.groups.size();

    std::unordered_map<std::uint32_t, const switchd::GroupEntry*>
        actual_groups;
    for (const switchd::GroupEntry& group : dump.groups) {
      actual_groups.emplace(group.group_id, &group);
    }
    const auto groups_equivalent = [&](std::uint32_t want_id,
                                       std::uint32_t got_id) {
      const auto w = expected_groups.find(want_id);
      const auto g = actual_groups.find(got_id);
      if (w == expected_groups.end() || g == actual_groups.end()) return false;
      return w->second->type == g->second->type &&
             w->second->buckets == g->second->buckets;
    };
    const auto actions_equivalent =
        [&](const std::vector<switchd::Action>& a,
            const std::vector<switchd::Action>& b) {
          if (a.size() != b.size()) return false;
          for (std::size_t i = 0; i < a.size(); ++i) {
            const auto* ga = std::get_if<switchd::GroupAction>(&a[i]);
            const auto* gb = std::get_if<switchd::GroupAction>(&b[i]);
            if ((ga != nullptr) != (gb != nullptr)) return false;
            if (ga != nullptr) {
              if (!groups_equivalent(ga->group_id, gb->group_id)) return false;
            } else if (!(a[i] == b[i])) {
              return false;
            }
          }
          return true;
        };

    std::vector<bool> rule_taken(dump.rules.size(), false);
    for (const switchd::FlowRule* rule : want.rules) {
      bool found = false;
      for (std::size_t i = 0; i < dump.rules.size(); ++i) {
        if (rule_taken[i]) continue;
        const switchd::FlowRule& got = dump.rules[i];
        if (got.priority == rule->priority && got.match == rule->match &&
            actions_equivalent(rule->actions, got.actions)) {
          rule_taken[i] = true;
          found = true;
          break;
        }
      }
      if (!found) note(tag(sw) + "expected rule missing");
    }
    for (std::size_t i = 0; i < dump.rules.size(); ++i) {
      if (!rule_taken[i]) note(tag(sw) + "unexpected rule with this cookie");
    }

    std::vector<bool> group_taken(dump.groups.size(), false);
    for (const switchd::GroupEntry* group : want.groups) {
      bool found = false;
      for (std::size_t i = 0; i < dump.groups.size(); ++i) {
        if (group_taken[i]) continue;
        if (dump.groups[i].type == group->type &&
            dump.groups[i].buckets == group->buckets) {
          group_taken[i] = true;
          found = true;
          break;
        }
      }
      if (!found) note(tag(sw) + "expected group missing");
    }
    for (std::size_t i = 0; i < dump.groups.size(); ++i) {
      if (!group_taken[i]) note(tag(sw) + "unexpected group with this cookie");
    }
  }
  return checked;
}

void MimicController::probe_channel(ChannelId id, ChannelListener listener,
                                    std::function<void(bool)> on_result) {
  if (crashed_) return;  // the client's timeout is the answer
  // Liveness probes are exempt from the admission token buckets: a tenant
  // whose establishment budget an attacker (or its own burst) drained must
  // still hear whether its existing channels are alive.
  admission_.note_exempt();
  network().simulator().schedule_in(
      mic_config_.control_latency,
      [this, id, listener = std::move(listener),
       cb = std::move(on_result)]() mutable {
        if (crashed_) return;
        const bool alive = channels_.contains(id);
        if (alive && listener) listeners_[id] = std::move(listener);
        network().simulator().schedule_in(
            mic_config_.control_latency,
            [cb = std::move(cb), alive] { cb(alive); });
      });
}

MimicController::RecoveryReport MimicController::recover(
    const ChannelJournal& journal) {
  MIC_ASSERT_MSG(crashed_, "recover() requires a preceding crash()");
  RecoveryReport report;
  const std::uint64_t lost_before = channels_lost_;

  // 1. Replay the (possibly truncated) log into a consistent image.
  const JournalImage image = journal.replay();

  // New controller generation: every record and southbound op from here on
  // carries an epoch above anything the previous life (or a deposed
  // ex-primary still running somewhere) ever stamped.
  const std::uint64_t new_epoch =
      std::max(journal_.epoch(), image.epoch) + 1;
  journal_.set_epoch(new_epoch);
  set_fence_epoch(new_epoch);
  deposed_ = false;

  // 2. Adopt the image: channels, allocator state, endpoint reservations,
  // id watermarks.  Every adopted channel's install generation is bumped so
  // a pre-crash in-flight commit can never match it again.
  next_channel_ = std::max(next_channel_, image.next_channel);
  next_group_ = std::max(next_group_, image.next_group);
  std::map<ChannelId, std::uint64_t> adopted_txn;
  for (const auto& [id, state] : image.channels) {
    ChannelState adopted = state;
    ++adopted.install_txn;
    adopt_channel_resources(adopted);
    adopted_txn.emplace(id, adopted.install_txn);
    channels_.emplace(id, std::move(adopted));
    ++report.channels_recovered;
  }
  registry_.rebuild_free_list();

  // The MC answers again from here on.  Rebuild the durable journal from
  // the adopted state, so recovering from a harness-truncated copy leaves
  // journal_ and channels_ agreeing (RC-1's precondition).
  crashed_ = false;
  journal_.clear();
  for (const auto& [id, state] : image.channels) {
    journal_.record_establish(channels_.at(id), next_channel_, next_group_);
  }

  // 3. Re-learn PHY transitions missed while down.  This runs the ordinary
  // failure path, so channels crossing newly-dead links are replanned (or
  // lost) before the rule diff below looks at them.
  report.links_resynced = resync_failure_view();

  // 4. Dump every live switch and collect which switches actually hold
  // entries for which cookie; entries no journaled channel explains --
  // including survivors of a truncated journal -- are torn down.
  std::vector<topo::NodeId> fabric_switches = graph().switches();
  std::sort(fabric_switches.begin(), fabric_switches.end());
  std::map<std::uint64_t, std::vector<topo::NodeId>> observed;
  std::map<std::uint64_t, std::size_t> observed_entries;
  for (const topo::NodeId sw : fabric_switches) {
    if (failed_switches_.contains(sw)) continue;  // unreachable, empty anyway
    ++report.switches_resynced;
    // Fence the switch under the new epoch while resyncing it: from this
    // moment a zombie ex-primary's ops (stamped with an older epoch) are
    // refused, so nothing can mutate the table behind the diff below.
    switch_at(sw)->raise_fence(new_epoch);
    switchd::DumpFilter filter;
    filter.exclude_cookie = ctrl::kL3Cookie;
    const switchd::FlowDump dump = switch_at(sw)->dump(filter);
    const auto record = [&](std::uint64_t cookie) {
      auto& holders = observed[cookie];
      if (holders.empty() || holders.back() != sw) holders.push_back(sw);
      ++observed_entries[cookie];
    };
    for (const switchd::FlowRule& rule : dump.rules) record(rule.cookie);
    for (const switchd::GroupEntry& group : dump.groups) record(group.cookie);
  }
  for (const auto& [cookie, holders] : observed) {
    if (channels_.contains(cookie)) continue;
    for (const topo::NodeId sw : holders) {
      remove_cookie(sw, cookie, /*immediate=*/true);
    }
    report.orphan_rules_removed += observed_entries.at(cookie);
  }

  // 5. Keep / reinstall / replan each recovered channel (ascending id, so
  // the rng_ draws of any replans stay deterministic).
  for (const auto& [id, txn] : adopted_txn) {
    const auto it = channels_.find(id);
    if (it == channels_.end()) continue;  // lost during the failure resync
    if (it->second.install_txn != txn) {
      // Repaired during the failure resync.  That repair swept only the
      // journaled scope, and every rule of its fresh generation is still
      // in flight (checked installs land a southbound latency after this
      // synchronous pass) -- so anything the dumps saw under this cookie
      // is pre-takeover residue the journal never carried: a lost repair
      // of the old primary, or a zombie's last plan.  Sweep it all; the
      // in-flight generation lands on clean tables right after.
      if (const auto obs = observed.find(id); obs != observed.end()) {
        for (const topo::NodeId sw : obs->second) {
          remove_cookie(sw, id, /*immediate=*/true);
        }
      }
      ++report.channels_replanned;
      continue;
    }
    ChannelState& state = it->second;
    if (channel_path_dead(state)) {
      // The dumps may have seen this cookie on switches the (possibly
      // truncated) journal never recorded -- a pre-crash repair whose
      // record was lost.  repair_channels only sweeps the journaled scope,
      // so pull the out-of-scope survivors here or they outlive the
      // channel.
      if (const auto obs = observed.find(id); obs != observed.end()) {
        for (const topo::NodeId sw : obs->second) {
          if (!std::binary_search(state.touched_switches.begin(),
                                  state.touched_switches.end(), sw)) {
            remove_cookie(sw, id, /*immediate=*/true);
          }
        }
      }
      repair_channels({id}, "recovery");
      if (channels_.contains(id)) ++report.channels_replanned;
      continue;
    }

    // A channel whose rules sit on switches outside its journaled scope
    // (a truncated journal replayed a pre-repair route) is a mismatch by
    // construction; otherwise compare rule content switch by switch.
    bool mismatch = false;
    std::vector<topo::NodeId> holders;
    if (const auto obs = observed.find(id); obs != observed.end()) {
      holders = obs->second;
      for (const topo::NodeId sw : holders) {
        if (!std::binary_search(state.touched_switches.begin(),
                                state.touched_switches.end(), sw)) {
          mismatch = true;
          break;
        }
      }
    }
    if (!mismatch) {
      std::vector<std::string> violations;
      verify_channel_rules(state, &violations);
      mismatch = !violations.empty();
    }
    if (!mismatch) {
      ++report.channels_kept;
      continue;
    }

    // Reinstall under a fresh generation through the transactional path,
    // sweeping the cookie from both the journaled scope and wherever the
    // dumps actually saw it.
    std::vector<topo::NodeId> scope = state.touched_switches;
    scope.insert(scope.end(), holders.begin(), holders.end());
    std::sort(scope.begin(), scope.end());
    scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
    for (const topo::NodeId sw : scope) {
      remove_cookie(sw, id, /*immediate=*/true);
    }
    std::vector<InstallOp> ops;
    for (const MFlowPlan& plan : state.flows) {
      install_flow(id, plan, ops, next_group_);
    }
    state.touched_switches = touched_switches(ops);
    const std::uint64_t new_txn = ++state.install_txn;
    journal_.record_repair(state, next_channel_, next_group_);
    commit_async(id, new_txn, std::move(ops),
                 [this, id, new_txn](bool committed) {
                   const auto cit = channels_.find(id);
                   if (cit == channels_.end() ||
                       cit->second.install_txn != new_txn) {
                     return;  // superseded by a later repair or teardown
                   }
                   if (!committed) {
                     lose_channel(
                         id, "recovery: rule re-install failed after retries");
                   }
                 });
    ++report.channels_reinstalled;
  }

  report.channels_lost = channels_lost_ - lost_before;
  // One boundary covers the whole rebuilt journal (re-records plus any
  // repair records): recovery is a single durable transaction.
  journal_.commit_boundary();
  last_recovery_ = report;
  return report;
}

void MimicController::mirror_directory_from(const MimicController& other) {
  client_keys_ = other.client_keys_;
  hidden_services_ = other.hidden_services_;
  cf_labels_ = other.cf_labels_;
}

void MimicController::on_fenced_out(topo::NodeId sw) {
  if (crashed_ || deposed_) return;
  deposed_ = true;
  log_warn("MC deposed: switch %u holds a newer fence epoch (ours %llu)", sw,
           static_cast<unsigned long long>(fence_epoch()));
  // Step down by self-crashing, but deferred: the refusal surfaces inside
  // an install path that may still be iterating controller state, and
  // crash() wipes it all.
  network().simulator().schedule_in(sim::SimTime{0}, [this] {
    if (!crashed_) crash();
  });
}

const ChannelState* MimicController::channel(ChannelId id) const {
  const auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}

std::vector<ChannelId> MimicController::channel_ids() const {
  std::vector<ChannelId> ids;
  ids.reserve(channels_.size());
  for (const auto& [id, state] : channels_) {
    (void)state;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace mic::core
