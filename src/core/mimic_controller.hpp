// The Mimic Controller (MC): the core of MIC (paper Sec IV-B).
//
// The MC runs inside the SDN controller.  It manages mimic-channel state,
// computes the routing of every m-flow (path choice, MN selection,
// m-address generation via MAGA), enforces collision avoidance, installs
// the per-hop rules, runs the hidden-service map, and answers client
// establishment requests over an encrypted control channel.
#pragma once

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "core/address_restrictions.hpp"
#include "core/channel.hpp"
#include "core/channel_journal.hpp"
#include "core/maga_registry.hpp"
#include "ctrl/admission.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/l3_routing.hpp"
#include "sim/cpu.hpp"

namespace mic::core {

struct MicConfig {
  /// One-way latency between a client and the MC (dedicated control net).
  sim::SimTime control_latency = sim::microseconds(150);
  /// Default privacy level ("the path length is set to default 3").
  int default_mn_count = 3;

  // --- rule-install robustness ----------------------------------------------
  /// Establishment and repair install rules transactionally: a rejected or
  /// lost flow-mod rolls the partial install back and the whole rule set is
  /// retried, up to this many attempts, before the channel is abandoned.
  int install_retry_limit = 5;
  /// Capped exponential backoff between install attempts (plus seeded
  /// jitter): attempt k waits base * 2^(k-1), clamped to the cap.
  sim::SimTime install_backoff_base = sim::microseconds(500);
  sim::SimTime install_backoff_cap = sim::milliseconds(8);

  // --- crash recovery ---------------------------------------------------------
  /// Compact the write-ahead channel journal whenever it grows past this
  /// many records (0 = never compact).
  std::size_t journal_compaction_threshold = 1024;

  // --- control-plane admission control ----------------------------------------
  /// Per-tenant token buckets, the bounded priority establish queue and the
  /// half-open-session reaper in front of every establishment entry point.
  /// The defaults are generous enough that ordinary workloads never
  /// saturate, which keeps every existing run bit-identical (SIM-1);
  /// tighten them to defend a real deployment (see DESIGN.md Sec 3h).
  ctrl::AdmissionConfig admission;

  // --- distributed-controller deployment (paper Sec VI-C) --------------------
  /// Distinguishes this controller instance: channel IDs, rule cookies and
  /// group IDs are derived from it so co-deployed MCs never collide.
  std::uint32_t instance_id = 0;
  /// This instance's slice of the m-flow ID space; slices of co-deployed
  /// MCs must be disjoint.
  FlowIdRange flow_ids{};
  /// Deployment-wide MAGA secret seed.  All co-deployed MCs must share it
  /// (the hash functions are global; only the ID spaces are partitioned).
  /// 0 derives a private seed from the controller seed (single-MC setup).
  std::uint64_t shared_secret_seed = 0;
};

class MimicController : public ctrl::Controller {
 public:
  MimicController(net::Network& network, ctrl::HostAddressing addressing,
                  std::uint64_t seed, MicConfig mic_config = {},
                  ctrl::ControllerConfig ctrl_config = {});

  // --- bootstrap ------------------------------------------------------------

  /// Install the CF-tagged proactive routing for common flows.
  void install_default_routing();

  /// Adopt the proactive routing a predecessor already installed (the
  /// fabric keeps its rules across a controller failover): record the
  /// next-hop signatures without reinstalling anything, and arm the
  /// selective-reroute machinery.  A warm standby calls this at takeover.
  void adopt_default_routing();

  /// Hidden-service registration (paper Sec IV-D): the responder publishes
  /// a nickname; initiators never learn its address.
  void register_hidden_service(const std::string& name, net::Ipv4 ip,
                               net::L4Port port);

  /// First-contact key setup with a client (paper: DH/RSA exchange done in
  /// advance).  Returns the pre-shared AES key; idempotent.
  const crypto::Aes128::Key& register_client(net::Ipv4 client);

  bool client_registered(net::Ipv4 client) const {
    return client_keys_.contains(client.value);
  }

  // --- channel establishment ------------------------------------------------
  //
  // Every establishment entry point passes through the admission
  // controller first (per-tenant token buckets, bounded priority queue,
  // load shedding -- see ctrl/admission.hpp): a shed request is answered
  // with a Busy{retry_after} result instead of silence.  Probe/heartbeat
  // traffic is exempt, so an attacked tenant's live channels keep their
  // liveness detection.

  /// Synchronous planning + immediate rule install.  Used by benchmarks
  /// and tests.  Installation is all-or-nothing: if any switch rejects a
  /// rule, everything already installed is rolled back and the result
  /// carries the error.  The caller cannot wait, so admission here is
  /// admit-or-shed (a token is drawn or the result says busy).
  EstablishResult establish(const EstablishRequest& request);

  /// The full control-plane path: admission (tenant = the client address,
  /// classified before any decrypt CPU is spent), then the encrypted
  /// request is decrypted and parsed (both charged to the MC CPU), the
  /// routing computed, rules installed with southbound latency, and the
  /// callback invoked when the encrypted acknowledgement reaches the
  /// client.  `priority` is the cleartext priority class: clients mark
  /// re-establishments kRepair, which outranks fresh establishes in the
  /// admission queue.
  void async_establish(net::Ipv4 client,
                       std::vector<std::uint8_t> encrypted_request,
                       std::uint64_t message_counter,
                       std::function<void(EstablishResult)> on_result,
                       ctrl::AdmitPriority priority =
                           ctrl::AdmitPriority::kFresh);

  /// Establish a burst of channels in one call.  Requests are grouped by
  /// destination so one warm PathEngine row serves every channel headed
  /// there before the planner moves on -- under an LRU-capped row cache an
  /// interleaved burst would otherwise recompute rows it just evicted.
  /// Results come back in request order.  Each request draws its own
  /// admission token (batching cannot bypass the per-tenant quotas); the
  /// over-budget tail of a batch comes back busy.
  std::vector<EstablishResult> establish_batch(
      const std::vector<EstablishRequest>& requests);

  // --- half-open control sessions ----------------------------------------------
  //
  // A client that cannot deliver its whole encrypted request in one
  // message opens a control session and completes it later.  The admission
  // controller tracks the half-open exchange and reaps it after
  // `admission.half_open_timeout` of inactivity, so a slowloris-style
  // trickle cannot pin MC state.  All three calls are silently dropped
  // while crashed (like every control entry point).

  using ControlSessionId = ctrl::AdmissionController::ControlSessionId;
  /// Returns 0 when rejected (crashed, or over the half-open quotas).
  ControlSessionId open_control_session(net::Ipv4 client);
  /// A trickled fragment arrived: extends the idle deadline.  False if the
  /// session was already reaped.
  bool touch_control_session(ControlSessionId id);
  /// The full request arrived: the session closes and the request enters
  /// the ordinary async_establish path.  False if the session was already
  /// reaped or the MC restarted -- the request is dropped (the client's
  /// watchdog handles it like any other silence).
  bool complete_control_session(ControlSessionId id, net::Ipv4 client,
                                std::vector<std::uint8_t> encrypted_request,
                                std::uint64_t message_counter,
                                std::function<void(EstablishResult)> on_result,
                                ctrl::AdmitPriority priority =
                                    ctrl::AdmitPriority::kFresh);

  void teardown(ChannelId id, bool immediate = true);

  // --- failure handling (extension; the SDN controller's natural job) --------

  /// Wire the detection pipeline: every switch's async PortDown/PortUp
  /// notifications (raised by the fabric on loss of signal, after the
  /// switch-side detection latency) drive fail_link / restore_link without
  /// anyone feeding the MC by hand.  Idempotent.
  void enable_failure_detection();
  bool failure_detection_enabled() const noexcept { return detection_enabled_; }

  /// Port-status handler behind enable_failure_detection().  Duplicate
  /// reports (both ends of a switch-switch link report the same failure)
  /// and reports for links the MC already knows about are ignored.
  void on_port_status(topo::NodeId sw, topo::PortId port, bool up) override;

  /// Report a failed link.  Every mimic channel whose path crosses it is
  /// re-routed around the failure: paths and m-addresses of the affected
  /// m-flows are re-planned while the endpoint addresses (entry address,
  /// presented address, initiator ports) stay fixed, so the transport
  /// connections survive the migration transparently.  Channels that
  /// cannot be re-routed (e.g. a dead access link) are torn down and their
  /// endpoints notified.  Returns {repaired channels, lost channels};
  /// `repaired` counts successful re-plans whose rule installs are still
  /// confirming asynchronously -- an install that ultimately fails after
  /// retries demotes the channel to lost (with notification) later.
  struct RepairOutcome {
    std::size_t repaired = 0;
    std::size_t lost = 0;
  };
  RepairOutcome fail_link(topo::LinkId link);

  /// Restore a previously failed link: new channels may use it again,
  /// existing channels keep their repaired routes, and the common-flow
  /// routing is re-optimized (the failure detours do not persist).
  void restore_link(topo::LinkId link);

  /// Whole-switch failure: all incident links fail, the dead switch's
  /// soft state (its entire flow table) is purged, and every channel it
  /// carried is re-planned with MN re-selection avoiding the node.
  RepairOutcome fail_switch(topo::NodeId sw);

  /// Bring a switch back: incident links are restored and the default
  /// routing is re-installed (the rebooted switch's table starts empty).
  void restore_switch(topo::NodeId sw);

  const std::unordered_set<topo::LinkId>& failed_links() const noexcept {
    return failed_links_;
  }
  const std::unordered_set<topo::NodeId>& failed_switches() const noexcept {
    return failed_switches_;
  }

  enum class ChannelEvent : std::uint8_t {
    kRepaired,  // re-routed around a failure; entry addresses unchanged
    kLost,      // unrepairable or reclaimed; the channel no longer exists
  };
  using ChannelListener =
      std::function<void(ChannelEvent, const std::string& reason)>;

  // --- crash recovery (journal + switch resync) -------------------------------
  //
  // The MC is the one node that knows every channel's path, MNs and
  // m-addresses; a restart must not strand the rewrite rules it installed.
  // Every establish/repair/teardown is committed to a write-ahead channel
  // journal first; `crash()` drops all soft state (channels, listeners,
  // endpoint reservations, MAGA allocations) while the switches keep
  // forwarding with the rules already installed; `recover(journal)`
  // replays the log, re-adopts the allocators, dumps every switch's flow
  // table and three-way-diffs it against the replayed image: verified
  // rules are kept, journaled-but-missing (or mismatched) rules are
  // re-issued through the transactional install path, and unknown cookies
  // -- including those a truncated journal can no longer explain -- are
  // torn down.  While crashed, every control-plane entry point is silent
  // (requests are dropped, not refused), which is what the client-side
  // timeout machinery detects.

  struct RecoveryReport {
    std::size_t channels_recovered = 0;    // adopted from the journal
    std::size_t channels_kept = 0;         // rules verified in place
    std::size_t channels_reinstalled = 0;  // missing/mismatched; re-issued
    std::size_t channels_replanned = 0;    // path dead; routed via repair
    std::size_t channels_lost = 0;         // replan failed; torn down
    std::size_t orphan_rules_removed = 0;  // entries with unknown cookies
    std::size_t switches_resynced = 0;     // dump RPCs issued
    std::size_t links_resynced = 0;        // PHY transitions missed while down
  };

  /// Simulate an MC process crash: all soft state is lost, the journal
  /// (stable storage) and the deployment config survive, and every control
  /// entry point goes silent until recover().
  void crash();
  bool crashed() const noexcept { return crashed_; }

  /// Restart from a journal (normally `journal()`, possibly truncated by
  /// the harness to model a crash mid-commit).  Replays the log, re-adopts
  /// ids/tuples/endpoints, resyncs the failure view against the PHY, and
  /// reconciles every switch's flow table (keep / reinstall / delete).
  RecoveryReport recover(const ChannelJournal& journal);

  const ChannelJournal& journal() const noexcept { return journal_; }
  /// Mutable journal access: the durability/replication plumbing
  /// (attach_store, set_commit_listener) is wired through here.
  ChannelJournal& journal() noexcept { return journal_; }
  std::uint64_t crashes() const noexcept { return crashes_; }
  const RecoveryReport& last_recovery() const noexcept {
    return last_recovery_;
  }

  /// Copy the deployment directory (client keys, hidden services, CF
  /// labels) from another controller instance.  A warm standby mirrors the
  /// primary's directory at takeover: these are provisioning-time facts
  /// that survive even a crashed primary (they are not soft state), so the
  /// standby serves existing clients without re-registration.
  void mirror_directory_from(const MimicController& other);

  /// A switch refused one of our ops: a newer-epoch controller owns the
  /// tables.  The MC steps down (schedules an immediate self-crash) rather
  /// than fighting the new primary -- the zombie-ex-primary defence.
  void on_fenced_out(topo::NodeId sw) override;
  /// True once this instance observed a fence rejection and stepped down.
  bool deposed() const noexcept { return deposed_; }

  /// The construction seed (a standby must be built with the primary's
  /// seed so both derive identical MAGA deployment secrets).
  std::uint64_t seed() const noexcept { return seed_; }

  /// Control-channel liveness probe: answers (after a control round trip)
  /// whether `id` is still a live channel, re-registering `listener` on
  /// the way -- how a surviving client re-attaches after an MC restart
  /// wiped its subscription.  Silently dropped while crashed.
  void probe_channel(ChannelId id, ChannelListener listener,
                     std::function<void(bool alive)> on_result);

  /// RC-1 ground truth: verify that every switch this channel touches
  /// holds exactly its expected rule set (content-compared; SELECT/ALL
  /// group references are compared through their buckets, since group ids
  /// are re-allocated on reinstall).  Appends human-readable violations;
  /// returns the number of table entries checked.
  std::size_t verify_channel_rules(const ChannelState& state,
                                   std::vector<std::string>* violations);

  // --- endpoint notification ------------------------------------------------

  /// Register the endpoint-side listener for one channel (the client
  /// library does this).  Events are delivered after the control-channel
  /// latency.  One listener per channel; re-registering replaces.
  void set_channel_listener(ChannelId id, ChannelListener listener);
  void clear_channel_listener(ChannelId id);

  /// Channel reuse support (paper Sec IV-B1): clients mark finished
  /// channels idle instead of tearing them down; a periodic notification
  /// keeps the MC's view fresh.
  void mark_idle(ChannelId id, bool idle);

  /// Reclaim channels that have been idle longer than `max_idle` --
  /// the MC-side half of the channel-management story: reuse keeps hot
  /// channels alive, reclamation bounds the rule-table footprint.
  /// Returns the number of channels torn down.
  std::size_t reclaim_idle(sim::SimTime max_idle);

  // --- introspection ----------------------------------------------------------

  const ChannelState* channel(ChannelId id) const;
  std::size_t active_channel_count() const noexcept { return channels_.size(); }
  /// Live channel IDs, ascending (the orphan-rule audit's ground truth).
  std::vector<ChannelId> channel_ids() const;
  std::uint64_t requests_handled() const noexcept { return requests_; }
  std::uint64_t install_retries() const noexcept { return install_retries_; }
  std::uint64_t channels_lost() const noexcept { return channels_lost_; }
  std::uint64_t channels_repaired() const noexcept {
    return channels_repaired_;
  }
  /// Cumulative selective-reroute counters of the L3 routing app
  /// (TableStats-style: scanned vs actually reinstalled switches).
  const ctrl::RerouteStats& reroute_stats() const noexcept {
    return reroute_stats_;
  }

  MagaRegistry& registry() noexcept { return registry_; }
  const AddressRestrictions& restrictions() const noexcept {
    return restrictions_;
  }
  sim::CpuMeter& mc_cpu() noexcept { return mc_cpu_; }
  const MicConfig& mic_config() const noexcept { return mic_config_; }
  /// The admission controller in front of the establishment entry points
  /// (AC-1's ground truth; mutable for the negative-test debug hooks).
  ctrl::AdmissionController& admission() noexcept { return admission_; }
  const ctrl::AdmissionController& admission() const noexcept {
    return admission_;
  }

  /// CF label policy handed to the L3 routing app (cached per host).
  net::MplsLabel cf_label_for(topo::NodeId host);

 private:
  struct PlanContext {
    topo::NodeId initiator;
    topo::NodeId responder;
    net::Ipv4 initiator_ip;
    net::Ipv4 responder_ip;
    net::L4Port responder_port;
  };

  bool plan_mflow(const PlanContext& ctx, int mn_count,
                  net::L4Port initiator_sport, int decoys, MFlowPlan& out,
                  std::string& error);
  /// Route + MN-position sampling, avoiding failed links.
  bool sample_route_and_positions(const PlanContext& ctx, std::size_t n,
                                  MFlowPlan& out, std::string& error);
  bool path_avoids_failures(const topo::Path& path) const;
  /// Fill forward[1..n-1] and reverse[1..n-1] from the current route.
  void generate_middle_tuples(const PlanContext& ctx, MFlowPlan& plan);
  void generate_decoys(int count, MFlowPlan& plan);
  /// Re-route one m-flow around failures, keeping endpoints and flow ID.
  bool replan_flow(const PlanContext& ctx, MFlowPlan& plan,
                   std::string& error);

  // --- transactional installs -----------------------------------------------
  //
  // Rule installation for a channel is staged: install_flow/install_direction
  // emit the ops a plan needs, and a commit applies them all-or-nothing.  On
  // any rejection the partial install is rolled back by cookie and retried
  // (capped exponential backoff with seeded jitter), up to
  // mic_config_.install_retry_limit attempts.
  struct InstallOp {
    topo::NodeId sw;
    std::variant<switchd::FlowRule, switchd::GroupEntry> payload;
  };
  /// `group_alloc` is the group-id allocator: the live install paths pass
  /// next_group_, verification passes a scratch counter (group identity is
  /// compared through bucket content, never by id).
  void install_flow(ChannelId id, const MFlowPlan& plan,
                    std::vector<InstallOp>& ops,
                    std::uint32_t& group_alloc) const;
  PlanContext context_of(const ChannelState& state) const;
  void install_direction(ChannelId id, const MFlowPlan& plan,
                         const topo::Path& path,
                         const std::vector<std::size_t>& mn_positions,
                         const std::vector<HopAddresses>& hops,
                         const std::vector<DecoyPlan>& decoys,
                         std::vector<InstallOp>& ops,
                         std::uint32_t& group_alloc) const;
  /// Nodes an op list touches (deduplicated) -- the rollback scope.
  std::vector<topo::NodeId> touched_switches(
      const std::vector<InstallOp>& ops) const;
  /// Synchronous all-or-nothing commit (the benchmark/test path): applies
  /// every op immediately; on any rejection removes `cookie` from every
  /// touched switch and returns false.  No retries -- the caller sees the
  /// failure synchronously.
  bool commit_now(std::uint64_t cookie, const std::vector<InstallOp>& ops);
  /// Asynchronous commit of channel `id`'s rules (cookie == id) over the
  /// checked southbound path.  Retries with backoff on failure;
  /// `on_done(true)` once every op is confirmed, `on_done(false)` after
  /// the retry budget is exhausted (the partial install rolled back) or
  /// when `txn` no longer matches the channel's install generation (torn
  /// down or superseded by a repair -- the new owner manages the cookie,
  /// so the stale commit touches nothing).
  void commit_async(ChannelId id, std::uint64_t txn,
                    std::vector<InstallOp> ops,
                    std::function<void(bool)> on_done, int attempt = 1);
  /// Request validation + planning + channel registration shared by the
  /// sync and async establishment paths.  On success the channel is live
  /// in channels_ (install_txn == 1) and `ops` holds its uncommitted rules.
  EstablishResult plan_channel(const EstablishRequest& request,
                               std::vector<InstallOp>& ops);
  /// The post-admission async establishment body (decrypt, CPU charge,
  /// plan, commit, ack), invoked by the admission controller inline when
  /// unsaturated or from the drain when a queued request's turn comes.
  /// Releases its admission service slot at the terminal points.
  void service_establish(net::Ipv4 client, std::vector<std::uint8_t> bytes,
                         std::uint64_t message_counter,
                         std::function<void(EstablishResult)> on_result);
  /// Backoff before retry `attempt` (1-based): base * 2^(attempt-1),
  /// clamped to the cap, plus seeded jitter, plus one southbound latency so
  /// the rollback flow-mods land before identical rules are re-sent.
  sim::SimTime retry_delay(int attempt);

  void release_plan_resources(const MFlowPlan& plan);
  /// Tear down a live channel as failed: remove its rules, release its
  /// resources, erase it, and notify the endpoint kLost with `reason`.
  void lose_channel(ChannelId id, const std::string& reason);
  /// Deliver `event` to the channel's listener after the control latency.
  void notify_channel_event(ChannelId id, ChannelEvent event,
                            std::string reason);
  /// Common re-plan driver for fail_link/fail_switch: re-routes every
  /// channel in `affected`, committing new rules asynchronously.
  RepairOutcome repair_channels(const std::vector<ChannelId>& affected,
                                const std::string& cause);

  /// Re-adopt one replayed channel's allocator state: flow ids, tuple
  /// fingerprints at every MN, decoys, and the two endpoint reservations.
  void adopt_channel_resources(const ChannelState& state);
  /// Align the MC's failure view with the current PHY state plus failed-
  /// switch incidence (port-status events missed while crashed); returns
  /// the number of link transitions learned.
  std::size_t resync_failure_view();
  /// True when any flow path crosses a failed link/switch (including the
  /// decoy next hops) -- such a recovered channel must be replanned, not
  /// merely reinstalled.
  bool channel_path_dead(const ChannelState& state) const;
  /// Run the L3 selective reroute and fold its counters into
  /// reroute_stats_.
  void reroute_default_routing();

  static std::uint64_t endpoint_key(net::Ipv4 a, net::L4Port pa, net::Ipv4 b,
                                    net::L4Port pb) {
    std::uint64_t state = (static_cast<std::uint64_t>(a.value) << 32) |
                          b.value;
    state ^= (static_cast<std::uint64_t>(pa) << 16) ^ pb;
    return splitmix64(state);
  }

  MicConfig mic_config_;
  std::uint64_t seed_;
  Rng rng_;
  MagaRegistry registry_;
  AddressRestrictions restrictions_;
  sim::CpuMeter mc_cpu_;
  ctrl::AdmissionController admission_;

  ChannelId next_channel_ = 1;
  std::uint32_t next_group_ = 1;
  std::unordered_map<ChannelId, ChannelState> channels_;
  std::unordered_map<std::string, std::pair<net::Ipv4, net::L4Port>>
      hidden_services_;
  std::unordered_map<std::uint32_t, crypto::Aes128::Key> client_keys_;
  std::unordered_map<topo::NodeId, net::MplsLabel> cf_labels_;
  /// Reserved (src endpoint, dst endpoint) pairs: entry addresses and
  /// presented addresses, so two channels can never share one.
  std::unordered_set<std::uint64_t> reserved_endpoints_;
  std::unordered_set<topo::LinkId> failed_links_;
  std::unordered_set<topo::NodeId> failed_switches_;
  std::unordered_map<ChannelId, ChannelListener> listeners_;
  bool default_routing_installed_ = false;
  bool detection_enabled_ = false;
  std::uint64_t requests_ = 0;
  std::uint64_t install_retries_ = 0;
  std::uint64_t channels_lost_ = 0;
  std::uint64_t channels_repaired_ = 0;

  /// Write-ahead channel journal (the in-memory stand-in for stable
  /// storage); survives crash() by definition.
  ChannelJournal journal_;
  bool crashed_ = false;
  bool deposed_ = false;
  std::uint64_t crashes_ = 0;
  RecoveryReport last_recovery_;
  ctrl::RerouteStats reroute_stats_;
};

/// The control-plane "virtual IP": clients resolve the current primary MC
/// through the directory on every control interaction, so a standby
/// takeover (fail_over_to) transparently redirects every subsequent
/// establishment, probe and teardown to the new primary -- the existing
/// watchdog/re-attach machinery in MicChannel does the rest.
class ControllerDirectory {
 public:
  explicit ControllerDirectory(MimicController& initial)
      : current_(&initial) {}

  MimicController& current() const noexcept { return *current_; }
  void fail_over_to(MimicController& mc) noexcept {
    current_ = &mc;
    ++failovers_;
  }
  std::uint64_t failovers() const noexcept { return failovers_; }

 private:
  MimicController* current_;
  std::uint64_t failovers_ = 0;
};

}  // namespace mic::core
