// The Mimic Controller (MC): the core of MIC (paper Sec IV-B).
//
// The MC runs inside the SDN controller.  It manages mimic-channel state,
// computes the routing of every m-flow (path choice, MN selection,
// m-address generation via MAGA), enforces collision avoidance, installs
// the per-hop rules, runs the hidden-service map, and answers client
// establishment requests over an encrypted control channel.
#pragma once

#include <functional>
#include <string>

#include "core/address_restrictions.hpp"
#include "core/channel.hpp"
#include "core/maga_registry.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/l3_routing.hpp"
#include "sim/cpu.hpp"

namespace mic::core {

struct MicConfig {
  /// One-way latency between a client and the MC (dedicated control net).
  sim::SimTime control_latency = sim::microseconds(150);
  /// Default privacy level ("the path length is set to default 3").
  int default_mn_count = 3;

  // --- distributed-controller deployment (paper Sec VI-C) --------------------
  /// Distinguishes this controller instance: channel IDs, rule cookies and
  /// group IDs are derived from it so co-deployed MCs never collide.
  std::uint32_t instance_id = 0;
  /// This instance's slice of the m-flow ID space; slices of co-deployed
  /// MCs must be disjoint.
  FlowIdRange flow_ids{};
  /// Deployment-wide MAGA secret seed.  All co-deployed MCs must share it
  /// (the hash functions are global; only the ID spaces are partitioned).
  /// 0 derives a private seed from the controller seed (single-MC setup).
  std::uint64_t shared_secret_seed = 0;
};

class MimicController : public ctrl::Controller {
 public:
  MimicController(net::Network& network, ctrl::HostAddressing addressing,
                  std::uint64_t seed, MicConfig mic_config = {},
                  ctrl::ControllerConfig ctrl_config = {});

  // --- bootstrap ------------------------------------------------------------

  /// Install the CF-tagged proactive routing for common flows.
  void install_default_routing();

  /// Hidden-service registration (paper Sec IV-D): the responder publishes
  /// a nickname; initiators never learn its address.
  void register_hidden_service(const std::string& name, net::Ipv4 ip,
                               net::L4Port port);

  /// First-contact key setup with a client (paper: DH/RSA exchange done in
  /// advance).  Returns the pre-shared AES key; idempotent.
  const crypto::Aes128::Key& register_client(net::Ipv4 client);

  bool client_registered(net::Ipv4 client) const {
    return client_keys_.contains(client.value);
  }

  // --- channel establishment ------------------------------------------------

  /// Synchronous planning + immediate rule install.  Used by benchmarks
  /// and by handle_encrypted_request (which adds the control-plane timing).
  EstablishResult establish(const EstablishRequest& request,
                            bool immediate_install = true);

  /// The full control-plane path: the encrypted request is decrypted and
  /// parsed (both charged to the MC CPU), the routing computed, rules
  /// installed with southbound latency, and the callback invoked when the
  /// encrypted acknowledgement reaches the client.
  void async_establish(net::Ipv4 client,
                       std::vector<std::uint8_t> encrypted_request,
                       std::uint64_t message_counter,
                       std::function<void(EstablishResult)> on_result);

  void teardown(ChannelId id, bool immediate = true);

  // --- failure handling (extension; the SDN controller's natural job) --------

  /// Report a failed link.  Every mimic channel whose path crosses it is
  /// re-routed around the failure: paths and m-addresses of the affected
  /// m-flows are re-planned while the endpoint addresses (entry address,
  /// presented address, initiator ports) stay fixed, so the transport
  /// connections survive the migration transparently.  Channels that
  /// cannot be re-routed (e.g. a dead access link) are torn down.
  /// Returns {repaired channels, lost channels}.
  struct RepairOutcome {
    std::size_t repaired = 0;
    std::size_t lost = 0;
  };
  RepairOutcome fail_link(topo::LinkId link);

  /// Restore a previously failed link (new channels may use it again;
  /// existing channels keep their repaired routes).
  void restore_link(topo::LinkId link) {
    failed_links_.erase(link);
    path_engine().link_restored(link);
  }

  const std::unordered_set<topo::LinkId>& failed_links() const noexcept {
    return failed_links_;
  }

  /// Channel reuse support (paper Sec IV-B1): clients mark finished
  /// channels idle instead of tearing them down; a periodic notification
  /// keeps the MC's view fresh.
  void mark_idle(ChannelId id, bool idle);

  /// Reclaim channels that have been idle longer than `max_idle` --
  /// the MC-side half of the channel-management story: reuse keeps hot
  /// channels alive, reclamation bounds the rule-table footprint.
  /// Returns the number of channels torn down.
  std::size_t reclaim_idle(sim::SimTime max_idle);

  // --- introspection ----------------------------------------------------------

  const ChannelState* channel(ChannelId id) const;
  std::size_t active_channel_count() const noexcept { return channels_.size(); }
  std::uint64_t requests_handled() const noexcept { return requests_; }

  MagaRegistry& registry() noexcept { return registry_; }
  const AddressRestrictions& restrictions() const noexcept {
    return restrictions_;
  }
  sim::CpuMeter& mc_cpu() noexcept { return mc_cpu_; }
  const MicConfig& mic_config() const noexcept { return mic_config_; }

  /// CF label policy handed to the L3 routing app (cached per host).
  net::MplsLabel cf_label_for(topo::NodeId host);

 private:
  struct PlanContext {
    topo::NodeId initiator;
    topo::NodeId responder;
    net::Ipv4 initiator_ip;
    net::Ipv4 responder_ip;
    net::L4Port responder_port;
  };

  bool plan_mflow(const PlanContext& ctx, int mn_count,
                  net::L4Port initiator_sport, int decoys, MFlowPlan& out,
                  std::string& error);
  /// Route + MN-position sampling, avoiding failed links.
  bool sample_route_and_positions(const PlanContext& ctx, std::size_t n,
                                  MFlowPlan& out, std::string& error);
  bool path_avoids_failures(const topo::Path& path) const;
  /// Fill forward[1..n-1] and reverse[1..n-1] from the current route.
  void generate_middle_tuples(const PlanContext& ctx, MFlowPlan& plan);
  void generate_decoys(int count, MFlowPlan& plan);
  /// Re-route one m-flow around failures, keeping endpoints and flow ID.
  bool replan_flow(const PlanContext& ctx, MFlowPlan& plan,
                   std::string& error);
  void install_flow(ChannelId id, const MFlowPlan& plan, bool immediate,
                    std::vector<topo::NodeId>& touched);
  PlanContext context_of(const ChannelState& state) const;
  void install_direction(ChannelId id, const MFlowPlan& plan,
                         const topo::Path& path,
                         const std::vector<std::size_t>& mn_positions,
                         const std::vector<HopAddresses>& hops,
                         const std::vector<DecoyPlan>& decoys, bool immediate,
                         std::vector<topo::NodeId>& touched);
  void release_plan_resources(const MFlowPlan& plan);

  static std::uint64_t endpoint_key(net::Ipv4 a, net::L4Port pa, net::Ipv4 b,
                                    net::L4Port pb) {
    std::uint64_t state = (static_cast<std::uint64_t>(a.value) << 32) |
                          b.value;
    state ^= (static_cast<std::uint64_t>(pa) << 16) ^ pb;
    return splitmix64(state);
  }

  MicConfig mic_config_;
  Rng rng_;
  MagaRegistry registry_;
  AddressRestrictions restrictions_;
  sim::CpuMeter mc_cpu_;

  ChannelId next_channel_ = 1;
  std::uint32_t next_group_ = 1;
  std::unordered_map<ChannelId, ChannelState> channels_;
  std::unordered_map<std::string, std::pair<net::Ipv4, net::L4Port>>
      hidden_services_;
  std::unordered_map<std::uint32_t, crypto::Aes128::Key> client_keys_;
  std::unordered_map<topo::NodeId, net::MplsLabel> cf_labels_;
  /// Reserved (src endpoint, dst endpoint) pairs: entry addresses and
  /// presented addresses, so two channels can never share one.
  std::unordered_set<std::uint64_t> reserved_endpoints_;
  std::unordered_set<topo::LinkId> failed_links_;
  bool default_routing_installed_ = false;
  std::uint64_t requests_ = 0;
};

}  // namespace mic::core
