#include "core/socket_api.hpp"

namespace mic::core {

int MicSocketApi::mic_connect(net::Ipv4 responder, net::L4Port port,
                              MicChannelOptions options) {
  options.responder_ip = responder;
  options.responder_port = port;
  options.service_name.clear();
  return open_channel(std::move(options));
}

int MicSocketApi::mic_connect(const std::string& service_name,
                              MicChannelOptions options) {
  options.service_name = service_name;
  return open_channel(std::move(options));
}

int MicSocketApi::open_channel(MicChannelOptions options) {
  const int fd = next_fd_++;
  Socket socket;
  socket.channel =
      std::make_unique<MicChannel>(host_, mc_, std::move(options), rng_);
  Socket* raw = &sockets_.emplace(fd, std::move(socket)).first->second;
  raw->channel->set_on_data([raw](const transport::ChunkView& view) {
    // Virtual bulk bytes read back as zeros, like a sparse file.
    if (view.is_real() && !view.bytes.empty()) {
      raw->rx.insert(raw->rx.end(), view.bytes.begin(), view.bytes.end());
    } else {
      raw->rx.insert(raw->rx.end(), view.length, 0);
    }
  });
  raw->channel->set_on_closed([raw] {
    if (raw->channel->failed()) raw->failed = true;
  });
  return fd;
}

MicSocketApi::Socket& MicSocketApi::at(int fd) {
  const auto it = sockets_.find(fd);
  MIC_ASSERT_MSG(it != sockets_.end(), "bad MIC socket descriptor");
  return it->second;
}

const MicSocketApi::Socket& MicSocketApi::at(int fd) const {
  const auto it = sockets_.find(fd);
  MIC_ASSERT_MSG(it != sockets_.end(), "bad MIC socket descriptor");
  return it->second;
}

bool MicSocketApi::ready(int fd) const { return at(fd).channel->ready(); }

bool MicSocketApi::failed(int fd) const {
  const Socket& socket = at(fd);
  return socket.failed || socket.channel->failed();
}

void MicSocketApi::mic_send(int fd, std::span<const std::uint8_t> data) {
  at(fd).channel->send(transport::Chunk::real(
      std::vector<std::uint8_t>(data.begin(), data.end())));
}

std::size_t MicSocketApi::readable(int fd) const { return at(fd).rx.size(); }

std::size_t MicSocketApi::mic_recv(int fd, std::span<std::uint8_t> out) {
  Socket& socket = at(fd);
  const std::size_t n = std::min(out.size(), socket.rx.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = socket.rx.front();
    socket.rx.pop_front();
  }
  return n;
}

void MicSocketApi::mic_close(int fd) {
  at(fd).channel->close();
  sockets_.erase(fd);
}

}  // namespace mic::core
