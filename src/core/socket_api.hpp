// The paper-style socket veneer: "MIC employs typical C/S model, providing
// socket like programming APIs, and thus a programmer can use MIC for
// anonymous communication easily" (Sec VI).
//
// A thin, fd-oriented facade over MicChannel for applications ported from
// BSD sockets: mic_connect() returns a small integer handle, mic_send()
// writes, mic_recv() reads from an internal buffer, mic_close() tears the
// channel down.  Reads are non-blocking (the simulator has no threads);
// poll readable() or drive the simulator until data arrives.
#pragma once

#include <deque>
#include <map>

#include "core/mic_client.hpp"

namespace mic::core {

class MicSocketApi {
 public:
  MicSocketApi(transport::Host& host, MimicController& mc, Rng& rng)
      : host_(host), mc_(mc), rng_(rng) {}

  MicSocketApi(const MicSocketApi&) = delete;
  MicSocketApi& operator=(const MicSocketApi&) = delete;

  /// Open an anonymous channel to an explicit responder address.
  int mic_connect(net::Ipv4 responder, net::L4Port port,
                  MicChannelOptions options = {});
  /// Open an anonymous channel to a hidden service by nickname.
  int mic_connect(const std::string& service_name,
                  MicChannelOptions options = {});

  /// True once the channel is established (and false again after close or
  /// failure).
  bool ready(int fd) const;
  bool failed(int fd) const;

  /// Queue bytes for anonymous transmission.  Accepted before the channel
  /// is ready (sent on establishment).
  void mic_send(int fd, std::span<const std::uint8_t> data);

  /// Bytes buffered for reading.
  std::size_t readable(int fd) const;

  /// Non-blocking read into `out`; returns the number of bytes copied.
  std::size_t mic_recv(int fd, std::span<std::uint8_t> out);

  void mic_close(int fd);

 private:
  struct Socket {
    std::unique_ptr<MicChannel> channel;
    std::deque<std::uint8_t> rx;
    bool failed = false;
  };

  int open_channel(MicChannelOptions options);
  Socket& at(int fd);
  const Socket& at(int fd) const;

  transport::Host& host_;
  MimicController& mc_;
  Rng& rng_;
  int next_fd_ = 3;  // tip of the hat to stdin/stdout/stderr
  std::map<int, Socket> sockets_;
};

}  // namespace mic::core
