// AES-128 block cipher (FIPS 197) and CTR mode.
//
// The paper's prototype encrypts the channel-establishment request with
// "the AES function in OpenSSL"; we implement AES-128 from scratch so the
// control-plane code path matches.  Table-free S-box-based implementation,
// verified against the FIPS 197 / SP 800-38A test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mic::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kBlockSize = 16;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Block = std::array<std::uint8_t, kBlockSize>;

  explicit Aes128(const Key& key) noexcept;

  /// Encrypt a single 16-byte block (ECB primitive; only used by CTR below
  /// and by the known-answer tests).
  Block encrypt_block(const Block& plaintext) const noexcept;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

/// AES-128-CTR keystream application: encryption == decryption.
/// `iv` is the initial 16-byte counter block; the counter occupies the last
/// four bytes, big-endian, as in SP 800-38A.
void aes128_ctr(const Aes128::Key& key, const Aes128::Block& iv,
                std::span<std::uint8_t> data) noexcept;

}  // namespace mic::crypto
