#include "crypto/bigint.hpp"

#include <cctype>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace mic::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = ::mic::uint128;

}  // namespace

Uint2048 Uint2048::from_u64(std::uint64_t v) noexcept {
  Uint2048 out;
  out.limbs_[0] = v;
  return out;
}

Uint2048 Uint2048::from_hex(std::string_view hex) {
  Uint2048 out;
  std::size_t nibbles = 0;
  // Walk from the end (least significant nibble) forward.
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    const char c = *it;
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    u64 v;
    if (c >= '0' && c <= '9') v = static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<u64>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<u64>(c - 'A' + 10);
    else { MIC_ASSERT_MSG(false, "invalid hex character"); }
    MIC_ASSERT_MSG(nibbles < kLimbs * 16, "hex literal exceeds 2048 bits");
    out.limbs_[nibbles / 16] |= v << (4 * (nibbles % 16));
    ++nibbles;
  }
  return out;
}

Uint2048 Uint2048::from_bytes_be(std::span<const std::uint8_t> bytes) {
  MIC_ASSERT(bytes.size() <= kBytes);
  Uint2048 out;
  std::size_t i = 0;
  for (auto it = bytes.rbegin(); it != bytes.rend(); ++it, ++i) {
    out.limbs_[i / 8] |= static_cast<u64>(*it) << (8 * (i % 8));
  }
  return out;
}

std::array<std::uint8_t, Uint2048::kBytes> Uint2048::to_bytes_be()
    const noexcept {
  std::array<std::uint8_t, kBytes> out{};
  for (std::size_t i = 0; i < kBytes; ++i) {
    const std::size_t rev = kBytes - 1 - i;
    out[rev] = static_cast<std::uint8_t>(limbs_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

bool Uint2048::is_zero() const noexcept {
  for (const auto limb : limbs_) {
    if (limb != 0) return false;
  }
  return true;
}

bool Uint2048::get_bit(std::size_t i) const noexcept {
  return (limbs_[i / 64] >> (i % 64)) & 1;
}

std::size_t Uint2048::bit_length() const noexcept {
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (limbs_[i] != 0) {
      return 64 * i + (64 - static_cast<std::size_t>(__builtin_clzll(limbs_[i])));
    }
  }
  return 0;
}

int Uint2048::compare(const Uint2048& other) const noexcept {
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

std::uint64_t Uint2048::add_in_place(const Uint2048& other) noexcept {
  u64 carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const u128 sum = static_cast<u128>(limbs_[i]) + other.limbs_[i] + carry;
    limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  return carry;
}

std::uint64_t Uint2048::sub_in_place(const Uint2048& other) noexcept {
  u64 borrow = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const u128 diff =
        static_cast<u128>(limbs_[i]) - other.limbs_[i] - borrow;
    limbs_[i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  return borrow;
}

std::uint64_t Uint2048::shl1_in_place() noexcept {
  u64 carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const u64 next_carry = limbs_[i] >> 63;
    limbs_[i] = (limbs_[i] << 1) | carry;
    carry = next_carry;
  }
  return carry;
}

std::uint64_t Uint2048::shr1_in_place() noexcept {
  u64 carry = 0;
  for (std::size_t i = kLimbs; i-- > 0;) {
    const u64 next_carry = limbs_[i] & 1;
    limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
    carry = next_carry;
  }
  return carry;
}

Uint2048 Uint2048::mul(const Uint2048& a, const Uint2048& b) noexcept {
  u64 product[2 * kLimbs] = {};
  for (std::size_t i = 0; i < kLimbs; ++i) {
    if (a.limbs_[i] == 0) continue;
    u64 carry = 0;
    for (std::size_t j = 0; j < kLimbs; ++j) {
      const u128 sum = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                       product[i + j] + carry;
      product[i + j] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
    product[i + kLimbs] += carry;
  }
  Uint2048 out;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    out.limbs_[i] = product[i];
    MIC_ASSERT_MSG(product[i + kLimbs] == 0, "Uint2048::mul overflow");
  }
  return out;
}

std::uint64_t Uint2048::mod_u64(std::uint64_t divisor) const noexcept {
  MIC_ASSERT(divisor != 0);
  u64 remainder = 0;
  for (std::size_t i = kLimbs; i-- > 0;) {
    const u128 cur = (static_cast<u128>(remainder) << 64) | limbs_[i];
    remainder = static_cast<u64>(cur % divisor);
  }
  return remainder;
}

Uint2048 Uint2048::div_u64(const Uint2048& a, std::uint64_t divisor,
                           std::uint64_t* remainder) noexcept {
  MIC_ASSERT(divisor != 0);
  Uint2048 quotient;
  u64 rem = 0;
  for (std::size_t i = kLimbs; i-- > 0;) {
    const u128 cur = (static_cast<u128>(rem) << 64) | a.limbs_[i];
    quotient.limbs_[i] = static_cast<u64>(cur / divisor);
    rem = static_cast<u64>(cur % divisor);
  }
  if (remainder != nullptr) *remainder = rem;
  return quotient;
}

MontgomeryCtx::MontgomeryCtx(const Uint2048& modulus) : n_(modulus) {
  MIC_ASSERT_MSG(modulus.limb(0) & 1, "Montgomery modulus must be odd");
  MIC_ASSERT_MSG(modulus.bit_length() > 1, "modulus must exceed 1");

  // n0_inv = -n^{-1} mod 2^64 via Newton iteration on the low limb.
  const u64 n0 = modulus.limb(0);
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;  // inv = n0^{-1} mod 2^64
  n0_inv_ = ~inv + 1;                               // -inv

  // rr_ = 2^4096 mod n via 4096 modular doublings of 1.
  Uint2048 r = Uint2048::from_u64(1);
  for (int i = 0; i < 4096; ++i) {
    const u64 overflow = r.shl1_in_place();
    if (overflow != 0 || r.compare(n_) >= 0) r.sub_in_place(n_);
  }
  rr_ = r;
}

Uint2048 MontgomeryCtx::mont_mul(const Uint2048& a,
                                 const Uint2048& b) const noexcept {
  // CIOS (coarsely integrated operand scanning), one extra carry limb.
  constexpr std::size_t L = Uint2048::kLimbs;
  u64 t[L + 1] = {};
  u64 t_hi = 0;  // limb L+1

  for (std::size_t i = 0; i < L; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    const u64 ai = a.limb(i);
    for (std::size_t j = 0; j < L; ++j) {
      const u128 sum = static_cast<u128>(ai) * b.limb(j) + t[j] + carry;
      t[j] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
    {
      const u128 sum = static_cast<u128>(t[L]) + carry;
      t[L] = static_cast<u64>(sum);
      t_hi += static_cast<u64>(sum >> 64);
    }

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64.
    const u64 m = t[0] * n0_inv_;
    carry = 0;
    {
      const u128 sum = static_cast<u128>(m) * n_.limb(0) + t[0];
      carry = static_cast<u64>(sum >> 64);
    }
    for (std::size_t j = 1; j < L; ++j) {
      const u128 sum = static_cast<u128>(m) * n_.limb(j) + t[j] + carry;
      t[j - 1] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
    {
      const u128 sum = static_cast<u128>(t[L]) + carry;
      t[L - 1] = static_cast<u64>(sum);
      t[L] = t_hi + static_cast<u64>(sum >> 64);
      t_hi = 0;
    }
  }

  Uint2048 result;
  for (std::size_t i = 0; i < L; ++i) result.set_limb(i, t[i]);
  if (t[L] != 0 || result.compare(n_) >= 0) result.sub_in_place(n_);
  return result;
}

Uint2048 MontgomeryCtx::to_mont(const Uint2048& a) const noexcept {
  return mont_mul(a, rr_);
}

Uint2048 MontgomeryCtx::from_mont(const Uint2048& a) const noexcept {
  return mont_mul(a, Uint2048::from_u64(1));
}

Uint2048 MontgomeryCtx::modexp(const Uint2048& base,
                               const Uint2048& exp) const noexcept {
  const Uint2048 base_m = to_mont(base);
  Uint2048 acc = to_mont(Uint2048::from_u64(1));
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = mont_mul(acc, acc);
    if (exp.get_bit(i)) acc = mont_mul(acc, base_m);
  }
  return from_mont(acc);
}

}  // namespace mic::crypto
