// Fixed-width 2048-bit unsigned integers and Montgomery modular arithmetic.
//
// This is the arithmetic substrate for the Diffie-Hellman key exchange the
// paper prescribes for the first contact between a client and the Mimic
// Controller (Sec VI, "exchange a private key with the MC in advance using
// asymmetric encryption algorithms, like RSA or D-H").
//
// Representation: 32 little-endian 64-bit limbs.  Modular exponentiation
// uses CIOS Montgomery multiplication, so a 2048-bit modexp with a 256-bit
// exponent costs ~500 Montgomery multiplications -- fast enough to run real
// key exchanges inside unit tests and the control-plane code path.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace mic::crypto {

class Uint2048 {
 public:
  static constexpr std::size_t kLimbs = 32;
  static constexpr std::size_t kBytes = kLimbs * 8;

  constexpr Uint2048() noexcept : limbs_{} {}

  /// Construct from a small value.
  static Uint2048 from_u64(std::uint64_t v) noexcept;

  /// Parse a big-endian hex string (whitespace ignored).  Asserts on
  /// malformed input or overflow.
  static Uint2048 from_hex(std::string_view hex);

  /// Parse big-endian bytes (at most kBytes).
  static Uint2048 from_bytes_be(std::span<const std::uint8_t> bytes);

  /// Serialize to exactly kBytes big-endian bytes.
  std::array<std::uint8_t, kBytes> to_bytes_be() const noexcept;

  bool is_zero() const noexcept;
  bool get_bit(std::size_t i) const noexcept;
  std::size_t bit_length() const noexcept;

  std::uint64_t limb(std::size_t i) const noexcept { return limbs_[i]; }
  void set_limb(std::size_t i, std::uint64_t v) noexcept { limbs_[i] = v; }

  /// Three-way comparison.
  int compare(const Uint2048& other) const noexcept;
  bool operator==(const Uint2048& other) const noexcept = default;

  /// this += other; returns the carry out (0 or 1).
  std::uint64_t add_in_place(const Uint2048& other) noexcept;
  /// this -= other; returns the borrow out (0 or 1).
  std::uint64_t sub_in_place(const Uint2048& other) noexcept;
  /// this <<= 1; returns the bit shifted out.
  std::uint64_t shl1_in_place() noexcept;
  /// this >>= 1; returns the bit shifted out.
  std::uint64_t shr1_in_place() noexcept;

  /// Full product; asserts the result fits in 2048 bits (used by RSA for
  /// p*q and k*phi, both of which fit by construction).
  static Uint2048 mul(const Uint2048& a, const Uint2048& b) noexcept;

  /// Remainder of division by a 64-bit value.
  std::uint64_t mod_u64(std::uint64_t divisor) const noexcept;

  /// Quotient of division by a 64-bit value; stores the remainder.
  static Uint2048 div_u64(const Uint2048& a, std::uint64_t divisor,
                          std::uint64_t* remainder) noexcept;

 private:
  std::array<std::uint64_t, kLimbs> limbs_;
};

/// Precomputed Montgomery context for an odd modulus (any width up to
/// 2048 bits; R is fixed at 2^2048, which CIOS tolerates for any odd n<R).
class MontgomeryCtx {
 public:
  explicit MontgomeryCtx(const Uint2048& modulus);

  const Uint2048& modulus() const noexcept { return n_; }

  /// Montgomery product: returns a*b*R^{-1} mod n.
  Uint2048 mont_mul(const Uint2048& a, const Uint2048& b) const noexcept;

  Uint2048 to_mont(const Uint2048& a) const noexcept;
  Uint2048 from_mont(const Uint2048& a) const noexcept;

  /// base^exp mod n (inputs and output in ordinary representation).
  Uint2048 modexp(const Uint2048& base, const Uint2048& exp) const noexcept;

 private:
  Uint2048 n_;
  Uint2048 rr_;            // R^2 mod n, R = 2^2048
  std::uint64_t n0_inv_ = 0;  // -n^{-1} mod 2^64
};

}  // namespace mic::crypto
