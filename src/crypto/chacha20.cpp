#include "crypto/chacha20.hpp"

#include "common/bits.hpp"

namespace mic::crypto {

namespace {

constexpr void quarter_round(std::uint32_t& a, std::uint32_t& b,
                             std::uint32_t& c, std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl(d, 16u);
  c += d; b ^= c; b = rotl(b, 12u);
  a += b; d ^= a; d = rotl(d, 8u);
  c += d; b ^= c; b = rotl(b, 7u);
}

}  // namespace

ChaCha20::ChaCha20(const Key& key, const Nonce& nonce,
                   std::uint32_t initial_counter) noexcept {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(keystream_.data() + 4 * i, x[i] + state_[i]);
  }
  ++state_[12];
  keystream_used_ = 0;
}

void ChaCha20::apply(std::span<std::uint8_t> data) noexcept {
  for (auto& byte : data) {
    if (keystream_used_ == kBlockSize) refill();
    byte ^= keystream_[keystream_used_++];
  }
}

void ChaCha20::crypt(const Key& key, const Nonce& nonce,
                     std::span<std::uint8_t> data,
                     std::uint32_t initial_counter) noexcept {
  ChaCha20 cipher(key, nonce, initial_counter);
  cipher.apply(data);
}

}  // namespace mic::crypto
