// ChaCha20 stream cipher (RFC 8439).
//
// This is the work-horse symmetric cipher of the reproduction: the MC<->
// client control channel and the Tor baseline's layered onion encryption
// both use it.  Verified against the RFC 8439 test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mic::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  ChaCha20(const Key& key, const Nonce& nonce,
           std::uint32_t initial_counter = 1) noexcept;

  /// XOR the keystream into `data` in place.  Encryption and decryption are
  /// the same operation.  Successive calls continue the keystream.
  void apply(std::span<std::uint8_t> data) noexcept;

  /// One-shot helper: XOR keystream into `data` using a fresh cipher.
  static void crypt(const Key& key, const Nonce& nonce,
                    std::span<std::uint8_t> data,
                    std::uint32_t initial_counter = 1) noexcept;

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, kBlockSize> keystream_{};
  std::size_t keystream_used_ = kBlockSize;
};

}  // namespace mic::crypto
