// Cycle-cost model for cryptographic and forwarding operations.
//
// The paper evaluates on a Xeon E5-2620 @ 2.00 GHz.  Our simulator charges
// each host/switch CPU a number of cycles per operation so that systems with
// more crypto or more per-packet work (Tor, SSL) burn more simulated CPU and
// add more latency, reproducing the *shape* of Figures 7-9.  The constants
// below are software-implementation ballparks for that CPU generation
// (no AES-NI assumed, matching the 2016 OpenSSL-on-Mininet setup); the
// micro_crypto bench measures our own primitives for comparison.
#pragma once

#include <cstdint>

namespace mic::crypto {

struct CostModel {
  // Symmetric primitives, cycles per byte.
  double aes128_cpb = 12.0;      // software AES (table implementation)
  double chacha20_cpb = 4.0;     // portable ChaCha20
  double sha256_cpb = 12.0;      // portable SHA-256
  double hmac_fixed_cycles = 3000.0;  // per-message HMAC overhead (2 blocks)

  // Asymmetric operations, cycles per operation.
  double dh_modexp_cycles = 4.0e6;   // 2048-bit modexp, 256-bit exponent
  double rsa2048_sign_cycles = 6.0e6;
  double rsa2048_verify_cycles = 2.0e5;

  // Protocol-stack costs, cycles.
  double tcp_segment_cycles = 2200.0;   // per segment through a host stack
  double tcp_connect_cycles = 12000.0;  // socket + handshake bookkeeping
  double ssl_record_fixed_cycles = 1800.0;  // framing + MAC bookkeeping

  // Switch data-plane costs, cycles (software switch, matching the paper's
  // Open vSwitch setup).
  double switch_lookup_cycles = 1500.0;     // flow-table match
  double switch_rewrite_cycles = 250.0;     // per set-field action
  double switch_group_copy_cycles = 900.0;  // per replicated packet

  // Tor relay application-layer costs.
  double tor_cell_fixed_cycles = 4000.0;  // cell parse + queue + dispatch
  /// Scheduling/queueing latency a cell spends inside a relay before being
  /// forwarded (event loop, circuit queues, token buckets).  This is where
  /// the real Tor daemon's latency overhead lives -- the paper measured Tor
  /// at ~62x TCP latency on a loopback testbed, far beyond raw crypto cost.
  /// Pipelined: it delays cells without occupying the CPU.
  double tor_cell_sched_delay_us = 800.0;

  // Mimic Controller costs, cycles.
  double mic_request_fixed_cycles = 8000.0;      // parse + channel bookkeeping
  double mic_route_calc_cycles_per_flow = 25000.0;  // path + MAGA generation

  /// Cost of encrypting/decrypting `bytes` with ChaCha20 plus the HMAC.
  double stream_crypt_cycles(std::uint64_t bytes) const {
    return chacha20_cpb * static_cast<double>(bytes) + hmac_fixed_cycles;
  }

  double aes_crypt_cycles(std::uint64_t bytes) const {
    return aes128_cpb * static_cast<double>(bytes);
  }
};

/// The default model used by all benchmarks; a single knob set keeps every
/// figure consistent.
inline const CostModel& default_cost_model() {
  static const CostModel model;
  return model;
}

}  // namespace mic::crypto
