#include "crypto/dh.hpp"

#include "crypto/sha256.hpp"

namespace mic::crypto {

namespace {

// RFC 3526, group 14 (2048-bit MODP), generator 2.
constexpr std::string_view kGroup14PrimeHex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF";

}  // namespace

DhGroup::DhGroup() : ctx_(Uint2048::from_hex(kGroup14PrimeHex)) {}

Uint2048 DhGroup::sample_private_key(Rng& rng) const {
  Uint2048 key;
  for (std::size_t i = 0; i < 4; ++i) key.set_limb(i, rng.next());
  // Keep the exponent >= 2 and exactly 256 bits so bit_length is stable.
  key.set_limb(3, key.limb(3) | (1ULL << 63));
  key.set_limb(0, key.limb(0) | 2ULL);
  return key;
}

Uint2048 DhGroup::public_key(const Uint2048& private_key) const noexcept {
  return ctx_.modexp(Uint2048::from_u64(2), private_key);
}

Uint2048 DhGroup::shared_secret(const Uint2048& private_key,
                                const Uint2048& peer_public) const noexcept {
  return ctx_.modexp(peer_public, private_key);
}

std::array<std::uint8_t, 32> DhGroup::derive_key(
    const Uint2048& shared, std::string_view label) const {
  const auto secret_bytes = shared.to_bytes_be();
  const auto out = kdf_sha256(
      secret_bytes,
      {reinterpret_cast<const std::uint8_t*>(label.data()), label.size()}, 32);
  std::array<std::uint8_t, 32> key{};
  std::copy(out.begin(), out.begin() + 32, key.begin());
  return key;
}

const DhGroup& dh_group_14() {
  static const DhGroup group;
  return group;
}

}  // namespace mic::crypto
