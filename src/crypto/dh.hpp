// Diffie-Hellman key exchange over the RFC 3526 2048-bit MODP group.
//
// Used when a client contacts the Mimic Controller for the first time
// (paper Sec VI: "exchange a private key with the MC in advance using
// asymmetric encryption algorithms, like RSA or D-H"), and by the Tor
// baseline's telescoping circuit construction (one exchange per hop).
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace mic::crypto {

/// Shared, process-wide context for the RFC 3526 group 14 parameters
/// (2048-bit prime, generator 2).  Construction precomputes the Montgomery
/// constants; reuse one instance.
class DhGroup {
 public:
  DhGroup();

  const Uint2048& prime() const noexcept { return ctx_.modulus(); }

  /// Sample a 256-bit private exponent (>= 2) from the given RNG.
  Uint2048 sample_private_key(Rng& rng) const;

  /// g^priv mod p.
  Uint2048 public_key(const Uint2048& private_key) const noexcept;

  /// peer_public^priv mod p.
  Uint2048 shared_secret(const Uint2048& private_key,
                         const Uint2048& peer_public) const noexcept;

  /// Derive a 32-byte symmetric key from a shared secret via the SHA-256 KDF.
  std::array<std::uint8_t, 32> derive_key(const Uint2048& shared,
                                          std::string_view label) const;

 private:
  MontgomeryCtx ctx_;
};

/// Returns the process-wide group instance (lazily constructed).
const DhGroup& dh_group_14();

}  // namespace mic::crypto
