#include "crypto/rsa.hpp"

#include <array>

#include "common/assert.hpp"

namespace mic::crypto {

namespace {

// Small primes for cheap trial division before Miller-Rabin.
constexpr std::uint64_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137};

/// 64-bit modular inverse via extended Euclid (for phi^{-1} mod e).
std::uint64_t inverse_mod_u64(std::uint64_t a, std::uint64_t m) {
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m),
               new_r = static_cast<std::int64_t>(a % m);
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    std::int64_t tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  MIC_ASSERT_MSG(r == 1, "inverse does not exist");
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

}  // namespace

bool is_probable_prime(const Uint2048& n, Rng& rng, int rounds) {
  if (n.is_zero() || n == Uint2048::from_u64(1)) return false;
  if (n == Uint2048::from_u64(2)) return true;
  if ((n.limb(0) & 1) == 0) return false;
  for (const std::uint64_t p : kSmallPrimes) {
    if (n == Uint2048::from_u64(p)) return true;
    if (n.mod_u64(p) == 0) return false;
  }

  // n - 1 = 2^s * d.
  Uint2048 n_minus_1 = n;
  n_minus_1.sub_in_place(Uint2048::from_u64(1));
  Uint2048 d = n_minus_1;
  int s = 0;
  while ((d.limb(0) & 1) == 0) {
    d.shr1_in_place();
    ++s;
  }

  const MontgomeryCtx ctx(n);
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, 2^62): plenty for a probabilistic test.
    const Uint2048 base = Uint2048::from_u64(rng.range(2, (1ULL << 62)));
    Uint2048 x = ctx.modexp(base, d);
    if (x == Uint2048::from_u64(1) || x == n_minus_1) continue;
    bool witness = true;
    for (int i = 1; i < s; ++i) {
      x = ctx.from_mont(ctx.mont_mul(ctx.to_mont(x), ctx.to_mont(x)));
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Uint2048 generate_prime(int bits, Rng& rng) {
  MIC_ASSERT(bits >= 16 && bits <= 1024);
  for (;;) {
    Uint2048 candidate;
    const int limbs = (bits + 63) / 64;
    for (int i = 0; i < limbs; ++i) {
      candidate.set_limb(static_cast<std::size_t>(i), rng.next());
    }
    // Clamp to exactly `bits` bits, set the top two bits (so products of
    // two primes reach the full modulus size) and force odd.
    const int top = bits - 1;
    Uint2048 mask;
    for (int i = 0; i < limbs; ++i) {
      mask.set_limb(static_cast<std::size_t>(i), ~0ULL);
    }
    if (bits % 64 != 0) {
      mask.set_limb(static_cast<std::size_t>(limbs - 1),
                    (~0ULL) >> (64 - bits % 64));
    }
    for (std::size_t i = 0; i < Uint2048::kLimbs; ++i) {
      candidate.set_limb(i, candidate.limb(i) & mask.limb(i));
    }
    candidate.set_limb(static_cast<std::size_t>(top / 64),
                       candidate.limb(static_cast<std::size_t>(top / 64)) |
                           (1ULL << (top % 64)));
    if (top >= 1) {
      candidate.set_limb(static_cast<std::size_t>((top - 1) / 64),
                         candidate.limb(static_cast<std::size_t>((top - 1) / 64)) |
                             (1ULL << ((top - 1) % 64)));
    }
    candidate.set_limb(0, candidate.limb(0) | 1);

    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

RsaKeyPair RsaKeyPair::generate(int modulus_bits, Rng& rng) {
  MIC_ASSERT(modulus_bits >= 64 && modulus_bits <= 2048 &&
             modulus_bits % 2 == 0);
  const int prime_bits = modulus_bits / 2;
  constexpr std::uint64_t e = 65537;

  for (;;) {
    const Uint2048 p = generate_prime(prime_bits, rng);
    Uint2048 q;
    do {
      q = generate_prime(prime_bits, rng);
    } while (q == p);

    // phi = (p-1)(q-1).
    Uint2048 p1 = p;
    p1.sub_in_place(Uint2048::from_u64(1));
    Uint2048 q1 = q;
    q1.sub_in_place(Uint2048::from_u64(1));
    const Uint2048 phi = Uint2048::mul(p1, q1);

    const std::uint64_t phi_mod_e = phi.mod_u64(e);
    if (phi_mod_e == 0) continue;  // gcd(e, phi) != 1: rare, retry

    // d = (1 + k*phi) / e with k = -phi^{-1} mod e; the division is exact.
    const std::uint64_t k = e - inverse_mod_u64(phi_mod_e, e);
    Uint2048 numerator = Uint2048::mul(phi, Uint2048::from_u64(k));
    numerator.add_in_place(Uint2048::from_u64(1));
    std::uint64_t remainder = 1;
    const Uint2048 d = Uint2048::div_u64(numerator, e, &remainder);
    MIC_ASSERT_MSG(remainder == 0, "private exponent derivation failed");

    RsaKeyPair keys;
    keys.pub.n = Uint2048::mul(p, q);
    keys.pub.e = e;
    keys.d = d;
    return keys;
  }
}

Uint2048 rsa_public_op(const RsaPublicKey& key, const Uint2048& m) {
  MIC_ASSERT(m.compare(key.n) < 0);
  const MontgomeryCtx ctx(key.n);
  return ctx.modexp(m, Uint2048::from_u64(key.e));
}

Uint2048 rsa_private_op(const RsaKeyPair& key, const Uint2048& c) {
  MIC_ASSERT(c.compare(key.pub.n) < 0);
  const MontgomeryCtx ctx(key.pub.n);
  return ctx.modexp(c, key.d);
}

std::vector<std::uint8_t> rsa_encrypt(const RsaPublicKey& key,
                                      std::span<const std::uint8_t> message,
                                      Rng& rng) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  MIC_ASSERT_MSG(message.size() + 11 <= k, "message too long for modulus");

  std::vector<std::uint8_t> block(k);
  block[0] = 0x00;
  block[1] = 0x02;
  const std::size_t pad_len = k - 3 - message.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next());
    } while (b == 0);
    block[2 + i] = b;
  }
  block[2 + pad_len] = 0x00;
  std::copy(message.begin(), message.end(),
            block.begin() + static_cast<long>(3 + pad_len));

  const Uint2048 m = Uint2048::from_bytes_be(block);
  const Uint2048 c = rsa_public_op(key, m);
  const auto full = c.to_bytes_be();
  return {full.end() - static_cast<long>(k), full.end()};
}

std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaKeyPair& key, std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = (key.pub.n.bit_length() + 7) / 8;
  if (ciphertext.size() != k) return std::nullopt;
  const Uint2048 c = Uint2048::from_bytes_be(ciphertext);
  if (c.compare(key.pub.n) >= 0) return std::nullopt;
  const Uint2048 m = rsa_private_op(key, c);
  const auto full = m.to_bytes_be();
  const std::vector<std::uint8_t> block(full.end() - static_cast<long>(k),
                                        full.end());
  if (block.size() < 11 || block[0] != 0x00 || block[1] != 0x02) {
    return std::nullopt;
  }
  std::size_t i = 2;
  while (i < block.size() && block[i] != 0x00) ++i;
  if (i < 10 || i == block.size()) return std::nullopt;
  return std::vector<std::uint8_t>(block.begin() + static_cast<long>(i + 1),
                                   block.end());
}

}  // namespace mic::crypto
