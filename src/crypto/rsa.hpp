// RSA (textbook keygen + PKCS#1-v1.5-style padding) -- the other
// asymmetric option the paper names for the client<->MC key exchange
// ("using asymmetric encryption algorithms, like RSA or D-H", Sec VI).
//
// Key generation uses Miller-Rabin over the fixed-width Montgomery
// arithmetic; the private exponent is derived without big-number division
// via d = (1 + k*phi) / e with k = -phi^{-1} mod e (e = 65537 is prime, so
// the inverse lives in 64-bit arithmetic and the final division is by the
// small e).  Sizes up to RSA-2048 fit the Uint2048 substrate.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace mic::crypto {

/// Miller-Rabin probabilistic primality test.
bool is_probable_prime(const Uint2048& n, Rng& rng, int rounds = 20);

/// Random prime with exactly `bits` bits (top bit set).
Uint2048 generate_prime(int bits, Rng& rng);

struct RsaPublicKey {
  Uint2048 n;
  std::uint64_t e = 65537;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  Uint2048 d;  // private exponent

  /// modulus_bits must be even and <= 2048.
  static RsaKeyPair generate(int modulus_bits, Rng& rng);
};

/// Raw modexp primitives (m < n).
Uint2048 rsa_public_op(const RsaPublicKey& key, const Uint2048& m);
Uint2048 rsa_private_op(const RsaKeyPair& key, const Uint2048& c);

/// PKCS#1-v1.5-style encryption: 0x00 0x02 <nonzero random> 0x00 <message>,
/// then the public op.  The message must leave >= 11 bytes of padding room
/// within the modulus size.
std::vector<std::uint8_t> rsa_encrypt(const RsaPublicKey& key,
                                      std::span<const std::uint8_t> message,
                                      Rng& rng);

/// Inverse of rsa_encrypt; nullopt on malformed padding.
std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaKeyPair& key, std::span<const std::uint8_t> ciphertext);

}  // namespace mic::crypto
