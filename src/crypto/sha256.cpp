#include "crypto/sha256.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace mic::crypto {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t big_sigma0(std::uint32_t x) {
  return rotr(x, 2u) ^ rotr(x, 13u) ^ rotr(x, 22u);
}
constexpr std::uint32_t big_sigma1(std::uint32_t x) {
  return rotr(x, 6u) ^ rotr(x, 11u) ^ rotr(x, 25u);
}
constexpr std::uint32_t small_sigma0(std::uint32_t x) {
  return rotr(x, 7u) ^ rotr(x, 18u) ^ (x >> 3);
}
constexpr std::uint32_t small_sigma1(std::uint32_t x) {
  return rotr(x, 17u) ^ rotr(x, 19u) ^ (x >> 10);
}

}  // namespace

void Sha256::reset() noexcept {
  std::memcpy(h_.data(), kInit, sizeof(kInit));
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::compress(const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
           w[i - 16];
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t t1 =
        h + big_sigma1(e) + ((e & f) ^ (~e & g)) + kRound[i] + w[i];
    const std::uint32_t t2 =
        big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == kBlockSize) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    compress(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

Sha256::Digest Sha256::finish() noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0;
  while (buffered_ != kBlockSize - 8) update({&zero, 1});
  std::uint8_t len_be[8];
  store_be64(len_be, bit_len);
  update({len_be, 8});
  MIC_ASSERT(buffered_ == 0);

  Digest out{};
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, h_[i]);
  return out;
}

Sha256::Digest Sha256::hash(std::span<const std::uint8_t> data) noexcept {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) noexcept {
  std::array<std::uint8_t, Sha256::kBlockSize> k_block{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::memcpy(k_block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad{};
  std::array<std::uint8_t, Sha256::kBlockSize> opad{};
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

std::vector<std::uint8_t> kdf_sha256(std::span<const std::uint8_t> ikm,
                                     std::span<const std::uint8_t> label,
                                     std::size_t out_len) {
  std::vector<std::uint8_t> out;
  out.reserve(out_len);
  std::uint32_t counter = 1;
  while (out.size() < out_len) {
    std::vector<std::uint8_t> block(label.begin(), label.end());
    block.push_back(static_cast<std::uint8_t>(counter >> 24));
    block.push_back(static_cast<std::uint8_t>(counter >> 16));
    block.push_back(static_cast<std::uint8_t>(counter >> 8));
    block.push_back(static_cast<std::uint8_t>(counter));
    const auto digest = hmac_sha256(ikm, block);
    const std::size_t take = std::min(digest.size(), out_len - out.size());
    out.insert(out.end(), digest.begin(), digest.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

}  // namespace mic::crypto
