// SHA-256 (FIPS 180-4).
//
// Used for the MC<->client control channel MACs, Tor cell digests, and as
// the key-derivation primitive after Diffie-Hellman.  Implemented from
// scratch; verified against the FIPS test vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mic::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  /// Finishes the hash.  The object must be reset() before reuse.
  Digest finish() noexcept;

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) noexcept;

/// HKDF-style expansion: derive `out_len` bytes from input keying material
/// and a context label.  Enough for our session-key needs (not full RFC 5869
/// extract+expand, but the same HMAC counter construction).
std::vector<std::uint8_t> kdf_sha256(std::span<const std::uint8_t> ikm,
                                     std::span<const std::uint8_t> label,
                                     std::size_t out_len);

}  // namespace mic::crypto
