#include "ctrl/admission.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mic::ctrl {

AdmissionController::AdmissionController(sim::Simulator& simulator,
                                         AdmissionConfig config)
    : sim_(simulator), config_(config) {
  MIC_ASSERT(config_.tenant_rate >= 0.0 && config_.tenant_burst >= 1.0);
}

AdmissionController::Bucket& AdmissionController::bucket_of(net::Ipv4 tenant) {
  Bucket& bucket = tenants_[tenant.value];
  if (!bucket.primed) {
    // A tenant's first sighting starts with a full bucket: the burst
    // capacity is the steady-state budget, not something to be earned.
    bucket.tokens = config_.tenant_burst;
    bucket.refilled_at = sim_.now();
    bucket.primed = true;
  }
  return bucket;
}

void AdmissionController::refill(Bucket& bucket) {
  const sim::SimTime now = sim_.now();
  if (now <= bucket.refilled_at) return;
  const double elapsed_s =
      static_cast<double>(now - bucket.refilled_at) * 1e-9;
  bucket.tokens = std::min(config_.tenant_burst,
                           bucket.tokens + config_.tenant_rate * elapsed_s);
  bucket.refilled_at = now;
}

bool AdmissionController::take_token(Bucket& bucket) {
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

sim::SimTime AdmissionController::token_wait(const Bucket& bucket) const {
  if (bucket.tokens >= 1.0) return 0;
  if (config_.tenant_rate <= 0.0) return sim::seconds(1);  // never refills
  const double deficit = 1.0 - bucket.tokens;
  const double ns = std::ceil(deficit / config_.tenant_rate * 1e9);
  return static_cast<sim::SimTime>(std::max(ns, 1.0));
}

sim::SimTime AdmissionController::retry_hint(const Bucket& bucket) const {
  return std::max(config_.retry_after_floor, token_wait(bucket));
}

void AdmissionController::offer(net::Ipv4 tenant, AdmitPriority priority,
                                std::function<void()> run,
                                std::function<void(sim::SimTime)> shed) {
  ++stats_.offered;
  Bucket& bucket = bucket_of(tenant);
  refill(bucket);
  const bool limits = config_.enabled;

  if (limits && bucket.pending >= config_.tenant_pending_quota) {
    ++stats_.shed;
    shed(retry_hint(bucket));
    return;
  }

  // Unsaturated fast path: nothing queued ahead, a service slot free, a
  // token available.  Runs on the caller's event with no timers and no
  // randomness -- the SIM-1 bit-identity regime.
  if (queued_count() == 0 &&
      (!limits ||
       (in_service_ < config_.max_in_service && take_token(bucket)))) {
    ++stats_.admitted;
    ++in_service_;
    ++bucket.pending;
    run();
    return;
  }

  // Saturated: queue if the bounded queue has room, shedding the youngest
  // queued fresh request when a repair needs its slot.
  if (queued_count() >= config_.queue_capacity) {
    if (priority == AdmitPriority::kRepair && !fresh_queue_.empty()) {
      QueuedRequest evicted = std::move(fresh_queue_.back());
      fresh_queue_.pop_back();
      Bucket& victim = bucket_of(evicted.tenant);
      MIC_ASSERT(victim.pending > 0);
      --victim.pending;
      ++stats_.shed;
      refill(victim);
      evicted.shed(retry_hint(victim));
    } else {
      ++stats_.shed;
      shed(retry_hint(bucket));
      return;
    }
  }
  ++bucket.pending;
  auto& queue =
      priority == AdmitPriority::kRepair ? repair_queue_ : fresh_queue_;
  queue.push_back(
      QueuedRequest{tenant, priority, std::move(run), std::move(shed)});
  // The new arrival may itself be runnable (it only queued because older
  // requests from token-dry tenants hold the queue) -- let the drain
  // decide, and arm the refill timer for whatever still waits.
  drain_queue();
}

AdmissionController::Ticket AdmissionController::offer_sync(net::Ipv4 tenant) {
  ++stats_.offered;
  Bucket& bucket = bucket_of(tenant);
  refill(bucket);
  if (config_.enabled && !take_token(bucket)) {
    ++stats_.shed;
    return Ticket{false, retry_hint(bucket)};
  }
  if (!config_.enabled) take_token(bucket);  // best-effort accounting
  ++stats_.admitted;
  return Ticket{true, 0};
}

void AdmissionController::finish(net::Ipv4 tenant, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // service that straddled a reset()
  MIC_ASSERT(in_service_ > 0);
  --in_service_;
  Bucket& bucket = bucket_of(tenant);
  MIC_ASSERT(bucket.pending > 0);
  --bucket.pending;
  drain_queue();
}

void AdmissionController::drain_queue() {
  const auto next_runnable = [this](std::deque<QueuedRequest>& queue,
                                    std::deque<QueuedRequest>::iterator& out) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      Bucket& bucket = bucket_of(it->tenant);
      refill(bucket);
      if (bucket.tokens >= 1.0) {
        out = it;
        return true;
      }
    }
    return false;
  };

  while (queued_count() > 0 && in_service_ < config_.max_in_service) {
    // Repairs outrank fresh establishes; within a class, FIFO among
    // tenants that hold a token (a dry tenant never blocks the others).
    std::deque<QueuedRequest>::iterator it;
    std::deque<QueuedRequest>* queue = &repair_queue_;
    if (!next_runnable(repair_queue_, it)) {
      queue = &fresh_queue_;
      if (!next_runnable(fresh_queue_, it)) break;
    }
    QueuedRequest request = std::move(*it);
    queue->erase(it);
    Bucket& bucket = bucket_of(request.tenant);
    take_token(bucket);
    ++stats_.admitted;
    ++in_service_;  // pending was counted at enqueue time
    request.run();
  }

  if (queued_count() > 0 && in_service_ < config_.max_in_service) {
    // Everything left waits on tokens: wake at the earliest refill.
    sim::SimTime earliest = sim::kNever;
    for (const auto* queue : {&repair_queue_, &fresh_queue_}) {
      for (const QueuedRequest& request : *queue) {
        const Bucket& bucket = bucket_of(request.tenant);
        earliest = std::min(earliest, sim_.now() + token_wait(bucket));
      }
    }
    arm_drain_timer(earliest);
  } else if (queued_count() == 0 && drain_timer_ != 0) {
    sim_.cancel(drain_timer_);
    drain_timer_ = 0;
  }
}

void AdmissionController::arm_drain_timer(sim::SimTime at) {
  if (drain_timer_ != 0) {
    if (drain_at_ <= at) return;  // an earlier wake-up already covers this
    sim_.cancel(drain_timer_);
  }
  drain_at_ = at;
  drain_timer_ = sim_.schedule_at(at, [this] {
    drain_timer_ = 0;
    drain_queue();
  });
}

// --- half-open control sessions ------------------------------------------------

AdmissionController::ControlSessionId AdmissionController::open_session(
    net::Ipv4 tenant) {
  Bucket& bucket = bucket_of(tenant);
  if (config_.enabled &&
      (sessions_.size() >= config_.max_half_open_sessions ||
       bucket.half_open >= config_.tenant_half_open_quota)) {
    ++stats_.sessions_rejected;
    return 0;
  }
  const ControlSessionId id = next_session_++;
  Session session;
  session.tenant = tenant;
  session.deadline = sim_.now() + config_.half_open_timeout;
  session.reaper =
      sim_.schedule_at(session.deadline, [this, id] { reap_session(id); });
  sessions_.emplace(id, session);
  ++bucket.half_open;
  ++stats_.sessions_opened;
  return id;
}

bool AdmissionController::touch_session(ControlSessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  sim_.cancel(it->second.reaper);
  it->second.deadline = sim_.now() + config_.half_open_timeout;
  it->second.reaper = sim_.schedule_at(it->second.deadline,
                                       [this, id] { reap_session(id); });
  return true;
}

bool AdmissionController::complete_session(ControlSessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  sim_.cancel(it->second.reaper);
  Bucket& bucket = bucket_of(it->second.tenant);
  MIC_ASSERT(bucket.half_open > 0);
  --bucket.half_open;
  sessions_.erase(it);
  ++stats_.sessions_completed;
  return true;
}

void AdmissionController::reap_session(ControlSessionId id) {
  const auto it = sessions_.find(id);
  MIC_ASSERT_MSG(it != sessions_.end(), "reaper fired for an erased session");
  Bucket& bucket = bucket_of(it->second.tenant);
  MIC_ASSERT(bucket.half_open > 0);
  --bucket.half_open;
  sessions_.erase(it);
  ++stats_.sessions_reaped;
}

// --- crash semantics -------------------------------------------------------------

void AdmissionController::reset() {
  ++epoch_;
  if (drain_timer_ != 0) {
    sim_.cancel(drain_timer_);
    drain_timer_ = 0;
  }
  for (auto& [id, session] : sessions_) {
    if (session.reaper != 0) sim_.cancel(session.reaper);
  }
  sessions_.clear();
  // Queued requests die silently: a crashed MC answers nothing, which is
  // exactly what the client-side watchdog machinery detects.
  repair_queue_.clear();
  fresh_queue_.clear();
  tenants_.clear();
  in_service_ = 0;
  stats_ = Stats{};
  // next_session_ keeps counting: a pre-crash session id can never
  // complete a post-recovery session.
}

// --- introspection ---------------------------------------------------------------

std::vector<AdmissionController::TenantSnapshot>
AdmissionController::tenant_snapshot() const {
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, bucket] : tenants_) {
    out.push_back(
        TenantSnapshot{tenant, bucket.pending, bucket.half_open,
                       bucket.tokens});
  }
  return out;
}

std::vector<AdmissionController::ControlSessionId>
AdmissionController::zombie_sessions() const {
  std::vector<ControlSessionId> out;
  const sim::SimTime now = sim_.now();
  for (const auto& [id, session] : sessions_) {
    if (session.deadline < now) out.push_back(id);
  }
  return out;
}

// --- AC-1 negative-test hooks ------------------------------------------------------

void AdmissionController::debug_force_admit(net::Ipv4 tenant) {
  Bucket& bucket = bucket_of(tenant);
  const std::size_t excess = config_.tenant_pending_quota + 1;
  bucket.pending += excess;
  in_service_ += excess;
  stats_.offered += excess;
  stats_.admitted += excess;
}

AdmissionController::ControlSessionId AdmissionController::debug_leak_session(
    net::Ipv4 tenant) {
  const ControlSessionId id = next_session_++;
  Session session;
  session.tenant = tenant;
  // Expired already (or at time zero: expired as soon as the clock moves),
  // with no reaper armed -- the way a lost timer would leak it.
  session.deadline = sim_.now() == 0 ? 0 : sim_.now() - 1;
  session.reaper = 0;
  sessions_.emplace(id, session);
  ++bucket_of(tenant).half_open;
  ++stats_.sessions_opened;
  return id;
}

}  // namespace mic::ctrl
