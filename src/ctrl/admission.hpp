// Control-plane admission control (the server half of the PR-5 survival
// story): at millions of users the Mimic Controller is the obvious DoS
// target -- every establishment funnels through one control channel, so a
// burst of establish requests, or a slowloris-style trickle of half-open
// control sessions, starves honest channels long before the data plane
// saturates (HORNET treats control-plane DoS as a first-class constraint
// for network-layer anonymity; see PAPERS.md).
//
// AdmissionController sits in front of every MimicController establishment
// entry point and provides three defenses:
//
//   1. Per-tenant token buckets (tenant = client IPv4): each tenant earns
//      `tenant_rate` establishments/sec up to a burst of `tenant_burst`,
//      plus a quota on pending work (queued + in service), so one tenant's
//      flood can never consume another tenant's budget.
//   2. A bounded establish work queue with two priority classes --
//      re-establishments of lost channels (kRepair) outrank fresh
//      establishes (kFresh) -- and explicit load-shedding: a rejected
//      request is answered with Busy{retry_after} instead of silence, so
//      honest clients back off for exactly as long as the server asks.
//   3. A half-open control-session tracker with an idle reaper riding the
//      timing-wheel timers: a client that opens a control exchange and then
//      trickles (or goes quiet) is reaped after `half_open_timeout`, so
//      slow-client attacks cannot pin MC state.
//
// Determinism contract (SIM-1): when enabled but unsaturated -- tokens
// available, queue empty, service slots free -- offer() admits the request
// synchronously on the caller's event, draws no randomness and arms no
// timers, so every existing chaos-soak trace hash replays bit-identical
// with admission control on.  Only saturated paths (queueing, shedding,
// reaping) schedule anything.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/addr.hpp"
#include "sim/simulator.hpp"

namespace mic::ctrl {

/// Priority class of one establishment request.  Carried in the clear
/// (the MC must classify *before* spending decrypt CPU on the request --
/// that is the whole point of admission control), so it is advisory: a
/// malicious tenant can claim kRepair, but the per-tenant token bucket
/// bounds what that buys it to its own budget.
enum class AdmitPriority : std::uint8_t {
  kRepair = 0,  // re-establishment of a lost channel
  kFresh = 1,   // first-time establishment
};

struct AdmissionConfig {
  /// Master switch.  Disabled short-circuits every limit (pure accounting
  /// pass-through); the defaults below are generous enough that ordinary
  /// workloads never saturate, which is the SIM-1 bit-identity regime.
  bool enabled = true;

  // --- per-tenant token bucket -----------------------------------------------
  /// Establishment tokens earned per second per tenant.
  double tenant_rate = 50'000.0;
  /// Bucket capacity: the largest burst one tenant can fire instantly.
  double tenant_burst = 4096.0;
  /// Max pending establishments (queued + in service) per tenant.
  std::size_t tenant_pending_quota = 1024;

  // --- bounded establish work queue ------------------------------------------
  /// Requests waiting for tokens or service slots, across all tenants.
  /// 0 disables queueing entirely (admit-or-shed).
  std::size_t queue_capacity = 4096;
  /// Establishments concurrently in the plan/install pipeline.
  std::size_t max_in_service = 1024;
  /// Floor for the retry_after hint a shed request carries back.
  sim::SimTime retry_after_floor = sim::milliseconds(2);

  // --- half-open control sessions --------------------------------------------
  std::size_t max_half_open_sessions = 4096;
  std::size_t tenant_half_open_quota = 64;
  /// Idle deadline: a session neither completed nor touched for this long
  /// is reaped.
  sim::SimTime half_open_timeout = sim::milliseconds(20);
};

class AdmissionController {
 public:
  using ControlSessionId = std::uint64_t;

  AdmissionController(sim::Simulator& simulator, AdmissionConfig config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // --- establishment admission ------------------------------------------------

  /// Offer one asynchronous establishment.  Exactly one of `run` / `shed`
  /// is eventually invoked: `run` synchronously when unsaturated (or later
  /// when a queued request drains), `shed(retry_after)` synchronously when
  /// the request is rejected -- and also for a queued request evicted by a
  /// higher-priority arrival, or dropped by reset().  An admitted caller
  /// must call finish(tenant, epoch) once its service completes, with
  /// epoch() captured at admission time.
  void offer(net::Ipv4 tenant, AdmitPriority priority,
             std::function<void()> run,
             std::function<void(sim::SimTime)> shed);

  /// Synchronous admission (establish / establish_batch): the caller
  /// cannot wait, so there is no queueing -- a token is drawn now or the
  /// request is shed.  Service is instantaneous from the admission
  /// controller's view (no finish() call).
  struct Ticket {
    bool admitted = false;
    sim::SimTime retry_after = 0;
  };
  Ticket offer_sync(net::Ipv4 tenant);

  /// An admitted asynchronous establishment completed (acked or failed).
  /// Stale epochs (service that straddled a reset()) are ignored.
  void finish(net::Ipv4 tenant, std::uint64_t epoch);
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Heartbeat / probe traffic is exempt from the token buckets -- an
  /// attacked tenant's live channels must not lose liveness detection.
  /// Counted so AC-1 can report the exemption is exercised.
  void note_exempt() { ++stats_.exempt; }

  // --- half-open control sessions ---------------------------------------------

  /// A client opened a control exchange but has not delivered the full
  /// request yet.  Returns 0 (rejected) when the global or per-tenant
  /// half-open quota is exhausted; otherwise the session id, with the idle
  /// reaper armed.
  ControlSessionId open_session(net::Ipv4 tenant);
  /// Activity on a half-open session (a trickled fragment): pushes the
  /// idle deadline out.  False if the session was already reaped.
  bool touch_session(ControlSessionId id);
  /// The full request arrived: the session leaves the tracker and the
  /// reaper is disarmed.  False if the session was already reaped -- the
  /// caller must then drop the request (the MC forgot the exchange).
  bool complete_session(ControlSessionId id);

  // --- crash semantics ----------------------------------------------------------
  /// MC crash: all admission state is soft.  Queued requests are dropped
  /// silently (the dead MC answers nothing -- clients detect via their
  /// watchdogs), sessions and reaper timers die, buckets and counters are
  /// wiped, and the epoch is bumped so in-flight finish() calls from the
  /// previous life cannot corrupt the new one.
  void reset();

  // --- introspection (AC-1's ground truth) -------------------------------------

  struct Stats {
    std::uint64_t offered = 0;   // every offer() / offer_sync()
    std::uint64_t admitted = 0;  // entered service (inline or via drain)
    std::uint64_t shed = 0;      // answered Busy{retry_after}
    std::uint64_t exempt = 0;    // probe/heartbeat fast-path passes
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_completed = 0;
    std::uint64_t sessions_reaped = 0;
    std::uint64_t sessions_rejected = 0;  // over half-open quota
  };
  const Stats& stats() const noexcept { return stats_; }
  const AdmissionConfig& config() const noexcept { return config_; }

  std::size_t queued_count() const noexcept {
    return repair_queue_.size() + fresh_queue_.size();
  }
  std::size_t in_service_count() const noexcept { return in_service_; }
  std::size_t half_open_count() const noexcept { return sessions_.size(); }

  /// Per-tenant view, sorted by tenant address (deterministic order for
  /// audit messages).
  struct TenantSnapshot {
    std::uint32_t tenant = 0;
    std::size_t pending = 0;    // queued + in service
    std::size_t half_open = 0;
    double tokens = 0.0;        // balance at the last refill
  };
  std::vector<TenantSnapshot> tenant_snapshot() const;

  /// Session ids whose idle deadline lies strictly in the past -- at
  /// quiescence the reaper has fired for every expired session, so any
  /// survivor here is a leak (AC-1 violation).  Sorted ascending.
  std::vector<ControlSessionId> zombie_sessions() const;

  // --- AC-1 negative-test hooks -------------------------------------------------
  /// Corrupt the books the way a quota-bypass bug would: record an
  /// admission driving `tenant` past its pending quota.  AC-1 must flag it.
  void debug_force_admit(net::Ipv4 tenant);
  /// Leak a half-open session the way a lost reaper timer would: the
  /// session is tracked, expired, and no timer will ever reap it.  AC-1
  /// must flag it.
  ControlSessionId debug_leak_session(net::Ipv4 tenant);

 private:
  struct Bucket {
    double tokens = 0.0;
    sim::SimTime refilled_at = 0;
    std::size_t pending = 0;  // queued + in service
    std::size_t half_open = 0;
    bool primed = false;  // first sighting starts with a full bucket
  };
  struct QueuedRequest {
    net::Ipv4 tenant;
    AdmitPriority priority = AdmitPriority::kFresh;
    std::function<void()> run;
    std::function<void(sim::SimTime)> shed;
  };
  struct Session {
    net::Ipv4 tenant;
    sim::SimTime deadline = 0;
    sim::EventId reaper = 0;
  };

  Bucket& bucket_of(net::Ipv4 tenant);
  /// Refill `bucket` up to now; returns it for chaining.
  void refill(Bucket& bucket);
  bool take_token(Bucket& bucket);
  /// Time until `bucket` holds >= 1 token (0 when it already does).
  sim::SimTime token_wait(const Bucket& bucket) const;
  sim::SimTime retry_hint(const Bucket& bucket) const;
  /// Admit every runnable queued request (repairs first), then arm the
  /// drain timer for the earliest token if anything is still waiting.
  void drain_queue();
  void arm_drain_timer(sim::SimTime at);
  void reap_session(ControlSessionId id);

  sim::Simulator& sim_;
  AdmissionConfig config_;
  Stats stats_;
  std::uint64_t epoch_ = 1;

  /// std::map: tenant_snapshot() and AC-1 walk it in deterministic order.
  std::map<std::uint32_t, Bucket> tenants_;
  std::deque<QueuedRequest> repair_queue_;
  std::deque<QueuedRequest> fresh_queue_;
  std::size_t in_service_ = 0;
  sim::EventId drain_timer_ = 0;
  sim::SimTime drain_at_ = 0;

  std::map<ControlSessionId, Session> sessions_;
  ControlSessionId next_session_ = 1;
};

}  // namespace mic::ctrl
