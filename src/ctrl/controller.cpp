#include "ctrl/controller.hpp"

#include "common/log.hpp"

namespace mic::ctrl {

Controller::Controller(net::Network& network, HostAddressing addressing,
                       ControllerConfig config)
    : network_(network),
      addressing_(std::move(addressing)),
      config_(config),
      paths_(network.graph()) {
  if (config_.path_warmup_threads > 0) {
    paths_.warm_up(network.graph().hosts(), config_.path_warmup_threads);
  }
}

switchd::SdnSwitch* Controller::switch_at(topo::NodeId node) {
  auto* device = dynamic_cast<switchd::SdnSwitch*>(network_.device(node));
  MIC_ASSERT_MSG(device != nullptr, "node is not an SDN switch");
  return device;
}

void Controller::install_rule(topo::NodeId sw, switchd::FlowRule rule,
                              bool immediate) {
  ++rules_installed_;
  if (immediate) {
    const bool ok = switch_at(sw)->table().add_rule(std::move(rule));
    MIC_ASSERT_MSG(ok, "duplicate rule rejected by flow table");
    return;
  }
  network_.simulator().schedule_in(
      config_.southbound_latency, [this, sw, r = std::move(rule)]() mutable {
        const bool ok = switch_at(sw)->table().add_rule(std::move(r));
        if (!ok) log_warn("switch %u rejected duplicate rule", sw);
      });
}

void Controller::install_group(topo::NodeId sw, switchd::GroupEntry group,
                               bool immediate) {
  if (immediate) {
    const bool ok = switch_at(sw)->table().add_group(std::move(group));
    MIC_ASSERT_MSG(ok, "duplicate group rejected by flow table");
    return;
  }
  network_.simulator().schedule_in(
      config_.southbound_latency, [this, sw, g = std::move(group)]() mutable {
        switch_at(sw)->table().add_group(std::move(g));
      });
}

void Controller::remove_cookie(topo::NodeId sw, std::uint64_t cookie,
                               bool immediate) {
  auto do_remove = [this, sw, cookie] {
    switch_at(sw)->table().remove_by_cookie(cookie);
    switch_at(sw)->table().remove_groups_by_cookie(cookie);
  };
  if (immediate) {
    do_remove();
  } else {
    network_.simulator().schedule_in(config_.southbound_latency, do_remove);
  }
}

void Controller::subscribe_packet_in() {
  for (const topo::NodeId sw : graph().switches()) {
    switch_at(sw)->set_packet_in_handler(
        [this](topo::NodeId node, const net::Packet& packet,
               topo::PortId in_port) {
          // Deliver after the control-channel latency; copy the packet so
          // the callback outlives the data-plane buffer.
          network_.simulator().schedule_in(
              config_.southbound_latency,
              [this, node, pkt = packet, in_port] {
                on_packet_in(node, pkt, in_port);
              });
        });
  }
}

switchd::TableStats Controller::aggregate_table_stats() {
  switchd::TableStats total;
  for (const topo::NodeId sw : graph().switches()) {
    total += switch_at(sw)->table_stats();
  }
  return total;
}

void Controller::on_packet_in(topo::NodeId sw, const net::Packet& packet,
                              topo::PortId in_port) {
  log_debug("packet-in from switch %u port %u (%s -> %s), dropped", sw,
            in_port, packet.src.str().c_str(), packet.dst.str().c_str());
}

}  // namespace mic::ctrl
