#include "ctrl/controller.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace mic::ctrl {

unsigned ControllerConfig::effective_warmup_threads() const {
  // The TSan tier (scripts/check.sh) exports MIC_PATH_WARMUP_THREADS to
  // force every controller in the suite through the multi-threaded warm-up
  // path; an explicit config still composes (the override only raises).
  if (const char* env = std::getenv("MIC_PATH_WARMUP_THREADS")) {
    const long forced = std::strtol(env, nullptr, 10);
    if (forced > 0 && static_cast<unsigned>(forced) > path_warmup_threads) {
      return static_cast<unsigned>(forced);
    }
  }
  return path_warmup_threads;
}

Controller::Controller(net::Network& network, HostAddressing addressing,
                       ControllerConfig config)
    : network_(network),
      addressing_(std::move(addressing)),
      config_(config),
      paths_(network.graph()) {
  paths_.set_max_rows(config_.path_cache_max_rows);
  if (const unsigned threads = config_.effective_warmup_threads();
      threads > 0) {
    paths_.warm_up(network.graph().hosts(), threads);
  }
}

bool Controller::roll_control_drop() {
  MutexLock lock(counters_mu_);
  if (control_drop_probability_ <= 0.0 ||
      !control_drop_rng_.chance(control_drop_probability_)) {
    return false;
  }
  ++control_drops_;
  return true;
}

switchd::SdnSwitch* Controller::switch_at(topo::NodeId node) {
  auto* device = dynamic_cast<switchd::SdnSwitch*>(network_.device(node));
  MIC_ASSERT_MSG(device != nullptr, "node is not an SDN switch");
  return device;
}

bool Controller::op_admitted(topo::NodeId sw, std::uint64_t epoch) {
  if (switch_at(sw)->admit_epoch(epoch)) return true;
  ++fenced_ops_;
  on_fenced_out(sw);
  return false;
}

void Controller::on_fenced_out(topo::NodeId sw) {
  log_debug("switch %u refused a stale-epoch op", sw);
}

void Controller::install_rule(topo::NodeId sw, switchd::FlowRule rule,
                              bool immediate) {
  count_rule_install();
  if (immediate) {
    if (!op_admitted(sw, fence_epoch_)) return;
    const bool ok = switch_at(sw)->table().add_rule(std::move(rule));
    MIC_ASSERT_MSG(ok, "duplicate rule rejected by flow table");
    return;
  }
  network_.simulator().schedule_in(
      config_.southbound_latency,
      [this, sw, epoch = fence_epoch_, r = std::move(rule)]() mutable {
        if (!op_admitted(sw, epoch)) return;
        const bool ok = switch_at(sw)->table().add_rule(std::move(r));
        if (!ok) log_warn("switch %u rejected duplicate rule", sw);
      });
}

void Controller::install_group(topo::NodeId sw, switchd::GroupEntry group,
                               bool immediate) {
  if (immediate) {
    if (!op_admitted(sw, fence_epoch_)) return;
    const bool ok = switch_at(sw)->table().add_group(std::move(group));
    MIC_ASSERT_MSG(ok, "duplicate group rejected by flow table");
    return;
  }
  network_.simulator().schedule_in(
      config_.southbound_latency,
      [this, sw, epoch = fence_epoch_, g = std::move(group)]() mutable {
        if (!op_admitted(sw, epoch)) return;
        switch_at(sw)->table().add_group(std::move(g));
      });
}

void Controller::remove_cookie(topo::NodeId sw, std::uint64_t cookie,
                               bool immediate) {
  auto do_remove = [this, sw, cookie, epoch = fence_epoch_] {
    if (!op_admitted(sw, epoch)) return;
    switch_at(sw)->table().remove_by_cookie(cookie);
    switch_at(sw)->table().remove_groups_by_cookie(cookie);
  };
  if (immediate) {
    do_remove();
  } else {
    network_.simulator().schedule_in(config_.southbound_latency, do_remove);
  }
}

bool Controller::install_rule_now(topo::NodeId sw, switchd::FlowRule rule) {
  count_rule_install();
  if (!op_admitted(sw, fence_epoch_)) return false;
  return switch_at(sw)->try_install(std::move(rule));
}

bool Controller::install_group_now(topo::NodeId sw, switchd::GroupEntry group) {
  if (!op_admitted(sw, fence_epoch_)) return false;
  return switch_at(sw)->try_install_group(std::move(group));
}

void Controller::install_rule_checked(topo::NodeId sw, switchd::FlowRule rule,
                                      std::function<void(bool)> on_result) {
  count_rule_install();
  if (roll_control_drop()) {
    network_.simulator().schedule_in(config_.southbound_timeout,
                                     [cb = std::move(on_result)] { cb(false); });
    return;
  }
  network_.simulator().schedule_in(
      config_.southbound_latency,
      [this, sw, epoch = fence_epoch_, r = std::move(rule),
       cb = std::move(on_result)]() mutable {
        const bool ok =
            op_admitted(sw, epoch) && switch_at(sw)->try_install(std::move(r));
        if (roll_control_drop()) {
          // The rule may be installed but the controller never learns; the
          // timeout reports failure and the caller's rollback-by-cookie
          // keeps the table consistent.
          network_.simulator().schedule_in(
              remaining_timeout(), [cb = std::move(cb)] { cb(false); });
          return;
        }
        network_.simulator().schedule_in(config_.southbound_latency,
                                         [cb = std::move(cb), ok] { cb(ok); });
      });
}

void Controller::install_group_checked(topo::NodeId sw,
                                       switchd::GroupEntry group,
                                       std::function<void(bool)> on_result) {
  if (roll_control_drop()) {
    network_.simulator().schedule_in(config_.southbound_timeout,
                                     [cb = std::move(on_result)] { cb(false); });
    return;
  }
  network_.simulator().schedule_in(
      config_.southbound_latency,
      [this, sw, epoch = fence_epoch_, g = std::move(group),
       cb = std::move(on_result)]() mutable {
        const bool ok = op_admitted(sw, epoch) &&
                        switch_at(sw)->try_install_group(std::move(g));
        if (roll_control_drop()) {
          network_.simulator().schedule_in(
              remaining_timeout(), [cb = std::move(cb)] { cb(false); });
          return;
        }
        network_.simulator().schedule_in(config_.southbound_latency,
                                         [cb = std::move(cb), ok] { cb(ok); });
      });
}

void Controller::subscribe_packet_in() {
  for (const topo::NodeId sw : graph().switches()) {
    switch_at(sw)->set_packet_in_handler(
        [this](topo::NodeId node, const net::Packet& packet,
               topo::PortId in_port) {
          // Deliver after the control-channel latency; copy the packet so
          // the callback outlives the data-plane buffer.
          network_.simulator().schedule_in(
              config_.southbound_latency,
              [this, node, pkt = packet, in_port] {
                on_packet_in(node, pkt, in_port);
              });
        });
  }
}

switchd::TableStats Controller::aggregate_table_stats() {
  switchd::TableStats total;
  for (const topo::NodeId sw : graph().switches()) {
    total += switch_at(sw)->table_stats();
  }
  return total;
}

void Controller::subscribe_port_status() {
  for (const topo::NodeId sw : graph().switches()) {
    switch_at(sw)->set_detection_latency(config_.detection_latency);
    switch_at(sw)->add_port_status_handler(
        [this](topo::NodeId node, topo::PortId port, bool up) {
          network_.simulator().schedule_in(
              config_.southbound_latency,
              [this, node, port, up] { on_port_status(node, port, up); });
        });
  }
}

void Controller::on_packet_in(topo::NodeId sw, const net::Packet& packet,
                              topo::PortId in_port) {
  log_debug("packet-in from switch %u port %u (%s -> %s), dropped", sw,
            in_port, packet.src.str().c_str(), packet.dst.str().c_str());
}

void Controller::on_port_status(topo::NodeId sw, topo::PortId port, bool up) {
  log_debug("port-status from switch %u port %u: %s", sw, port,
            up ? "up" : "down");
}

}  // namespace mic::ctrl
