// SDN controller framework (the simulated Ryu).
//
// The controller owns the global topology view and a lazy shortest-path
// engine (the paper's MC "obtains the global view of the network and
// calculates all-pairs equal-cost shortest paths when initiation" -- we
// keep the same query surface but compute per-destination rows on demand,
// so start-up cost no longer scales with the full all-pairs table).
// Southbound operations (flow-mod, group-mod) are charged a configurable
// control-channel latency; proactive installs at simulation start are
// immediate.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/network.hpp"
#include "switchd/sdn_switch.hpp"
#include "topology/path_engine.hpp"

namespace mic::ctrl {

/// Bidirectional host <-> IP mapping, built by the topology glue.
struct HostAddressing {
  std::unordered_map<std::uint32_t, topo::NodeId> by_ip;
  std::unordered_map<topo::NodeId, net::Ipv4> by_node;

  void add(topo::NodeId host, net::Ipv4 ip) {
    by_ip[ip.value] = host;
    by_node[host] = ip;
  }

  net::Ipv4 ip_of(topo::NodeId host) const {
    const auto it = by_node.find(host);
    MIC_ASSERT_MSG(it != by_node.end(), "host has no IP");
    return it->second;
  }

  topo::NodeId host_of(net::Ipv4 ip) const {
    const auto it = by_ip.find(ip.value);
    return it == by_ip.end() ? topo::kInvalidNode : it->second;
  }
};

struct ControllerConfig {
  /// One-way latency of the out-of-band control channel (flow-mod install,
  /// packet-in delivery).  Mininet's localhost control channel is fast but
  /// not free.
  sim::SimTime southbound_latency = sim::microseconds(200);

  /// How long a checked install waits for the switch's reply before
  /// declaring the flow-mod lost (the barrier-reply timeout).  Must exceed
  /// 2x southbound_latency or healthy installs would time out.
  sim::SimTime southbound_timeout = sim::milliseconds(2);

  /// PHY loss-of-signal debounce configured on every switch by
  /// subscribe_port_status(): how long a port must stay down before the
  /// switch raises the async notification.
  sim::SimTime detection_latency = sim::microseconds(500);

  /// Opt-in parallel warm-up of the path engine: when > 0, the controller
  /// precomputes one BFS row per host destination at construction, fanned
  /// across this many threads.  0 (the default) stays fully lazy -- rows
  /// are computed on first use.  Warm-up runs before the single-threaded
  /// event loop starts and is deterministic for any thread count (PE-1).
  unsigned path_warmup_threads = 0;

  /// path_warmup_threads after applying the MIC_PATH_WARMUP_THREADS
  /// environment override (scripts/check.sh exports it in the TSan tier so
  /// the *entire* test suite constructs every controller through the
  /// multi-threaded warm-up path; bench configs set the field directly).
  unsigned effective_warmup_threads() const;

  /// Cap on the path engine's cached per-destination BFS rows
  /// (0 = unbounded).  Rows are O(network size) each, so at million-host
  /// scale the lazy cache needs a bound; when full, the least-recently-
  /// queried row is evicted (and simply recomputed on the next query --
  /// correctness is unaffected by PE-1).
  std::size_t path_cache_max_rows = 0;
};

class Controller {
 public:
  Controller(net::Network& network, HostAddressing addressing,
             ControllerConfig config = {});

  virtual ~Controller() = default;

  net::Network& network() noexcept { return network_; }
  const topo::Graph& graph() const noexcept { return network_.graph(); }
  const topo::PathEngine& paths() const noexcept { return paths_; }
  /// Mutable engine access for failure-epoch maintenance (link_failed /
  /// link_restored) and explicit warm-up.
  topo::PathEngine& path_engine() noexcept { return paths_; }
  const HostAddressing& addressing() const noexcept { return addressing_; }
  const ControllerConfig& config() const noexcept { return config_; }

  switchd::SdnSwitch* switch_at(topo::NodeId node);

  /// Install a rule.  `immediate` bypasses the southbound latency (used for
  /// proactive installs at startup).
  void install_rule(topo::NodeId sw, switchd::FlowRule rule,
                    bool immediate = false);
  void install_group(topo::NodeId sw, switchd::GroupEntry group,
                     bool immediate = false);
  /// Remove every rule and group tagged with `cookie` on `sw`.
  void remove_cookie(topo::NodeId sw, std::uint64_t cookie,
                     bool immediate = false);

  // --- checked (fallible) installs ------------------------------------------
  //
  // The flow-mod travels the control channel, the switch may reject it
  // (table full, injected fault), and the outcome travels back.  Either
  // message can be dropped (set_control_drop_probability); a drop surfaces
  // as failure after southbound_timeout.  `on_result(true)` means the rule
  // is in the table; `on_result(false)` means it may or may not be -- the
  // caller must roll back by cookie before retrying.
  void install_rule_checked(topo::NodeId sw, switchd::FlowRule rule,
                            std::function<void(bool)> on_result);
  void install_group_checked(topo::NodeId sw, switchd::GroupEntry group,
                             std::function<void(bool)> on_result);

  /// Immediate checked installs (no latency, no drops): apply the change
  /// now and report whether the switch accepted it.  The synchronous
  /// transaction path in the MC builds on these.
  bool install_rule_now(topo::NodeId sw, switchd::FlowRule rule);
  bool install_group_now(topo::NodeId sw, switchd::GroupEntry group);

  /// Drop this fraction of checked-install control messages (request and
  /// reply legs independently).  Chaos-harness knob; 0 disables.
  void set_control_drop_probability(double p) MIC_EXCLUDES(counters_mu_) {
    MutexLock lock(counters_mu_);
    control_drop_probability_ = p;
  }
  std::uint64_t control_messages_dropped() const MIC_EXCLUDES(counters_mu_) {
    MutexLock lock(counters_mu_);
    return control_drops_;
  }

  // --- controller fencing ----------------------------------------------------
  //
  // Every mutating southbound op carries the controller's fence epoch (its
  // journal epoch; see SdnSwitch::admit_epoch).  A switch that has seen a
  // newer epoch refuses the op and on_fenced_out() fires: this controller
  // has been deposed by a failover it did not notice.  Epoch 0 (the
  // default for plain controllers) is always admitted, so nothing changes
  // for single-controller deployments.

  std::uint64_t fence_epoch() const noexcept { return fence_epoch_; }
  void set_fence_epoch(std::uint64_t epoch) noexcept { fence_epoch_ = epoch; }

  /// A switch refused one of our ops as stale: another controller with a
  /// newer epoch owns the tables now.  Default ignores it; the MC steps
  /// down (see MimicController::on_fenced_out).
  virtual void on_fenced_out(topo::NodeId sw);

  std::uint64_t fenced_ops() const noexcept { return fenced_ops_; }

  /// Route packet-ins from every switch to on_packet_in().
  void subscribe_packet_in();

  /// Route async port-status notifications from every switch to
  /// on_port_status(), after the switch-side detection latency (configured
  /// here from config().detection_latency) plus the control-channel
  /// latency.  This is what replaces hand-fed failure reports.
  void subscribe_port_status();

  /// Sum of every switch's lookup-tier counters: the controller's view of
  /// how much data-plane traffic the exact-match index absorbs vs how much
  /// falls back to the wildcard scan.
  switchd::TableStats aggregate_table_stats();

  /// Called (after the southbound latency) when a switch reports a table
  /// miss or executes a ToController action.
  virtual void on_packet_in(topo::NodeId sw, const net::Packet& packet,
                            topo::PortId in_port);

  /// Called (after detection + southbound latency) when a switch reports a
  /// port going down or coming back up.  Default ignores it.
  virtual void on_port_status(topo::NodeId sw, topo::PortId port, bool up);

  std::uint64_t rules_installed() const MIC_EXCLUDES(counters_mu_) {
    MutexLock lock(counters_mu_);
    return rules_installed_;
  }

  /// Per-switch signatures of the last installed L3 rule set.  Owned by
  /// L3RoutingApp: install() fills it, reroute_around() diffs against it
  /// to reinstall only the switches whose next-hop sets changed.
  std::unordered_map<topo::NodeId, std::uint64_t>& l3_signatures() noexcept {
    return l3_signatures_;
  }

 private:
  /// Fence gate for one mutating op arriving at `sw` stamped with `epoch`
  /// (captured when the op was sent).  Counts + reports a refusal.
  bool op_admitted(topo::NodeId sw, std::uint64_t epoch);

  /// Barrier timeout remaining after the request leg already spent one
  /// southbound latency.
  sim::SimTime remaining_timeout() const noexcept {
    return config_.southbound_timeout > config_.southbound_latency
               ? config_.southbound_timeout - config_.southbound_latency
               : sim::SimTime{0};
  }

  void count_rule_install() MIC_EXCLUDES(counters_mu_) {
    MutexLock lock(counters_mu_);
    ++rules_installed_;
  }

  /// One chaos-knob dice roll for a checked-install control message;
  /// counts the drop when it happens.  The RNG lives under the counters
  /// lock so concurrent checked installs cannot corrupt its stream.
  bool roll_control_drop() MIC_EXCLUDES(counters_mu_);

  net::Network& network_;
  HostAddressing addressing_;
  ControllerConfig config_;
  topo::PathEngine paths_;
  std::unordered_map<topo::NodeId, std::uint64_t> l3_signatures_;
  std::uint64_t fence_epoch_ = 0;
  std::uint64_t fenced_ops_ = 0;

  // Install accounting and the chaos drop knob.  Installs are issued from
  // the single-threaded event loop today, but introspection (benchmarks,
  // the audit registry) may read the counters from other threads, so the
  // whole block is guarded; the lock is uncontended on the hot path.
  mutable Mutex counters_mu_;
  std::uint64_t rules_installed_ MIC_GUARDED_BY(counters_mu_) = 0;
  double control_drop_probability_ MIC_GUARDED_BY(counters_mu_) = 0.0;
  std::uint64_t control_drops_ MIC_GUARDED_BY(counters_mu_) = 0;
  Rng control_drop_rng_ MIC_GUARDED_BY(counters_mu_){0xC0117801DD};
};

}  // namespace mic::ctrl
