// SDN controller framework (the simulated Ryu).
//
// The controller owns the global topology view and a lazy shortest-path
// engine (the paper's MC "obtains the global view of the network and
// calculates all-pairs equal-cost shortest paths when initiation" -- we
// keep the same query surface but compute per-destination rows on demand,
// so start-up cost no longer scales with the full all-pairs table).
// Southbound operations (flow-mod, group-mod) are charged a configurable
// control-channel latency; proactive installs at simulation start are
// immediate.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/network.hpp"
#include "switchd/sdn_switch.hpp"
#include "topology/path_engine.hpp"

namespace mic::ctrl {

/// Bidirectional host <-> IP mapping, built by the topology glue.
struct HostAddressing {
  std::unordered_map<std::uint32_t, topo::NodeId> by_ip;
  std::unordered_map<topo::NodeId, net::Ipv4> by_node;

  void add(topo::NodeId host, net::Ipv4 ip) {
    by_ip[ip.value] = host;
    by_node[host] = ip;
  }

  net::Ipv4 ip_of(topo::NodeId host) const {
    const auto it = by_node.find(host);
    MIC_ASSERT_MSG(it != by_node.end(), "host has no IP");
    return it->second;
  }

  topo::NodeId host_of(net::Ipv4 ip) const {
    const auto it = by_ip.find(ip.value);
    return it == by_ip.end() ? topo::kInvalidNode : it->second;
  }
};

struct ControllerConfig {
  /// One-way latency of the out-of-band control channel (flow-mod install,
  /// packet-in delivery).  Mininet's localhost control channel is fast but
  /// not free.
  sim::SimTime southbound_latency = sim::microseconds(200);

  /// Opt-in parallel warm-up of the path engine: when > 0, the controller
  /// precomputes one BFS row per host destination at construction, fanned
  /// across this many threads.  0 (the default) stays fully lazy -- rows
  /// are computed on first use.  Warm-up runs before the single-threaded
  /// event loop starts and is deterministic for any thread count (PE-1).
  unsigned path_warmup_threads = 0;
};

class Controller {
 public:
  Controller(net::Network& network, HostAddressing addressing,
             ControllerConfig config = {});

  virtual ~Controller() = default;

  net::Network& network() noexcept { return network_; }
  const topo::Graph& graph() const noexcept { return network_.graph(); }
  const topo::PathEngine& paths() const noexcept { return paths_; }
  /// Mutable engine access for failure-epoch maintenance (link_failed /
  /// link_restored) and explicit warm-up.
  topo::PathEngine& path_engine() noexcept { return paths_; }
  const HostAddressing& addressing() const noexcept { return addressing_; }
  const ControllerConfig& config() const noexcept { return config_; }

  switchd::SdnSwitch* switch_at(topo::NodeId node);

  /// Install a rule.  `immediate` bypasses the southbound latency (used for
  /// proactive installs at startup).
  void install_rule(topo::NodeId sw, switchd::FlowRule rule,
                    bool immediate = false);
  void install_group(topo::NodeId sw, switchd::GroupEntry group,
                     bool immediate = false);
  /// Remove every rule and group tagged with `cookie` on `sw`.
  void remove_cookie(topo::NodeId sw, std::uint64_t cookie,
                     bool immediate = false);

  /// Route packet-ins from every switch to on_packet_in().
  void subscribe_packet_in();

  /// Sum of every switch's lookup-tier counters: the controller's view of
  /// how much data-plane traffic the exact-match index absorbs vs how much
  /// falls back to the wildcard scan.
  switchd::TableStats aggregate_table_stats();

  /// Called (after the southbound latency) when a switch reports a table
  /// miss or executes a ToController action.
  virtual void on_packet_in(topo::NodeId sw, const net::Packet& packet,
                            topo::PortId in_port);

  std::uint64_t rules_installed() const noexcept { return rules_installed_; }

 private:
  net::Network& network_;
  HostAddressing addressing_;
  ControllerConfig config_;
  topo::PathEngine paths_;
  std::uint64_t rules_installed_ = 0;
};

}  // namespace mic::ctrl
