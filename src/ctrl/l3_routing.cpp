#include "ctrl/l3_routing.hpp"

namespace mic::ctrl {

namespace {

const std::unordered_set<topo::LinkId> kNoFailures;

/// Scratch buffers reused across every (switch, host) pair of an install
/// sweep, so the inner loop stays allocation-free.
struct NextHopScratch {
  std::vector<std::pair<topo::NodeId, topo::PortId>> candidates;
  std::vector<topo::PortId> ports;
  std::vector<std::pair<topo::NodeId, topo::PortId>> local_hosts;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// All equal-cost next-hop ports from `sw` toward host `dst` under the
/// engine's current (failure-filtered) view; sorted by peer id for
/// determinism.  Fills scratch.ports; empty when the destination is
/// unreachable.
void next_hop_ports(const Controller& controller,
                    const topo::PathEngine& paths, topo::NodeId sw,
                    topo::NodeId dst,
                    const std::unordered_set<topo::LinkId>& failed,
                    NextHopScratch& scratch) {
  scratch.candidates.clear();
  scratch.ports.clear();
  const auto& graph = controller.graph();
  const std::uint32_t d = paths.distance(sw, dst);
  if (d == topo::PathEngine::kUnreachable) return;

  for (const auto& adj : graph.neighbors(sw)) {
    if (failed.contains(adj.link)) continue;
    const bool on_shortest =
        adj.peer == dst ||
        (graph.is_switch(adj.peer) && paths.distance(adj.peer, dst) == d - 1);
    if (on_shortest) scratch.candidates.push_back({adj.peer, adj.local_port});
  }
  std::sort(scratch.candidates.begin(), scratch.candidates.end());
  for (const auto& [peer, port] : scratch.candidates) {
    scratch.ports.push_back(port);
  }
}

/// Hosts attached directly to `sw` over live links (it is their edge
/// switch); fills scratch.local_hosts.
void collect_local_hosts(const Controller& controller, topo::NodeId sw,
                         const std::unordered_set<topo::LinkId>& failed,
                         NextHopScratch& scratch) {
  scratch.local_hosts.clear();
  const auto& graph = controller.graph();
  for (const auto& adj : graph.neighbors(sw)) {
    if (graph.is_host(adj.peer) && !failed.contains(adj.link)) {
      scratch.local_hosts.push_back({adj.peer, adj.local_port});
    }
  }
}

/// Signature of the rule set `sw` would receive under `failed`: hashes the
/// live local-host attachments and the per-destination next-hop port sets
/// (everything install_switch_rules derives rules from, label policy and
/// addressing being stable).  Equal signatures => identical rule sets.
std::uint64_t switch_signature(const Controller& controller, topo::NodeId sw,
                               const std::vector<topo::NodeId>& hosts,
                               const std::unordered_set<topo::LinkId>& failed,
                               NextHopScratch& scratch) {
  const topo::PathEngine& paths = controller.paths();
  collect_local_hosts(controller, sw, failed, scratch);

  std::uint64_t h = 0xa7c15ULL;
  for (const auto& [host, port] : scratch.local_hosts) {
    h = mix(h, (static_cast<std::uint64_t>(host) << 32) | port);
  }
  for (std::size_t dst_index = 0; dst_index < hosts.size(); ++dst_index) {
    const topo::NodeId dst = hosts[dst_index];
    bool is_local = false;
    for (const auto& [host, port] : scratch.local_hosts) {
      if (host == dst) {
        h = mix(h, (static_cast<std::uint64_t>(dst_index) << 32) | 0x10000u |
                       port);
        is_local = true;
        break;
      }
    }
    if (is_local) continue;
    next_hop_ports(controller, paths, sw, dst, failed, scratch);
    if (scratch.ports.empty()) continue;  // unreachable: no rules, no hash
    h = mix(h, (static_cast<std::uint64_t>(dst_index) << 32) |
                   scratch.ports.size());
    for (const topo::PortId port : scratch.ports) h = mix(h, port);
  }
  return h;
}

/// Install `sw`'s complete L3 rule set; returns rules + groups issued.
std::uint64_t install_switch_rules(
    Controller& controller, const L3RoutingApp::CfLabelPolicy& policy,
    const std::unordered_set<topo::LinkId>& failed, topo::NodeId sw,
    const std::vector<topo::NodeId>& hosts, NextHopScratch& scratch) {
  const topo::PathEngine& paths = controller.paths();
  collect_local_hosts(controller, sw, failed, scratch);
  std::uint64_t installed = 0;

  for (std::size_t dst_index = 0; dst_index < hosts.size(); ++dst_index) {
    const topo::NodeId dst = hosts[dst_index];
    const net::Ipv4 dst_ip = controller.addressing().ip_of(dst);

    // Egress: deliver to an attached host, stripping the CF tag.
    bool is_local = false;
    for (const auto& [host, port] : scratch.local_hosts) {
      if (host == dst) {
        switchd::FlowRule rule;
        rule.priority = kPriorityEgress;
        rule.match.dst = dst_ip;
        rule.actions = {switchd::PopMpls{}, switchd::Output{port}};
        rule.cookie = kL3Cookie;
        controller.install_rule(sw, std::move(rule), /*immediate=*/true);
        ++installed;
        is_local = true;
        break;
      }
    }
    if (is_local) continue;

    next_hop_ports(controller, paths, sw, dst, failed, scratch);
    const auto& ports = scratch.ports;
    if (ports.empty()) continue;  // unreachable after failures

    // With multiple equal-cost next hops install a SELECT group (ECMP,
    // hashing the 5-tuple), otherwise plain output.
    switchd::Action forward_action = switchd::Output{ports[0]};
    if (ports.size() > 1) {
      switchd::GroupEntry group;
      // L3 group ids live in the high range so they can never collide
      // with the Mimic Controller's multicast groups.
      group.group_id = 0x80000000u | static_cast<std::uint32_t>(dst_index);
      group.type = switchd::GroupType::kSelect;
      group.cookie = kL3Cookie;
      for (const topo::PortId port : ports) {
        group.buckets.push_back({switchd::Output{port}});
      }
      const std::uint32_t group_id = group.group_id;
      controller.install_group(sw, std::move(group), /*immediate=*/true);
      ++installed;
      forward_action = switchd::GroupAction{group_id};
    }

    // Transit: forward on destination alone, any label state.
    {
      switchd::FlowRule rule;
      rule.priority = kPriorityTransit;
      rule.match.dst = dst_ip;
      rule.actions = {forward_action};
      rule.cookie = kL3Cookie;
      controller.install_rule(sw, std::move(rule), /*immediate=*/true);
      ++installed;
    }

    // Ingress tagging: traffic entering fresh from an attached host gets
    // a CF label before leaving the edge.
    for (const auto& [src_host, host_port] : scratch.local_hosts) {
      const net::MplsLabel label = policy(src_host);
      MIC_ASSERT_MSG(label != net::kNoMpls, "CF label must be non-zero");
      switchd::FlowRule rule;
      rule.priority = kPriorityIngressTag;
      rule.match.in_port = host_port;
      rule.match.dst = dst_ip;
      rule.match.require_no_mpls = true;
      rule.actions = {switchd::SetMpls{label}, forward_action};
      rule.cookie = kL3Cookie;
      controller.install_rule(sw, std::move(rule), /*immediate=*/true);
      ++installed;
    }
  }
  return installed;
}

/// True when `sw` holds at least one L3-cookie rule (a rebooted switch's
/// empty table must be refilled even if its signature never changed).
bool has_l3_rules(Controller& controller, topo::NodeId sw) {
  for (const switchd::FlowRule& rule : controller.switch_at(sw)->table().rules()) {
    if (rule.cookie == kL3Cookie) return true;
  }
  return false;
}

}  // namespace

void L3RoutingApp::install(Controller& controller, CfLabelPolicy policy) {
  const auto hosts = controller.graph().hosts();
  NextHopScratch scratch;
  auto& signatures = controller.l3_signatures();
  signatures.clear();
  for (const topo::NodeId sw : controller.graph().switches()) {
    signatures[sw] =
        switch_signature(controller, sw, hosts, kNoFailures, scratch);
    install_switch_rules(controller, policy, kNoFailures, sw, hosts, scratch);
  }
}

void L3RoutingApp::adopt(Controller& controller) {
  const auto hosts = controller.graph().hosts();
  NextHopScratch scratch;
  auto& signatures = controller.l3_signatures();
  signatures.clear();
  for (const topo::NodeId sw : controller.graph().switches()) {
    signatures[sw] =
        switch_signature(controller, sw, hosts, kNoFailures, scratch);
  }
}

RerouteStats L3RoutingApp::reroute_around(
    Controller& controller, CfLabelPolicy policy,
    const std::unordered_set<topo::LinkId>& failed) {
  // Sync the engine's failure epochs with the caller's failure set: newly
  // failed links invalidate only the rows whose shortest-path DAG used
  // them (sub-linear), instead of rebuilding the whole table.
  controller.path_engine().set_failed_links(failed);

  RerouteStats stats;
  stats.reroutes = 1;
  const auto hosts = controller.graph().hosts();
  NextHopScratch scratch;
  auto& signatures = controller.l3_signatures();

  for (const topo::NodeId sw : controller.graph().switches()) {
    ++stats.switches_scanned;
    const std::uint64_t sig =
        switch_signature(controller, sw, hosts, failed, scratch);
    const auto it = signatures.find(sw);
    if (it != signatures.end() && it->second == sig &&
        has_l3_rules(controller, sw)) {
      ++stats.switches_skipped;
      continue;
    }
    controller.remove_cookie(sw, kL3Cookie, /*immediate=*/true);
    stats.rules_installed +=
        install_switch_rules(controller, policy, failed, sw, hosts, scratch);
    signatures[sw] = sig;
    ++stats.switches_reinstalled;
  }
  return stats;
}

}  // namespace mic::ctrl
