#include "ctrl/l3_routing.hpp"

namespace mic::ctrl {

namespace {

const std::unordered_set<topo::LinkId> kNoFailures;

/// Scratch buffers reused across every (switch, host) pair of an install
/// sweep, so the inner loop stays allocation-free.
struct NextHopScratch {
  std::vector<std::pair<topo::NodeId, topo::PortId>> candidates;
  std::vector<topo::PortId> ports;
};

/// All equal-cost next-hop ports from `sw` toward host `dst` under the
/// engine's current (failure-filtered) view; sorted by peer id for
/// determinism.  Fills scratch.ports; empty when the destination is
/// unreachable.
void next_hop_ports(const Controller& controller,
                    const topo::PathEngine& paths, topo::NodeId sw,
                    topo::NodeId dst,
                    const std::unordered_set<topo::LinkId>& failed,
                    NextHopScratch& scratch) {
  scratch.candidates.clear();
  scratch.ports.clear();
  const auto& graph = controller.graph();
  const std::uint32_t d = paths.distance(sw, dst);
  if (d == topo::PathEngine::kUnreachable) return;

  for (const auto& adj : graph.neighbors(sw)) {
    if (failed.contains(adj.link)) continue;
    const bool on_shortest =
        adj.peer == dst ||
        (graph.is_switch(adj.peer) && paths.distance(adj.peer, dst) == d - 1);
    if (on_shortest) scratch.candidates.push_back({adj.peer, adj.local_port});
  }
  std::sort(scratch.candidates.begin(), scratch.candidates.end());
  for (const auto& [peer, port] : scratch.candidates) {
    scratch.ports.push_back(port);
  }
}

void install_rules(Controller& controller,
                   const L3RoutingApp::CfLabelPolicy& policy,
                   const std::unordered_set<topo::LinkId>& failed) {
  const auto& graph = controller.graph();
  const auto hosts = graph.hosts();

  // Distances must reflect the failures, or upstream ECMP keeps hashing
  // flows toward switches that can no longer reach the destination.  The
  // engine's failure epochs already exclude `failed` (reroute_around syncs
  // them), so the same lazily-cached rows serve both the initial install
  // and post-failure reroutes -- no full-table rebuild.
  const topo::PathEngine& paths = controller.paths();

  NextHopScratch scratch;
  std::vector<std::pair<topo::NodeId, topo::PortId>> local_hosts;
  for (const topo::NodeId sw : graph.switches()) {
    // Hosts attached directly to this switch (it is their edge switch).
    local_hosts.clear();
    for (const auto& adj : graph.neighbors(sw)) {
      if (graph.is_host(adj.peer) && !failed.contains(adj.link)) {
        local_hosts.push_back({adj.peer, adj.local_port});
      }
    }

    for (std::size_t dst_index = 0; dst_index < hosts.size(); ++dst_index) {
      const topo::NodeId dst = hosts[dst_index];
      const net::Ipv4 dst_ip = controller.addressing().ip_of(dst);

      // Egress: deliver to an attached host, stripping the CF tag.
      bool is_local = false;
      for (const auto& [host, port] : local_hosts) {
        if (host == dst) {
          switchd::FlowRule rule;
          rule.priority = kPriorityEgress;
          rule.match.dst = dst_ip;
          rule.actions = {switchd::PopMpls{}, switchd::Output{port}};
          rule.cookie = kL3Cookie;
          controller.install_rule(sw, std::move(rule), /*immediate=*/true);
          is_local = true;
          break;
        }
      }
      if (is_local) continue;

      next_hop_ports(controller, paths, sw, dst, failed, scratch);
      const auto& ports = scratch.ports;
      if (ports.empty()) continue;  // unreachable after failures

      // With multiple equal-cost next hops install a SELECT group (ECMP,
      // hashing the 5-tuple), otherwise plain output.
      switchd::Action forward_action = switchd::Output{ports[0]};
      if (ports.size() > 1) {
        switchd::GroupEntry group;
        // L3 group ids live in the high range so they can never collide
        // with the Mimic Controller's multicast groups.
        group.group_id = 0x80000000u | static_cast<std::uint32_t>(dst_index);
        group.type = switchd::GroupType::kSelect;
        group.cookie = kL3Cookie;
        for (const topo::PortId port : ports) {
          group.buckets.push_back({switchd::Output{port}});
        }
        const std::uint32_t group_id = group.group_id;
        controller.install_group(sw, std::move(group), /*immediate=*/true);
        forward_action = switchd::GroupAction{group_id};
      }

      // Transit: forward on destination alone, any label state.
      {
        switchd::FlowRule rule;
        rule.priority = kPriorityTransit;
        rule.match.dst = dst_ip;
        rule.actions = {forward_action};
        rule.cookie = kL3Cookie;
        controller.install_rule(sw, std::move(rule), /*immediate=*/true);
      }

      // Ingress tagging: traffic entering fresh from an attached host gets
      // a CF label before leaving the edge.
      for (const auto& [src_host, host_port] : local_hosts) {
        const net::MplsLabel label = policy(src_host);
        MIC_ASSERT_MSG(label != net::kNoMpls, "CF label must be non-zero");
        switchd::FlowRule rule;
        rule.priority = kPriorityIngressTag;
        rule.match.in_port = host_port;
        rule.match.dst = dst_ip;
        rule.match.require_no_mpls = true;
        rule.actions = {switchd::SetMpls{label}, forward_action};
        rule.cookie = kL3Cookie;
        controller.install_rule(sw, std::move(rule), /*immediate=*/true);
      }
    }
  }
}

}  // namespace

void L3RoutingApp::install(Controller& controller, CfLabelPolicy policy) {
  install_rules(controller, policy, kNoFailures);
}

void L3RoutingApp::reroute_around(
    Controller& controller, CfLabelPolicy policy,
    const std::unordered_set<topo::LinkId>& failed) {
  // Sync the engine's failure epochs with the caller's failure set: newly
  // failed links invalidate only the rows whose shortest-path DAG used
  // them (sub-linear), instead of rebuilding the whole table.
  controller.path_engine().set_failed_links(failed);
  for (const topo::NodeId sw : controller.graph().switches()) {
    controller.remove_cookie(sw, kL3Cookie, /*immediate=*/true);
  }
  install_rules(controller, policy, failed);
}

}  // namespace mic::ctrl
