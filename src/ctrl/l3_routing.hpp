// Proactive L3 shortest-path routing for common (non-mimic) flows.
//
// Per the paper's collision-avoidance design, common flows are tagged with
// MPLS labels from the CF category at the ingress edge switch and the tag
// is popped at the egress edge.  Transit switches forward on destination IP
// alone.  M-flow rules (installed later by the Mimic Controller) sit at a
// higher priority and match exact three-tuples including an MF label, so
// the two rule families can never capture each other's traffic.
#pragma once

#include <functional>
#include <unordered_set>

#include "ctrl/controller.hpp"

namespace mic::ctrl {

/// Priorities shared across the rule families; MIC's rules must outrank the
/// default routing.
inline constexpr std::uint16_t kPriorityMFlow = 100;
inline constexpr std::uint16_t kPriorityDecoyDrop = 110;
inline constexpr std::uint16_t kPriorityEgress = 30;
inline constexpr std::uint16_t kPriorityIngressTag = 25;
inline constexpr std::uint16_t kPriorityTransit = 20;

inline constexpr std::uint64_t kL3Cookie = 0x4c335254ULL;  // "L3RT"

/// TableStats-style counters for selective reroute: how many switches a
/// reroute scanned vs how many actually had their rules churned.
struct RerouteStats {
  std::uint64_t reroutes = 0;             // reroute_around invocations
  std::uint64_t switches_scanned = 0;
  std::uint64_t switches_reinstalled = 0;  // next-hop signature changed
  std::uint64_t switches_skipped = 0;      // signature unchanged; untouched
  std::uint64_t rules_installed = 0;       // rules + groups re-issued

  RerouteStats& operator+=(const RerouteStats& other) noexcept {
    reroutes += other.reroutes;
    switches_scanned += other.switches_scanned;
    switches_reinstalled += other.switches_reinstalled;
    switches_skipped += other.switches_skipped;
    rules_installed += other.rules_installed;
    return *this;
  }
  bool operator==(const RerouteStats&) const noexcept = default;
};

class L3RoutingApp {
 public:
  /// Supplies the CF label to tag a common flow entering at `ingress_host`.
  /// Must never return kNoMpls.  The Mimic Controller supplies a policy
  /// backed by its MPLS space partitioning; standalone tests can use
  /// `fixed_label_policy`.
  using CfLabelPolicy = std::function<net::MplsLabel(topo::NodeId ingress_host)>;

  static net::MplsLabel fixed_label_policy(topo::NodeId) {
    return 0xC0FFEE01u;
  }

  /// Install the full proactive rule set on every switch:
  ///  - ingress edge: per (host port, dst) rule tagging with a CF label and
  ///    forwarding,
  ///  - transit: per-dst forwarding,
  ///  - egress edge: per attached host, pop + deliver.
  static void install(Controller& controller,
                      CfLabelPolicy policy = fixed_label_policy);

  /// Adopt rules already installed by a predecessor: fill the controller's
  /// signature map (no-failure next hops) without touching any switch.  A
  /// standby taking over uses this -- the fabric still holds the old
  /// primary's L3 rules, and reinstalling identical rules would collide;
  /// the first reroute_around after a real failure diffs against these
  /// signatures and churns only what changed.
  static void adopt(Controller& controller);

  /// Fast failover for common flows: recompute every switch's next-hop
  /// signature under the new failure set and reinstall rules *only* on the
  /// switches whose signature changed (or whose table lost its L3 rules,
  /// e.g. after a switch reboot) -- data-plane churn tracks the failure's
  /// blast radius, not the fabric size.  Multi-hop avoidance is not
  /// attempted (equal-cost multipath absorbs single-link failures in Clos
  /// fabrics); destinations that become locally unreachable are skipped.
  static RerouteStats reroute_around(
      Controller& controller, CfLabelPolicy policy,
      const std::unordered_set<topo::LinkId>& failed);
};

}  // namespace mic::ctrl
