#include "ctrl/standby.hpp"

#include "common/log.hpp"

namespace mic::ctrl {

StandbyController::StandbyController(core::MimicController& primary,
                                     core::ControllerDirectory& directory,
                                     StandbyOptions options)
    : primary_(primary),
      directory_(&directory),
      options_(options),
      mc_(std::make_unique<core::MimicController>(
          primary.network(), primary.addressing(), primary.seed(),
          primary.mic_config(), primary.config())) {}

StandbyController::~StandbyController() {
  // take_over() already detached; a follower that dies first must too, or
  // the primary's next commit calls into freed memory.
  if (started_ && !active_) primary_.journal().set_commit_listener(nullptr);
}

void StandbyController::start() {
  if (started_) return;
  started_ = true;
  // Tail the committed stream.  The listener fires at the primary, so the
  // record crosses the replication channel before the replica adopts it;
  // records committed before start() are caught up through the same path.
  primary_.journal().set_commit_listener(
      [this](const core::JournalRecord& record) {
        if (active_) return;  // deposed generations don't replicate
        if (partitioned_) {
          ++records_dropped_partitioned_;
          return;
        }
        mc_->network().simulator().schedule_in(
            options_.replication_lag, [this, record] {
              if (active_) return;
              if (partitioned_) {
                ++records_dropped_partitioned_;
                return;
              }
              replica_.adopt_record(record);
              ++records_replicated_;
            });
      });
  if (options_.heartbeat_interval > 0) schedule_probe();
}

void StandbyController::schedule_probe() {
  if (active_) return;
  mc_->network().simulator().schedule_in(options_.heartbeat_interval, [this] {
    if (active_) return;
    const std::uint64_t seq = ++probe_seq_;
    probe_answered_ = false;
    ++probes_sent_;
    // probe_channel(0, ...) always answers alive=false from a live MC and
    // stays silent from a crashed one -- any reply at all is proof of life.
    primary_.probe_channel(0, nullptr, [this, seq](bool) {
      if (partitioned_) return;  // the reply is lost in the partition
      if (seq == probe_seq_) probe_answered_ = true;
    });
    mc_->network().simulator().schedule_in(
        options_.heartbeat_timeout, [this, seq] { on_probe_timeout(seq); });
  });
}

void StandbyController::on_probe_timeout(std::uint64_t seq) {
  if (active_ || seq != probe_seq_) return;
  if (probe_answered_) {
    missed_ = 0;
  } else {
    ++probes_missed_;
    if (++missed_ >= options_.missed_heartbeat_budget) {
      take_over("missed-heartbeat budget exhausted");
      return;
    }
  }
  schedule_probe();
}

bool StandbyController::take_over(const std::string& reason) {
  if (active_) return false;
  active_ = true;
  log_warn("standby takeover (%s): replica holds %zu records",
           reason.c_str(), replica_.size());

  // Detach from the old primary first: whatever it commits from here on
  // belongs to a deposed generation and must not leak into the replica.
  primary_.journal().set_commit_listener(nullptr);

  // Provisioning-time directory state (client keys, hidden services, CF
  // labels) is shared deployment config, not soft state.
  mc_->mirror_directory_from(primary_);

  // The fabric still holds the old primary's proactive L3 rules; adopt
  // their signatures rather than reinstalling duplicates.
  mc_->adopt_default_routing();

  // Replay the replica through the ordinary crash-recovery path: switch
  // dumps reconcile a stale replica against reality, the journal epoch is
  // bumped, and every resynced switch is fenced under it (so a zombie
  // ex-primary's next op is refused and it steps down).
  if (!mc_->crashed()) mc_->crash();
  takeover_report_ = mc_->recover(replica_);

  if (primary_.failure_detection_enabled()) mc_->enable_failure_detection();
  if (directory_ != nullptr) directory_->fail_over_to(*mc_);
  return true;
}

}  // namespace mic::ctrl
