// Warm-standby Mimic Controller (the paper's Sec VI-C distributed-MC
// deployment, hardened into a failover pair).
//
// The standby owns a second MimicController instance built with the
// primary's seed and config (equal-seeded MAGA registries derive identical
// deployment secrets, so adopted channels decrypt and verify unchanged).
// It tails the primary's *committed* journal records -- the primary ships a
// record only once the attached JournalStore has made its bytes durable,
// so the replica can never know a channel the primary's disk forgot -- and
// probes the primary's liveness over the control channel.  When the
// missed-heartbeat budget is exhausted it takes over: the replica is
// replayed through the ordinary recover() path (switch dumps reconcile the
// possibly-stale image against what is actually installed), every switch
// is fenced under the new journal epoch so a zombie ex-primary's ops are
// refused, and the ControllerDirectory repoints clients at the new
// primary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/mimic_controller.hpp"

namespace mic::ctrl {

struct StandbyOptions {
  /// One-way latency of the replication stream (primary commit -> record
  /// adopted into the standby's replica).
  sim::SimTime replication_lag = sim::microseconds(300);

  /// Liveness-probe period.  0 disables probing entirely: the standby only
  /// follows the journal stream and never takes over on its own (the
  /// bit-identical replay harness runs in this mode; take_over() can still
  /// be invoked explicitly).
  sim::SimTime heartbeat_interval = sim::milliseconds(2);

  /// How long one probe waits for the primary's reply before counting as
  /// missed.  Must exceed two control-channel round trips.
  sim::SimTime heartbeat_timeout = sim::milliseconds(1);

  /// Consecutive missed probes before the standby declares the primary
  /// dead and takes over.
  int missed_heartbeat_budget = 3;
};

class StandbyController {
 public:
  /// Builds the standby MC from the primary's network, addressing, seed and
  /// configs.  Nothing is subscribed until start().
  StandbyController(core::MimicController& primary,
                    core::ControllerDirectory& directory,
                    StandbyOptions options = {});

  /// Detaches the commit listener from the primary's journal if this
  /// standby is still subscribed (started but never took over), so a
  /// primary that outlives its standby never invokes a dangling callback.
  ~StandbyController();

  /// Subscribe to the primary's commit stream (already-committed records
  /// are caught up immediately, lagged by replication_lag) and begin the
  /// heartbeat probe loop (unless heartbeat_interval is 0).
  void start();

  /// Promote the standby now: mirror the directory, fence + recover from
  /// the replica, adopt the proactive routing, repoint the directory and
  /// detach from the old primary's stream.  Idempotent; returns false if
  /// this standby already took over.
  bool take_over(const std::string& reason);

  /// Simulate a control-network partition between standby and primary:
  /// probe replies are ignored (so the budget runs out and the standby
  /// takes over even though the primary still runs -- the zombie scenario)
  /// and replicated records stop being adopted.
  void set_partitioned(bool partitioned) noexcept {
    partitioned_ = partitioned;
  }

  /// Test hook: drop the last `n` replica records, modelling a standby
  /// whose replication stream lagged further than the failure.
  void drop_replica_tail(std::size_t n) { replica_.truncate_tail(n); }

  /// The standby's controller instance (the new primary after takeover).
  core::MimicController& mc() noexcept { return *mc_; }
  const core::MimicController& mc() const noexcept { return *mc_; }
  const core::ChannelJournal& replica() const noexcept { return replica_; }

  bool active() const noexcept { return active_; }
  const core::MimicController::RecoveryReport& takeover_report() const {
    return takeover_report_;
  }

  std::uint64_t records_replicated() const noexcept {
    return records_replicated_;
  }
  std::uint64_t records_dropped_partitioned() const noexcept {
    return records_dropped_partitioned_;
  }
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }
  std::uint64_t probes_missed() const noexcept { return probes_missed_; }

 private:
  void schedule_probe();
  void on_probe_timeout(std::uint64_t seq);

  core::MimicController& primary_;
  core::ControllerDirectory* directory_;
  StandbyOptions options_;
  std::unique_ptr<core::MimicController> mc_;
  core::ChannelJournal replica_;

  bool started_ = false;
  bool active_ = false;
  bool partitioned_ = false;
  int missed_ = 0;
  std::uint64_t probe_seq_ = 0;
  bool probe_answered_ = false;
  std::uint64_t records_replicated_ = 0;
  std::uint64_t records_dropped_partitioned_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_missed_ = 0;
  core::MimicController::RecoveryReport takeover_report_;
};

}  // namespace mic::ctrl
