// Network address types.
#pragma once

#include <cstdint>
#include <string>

namespace mic::net {

/// IPv4 address in host byte order.
struct Ipv4 {
  std::uint32_t value = 0;

  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t v) noexcept : value(v) {}
  constexpr Ipv4(int a, int b, int c, int d) noexcept
      : value((static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) |
              static_cast<std::uint32_t>(d)) {}

  constexpr bool operator==(const Ipv4&) const noexcept = default;
  constexpr auto operator<=>(const Ipv4&) const noexcept = default;

  constexpr int octet(int i) const noexcept {
    return static_cast<int>((value >> (8 * (3 - i))) & 0xff);
  }

  std::string str() const {
    return std::to_string(octet(0)) + "." + std::to_string(octet(1)) + "." +
           std::to_string(octet(2)) + "." + std::to_string(octet(3));
  }
};

using L4Port = std::uint16_t;

/// MPLS label.  Real MPLS labels are 20 bits; MIC's MAGA partitions a
/// 32-bit label value that a deployment would carry as a two-label stack
/// (see DESIGN.md).  We model the combined 32-bit value directly.
using MplsLabel = std::uint32_t;

inline constexpr MplsLabel kNoMpls = 0;

struct Ipv4Hash {
  std::size_t operator()(const Ipv4& ip) const noexcept {
    // splitmix-style scramble
    std::uint64_t z = ip.value + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace mic::net
