#include "net/network.hpp"

namespace mic::net {

Network::Network(sim::Simulator& simulator, const topo::Graph& graph,
                 LinkConfig default_link, std::uint64_t loss_seed)
    : sim_(simulator), graph_(graph), loss_rng_(loss_seed) {
  devices_.resize(graph.size());
  directions_.resize(2 * graph.link_count());

  // Discover both directions of every link from the adjacency lists.
  for (topo::NodeId n = 0; n < graph.size(); ++n) {
    for (const auto& adj : graph.neighbors(n)) {
      // Each link appears twice (once per endpoint); record the direction
      // n -> adj.peer.  Slot 0 of a link is the direction leaving the lower
      // node id, slot 1 the reverse, which makes indexing deterministic.
      const std::size_t slot = n < adj.peer ? 0 : 1;
      Direction& dir = directions_[2 * adj.link + slot];
      dir.from = n;
      dir.to = adj.peer;
      dir.to_port = adj.peer_port;
      dir.config = default_link;
    }
  }
}

void Network::set_device(topo::NodeId node, std::unique_ptr<Device> device) {
  MIC_ASSERT(node < devices_.size());
  device->attach(this, node);
  devices_[node] = std::move(device);
}

void Network::configure_link(topo::LinkId link, LinkConfig config) {
  MIC_ASSERT(2 * link + 1 < directions_.size());
  directions_[2 * link].config = config;
  directions_[2 * link + 1].config = config;
}

void Network::set_link_up(topo::LinkId link, bool up) {
  MIC_ASSERT(2 * link + 1 < directions_.size());
  if (directions_[2 * link].up == up) return;  // no state change, no event
  directions_[2 * link].up = up;
  directions_[2 * link + 1].up = up;

  // Loss of signal (or its return) is visible at both endpoints' PHYs.
  // Each direction's to_port is the receiving endpoint's port, so the two
  // slots between them cover both attachment points.
  for (const std::size_t slot : {2 * link, 2 * link + 1}) {
    const Direction& dir = directions_[slot];
    if (Device* device = devices_[dir.to].get()) {
      device->on_port_status(dir.to_port, up);
    }
  }
}

void Network::add_link_tap(topo::LinkId link, Tap tap) {
  MIC_ASSERT(2 * link + 1 < directions_.size());
  directions_[2 * link].taps.push_back(tap);
  directions_[2 * link + 1].taps.push_back(std::move(tap));
}

void Network::add_global_tap(Tap tap) { global_taps_.push_back(std::move(tap)); }

bool Network::transmit(topo::NodeId node, topo::PortId out_port,
                       Packet packet) {
  MIC_ASSERT(out_port < graph_.port_count(node));
  const topo::Adjacency& adj = graph_.out_port(node, out_port);
  const std::size_t slot = node < adj.peer ? 0 : 1;
  Direction& dir = directions_[2 * adj.link + slot];

  if (!dir.up) {
    ++dir.stats.drops;
    return false;
  }
  if (dir.config.random_drop_probability > 0.0 &&
      loss_rng_.chance(dir.config.random_drop_probability)) {
    ++dir.stats.drops;
    return false;
  }

  const sim::SimTime now = sim_.now();

  // Lazily retire bytes whose serialization finished: this replaces the
  // per-packet tx_done event the pre-wheel engine scheduled.  Occupancy is
  // only ever read right here, so draining the released prefix before the
  // capacity check is equivalent to the eager decrement.
  while (dir.released < dir.in_flight.size() &&
         dir.in_flight[dir.released].tx_done <= now) {
    MIC_ASSERT(dir.queued_bytes >= dir.in_flight[dir.released].wire);
    dir.queued_bytes -= dir.in_flight[dir.released].wire;
    ++dir.released;
  }

  const std::uint32_t wire = packet.wire_bytes();
  if (dir.queued_bytes + wire > dir.config.queue_capacity_bytes) {
    ++dir.stats.drops;
    return false;
  }

  const sim::SimTime start = now > dir.busy_until ? now : dir.busy_until;
  const sim::SimTime tx_done =
      start + sim::transmission_delay(wire, dir.config.bandwidth_bps);
  const sim::SimTime arrival = tx_done + dir.config.propagation_delay;

  dir.busy_until = tx_done;
  dir.queued_bytes += wire;
  ++dir.stats.packets;
  dir.stats.bytes += wire;

  // Taps observe at transmission start: the adversary sees the wire.
  for (const auto& tap : dir.taps) tap(adj.link, node, adj.peer, packet, start);
  for (const auto& tap : global_taps_) {
    tap(adj.link, node, adj.peer, packet, start);
  }

  dir.in_flight.push_back(InFlight{std::move(packet), tx_done, arrival, wire});
  // One delivery event per packet, scheduled HERE so the insertion
  // sequence -- and with it the firing order among same-nanosecond events
  // anywhere in the simulation -- is exactly what the pre-batching engine
  // produced.  (A single chained event per direction was measured to
  // reorder same-time ties and change drop decisions; see DESIGN.md §3f.)
  const auto index = static_cast<std::size_t>(&dir - directions_.data());
  sim_.schedule_at(arrival, [this, index] { deliver(index); });
  return true;
}

void Network::deliver(std::size_t index) {
  Direction& dir = directions_[index];
  const sim::SimTime now = sim_.now();
  // Drain the whole ripe prefix: arrivals are strictly increasing per
  // direction, so normally exactly one packet is ripe per event, but the
  // burst FIFO keeps delivery robust if a callback re-enters transmit().
  while (!dir.in_flight.empty() && dir.in_flight.front().arrival <= now) {
    InFlight entry = std::move(dir.in_flight.front());
    dir.in_flight.pop_front();
    if (dir.released > 0) {
      --dir.released;  // occupancy already debited by a transmit()
    } else {
      MIC_ASSERT(dir.queued_bytes >= entry.wire);  // tx_done <= arrival <= now
      dir.queued_bytes -= entry.wire;
    }
    Device* device = devices_[dir.to].get();
    MIC_ASSERT_MSG(device != nullptr, "packet arrived at node without device");
    device->receive(entry.packet, dir.to_port);
  }
}

std::uint64_t Network::total_drops() const noexcept {
  std::uint64_t drops = 0;
  for (const auto& dir : directions_) drops += dir.stats.drops;
  return drops;
}

}  // namespace mic::net
