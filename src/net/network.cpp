#include "net/network.hpp"

#include <algorithm>

#include "sim/sharded_simulator.hpp"

namespace mic::net {

void Device::attach(Network* network, topo::NodeId node) {
  network_ = network;
  node_ = node;
  local_sim_ = &network->node_simulator(node);
}

Network::Network(sim::Simulator& simulator, const topo::Graph& graph,
                 LinkConfig default_link, std::uint64_t loss_seed)
    : sim_(simulator), graph_(graph), loss_rng_(loss_seed) {
  devices_.resize(graph.size());
  node_sim_.assign(graph.size(), &sim_);
  directions_.resize(2 * graph.link_count());

  // Discover both directions of every link from the adjacency lists.
  for (topo::NodeId n = 0; n < graph.size(); ++n) {
    for (const auto& adj : graph.neighbors(n)) {
      // Each link appears twice (once per endpoint); record the direction
      // n -> adj.peer.  Slot 0 of a link is the direction leaving the lower
      // node id, slot 1 the reverse, which makes indexing deterministic.
      const std::size_t slot = n < adj.peer ? 0 : 1;
      Direction& dir = directions_[2 * adj.link + slot];
      dir.from = n;
      dir.to = adj.peer;
      dir.to_port = adj.peer_port;
      dir.config = default_link;
      dir.deliver_sim = &sim_;
    }
  }
}

Network::Network(sim::ShardedSimulator& sharded, const topo::Graph& graph,
                 LinkConfig default_link, std::uint64_t loss_seed)
    : Network(sharded.global(), graph, default_link, loss_seed) {
  sharded_ = &sharded;
}

void Network::set_shard_map(const std::vector<int>& node_shard) {
  MIC_ASSERT_MSG(sharded_ != nullptr,
                 "set_shard_map needs the sharded constructor");
  MIC_ASSERT(node_shard.size() == devices_.size());
  sim::ShardedSimulator& sharded = *sharded_;
  if (!sharded.coordinated()) return;  // one shard: the classic single engine
  for (std::size_t n = 0; n < node_sim_.size(); ++n) {
    const int shard = node_shard[n];
    MIC_ASSERT(shard >= 0 && shard < sharded.shards());
    node_sim_[n] = &sharded.engine(shard);
  }
  for (auto& dir : directions_) {
    dir.deliver_sim = node_sim_[dir.to];
    dir.remote = node_shard[dir.from] != node_shard[dir.to];
  }
  mailboxes_.assign(static_cast<std::size_t>(sharded.shards()), {});
  refresh_shard_constraints();
  sharded.set_parallel_veto(
      [this] { return tap_count_ > 0 || lossy_dirs_ > 0; });
  sharded.set_barrier_hook([this] { flush_mailboxes(); });
}

void Network::refresh_shard_constraints() {
  if (sharded_ == nullptr || !sharded_->coordinated()) return;
  sim::SimTime lookahead = sim::kNever;
  lossy_dirs_ = 0;
  for (const auto& dir : directions_) {
    if (dir.config.random_drop_probability > 0.0) ++lossy_dirs_;
    if (dir.remote) {
      lookahead = std::min(lookahead, dir.config.propagation_delay);
    }
  }
  sharded_->set_lookahead(lookahead == sim::kNever ? 0 : lookahead);
}

void Network::set_device(topo::NodeId node, std::unique_ptr<Device> device) {
  MIC_ASSERT(node < devices_.size());
  device->attach(this, node);
  devices_[node] = std::move(device);
}

void Network::configure_link(topo::LinkId link, LinkConfig config) {
  sim::ShardedSimulator::assert_serial("configure_link inside a window");
  MIC_ASSERT(2 * link + 1 < directions_.size());
  directions_[2 * link].config = config;
  directions_[2 * link + 1].config = config;
  refresh_shard_constraints();  // propagation delay shapes the lookahead
}

void Network::set_link_up(topo::LinkId link, bool up) {
  sim::ShardedSimulator::assert_serial("set_link_up inside a window");
  MIC_ASSERT(2 * link + 1 < directions_.size());
  if (directions_[2 * link].up == up) return;  // no state change, no event
  directions_[2 * link].up = up;
  directions_[2 * link + 1].up = up;

  // Loss of signal (or its return) is visible at both endpoints' PHYs.
  // Each direction's to_port is the receiving endpoint's port, so the two
  // slots between them cover both attachment points.
  for (const std::size_t slot : {2 * link, 2 * link + 1}) {
    const Direction& dir = directions_[slot];
    if (Device* device = devices_[dir.to].get()) {
      device->on_port_status(dir.to_port, up);
    }
  }
}

void Network::add_link_tap(topo::LinkId link, Tap tap) {
  sim::ShardedSimulator::assert_serial("add_link_tap inside a window");
  MIC_ASSERT(2 * link + 1 < directions_.size());
  directions_[2 * link].taps.push_back(tap);
  directions_[2 * link + 1].taps.push_back(std::move(tap));
  tap_count_ += 2;  // a tapped workload is observed: stay serial-exact
}

void Network::add_global_tap(Tap tap) {
  sim::ShardedSimulator::assert_serial("add_global_tap inside a window");
  global_taps_.push_back(std::move(tap));
  ++tap_count_;
}

bool Network::transmit(topo::NodeId node, topo::PortId out_port,
                       Packet packet) {
  MIC_ASSERT(out_port < graph_.port_count(node));
  const topo::Adjacency& adj = graph_.out_port(node, out_port);
  const std::size_t slot = node < adj.peer ? 0 : 1;
  Direction& dir = directions_[2 * adj.link + slot];

  if (!dir.up) {
    ++dir.stats.drops;
    return false;
  }
  if (dir.config.random_drop_probability > 0.0 &&
      loss_rng_.chance(dir.config.random_drop_probability)) {
    ++dir.stats.drops;
    return false;
  }

  // The sender's clock: its shard's engine under sharding (inside a
  // parallel window the global clock lags), otherwise the one engine.
  const sim::SimTime now = node_sim_[node]->now();

  // Lazily retire bytes whose serialization finished: this replaces the
  // per-packet tx_done event the pre-wheel engine scheduled.  Occupancy is
  // only ever read right here, so draining the released prefix before the
  // capacity check is equivalent to the eager decrement.
  if (dir.remote) {
    while (!dir.pending_release.empty() &&
           dir.pending_release.front().tx_done <= now) {
      MIC_ASSERT(dir.queued_bytes >= dir.pending_release.front().wire);
      dir.queued_bytes -= dir.pending_release.front().wire;
      dir.pending_release.pop_front();
    }
  }
  while (dir.released < dir.in_flight.size() &&
         dir.in_flight[dir.released].tx_done <= now) {
    MIC_ASSERT(dir.queued_bytes >= dir.in_flight[dir.released].wire);
    dir.queued_bytes -= dir.in_flight[dir.released].wire;
    ++dir.released;
  }

  const std::uint32_t wire = packet.wire_bytes();
  if (dir.queued_bytes + wire > dir.config.queue_capacity_bytes) {
    ++dir.stats.drops;
    return false;
  }

  const sim::SimTime start = now > dir.busy_until ? now : dir.busy_until;
  const sim::SimTime tx_done =
      start + sim::transmission_delay(wire, dir.config.bandwidth_bps);
  const sim::SimTime arrival = tx_done + dir.config.propagation_delay;

  dir.busy_until = tx_done;
  dir.queued_bytes += wire;
  ++dir.stats.packets;
  dir.stats.bytes += wire;

  // Taps observe at transmission start: the adversary sees the wire.
  for (const auto& tap : dir.taps) tap(adj.link, node, adj.peer, packet, start);
  for (const auto& tap : global_taps_) {
    tap(adj.link, node, adj.peer, packet, start);
  }

  const auto index = static_cast<std::size_t>(&dir - directions_.data());
  if (dir.remote) {
    // Cross-shard: the sender keeps only what occupancy needs; the packet
    // goes to the receiver's engine -- staged in this shard's mailbox when
    // we are inside a parallel window (the barrier hands it over in
    // canonical order), scheduled directly otherwise.  In serial-exact
    // mode the direct path assigns the delivery the very same shared seq
    // the single-engine transmit would have, preserving bit-identity.
    dir.pending_release.push_back(PendingRelease{tx_done, wire});
    const int shard = sim::ShardedSimulator::current_shard();
    if (shard >= 0) {
      mailboxes_[static_cast<std::size_t>(shard)].push_back(
          Staged{arrival, index, std::move(packet)});
    } else {
      enqueue_remote_arrival(index, arrival, std::move(packet));
    }
    return true;
  }
  dir.in_flight.push_back(InFlight{std::move(packet), tx_done, arrival, wire});
  // One delivery event per packet, scheduled HERE so the insertion
  // sequence -- and with it the firing order among same-nanosecond events
  // anywhere in the simulation -- is exactly what the pre-batching engine
  // produced.  (A single chained event per direction was measured to
  // reorder same-time ties and change drop decisions; see DESIGN.md §3f.)
  dir.deliver_sim->schedule_at(arrival, [this, index] { deliver(index); });
  return true;
}

void Network::deliver(std::size_t index) {
  Direction& dir = directions_[index];
  const sim::SimTime now = dir.deliver_sim->now();
  // Drain the whole ripe prefix: arrivals are strictly increasing per
  // direction, so normally exactly one packet is ripe per event, but the
  // burst FIFO keeps delivery robust if a callback re-enters transmit().
  while (!dir.in_flight.empty() && dir.in_flight.front().arrival <= now) {
    InFlight entry = std::move(dir.in_flight.front());
    dir.in_flight.pop_front();
    if (dir.released > 0) {
      --dir.released;  // occupancy already debited by a transmit()
    } else {
      MIC_ASSERT(dir.queued_bytes >= entry.wire);  // tx_done <= arrival <= now
      dir.queued_bytes -= entry.wire;
    }
    Device* device = devices_[dir.to].get();
    MIC_ASSERT_MSG(device != nullptr, "packet arrived at node without device");
    device->receive(entry.packet, dir.to_port);
  }
}

void Network::deliver_remote(std::size_t index) {
  Direction& dir = directions_[index];
  const sim::SimTime now = dir.deliver_sim->now();
  while (!dir.remote_in.empty() && dir.remote_in.front().arrival <= now) {
    const Packet packet = std::move(dir.remote_in.front().packet);
    dir.remote_in.pop_front();
    Device* device = devices_[dir.to].get();
    MIC_ASSERT_MSG(device != nullptr, "packet arrived at node without device");
    device->receive(packet, dir.to_port);
  }
}

void Network::enqueue_remote_arrival(std::size_t index, sim::SimTime arrival,
                                     Packet packet) {
  Direction& dir = directions_[index];
  dir.remote_in.push_back(RemoteInFlight{std::move(packet), arrival});
  dir.deliver_sim->schedule_at(arrival, [this, index] { deliver_remote(index); });
}

void Network::flush_mailboxes() {
  std::size_t total = 0;
  for (const auto& box : mailboxes_) total += box.size();
  if (total == 0) return;
  // Concatenate in shard order, then stable-sort on (arrival, direction):
  // a direction has exactly one sender shard, so ties inside a direction
  // stay in that shard's FIFO order -- the canonical exchange order.
  std::vector<Staged> staged;
  staged.reserve(total);
  for (auto& box : mailboxes_) {
    for (auto& entry : box) staged.push_back(std::move(entry));
    box.clear();
  }
  std::stable_sort(staged.begin(), staged.end(),
                   [](const Staged& a, const Staged& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.direction < b.direction;
                   });
  for (auto& entry : staged) {
    enqueue_remote_arrival(entry.direction, entry.arrival,
                           std::move(entry.packet));
  }
}

std::uint64_t Network::total_drops() const noexcept {
  std::uint64_t drops = 0;
  for (const auto& dir : directions_) drops += dir.stats.drops;
  return drops;
}

}  // namespace mic::net
