// The simulated fabric: devices (hosts, switches) attached to the links of
// a topology graph, with per-link bandwidth, propagation delay and drop-tail
// queues.
//
// Devices implement `Device::receive(packet, in_port)` and send with
// `Network::transmit(node, out_port, packet)`.  Observation taps can be
// attached to any link; they see every packet *as it appears on the wire*,
// which is exactly the adversary's vantage in the paper's threat model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/packet.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "topology/graph.hpp"

namespace mic::net {

class Network;

/// Base class for anything attached to the fabric.
class Device {
 public:
  virtual ~Device() = default;

  /// A packet has fully arrived on `in_port`.
  virtual void receive(const Packet& packet, topo::PortId in_port) = 0;

  /// The link attached to `port` changed state (loss of signal / signal
  /// restored).  The default ignores it; SDN switches forward it to the
  /// controller as an async port-status notification.
  virtual void on_port_status(topo::PortId port, bool up) {
    (void)port;
    (void)up;
  }

  void attach(Network* network, topo::NodeId node) {
    network_ = network;
    node_ = node;
  }

  topo::NodeId node_id() const noexcept { return node_; }

  sim::CpuMeter& cpu() noexcept { return cpu_; }
  const sim::CpuMeter& cpu() const noexcept { return cpu_; }

 protected:
  Network* network_ = nullptr;
  topo::NodeId node_ = topo::kInvalidNode;
  sim::CpuMeter cpu_;
};

struct LinkConfig {
  std::uint64_t bandwidth_bps = 1'000'000'000;  // 1 Gb/s, Mininet default
  sim::SimTime propagation_delay = sim::microseconds(5);
  std::uint32_t queue_capacity_bytes = 150'000;  // ~100 MTU-sized packets
  /// Random early corruption/loss injection for robustness tests.
  double random_drop_probability = 0.0;
};

/// Counters for one link direction.
struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
};

class Network {
 public:
  /// Tap callback: (link, from_node, to_node, packet, time).
  using Tap = std::function<void(topo::LinkId, topo::NodeId, topo::NodeId,
                                 const Packet&, sim::SimTime)>;

  Network(sim::Simulator& simulator, const topo::Graph& graph,
          LinkConfig default_link = {}, std::uint64_t loss_seed = 0x10552EED);

  sim::Simulator& simulator() noexcept { return sim_; }
  const topo::Graph& graph() const noexcept { return graph_; }

  /// Install the device serving `node`.  Must be called for every node that
  /// will receive traffic.
  void set_device(topo::NodeId node, std::unique_ptr<Device> device);

  Device* device(topo::NodeId node) noexcept {
    return devices_[node].get();
  }

  /// Queue a packet for transmission out of `node`'s port `out_port`.
  /// Returns false if the egress queue is full (packet dropped).
  bool transmit(topo::NodeId node, topo::PortId out_port, Packet packet);

  /// Override parameters for one link (both directions).
  void configure_link(topo::LinkId link, LinkConfig config);

  /// Fail or restore a link (both directions).  Packets sent into a failed
  /// link are silently lost, exactly like a yanked cable.  Both endpoint
  /// devices are told via `Device::on_port_status` (loss of signal is
  /// observable at the PHY), which is what failure detection builds on.
  void set_link_up(topo::LinkId link, bool up);
  bool link_up(topo::LinkId link) const {
    return directions_[2 * link].up;
  }

  /// Attach an observation tap to one link (both directions), or to all
  /// links with `add_global_tap`.
  void add_link_tap(topo::LinkId link, Tap tap);
  void add_global_tap(Tap tap);

  const LinkStats& stats(topo::LinkId link, int direction) const {
    return directions_[2 * link + static_cast<std::size_t>(direction)].stats;
  }

  std::uint64_t total_drops() const noexcept;

  /// Fresh packet id for tracing.
  std::uint64_t next_packet_id() noexcept { return ++packet_id_; }

 private:
  // One serialized-and-propagating packet on a direction.  Queue occupancy
  // ends at tx_done (the last bit left the egress buffer); the receiving
  // device sees the packet at arrival = tx_done + propagation.
  struct InFlight {
    Packet packet;
    sim::SimTime tx_done = 0;
    sim::SimTime arrival = 0;
    std::uint32_t wire = 0;
  };

  struct Direction {
    topo::NodeId from = topo::kInvalidNode;
    topo::NodeId to = topo::kInvalidNode;
    topo::PortId to_port = topo::kInvalidPort;
    LinkConfig config;
    bool up = true;
    sim::SimTime busy_until = 0;
    std::uint32_t queued_bytes = 0;
    LinkStats stats;
    std::vector<Tap> taps;
    // Burst FIFO: every transmitted-but-undelivered packet, in wire order
    // (arrival times are strictly increasing per direction).  Packets ride
    // here instead of inside per-event closures, and queued_bytes is
    // retired lazily from the front (see transmit()), so a packet costs
    // ONE capture-free scheduler event -- the pre-wheel engine paid two,
    // one of them carrying the packet by value.
    std::deque<InFlight> in_flight;
    std::size_t released = 0;  // prefix of in_flight already debited
  };

  /// Delivers every in_flight packet whose arrival time has been reached
  /// on directions_[index], then re-arms the chained delivery event.
  void deliver(std::size_t index);

  // directions_[2*link + 0] is endpoint-a -> endpoint-b.
  std::vector<Direction> directions_;

  sim::Simulator& sim_;
  const topo::Graph& graph_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Tap> global_taps_;
  std::uint64_t packet_id_ = 0;
  Rng loss_rng_;
};

}  // namespace mic::net
