// The simulated fabric: devices (hosts, switches) attached to the links of
// a topology graph, with per-link bandwidth, propagation delay and drop-tail
// queues.
//
// Devices implement `Device::receive(packet, in_port)` and send with
// `Network::transmit(node, out_port, packet)`.  Observation taps can be
// attached to any link; they see every packet *as it appears on the wire*,
// which is exactly the adversary's vantage in the paper's threat model.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/packet.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "topology/graph.hpp"

namespace mic::sim {
class ShardedSimulator;
}

namespace mic::net {

class Network;

/// Base class for anything attached to the fabric.
class Device {
 public:
  virtual ~Device() = default;

  /// A packet has fully arrived on `in_port`.
  virtual void receive(const Packet& packet, topo::PortId in_port) = 0;

  /// The link attached to `port` changed state (loss of signal / signal
  /// restored).  The default ignores it; SDN switches forward it to the
  /// controller as an async port-status notification.
  virtual void on_port_status(topo::PortId port, bool up) {
    (void)port;
    (void)up;
  }

  void attach(Network* network, topo::NodeId node);

  topo::NodeId node_id() const noexcept { return node_; }

  /// The engine this device's events run on: its shard's engine under a
  /// sharded simulation, otherwise the one global engine.  Data-path timers
  /// and CPU charges MUST use this clock -- the global engine is frozen
  /// while a parallel window executes.
  sim::Simulator& local_sim() noexcept { return *local_sim_; }

  sim::CpuMeter& cpu() noexcept { return cpu_; }
  const sim::CpuMeter& cpu() const noexcept { return cpu_; }

 protected:
  Network* network_ = nullptr;
  topo::NodeId node_ = topo::kInvalidNode;
  sim::Simulator* local_sim_ = nullptr;
  sim::CpuMeter cpu_;
};

struct LinkConfig {
  std::uint64_t bandwidth_bps = 1'000'000'000;  // 1 Gb/s, Mininet default
  sim::SimTime propagation_delay = sim::microseconds(5);
  std::uint32_t queue_capacity_bytes = 150'000;  // ~100 MTU-sized packets
  /// Random early corruption/loss injection for robustness tests.
  double random_drop_probability = 0.0;
};

/// Counters for one link direction.
struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
};

class Network {
 public:
  /// Tap callback: (link, from_node, to_node, packet, time).
  using Tap = std::function<void(topo::LinkId, topo::NodeId, topo::NodeId,
                                 const Packet&, sim::SimTime)>;

  Network(sim::Simulator& simulator, const topo::Graph& graph,
          LinkConfig default_link = {}, std::uint64_t loss_seed = 0x10552EED);

  /// Sharded fabric: devices and links spread over the coordinator's
  /// engines.  Which device lives where is decided later by
  /// `set_shard_map`; until then everything runs on the global engine.
  Network(sim::ShardedSimulator& sharded, const topo::Graph& graph,
          LinkConfig default_link = {}, std::uint64_t loss_seed = 0x10552EED);

  /// The global/control engine -- the one `run_until` is driven through.
  sim::Simulator& simulator() noexcept { return sim_; }
  /// The engine `node`'s device runs on (== simulator() unless sharded).
  sim::Simulator& node_simulator(topo::NodeId node) noexcept {
    return *node_sim_[node];
  }

  /// Assign every node to a device shard in [0, sharded.shards()) and wire
  /// the cross-shard machinery: per-direction delivery engines, the
  /// conservative lookahead window (min propagation delay over inter-shard
  /// links), the window veto (taps / lossy links force serial-exact
  /// execution) and the barrier hook that exchanges staged cross-shard
  /// packets in canonical (arrival, direction, FIFO) order.  Call before
  /// `set_device` so devices cache the right engine.
  void set_shard_map(const std::vector<int>& node_shard);

  const topo::Graph& graph() const noexcept { return graph_; }

  /// Install the device serving `node`.  Must be called for every node that
  /// will receive traffic.
  void set_device(topo::NodeId node, std::unique_ptr<Device> device);

  Device* device(topo::NodeId node) noexcept {
    return devices_[node].get();
  }

  /// Queue a packet for transmission out of `node`'s port `out_port`.
  /// Returns false if the egress queue is full (packet dropped).
  bool transmit(topo::NodeId node, topo::PortId out_port, Packet packet);

  /// Override parameters for one link (both directions).
  void configure_link(topo::LinkId link, LinkConfig config);

  /// Fail or restore a link (both directions).  Packets sent into a failed
  /// link are silently lost, exactly like a yanked cable.  Both endpoint
  /// devices are told via `Device::on_port_status` (loss of signal is
  /// observable at the PHY), which is what failure detection builds on.
  void set_link_up(topo::LinkId link, bool up);
  bool link_up(topo::LinkId link) const {
    return directions_[2 * link].up;
  }

  /// Attach an observation tap to one link (both directions), or to all
  /// links with `add_global_tap`.
  void add_link_tap(topo::LinkId link, Tap tap);
  void add_global_tap(Tap tap);

  const LinkStats& stats(topo::LinkId link, int direction) const {
    return directions_[2 * link + static_cast<std::size_t>(direction)].stats;
  }

  std::uint64_t total_drops() const noexcept;

  /// Fresh packet id for tracing.  Relaxed atomic: ids only need to be
  /// unique; inside parallel windows several shards mint them concurrently
  /// (trace hashes never fold the id, so this cannot perturb fingerprints).
  std::uint64_t next_packet_id() noexcept {
    return packet_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  // One serialized-and-propagating packet on a direction.  Queue occupancy
  // ends at tx_done (the last bit left the egress buffer); the receiving
  // device sees the packet at arrival = tx_done + propagation.
  struct InFlight {
    Packet packet;
    sim::SimTime tx_done = 0;
    sim::SimTime arrival = 0;
    std::uint32_t wire = 0;
  };

  // Cross-shard machinery.  A direction whose endpoints live on different
  // shards splits the classic in_flight bookkeeping in two: the sender's
  // shard retires queue occupancy from pending_release (only ever read by
  // transmit(), so lazy draining there is exact), while the packet itself
  // travels to the receiver's shard -- directly in serial context, or via a
  // per-shard mailbox when staged inside a parallel window.
  struct PendingRelease {
    sim::SimTime tx_done = 0;
    std::uint32_t wire = 0;
  };

  struct RemoteInFlight {
    Packet packet;
    sim::SimTime arrival = 0;
  };

  struct Staged {
    sim::SimTime arrival = 0;
    std::size_t direction = 0;
    Packet packet;
  };

  struct Direction {
    topo::NodeId from = topo::kInvalidNode;
    topo::NodeId to = topo::kInvalidNode;
    topo::PortId to_port = topo::kInvalidPort;
    LinkConfig config;
    bool up = true;
    sim::SimTime busy_until = 0;
    std::uint32_t queued_bytes = 0;
    LinkStats stats;
    std::vector<Tap> taps;
    // Burst FIFO: every transmitted-but-undelivered packet, in wire order
    // (arrival times are strictly increasing per direction).  Packets ride
    // here instead of inside per-event closures, and queued_bytes is
    // retired lazily from the front (see transmit()), so a packet costs
    // ONE capture-free scheduler event -- the pre-wheel engine paid two,
    // one of them carrying the packet by value.
    std::deque<InFlight> in_flight;
    std::size_t released = 0;  // prefix of in_flight already debited
    // Sharded fabric only:
    sim::Simulator* deliver_sim = nullptr;  // receiver's engine
    bool remote = false;  // endpoints live on different shards
    std::deque<PendingRelease> pending_release;  // sender-side occupancy
    std::deque<RemoteInFlight> remote_in;        // receiver-side packets
  };

  /// Delivers every in_flight packet whose arrival time has been reached
  /// on directions_[index], then re-arms the chained delivery event.
  void deliver(std::size_t index);

  /// Same for a cross-shard direction's remote_in queue; runs on the
  /// receiver's engine.
  void deliver_remote(std::size_t index);

  /// Serial-context handoff of one cross-shard packet: append to the
  /// direction's remote_in (arrivals are non-decreasing per direction, so
  /// order is preserved) and arm delivery on the receiver's engine.
  void enqueue_remote_arrival(std::size_t index, sim::SimTime arrival,
                              Packet packet);

  /// Barrier hook: hand every packet staged during the closing parallel
  /// window to its receiver, in canonical (arrival, direction, FIFO) order.
  void flush_mailboxes();

  /// Lookahead = min propagation delay over inter-shard directions; the
  /// window veto counters (taps, lossy links) are refreshed with it.
  void refresh_shard_constraints();

  // directions_[2*link + 0] is endpoint-a -> endpoint-b.
  std::vector<Direction> directions_;

  sim::Simulator& sim_;
  sim::ShardedSimulator* sharded_ = nullptr;
  const topo::Graph& graph_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<sim::Simulator*> node_sim_;
  std::vector<Tap> global_taps_;
  std::vector<std::vector<Staged>> mailboxes_;  // one per device shard
  std::size_t tap_count_ = 0;    // any tap anywhere vetoes windows
  std::size_t lossy_dirs_ = 0;   // so does any lossy direction
  std::atomic<std::uint64_t> packet_id_{0};
  Rng loss_rng_;
};

}  // namespace mic::net
