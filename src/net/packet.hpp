// Simulated packet.
//
// Carries the header fields the MIC data plane rewrites (IPv4 addresses,
// L4 ports, an MPLS label) plus transport metadata and an optional real
// payload.  Bulk traffic uses "virtual" payloads (a length and a content
// tag) so multi-gigabyte transfers do not allocate; control traffic carries
// real bytes so the crypto paths run end to end.
//
// `content_tag` is a stable fingerprint of the payload: the paper's
// adversary "can correlate [packets] by checking the contents of each
// packet" because MNs re-write headers but never touch payloads.  The
// anonymity module's correlation attacks match on this tag.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/addr.hpp"

namespace mic::net {

enum class IpProto : std::uint8_t { kTcp = 6, kUdp = 17 };

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

struct TcpInfo {
  std::uint64_t seq = 0;       // stream offset of first payload byte
  std::uint64_t ack_seq = 0;   // cumulative ack (next expected offset)
  TcpFlags flags;
  std::uint32_t payload_len = 0;
};

/// Fixed per-packet overheads, bytes.
inline constexpr std::uint32_t kEthIpTcpHeaderBytes = 14 + 20 + 20;
inline constexpr std::uint32_t kMplsHeaderBytes = 4;
inline constexpr std::uint32_t kTcpMss = 1460;

struct Packet {
  // --- fields an MN may rewrite -------------------------------------------
  Ipv4 src;
  Ipv4 dst;
  L4Port sport = 0;
  L4Port dport = 0;
  MplsLabel mpls = kNoMpls;  // kNoMpls means no label present

  IpProto proto = IpProto::kTcp;

  // --- transport ----------------------------------------------------------
  TcpInfo tcp;

  // --- payload ------------------------------------------------------------
  // Real bytes (control traffic) or empty for virtual payloads.
  std::shared_ptr<const std::vector<std::uint8_t>> payload;
  /// Fingerprint of the payload contents; equal payloads have equal tags.
  std::uint64_t content_tag = 0;

  // --- bookkeeping (not visible on the wire) ------------------------------
  std::uint64_t packet_id = 0;  // unique per send, for tracing

  std::uint32_t payload_bytes() const noexcept { return tcp.payload_len; }

  /// Total wire size, including L2-L4 headers and MPLS if present.
  std::uint32_t wire_bytes() const noexcept {
    return kEthIpTcpHeaderBytes + (mpls != kNoMpls ? kMplsHeaderBytes : 0) +
           tcp.payload_len;
  }
};

}  // namespace mic::net
