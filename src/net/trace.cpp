#include "net/trace.hpp"

#include <cinttypes>

#include "common/assert.hpp"

namespace mic::net {

TraceWriter::TraceWriter(Network& network, const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  MIC_ASSERT_MSG(file_ != nullptr, "cannot open trace file for writing");
  std::fputs(
      "time_ns\tlink\tfrom\tto\tsrc\tdst\tsport\tdport\tmpls\tbytes\t"
      "payload\ttag\n",
      file_);
  network.add_global_tap([this](topo::LinkId link, topo::NodeId from,
                                topo::NodeId to, const Packet& packet,
                                sim::SimTime time) {
    if (file_ == nullptr) return;
    std::fprintf(file_,
                 "%" PRIu64 "\t%u\t%u\t%u\t%s\t%s\t%u\t%u\t%u\t%u\t%u\t%" PRIx64
                 "\n",
                 time, link, from, to, packet.src.str().c_str(),
                 packet.dst.str().c_str(), packet.sport, packet.dport,
                 packet.mpls, packet.wire_bytes(), packet.payload_bytes(),
                 packet.content_tag);
    ++entries_;
  });
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

TraceHash::TraceHash(Network& network) : state_(std::make_shared<State>()) {
  network.add_global_tap([state = state_](topo::LinkId link, topo::NodeId from,
                                          topo::NodeId to,
                                          const Packet& packet,
                                          sim::SimTime time) {
    auto fold = [&state](std::uint64_t v) {
      // FNV-1a, one byte at a time so zero-heavy fields still diffuse.
      for (int i = 0; i < 8; ++i) {
        state->hash ^= (v >> (8 * i)) & 0xff;
        state->hash *= 0x100000001b3ULL;
      }
    };
    fold(time);
    fold(link);
    fold((static_cast<std::uint64_t>(from) << 32) | to);
    fold((static_cast<std::uint64_t>(packet.src.value) << 32) |
         packet.dst.value);
    fold((static_cast<std::uint64_t>(packet.sport) << 48) |
         (static_cast<std::uint64_t>(packet.dport) << 32) | packet.mpls);
    fold(packet.tcp.seq);
    fold(packet.tcp.ack_seq);
    fold((static_cast<std::uint64_t>(packet.tcp.flags.syn) << 3) |
         (static_cast<std::uint64_t>(packet.tcp.flags.ack) << 2) |
         (static_cast<std::uint64_t>(packet.tcp.flags.fin) << 1) |
         static_cast<std::uint64_t>(packet.tcp.flags.rst));
    fold((static_cast<std::uint64_t>(packet.wire_bytes()) << 32) |
         packet.payload_bytes());
    fold(packet.content_tag);
    ++state->packets;
  });
}

namespace {

Ipv4 parse_ip(const char* s) {
  int a = 0, b = 0, c = 0, d = 0;
  std::sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d);
  return Ipv4(a, b, c, d);
}

}  // namespace

std::vector<TraceEntry> load_trace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  MIC_ASSERT_MSG(file != nullptr, "cannot open trace file for reading");
  std::vector<TraceEntry> entries;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (first) {  // header
      first = false;
      continue;
    }
    TraceEntry entry;
    char src[64] = {0};
    char dst[64] = {0};
    unsigned link, from, to, sport, dport, mpls, bytes, payload;
    std::uint64_t time_ns, tag;
    const int fields = std::sscanf(
        line,
        "%" SCNu64 "\t%u\t%u\t%u\t%63s\t%63s\t%u\t%u\t%u\t%u\t%u\t%" SCNx64,
        &time_ns, &link, &from, &to, src, dst, &sport, &dport, &mpls, &bytes,
        &payload, &tag);
    if (fields != 12) continue;
    entry.time = time_ns;
    entry.link = link;
    entry.from = from;
    entry.to = to;
    entry.src = parse_ip(src);
    entry.dst = parse_ip(dst);
    entry.sport = static_cast<L4Port>(sport);
    entry.dport = static_cast<L4Port>(dport);
    entry.mpls = mpls;
    entry.wire_bytes = bytes;
    entry.payload_bytes = payload;
    entry.content_tag = tag;
    entries.push_back(entry);
  }
  std::fclose(file);
  return entries;
}

}  // namespace mic::net
