#include "net/trace.hpp"

#include <cinttypes>
#include <cstring>

#include "common/assert.hpp"

namespace mic::net {

namespace {

constexpr const char* kHeaderLine =
    "time_ns\tlink\tfrom\tto\tsrc\tdst\tsport\tdport\tmpls\tseq\tack\t"
    "flags\tbytes\tpayload\ttag";

std::uint8_t flag_bits_of(const Packet& packet) {
  return static_cast<std::uint8_t>(
      (static_cast<unsigned>(packet.tcp.flags.syn) << 3) |
      (static_cast<unsigned>(packet.tcp.flags.ack) << 2) |
      (static_cast<unsigned>(packet.tcp.flags.fin) << 1) |
      static_cast<unsigned>(packet.tcp.flags.rst));
}

}  // namespace

TraceEntry make_trace_entry(topo::LinkId link, topo::NodeId from,
                            topo::NodeId to, const Packet& packet,
                            sim::SimTime time) {
  TraceEntry entry;
  entry.time = time;
  entry.link = link;
  entry.from = from;
  entry.to = to;
  entry.src = packet.src;
  entry.dst = packet.dst;
  entry.sport = packet.sport;
  entry.dport = packet.dport;
  entry.mpls = packet.mpls;
  entry.tcp_seq = packet.tcp.seq;
  entry.tcp_ack = packet.tcp.ack_seq;
  entry.tcp_flag_bits = flag_bits_of(packet);
  entry.wire_bytes = packet.wire_bytes();
  entry.payload_bytes = packet.payload_bytes();
  entry.content_tag = packet.content_tag;
  return entry;
}

void fold_trace_entry(std::uint64_t& hash, const TraceEntry& entry) {
  auto fold = [&hash](std::uint64_t v) {
    // FNV-1a, one byte at a time so zero-heavy fields still diffuse.
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  fold(entry.time);
  fold(entry.link);
  fold((static_cast<std::uint64_t>(entry.from) << 32) | entry.to);
  fold((static_cast<std::uint64_t>(entry.src.value) << 32) | entry.dst.value);
  fold((static_cast<std::uint64_t>(entry.sport) << 48) |
       (static_cast<std::uint64_t>(entry.dport) << 32) | entry.mpls);
  fold(entry.tcp_seq);
  fold(entry.tcp_ack);
  fold(entry.tcp_flag_bits);
  fold((static_cast<std::uint64_t>(entry.wire_bytes) << 32) |
       entry.payload_bytes);
  fold(entry.content_tag);
}

std::uint64_t trace_hash_of(const std::vector<TraceEntry>& entries) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const TraceEntry& entry : entries) fold_trace_entry(hash, entry);
  return hash;
}

TraceWriter::TraceWriter(Network& network, const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  MIC_ASSERT_MSG(file_ != nullptr, "cannot open trace file for writing");
  std::fprintf(file_, "%s\n", kHeaderLine);
  network.add_global_tap([this](topo::LinkId link, topo::NodeId from,
                                topo::NodeId to, const Packet& packet,
                                sim::SimTime time) {
    if (file_ == nullptr) return;
    const TraceEntry e = make_trace_entry(link, from, to, packet, time);
    std::fprintf(file_,
                 "%" PRIu64 "\t%u\t%u\t%u\t%s\t%s\t%u\t%u\t%u\t%" PRIu64
                 "\t%" PRIu64 "\t%u\t%u\t%u\t%" PRIx64 "\n",
                 e.time, e.link, e.from, e.to, e.src.str().c_str(),
                 e.dst.str().c_str(), e.sport, e.dport, e.mpls, e.tcp_seq,
                 e.tcp_ack, e.tcp_flag_bits, e.wire_bytes, e.payload_bytes,
                 e.content_tag);
    ++entries_;
  });
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

TraceHash::TraceHash(Network& network) : state_(std::make_shared<State>()) {
  network.add_global_tap([state = state_](topo::LinkId link, topo::NodeId from,
                                          topo::NodeId to,
                                          const Packet& packet,
                                          sim::SimTime time) {
    fold_trace_entry(state->hash,
                     make_trace_entry(link, from, to, packet, time));
    ++state->packets;
  });
}

namespace {

/// Strict dotted-quad parse: exactly four octets, each 0-255, nothing
/// trailing.  Returns false on anything else (sscanf alone would accept
/// "1.2.3.4junk" and octet overflow).
bool parse_ip_checked(const char* s, Ipv4* out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  int consumed = 0;
  if (std::sscanf(s, "%3u.%3u.%3u.%3u%n", &a, &b, &c, &d, &consumed) != 4) {
    return false;
  }
  if (s[consumed] != '\0') return false;
  if (a > 255 || b > 255 || c > 255 || d > 255) return false;
  *out = Ipv4(static_cast<int>(a), static_cast<int>(b), static_cast<int>(c),
              static_cast<int>(d));
  return true;
}

TraceParseResult fail(TraceParseResult result, std::size_t line,
                      std::string error) {
  result.ok = false;
  result.error_line = line;
  result.error = std::move(error);
  return result;
}

}  // namespace

TraceParseResult load_trace_checked(const std::string& path) {
  TraceParseResult result;
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return fail(std::move(result), 0, "cannot open trace file for reading");
  }
  char line[512];
  std::size_t line_no = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_no;
    std::size_t len = std::strlen(line);
    if (len > 0 && line[len - 1] == '\n') {
      line[--len] = '\0';
    } else if (len + 1 == sizeof(line)) {
      std::fclose(file);
      return fail(std::move(result), line_no, "line too long");
    }
    // A record that lost its newline to truncation still parses below if
    // all 15 fields survived; a partial final line fails the field count.
    if (line_no == 1) {
      if (std::strcmp(line, kHeaderLine) != 0) {
        std::fclose(file);
        return fail(std::move(result), 1,
                    "unrecognized trace header (format mismatch?)");
      }
      continue;
    }
    if (len == 0) {
      std::fclose(file);
      return fail(std::move(result), line_no, "blank line inside trace");
    }
    char src[64] = {0};
    char dst[64] = {0};
    unsigned link, from, to, sport, dport, mpls, flags, bytes, payload;
    std::uint64_t time_ns, seq, ack, tag;
    int consumed = 0;
    const int fields = std::sscanf(
        line,
        "%" SCNu64 "\t%u\t%u\t%u\t%63s\t%63s\t%u\t%u\t%u\t%" SCNu64
        "\t%" SCNu64 "\t%u\t%u\t%u\t%" SCNx64 "%n",
        &time_ns, &link, &from, &to, src, dst, &sport, &dport, &mpls, &seq,
        &ack, &flags, &bytes, &payload, &tag, &consumed);
    if (fields != 15) {
      std::fclose(file);
      return fail(std::move(result), line_no,
                  "malformed record: expected 15 fields, parsed " +
                      std::to_string(fields < 0 ? 0 : fields));
    }
    if (line[consumed] != '\0') {
      std::fclose(file);
      return fail(std::move(result), line_no,
                  "trailing garbage after record");
    }
    TraceEntry entry;
    if (!parse_ip_checked(src, &entry.src)) {
      std::fclose(file);
      return fail(std::move(result), line_no, "malformed source address");
    }
    if (!parse_ip_checked(dst, &entry.dst)) {
      std::fclose(file);
      return fail(std::move(result), line_no,
                  "malformed destination address");
    }
    if (sport > 0xffff || dport > 0xffff) {
      std::fclose(file);
      return fail(std::move(result), line_no, "port out of range");
    }
    if (flags > 0xf) {
      std::fclose(file);
      return fail(std::move(result), line_no, "flag bits out of range");
    }
    entry.time = time_ns;
    entry.link = link;
    entry.from = from;
    entry.to = to;
    entry.sport = static_cast<L4Port>(sport);
    entry.dport = static_cast<L4Port>(dport);
    entry.mpls = mpls;
    entry.tcp_seq = seq;
    entry.tcp_ack = ack;
    entry.tcp_flag_bits = static_cast<std::uint8_t>(flags);
    entry.wire_bytes = bytes;
    entry.payload_bytes = payload;
    entry.content_tag = tag;
    result.entries.push_back(entry);
  }
  std::fclose(file);
  if (line_no == 0) {
    return fail(std::move(result), 0, "empty trace file (missing header)");
  }
  return result;
}

std::vector<TraceEntry> load_trace(const std::string& path) {
  TraceParseResult result = load_trace_checked(path);
  MIC_ASSERT_MSG(result.ok, "malformed trace file");
  return std::move(result.entries);
}

}  // namespace mic::net
