// Packet trace recording: a network tap that writes one TSV line per
// packet-on-a-link, plus a loader for offline analysis.  The format is
// deliberately trivial (tab-separated, one header line) so traces can be
// grepped, diffed across seeds (determinism!), or pulled into any tooling.
//
//   time_ns link from to src dst sport dport mpls seq ack flags bytes
//   payload tag
//
// `flags` packs the TCP flag bits as syn<<3 | ack<<2 | fin<<1 | rst -- the
// same encoding TraceHash folds, so a written trace carries everything the
// fingerprint covers and `trace_hash_of(load_trace(path))` reproduces the
// live tap's value exactly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace mic::net {

struct TraceEntry {
  sim::SimTime time = 0;
  topo::LinkId link = 0;
  topo::NodeId from = 0;
  topo::NodeId to = 0;
  Ipv4 src;
  Ipv4 dst;
  L4Port sport = 0;
  L4Port dport = 0;
  MplsLabel mpls = kNoMpls;
  std::uint64_t tcp_seq = 0;
  std::uint64_t tcp_ack = 0;
  std::uint8_t tcp_flag_bits = 0;  // syn<<3 | ack<<2 | fin<<1 | rst
  std::uint32_t wire_bytes = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t content_tag = 0;
};

/// The observation TraceHash and TraceWriter share: everything the taps see
/// about one packet on one link, as a TraceEntry.
TraceEntry make_trace_entry(topo::LinkId link, topo::NodeId from,
                            topo::NodeId to, const Packet& packet,
                            sim::SimTime time);

/// Streams every packet on every link to a TSV file.  RAII: the file is
/// flushed and closed on destruction.  Attach exactly once per network.
class TraceWriter {
 public:
  TraceWriter(Network& network, const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  std::uint64_t entries_written() const noexcept { return entries_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t entries_ = 0;
};

/// Outcome of parsing a trace file.  On failure `error_line` is the
/// 1-based number of the first offending line (0 = the file itself could
/// not be read) and `error` says what was wrong with it; `entries` holds
/// everything successfully parsed before that point.
struct TraceParseResult {
  std::vector<TraceEntry> entries;
  bool ok = true;
  std::size_t error_line = 0;
  std::string error;
};

/// Parses a TSV trace written by TraceWriter, validating as it goes: the
/// header line must match the current format, every record needs all 15
/// fields, addresses must be well-formed dotted quads, flag bits must fit.
/// Malformed or truncated input is reported with its line number instead
/// of being silently folded into garbage entries.
TraceParseResult load_trace_checked(const std::string& path);

/// Loads a TSV trace written by TraceWriter; asserts on malformed input
/// (use load_trace_checked to handle bad files gracefully).
std::vector<TraceEntry> load_trace(const std::string& path);

/// Folds `entry` into a running FNV-1a state exactly as the live TraceHash
/// tap would have.
void fold_trace_entry(std::uint64_t& hash, const TraceEntry& entry);

/// The TraceHash fingerprint the live tap would have produced for this
/// sequence of observations -- `trace_hash_of(load_trace(path))` of a
/// written trace equals the TraceHash::value() recorded during the run.
std::uint64_t trace_hash_of(const std::vector<TraceEntry>& entries);

/// Rolling FNV-1a fingerprint of every packet observed on every link, in
/// event order: header fields the MIC data plane rewrites, the transport
/// metadata, the payload tag, and the observation timestamp all fold in.
/// Two runs produce the same value iff they put byte-identical wire
/// traffic on the fabric in the identical order at the identical times --
/// the executable form of SIM-1's "identical seeds => identical event
/// traces".  Attach once per network, before any traffic of interest.
class TraceHash {
 public:
  explicit TraceHash(Network& network);

  TraceHash(const TraceHash&) = delete;
  TraceHash& operator=(const TraceHash&) = delete;

  std::uint64_t value() const noexcept { return state_->hash; }
  std::uint64_t packets() const noexcept { return state_->packets; }

 private:
  // The network outlives the tap std::function it stores; shared state
  // keeps the tap valid even if the TraceHash object itself is destroyed
  // first (taps cannot be detached).
  struct State {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    std::uint64_t packets = 0;
  };
  std::shared_ptr<State> state_;
};

}  // namespace mic::net
