// Packet trace recording: a network tap that writes one TSV line per
// packet-on-a-link, plus a loader for offline analysis.  The format is
// deliberately trivial (tab-separated, one header line) so traces can be
// grepped, diffed across seeds (determinism!), or pulled into any tooling.
//
//   time_ns  link  from  to  src  dst  sport  dport  mpls  bytes  payload  tag
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace mic::net {

struct TraceEntry {
  sim::SimTime time = 0;
  topo::LinkId link = 0;
  topo::NodeId from = 0;
  topo::NodeId to = 0;
  Ipv4 src;
  Ipv4 dst;
  L4Port sport = 0;
  L4Port dport = 0;
  MplsLabel mpls = kNoMpls;
  std::uint32_t wire_bytes = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t content_tag = 0;
};

/// Streams every packet on every link to a TSV file.  RAII: the file is
/// flushed and closed on destruction.  Attach exactly once per network.
class TraceWriter {
 public:
  TraceWriter(Network& network, const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  std::uint64_t entries_written() const noexcept { return entries_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t entries_ = 0;
};

/// Loads a TSV trace written by TraceWriter.
std::vector<TraceEntry> load_trace(const std::string& path);

/// Rolling FNV-1a fingerprint of every packet observed on every link, in
/// event order: header fields the MIC data plane rewrites, the transport
/// metadata, the payload tag, and the observation timestamp all fold in.
/// Two runs produce the same value iff they put byte-identical wire
/// traffic on the fabric in the identical order at the identical times --
/// the executable form of SIM-1's "identical seeds => identical event
/// traces".  Attach once per network, before any traffic of interest.
class TraceHash {
 public:
  explicit TraceHash(Network& network);

  TraceHash(const TraceHash&) = delete;
  TraceHash& operator=(const TraceHash&) = delete;

  std::uint64_t value() const noexcept { return state_->hash; }
  std::uint64_t packets() const noexcept { return state_->packets; }

 private:
  // The network outlives the tap std::function it stores; shared state
  // keeps the tap valid even if the TraceHash object itself is destroyed
  // first (taps cannot be detached).
  struct State {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    std::uint64_t packets = 0;
  };
  std::shared_ptr<State> state_;
};

}  // namespace mic::net
