// Serial CPU model with busy-time accounting.
//
// Every host and software switch owns a CpuMeter.  Charging cycles both
// *delays* the operation (work completes when the CPU gets to it) and
// *accounts* the busy time, which is what bench/fig9c_cpu_usage reports:
// utilization = busy_time / observation window, exactly how `top` computed
// the paper's Figure 9(c) numbers.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace mic::sim {

class CpuMeter {
 public:
  /// Matches the paper's testbed CPU (Xeon E5-2620 @ 2.00 GHz).
  explicit CpuMeter(double frequency_hz = 2.0e9) noexcept
      : frequency_hz_(frequency_hz) {
    MIC_ASSERT(frequency_hz > 0);
  }

  /// Charge `cycles` starting no earlier than `now`; returns the completion
  /// time.  Work is serialized: a busy CPU delays new work.
  SimTime charge(SimTime now, double cycles) noexcept {
    MIC_ASSERT(cycles >= 0);
    const SimTime start = now > free_at_ ? now : free_at_;
    const SimTime duration =
        static_cast<SimTime>(cycles / frequency_hz_ * 1e9);
    free_at_ = start + duration;
    busy_time_ += duration;
    return free_at_;
  }

  /// Time at which the CPU becomes idle.
  SimTime free_at() const noexcept { return free_at_; }

  /// Total busy nanoseconds since construction (or the last reset).
  SimTime busy_time() const noexcept { return busy_time_; }

  /// Utilization over [window_start, window_end], based on busy time
  /// accumulated since `busy_at_window_start`.
  static double utilization(SimTime busy_at_window_start,
                            SimTime busy_at_window_end, SimTime window_start,
                            SimTime window_end) noexcept {
    if (window_end <= window_start) return 0.0;
    return static_cast<double>(busy_at_window_end - busy_at_window_start) /
           static_cast<double>(window_end - window_start);
  }

  void reset_accounting() noexcept { busy_time_ = 0; }

  double frequency_hz() const noexcept { return frequency_hz_; }

 private:
  double frequency_hz_;
  SimTime free_at_ = 0;
  SimTime busy_time_ = 0;
};

}  // namespace mic::sim
