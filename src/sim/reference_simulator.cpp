#include "sim/reference_simulator.hpp"

namespace mic::sim {

std::uint64_t ReferenceSimulator::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > deadline) break;

    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      pending_.erase(top.id);
      queue_.pop();
      continue;
    }

    // Move the callback out before popping so re-entrant scheduling from
    // inside the callback cannot invalidate it.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    pending_.erase(entry.id);
    now_ = entry.when;
    --live_events_;
    ++executed_;
    ++ran;
    entry.cb();
  }
  if (queue_.empty()) {
    // Any remaining tombstones refer to events that will never fire.
    cancelled_.clear();
  }
  if (deadline != kNever && deadline > now_ &&
      (queue_.empty() || queue_.top().when > deadline)) {
    now_ = deadline;  // advance the clock to the requested horizon
  }
  return ran;
}

}  // namespace mic::sim
