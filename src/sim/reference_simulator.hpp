// Reference discrete-event scheduler: the original binary-heap engine,
// kept verbatim as a differential-testing oracle (invariant SIM-2).
//
// This is the `std::priority_queue` implementation that `sim::Simulator`
// shipped with before the timing-wheel rewrite.  It is deliberately frozen:
// simple enough to audit by eye, and behavior-identical to the wheel for
// every observable — firing order, `now()`, `idle()`, `events_executed()`,
// and the run_until() boundary semantics.  tests/test_simulator_diff.cpp
// drives both engines with >10k randomized schedule/cancel/run_until
// programs and asserts they never diverge; bench/micro_sim uses it as the
// baseline for the wheel-vs-heap throughput sweep.
//
// Do not optimize this class.  Its value is that it is obviously correct.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace mic::sim {

using EventId = std::uint64_t;

class ReferenceSimulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  /// Schedule a callback at an absolute time >= now().
  EventId schedule_at(SimTime when, Callback cb) {
    MIC_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    const EventId id = next_id_++;
    queue_.push(Entry{when, id, std::move(cb)});
    pending_.insert(id);
    ++live_events_;
    return id;
  }

  /// Schedule a callback `delay` from now.
  EventId schedule_in(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event.  Cancelling an already-fired or already-
  /// cancelled event is a no-op.
  void cancel(EventId id) {
    if (!pending_.contains(id)) return;  // never scheduled, fired, or done
    if (cancelled_.insert(id).second) --live_events_;
  }

  /// Run until the event queue drains or simulated time exceeds `deadline`.
  /// Events scheduled at exactly `deadline` fire.  Returns the number of
  /// events executed.
  std::uint64_t run_until(SimTime deadline = kNever);

  /// True if no live (non-cancelled) events remain.
  bool idle() const noexcept { return live_events_ == 0; }

  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t live_events_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> pending_;    // ids still in queue_
  std::unordered_set<EventId> cancelled_;  // tombstones (subset of pending_)
};

}  // namespace mic::sim
