#include "sim/sharded_simulator.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace mic::sim {

namespace {

thread_local int tls_shard = -1;

SimTime saturating_add(SimTime a, SimTime b) noexcept {
  const SimTime sum = a + b;
  return sum < a ? kNever : sum;
}

int resolve_threads(const ShardedOptions& options) {
  if (options.shards <= 1) return 1;
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::min(threads, options.shards);
}

}  // namespace

// Persistent barrier-synchronized pool: window w assigns engine s to thread
// s % threads (thread 0 is the caller), every assignment deterministic.
// Plain std::mutex + condition_variable, not the annotated mic::Mutex: the
// capability analysis cannot see through condition_variable waits, and the
// handoff protocol is the entire point of this class.
class ShardedSimulator::WorkerPool {
 public:
  WorkerPool(ShardedSimulator& owner, int threads)
      : owner_(owner), lanes_(threads) {
    threads_.reserve(static_cast<std::size_t>(threads - 1));
    for (int id = 1; id < threads; ++id) {
      threads_.emplace_back([this, id] { worker_main(id); });
    }
  }

  ~WorkerPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Runs every device engine to `limit` across the pool; blocks until all
  /// are done and returns the total events fired.  The mutex/condvar pair
  /// gives the happens-before edges both ways: engine state written by a
  /// worker is visible to the caller after the join, and vice versa.
  std::uint64_t run_window(SimTime limit) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      limit_ = limit;
      fired_ = 0;
      pending_ = lanes_ - 1;
      ++generation_;
    }
    cv_.notify_all();
    const std::uint64_t mine = run_lane(0, lanes_, limit);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    return fired_ + mine;
  }

 private:
  std::uint64_t run_lane(int lane, int lanes, SimTime limit) {
    std::uint64_t fired = 0;
    for (int s = lane; s < owner_.shards_; s += lanes) {
      tls_shard = s;
      fired += owner_.engines_[static_cast<std::size_t>(s)]->run_until_local(
          limit);
    }
    tls_shard = -1;
    return fired;
  }

  void worker_main(int lane) {
    // Workers never touch threads_: the constructor is still emplacing into
    // that vector while the first workers start up.  lanes_ is written once
    // before any spawn.
    const int lanes = lanes_;
    std::uint64_t seen = 0;
    for (;;) {
      SimTime limit = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        limit = limit_;
      }
      const std::uint64_t fired = run_lane(lane, lanes, limit);
      bool last = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        fired_ += fired;
        last = --pending_ == 0;
      }
      if (last) done_cv_.notify_one();
    }
  }

  ShardedSimulator& owner_;
  const int lanes_;  ///< total lanes incl. the caller; set before any spawn
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::uint64_t fired_ = 0;
  SimTime limit_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

ShardedSimulator::ShardedSimulator(ShardedOptions options)
    : shards_(std::max(1, options.shards)), threads_(resolve_threads(options)) {
  // shards == 1: one engine wearing both hats, no coordinator -- the
  // classic single-shard simulation, with zero added machinery.
  const std::size_t count =
      shards_ == 1 ? 1 : static_cast<std::size_t>(shards_) + 1;
  engines_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    engines_.push_back(std::make_unique<Simulator>());
  }
  peeks_.resize(engines_.size());
  if (coordinated()) {
    for (auto& e : engines_) e->use_shared_seq(&shared_seq_);
    global().set_coordinator(this);
  }
}

ShardedSimulator::~ShardedSimulator() {
  pool_.reset();
  if (coordinated()) global().set_coordinator(nullptr);
}

int ShardedSimulator::current_shard() noexcept { return tls_shard; }

void ShardedSimulator::assert_serial(const char* what) {
  MIC_ASSERT_MSG(tls_shard == -1, what);
  (void)what;
}

const std::optional<Simulator::PeekInfo>& ShardedSimulator::cached_peek(
    std::size_t e) const {
  PeekCache& cache = peeks_[e];
  const std::uint64_t stamp = engines_[e]->change_stamp();
  if (cache.stamp != stamp) {
    cache.peek = engines_[e]->peek_next();
    cache.stamp = stamp;
  }
  return cache.peek;
}

std::uint64_t ShardedSimulator::coordinate_run(SimTime deadline) {
  MIC_ASSERT_MSG(!running_, "re-entrant run_until on a coordinated engine");
  running_ = true;
  const std::size_t n = engines_.size();
  const auto global_index = static_cast<std::size_t>(shards_);
  std::uint64_t ran = 0;
  for (;;) {
    std::size_t best = n;
    Simulator::PeekInfo min{};
    for (std::size_t e = 0; e < n; ++e) {
      const auto& peek = cached_peek(e);
      if (!peek) continue;
      if (best == n || peek->when < min.when ||
          (peek->when == min.when && peek->seq < min.seq)) {
        best = e;
        min = *peek;
      }
    }
    if (best == n) break;  // every engine drained
    if (deadline != kNever && min.when > deadline) break;

    if (parallel_enabled_ && lookahead_ > 0 && best != global_index &&
        (!parallel_veto_ || !parallel_veto_())) {
      // E = min(t + W, next global event, deadline + 1): within [t, E) no
      // shard can causally affect another (every cross-shard effect lags by
      // at least W) and the control plane is silent, so the shards run
      // concurrently and exchange their cross-shard transmits at the
      // barrier.  A global event at t collapses the window to nothing and
      // the step below runs serial-exact instead.
      SimTime e_end = saturating_add(min.when, lookahead_);
      if (const auto& g = cached_peek(global_index); g) {
        e_end = std::min(e_end, g->when);
      }
      if (deadline != kNever) {
        e_end = std::min(e_end, saturating_add(deadline, 1));
      }
      if (e_end > min.when && e_end != kNever) {
        ran += run_parallel_window(e_end);
        continue;
      }
    }

    // Serial-exact step: every engine's clock reaches the event time first,
    // because the callback may schedule relative to now() on ANY engine
    // (e.g. a host event arming a control-plane timer on the global one).
    for (auto& e : engines_) e->advance_clock_to(min.when);
    const bool fired = engines_[best]->fire_next(min.when);
    MIC_ASSERT_MSG(fired, "peeked event vanished before firing");
    ++ran;
    ++stats_.serial_events;
  }
  if (deadline == kNever) {
    for (auto& e : engines_) e->finish_drain();
  } else {
    for (auto& e : engines_) e->advance_clock_to(deadline);
  }
  running_ = false;
  return ran;
}

std::uint64_t ShardedSimulator::run_parallel_window(SimTime e_end) {
  ++stats_.windows;
  const SimTime limit = e_end - 1;  // windows are half-open: [t, e_end)
  // Disjoint deterministic seq ranges: shard s stamps base+s, base+s+S, ...
  // Per-engine seqs stay monotone (insertion order inside an engine is seq
  // order), which is all peek_next's merge key needs.
  const std::uint64_t base = shared_seq_;
  const auto stride = static_cast<std::uint64_t>(shards_);
  for (int s = 0; s < shards_; ++s) {
    engines_[static_cast<std::size_t>(s)]->use_local_seq(
        base + static_cast<std::uint64_t>(s), stride);
  }
  Simulator& global_engine = global();
  global_engine.set_frozen(true);
  std::uint64_t fired = 0;
  if (threads_ > 1) {
    if (!pool_) pool_ = std::make_unique<WorkerPool>(*this, threads_);
    fired = pool_->run_window(limit);
  } else {
    // Cooperative window: same engines, mailboxes and barrier, executed on
    // this thread shard by shard.  On a single-core host this is the only
    // mode that is not a regression; the semantics are identical.
    for (int s = 0; s < shards_; ++s) {
      tls_shard = s;
      fired += engines_[static_cast<std::size_t>(s)]->run_until_local(limit);
    }
    tls_shard = -1;
  }
  global_engine.set_frozen(false);
  global_engine.advance_clock_to(limit);
  // Re-join the shared counter strictly past every seq issued in the
  // window; the max is deterministic (a function of per-engine schedule
  // counts), so so is every seq assigned afterwards.
  std::uint64_t next = base;
  for (int s = 0; s < shards_; ++s) {
    next = std::max(next,
                    engines_[static_cast<std::size_t>(s)]->local_seq_cursor());
  }
  shared_seq_ = next;
  for (auto& e : engines_) e->use_shared_seq(&shared_seq_);
  stats_.window_events += fired;
  ++stats_.barriers;
  if (barrier_hook_) barrier_hook_();
  return fired;
}

bool ShardedSimulator::coordinate_idle() const {
  for (const auto& e : engines_) {
    if (!e->idle_local()) return false;
  }
  return true;
}

}  // namespace mic::sim
