// Pod-sharded parallel simulation: several timing-wheel engines coordinated
// with classic conservative lookahead (Chandy-Misra-Bryant style windows).
//
// The fabric is partitioned by pod: every device's events live on its
// shard's engine, plus one extra *global* engine (index = shards()) for
// everything that is not a device -- the Mimic Controller, clients'
// control-plane timers, fault injectors, test harness events.  The global
// engine is what `Fabric::simulator()` returns, so the ~150 existing call
// sites keep compiling and running unchanged; its run_until()/idle()
// delegate here via sim::RunCoordinator.
//
// Two execution regimes, chosen window by window:
//
//  * Serial-exact (the default, and the only mode when a workload is
//    entangled -- pending global events, observation taps, lossy links):
//    all engines share one seq counter, and the coordinator repeatedly
//    fires the globally minimal (when, seq) event, aligning every engine's
//    clock first.  By induction on the shared counter this interleave is
//    BIT-IDENTICAL to running the whole program on one engine: identical
//    prefixes assign identical seqs, so the next (when, seq) minimum is
//    exactly the event the single engine would pop (SIM-1 order).  This is
//    what lets every recorded chaos-soak trace_hash replay unchanged with
//    MIC_SIM_SHARDS=4 (SIM-3, tests/test_chaos.cpp).
//
//  * Parallel windows (opt-in via set_parallel_enabled / MIC_SIM_PARALLEL):
//    with W = the minimum propagation delay over inter-shard links
//    (set_lookahead), any event a shard creates on another shard arrives at
//    least W after it was sent.  So inside [t, E) with
//    E = min(t + W, next global event, deadline + 1) the shards share no
//    causality and run concurrently; cross-shard transmits are staged in
//    per-shard mailboxes and exchanged at the window barrier in canonical
//    (arrival_time, direction_index, per-direction FIFO) order, making the
//    schedule deterministic for a fixed shard count.  Each engine stamps
//    events from a private strided seq range (base + shard, step shards),
//    so seqs stay unique and per-engine monotone without synchronization.
//    Shard-to-shard ties in the same nanosecond may order differently than
//    the serial interleave -- that is the documented trade; workloads that
//    need exactness (every soak, anything tapped) stay serial.
//
// Windows execute on a persistent worker pool when `threads > 1`; with one
// thread (the only honest choice on a single-core host) the same windows,
// mailboxes and barriers run cooperatively on the calling thread, so the
// machinery is identical and only the concurrency differs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace mic::sim {

struct ShardedOptions {
  /// Device shards.  1 = classic single-engine simulation (no coordinator,
  /// no overhead); N > 1 adds one more engine for the global/control plane.
  int shards = 1;
  /// Worker threads for parallel windows.  0 = auto (hardware concurrency,
  /// capped at `shards`); 1 = cooperative windows on the calling thread.
  int threads = 0;
};

struct ShardedStats {
  std::uint64_t serial_events = 0;  ///< fired via the exact interleave
  std::uint64_t window_events = 0;  ///< fired inside parallel windows
  std::uint64_t windows = 0;        ///< parallel windows executed
  std::uint64_t barriers = 0;       ///< barrier hooks invoked (== windows)
};

class ShardedSimulator final : public RunCoordinator {
 public:
  explicit ShardedSimulator(ShardedOptions options = {});
  ~ShardedSimulator() override;

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int shards() const noexcept { return shards_; }
  int threads() const noexcept { return threads_; }
  bool coordinated() const noexcept { return shards_ > 1; }

  /// The global/control engine; with shards() == 1 it is the only engine.
  /// This is the `sim::Simulator&` the rest of the system sees.
  Simulator& global() noexcept { return *engines_.back(); }

  /// Engine for a device shard in [0, shards()); index shards() is the
  /// global engine.  With shards() == 1 every index maps to the one engine.
  Simulator& engine(int shard) noexcept {
    MIC_ASSERT(shard >= 0 && static_cast<std::size_t>(shard) < engines_.size());
    return *engines_[static_cast<std::size_t>(shard)];
  }

  /// Conservative lookahead window width: the minimum propagation delay of
  /// inter-shard links (0 disables parallel windows).  Network computes and
  /// installs it from the shard map.
  void set_lookahead(SimTime lookahead) noexcept { lookahead_ = lookahead; }
  SimTime lookahead() const noexcept { return lookahead_; }

  /// Parallel windows are opt-in: the exact serial interleave is always
  /// safe, windows additionally require the workload contract (no taps, no
  /// lossy links, control plane quiescent inside the window).
  void set_parallel_enabled(bool enabled) noexcept {
    parallel_enabled_ = enabled;
  }
  bool parallel_enabled() const noexcept { return parallel_enabled_; }

  /// Returns true while the workload is entangled (taps attached, lossy
  /// directions configured, ...): windows are suppressed and execution
  /// stays serial-exact.  Installed by Network.
  void set_parallel_veto(std::function<bool()> veto) {
    parallel_veto_ = std::move(veto);
  }

  /// Invoked in serial context after every parallel window, before any
  /// further event fires: Network drains the cross-shard mailboxes here.
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  const ShardedStats& stats() const noexcept { return stats_; }

  /// Shard whose engine is executing on this thread, -1 in serial context
  /// (including the serial-exact interleave).  This is how Network decides
  /// between scheduling a cross-shard delivery directly (serial) and
  /// staging it in a mailbox (inside a window).
  static int current_shard() noexcept;
  /// Asserts serial context; `what` names the operation for the message.
  /// Guards the entry points that must never run inside a window
  /// (packet-in to the controller, link state changes, tap attachment).
  static void assert_serial(const char* what);

  // RunCoordinator (installed on the global engine when shards() > 1):
  std::uint64_t coordinate_run(SimTime deadline) override;
  bool coordinate_idle() const override;

 private:
  class WorkerPool;

  struct PeekCache {
    std::uint64_t stamp = ~0ULL;
    std::optional<Simulator::PeekInfo> peek;
  };

  const std::optional<Simulator::PeekInfo>& cached_peek(std::size_t e) const;
  std::uint64_t run_parallel_window(SimTime e_end);

  int shards_ = 1;
  int threads_ = 1;
  SimTime lookahead_ = 0;
  bool parallel_enabled_ = false;
  bool running_ = false;
  std::vector<std::unique_ptr<Simulator>> engines_;
  std::uint64_t shared_seq_ = 0;
  std::function<bool()> parallel_veto_;
  std::function<void()> barrier_hook_;
  ShardedStats stats_;
  mutable std::vector<PeekCache> peeks_;
  std::unique_ptr<WorkerPool> pool_;  // created on first threaded window
};

}  // namespace mic::sim
