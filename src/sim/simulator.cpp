#include "sim/simulator.hpp"

#include <algorithm>

namespace mic::sim {

Simulator::~Simulator() {
  // Pending callbacks own resources (captured shared_ptrs, heap fallback
  // allocations); destroy them explicitly since the pool holds raw storage.
  for (std::uint32_t i = 0; i < stats_.nodes_allocated; ++i) {
    Node* node = node_at(i);
    if (node->state == kPending) callback_of(node).reset();
  }
}

Simulator::Node* Simulator::acquire_node() {
  if (free_head_ == kNoFreeNode) {
    auto chunk = std::make_unique<Chunk>();
    const std::uint32_t base = stats_.nodes_allocated;
    MIC_ASSERT_MSG(base <= 0xffffffffu - kChunkNodes, "event pool exhausted");
    // Thread the fresh chunk onto the freelist back to front so nodes are
    // handed out in index order (deterministic, cache friendly).
    for (std::uint32_t i = kChunkNodes; i-- > 0;) {
      Node* node = &chunk->nodes[i];
      node->index = base + i;
      node->gen = 1;  // never 0: keeps every EventId distinct from 0
      node->free_next = free_head_;
      free_head_ = node->index;
    }
    chunks_.push_back(std::move(chunk));
    stats_.nodes_allocated = base + kChunkNodes;
  }
  Node* node = node_at(free_head_);
  free_head_ = node->free_next;
  return node;
}

void Simulator::release_node(Node* node) {
  callback_of(node).reset();
  node->state = kFree;
  ++node->gen;  // invalidate outstanding EventIds and slot entries
  node->free_next = free_head_;
  free_head_ = node->index;
}

Simulator::Node* Simulator::lookup(EventId id) const {
  const std::uint64_t index_plus_one = id >> 32;
  if (index_plus_one == 0) return nullptr;  // id 0 and small ids: invalid
  const auto index = static_cast<std::uint32_t>(index_plus_one - 1);
  if (index >= stats_.nodes_allocated) return nullptr;
  Node* node = node_at(index);
  if (node->state != kPending) return nullptr;  // fired, cancelled, free
  if (node->gen != static_cast<std::uint32_t>(id)) return nullptr;  // stale
  return node;
}

void Simulator::cancel(EventId id) {
  MIC_ASSERT_MSG(!frozen_, "cancel on a frozen engine (cross-shard cancel "
                           "during a parallel window)");
  Node* node = lookup(id);
  if (node == nullptr) return;  // never scheduled, fired, or done
  release_node(node);  // gen bump turns the slot entry into a tombstone
  --live_events_;
  ++stats_.cancelled;
  if (++stale_entries_ > live_events_ + kSweepSlack) sweep_stale();
}

void Simulator::file(const Entry& entry) {
  // Level = index of the highest bit in which `when` differs from the
  // cursor, / 6: the coarsest wheel digit that still distinguishes them.
  const std::uint64_t diff = entry.when ^ cursor_;
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
  if (level >= kLevels) {
    overflow_.entries.push_back(entry);
    return;
  }
  const auto slot = static_cast<std::uint32_t>(
      (entry.when >> (level * kSlotBits)) & (kSlotsPerLevel - 1));
  if (level == 0) {
    // The event fires within 64 ns of simulated time -- i.e. within a
    // handful of pops.  Start pulling its node and callback lines now so
    // the fire path does not stall on two cold loads.
    __builtin_prefetch(node_at(entry.index), 0, 1);
    __builtin_prefetch(&callback_at(entry.index), 0, 1);
  }
  occupied_[level] |= 1ULL << slot;
  // FIFO append: slot-local order is insertion order (SIM-1).
  wheel_[level][slot].entries.push_back(entry);
}

void Simulator::cascade(int level, int slot) {
  // Refile the whole slot relative to the advanced cursor.  The entries
  // are a contiguous array walked front to back (FIFO-preserving, and a
  // pure prefetchable stream -- no node memory is touched); every entry
  // lands strictly below `level` because its time now agrees with the
  // cursor on all digits >= level, so file() cannot append to this slot
  // while we iterate.
  Slot& source = wheel_[level][slot];
  occupied_[level] &= ~(1ULL << static_cast<std::uint32_t>(slot));
  for (std::size_t i = source.next; i < source.entries.size(); ++i) {
    file(source.entries[i]);
    ++stats_.cascades;
  }
  source.entries.clear();  // keeps capacity: steady state allocates nothing
  source.next = 0;
}

void Simulator::sweep_stale() {
  // Compact every slot down to its live entries.  Triggered once
  // tombstones outnumber live events + kSweepSlack, so the cost is O(1)
  // amortized per cancel and slot memory stays O(live events).
  // Compaction removes entries without reordering the survivors, so
  // SIM-1 slot-local FIFO order is untouched.
  const auto compact = [this](Slot& slot) {
    std::size_t out = 0;
    for (std::size_t i = slot.next; i < slot.entries.size(); ++i) {
      if (entry_live(slot.entries[i])) slot.entries[out++] = slot.entries[i];
    }
    slot.entries.resize(out);
    slot.next = 0;
    return out != 0;
  };
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlotsPerLevel; ++slot) {
      if ((occupied_[level] >> slot) & 1) {
        if (!compact(wheel_[level][slot])) {
          occupied_[level] &= ~(1ULL << slot);
        }
      }
    }
  }
  compact(overflow_);
  stale_entries_ = 0;
}

void Simulator::reset_empty_wheel() {
  for (int level = 0; level < kLevels; ++level) {
    std::uint64_t bits = occupied_[level];
    while (bits != 0) {
      const int slot = std::countr_zero(bits);
      bits &= bits - 1;
      wheel_[level][slot].entries.clear();
      wheel_[level][slot].next = 0;
    }
    occupied_[level] = 0;
  }
  overflow_.entries.clear();
  overflow_.next = 0;
  stale_entries_ = 0;
  cursor_ = now_;
}

Simulator::Node* Simulator::pop_next(SimTime limit) {
  for (;;) {
    // Level 0: 1-ns slots, so the lowest occupied slot at or after the
    // cursor holds the globally earliest events, already in FIFO order.
    {
      const auto cur =
          static_cast<std::uint32_t>(cursor_ & (kSlotsPerLevel - 1));
      std::uint64_t mask = occupied_[0] & (~0ULL << cur);
      while (mask != 0) {
        const int slot = std::countr_zero(mask);
        Slot& s = wheel_[0][slot];
        // Drop tombstones until a live entry fronts the slot.
        while (s.next < s.entries.size()) {
          const Entry entry = s.entries[s.next];
          // Fetch the callback line in parallel with the node line the
          // liveness check is about to stall on.
          __builtin_prefetch(&callback_at(entry.index), 0, 1);
          if (!entry_live(entry)) {
            ++s.next;
            --stale_entries_;
            continue;
          }
          if (entry.when > limit) return nullptr;
          ++s.next;
          if (s.next == s.entries.size()) {
            s.entries.clear();
            s.next = 0;
            occupied_[0] &= ~(1ULL << slot);
          }
          cursor_ = entry.when;
          now_ = entry.when;
          return node_at(entry.index);
        }
        // Slot was all tombstones: retire it and try the next one.
        s.entries.clear();
        s.next = 0;
        occupied_[0] &= ~(1ULL << slot);
        mask &= mask - 1;
      }
    }
    // Higher levels: cascade the earliest occupied slot at or after the
    // cursor's digit down one level, then rescan.  Slots at the cursor's
    // own digit (for level >= 1) are empty by construction -- they were
    // cascaded when the cursor entered their range -- so the earliest
    // pending event always lives at or after `cur` on every level.
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      const auto cur = static_cast<std::uint32_t>(
          (cursor_ >> (level * kSlotBits)) & (kSlotsPerLevel - 1));
      const std::uint64_t mask = occupied_[level] & (~0ULL << cur);
      if (mask == 0) continue;
      const int slot = std::countr_zero(mask);
      // First instant covered by the slot; nothing pending precedes it.
      const SimTime epoch =
          cursor_ & ~((1ULL << ((level + 1) * kSlotBits)) - 1);
      const SimTime start =
          epoch | (static_cast<SimTime>(slot) << (level * kSlotBits));
      if (start > limit) return nullptr;
      cursor_ = std::max(cursor_, start);
      cascade(level, slot);
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Wheel empty: pull anything on the overflow list that fits within
    // 2^48 ns of its earliest member, then rescan.  Tombstones may drag
    // min_when below the earliest live event; that only makes the cursor
    // jump conservative, never wrong.
    if (!overflow_.entries.empty()) {
      SimTime min_when = kNever;
      for (const Entry& entry : overflow_.entries) {
        min_when = std::min(min_when, entry.when);
      }
      if (min_when > limit) return nullptr;
      cursor_ = min_when;  // safe: wheel empty, no pending event precedes
      std::size_t keep = 0;
      // In entry order: preserves FIFO for same-timestamp events (SIM-1).
      for (const Entry& entry : overflow_.entries) {
        if ((entry.when ^ cursor_) >> kWheelBits == 0) {
          file(entry);
        } else {
          overflow_.entries[keep++] = entry;
        }
      }
      overflow_.entries.resize(keep);
      continue;
    }
    return nullptr;
  }
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  // A coordinated engine hands the whole run to the ShardedSimulator: the
  // fabric-facing engine is just one voice in a multi-engine interleave.
  if (coordinator_ != nullptr) return coordinator_->coordinate_run(deadline);
  return run_until_local(deadline);
}

void Simulator::fire_node(Node* node) {
  // The node is unlinked but NOT yet recycled while its callback runs:
  // re-entrant schedule_at() calls allocate other nodes, and a re-entrant
  // cancel() of this very id is rejected by the kFiring state.
  node->state = kFiring;
  --live_events_;
  ++executed_;
  ++stats_.fired;
  callback_of(node)();
  release_node(node);
}

bool Simulator::fire_next(SimTime limit) {
  Node* node = pop_next(limit);
  if (node == nullptr) return false;
  fire_node(node);
  return true;
}

void Simulator::finish_drain() {
  MIC_ASSERT_MSG(live_events_ == 0, "finish_drain with live events pending");
  reset_empty_wheel();
}

std::optional<Simulator::PeekInfo> Simulator::peek_next() const {
  // Read-only mirror of pop_next's search order.  It must not cascade:
  // pop_next may legally advance cursor_ while hunting, but a peek runs
  // while other engines still own the present, and moving the cursor past
  // a now_ that is about to be advanced would strand later schedule_at
  // calls in the wheel's past (the PR-6 cursor-overshoot bug).
  //
  // Level 0 first: every entry in a level-0 slot shares one timestamp (a
  // slot spans 1 ns and holds current-rotation events only -- a different
  // rotation differs in a bit >= 6 and files at level >= 1), and slot-local
  // FIFO is insertion order, so the first live entry of the lowest occupied
  // slot at/after the cursor digit is the engine's earliest event.
  {
    const auto cur = static_cast<std::uint32_t>(cursor_ & (kSlotsPerLevel - 1));
    std::uint64_t mask = occupied_[0] & (~0ULL << cur);
    while (mask != 0) {
      const int slot = std::countr_zero(mask);
      const Slot& s = wheel_[0][slot];
      for (std::size_t i = s.next; i < s.entries.size(); ++i) {
        if (entry_live(s.entries[i])) {
          return PeekInfo{s.entries[i].when,
                          node_at(s.entries[i].index)->seq};
        }
      }
      mask &= mask - 1;
    }
  }
  // Higher levels: the first level with a live entry owns the minimum (a
  // live event on level l+1 starts at or after the end of every level-l
  // range at/after the cursor digit).  Within the winning slot entries are
  // not time-sorted, so take the explicit (when, seq) minimum over the
  // whole slot -- seq is unique, so the order is total.
  for (int level = 1; level < kLevels; ++level) {
    const auto cur = static_cast<std::uint32_t>(
        (cursor_ >> (level * kSlotBits)) & (kSlotsPerLevel - 1));
    std::uint64_t mask = occupied_[level] & (~0ULL << cur);
    std::optional<PeekInfo> best;
    while (mask != 0) {
      const int slot = std::countr_zero(mask);
      const Slot& s = wheel_[level][slot];
      for (std::size_t i = s.next; i < s.entries.size(); ++i) {
        if (!entry_live(s.entries[i])) continue;
        const PeekInfo candidate{s.entries[i].when,
                                 node_at(s.entries[i].index)->seq};
        if (!best || candidate.when < best->when ||
            (candidate.when == best->when && candidate.seq < best->seq)) {
          best = candidate;
        }
      }
      if (best) return best;  // earlier slots in this level beat later ones
      mask &= mask - 1;       // all-tombstone slot: keep scanning the level
    }
  }
  // Overflow: unordered, and everything in it is >= cursor_ + 2^48, i.e.
  // after anything fileable in the wheel -- scan for the explicit minimum.
  std::optional<PeekInfo> best;
  for (std::size_t i = overflow_.next; i < overflow_.entries.size(); ++i) {
    if (!entry_live(overflow_.entries[i])) continue;
    const PeekInfo candidate{overflow_.entries[i].when,
                             node_at(overflow_.entries[i].index)->seq};
    if (!best || candidate.when < best->when ||
        (candidate.when == best->when && candidate.seq < best->seq)) {
      best = candidate;
    }
  }
  return best;
}

std::uint64_t Simulator::run_until_local(SimTime deadline) {
  std::uint64_t ran = 0;
  while (Node* node = pop_next(deadline)) {
    fire_node(node);
    ++ran;
  }
  if (deadline == kNever) {
    // A full drain consumed every live event, so anything left in the
    // wheel is tombstones -- and the cursor may have chased them PAST
    // now_ (a cancelled far-future timer still pulls cascades toward its
    // slot).  Left alone, that breaks filing: a later schedule_at(when)
    // with now_ <= when < cursor_ would land in the wheel's past, in a
    // slot no scan revisits, and the event would never fire.  Purge the
    // corpses and re-anchor the cursor, restoring the invariant that
    // cursor_ <= now_ whenever user code can schedule.
    MIC_ASSERT_MSG(live_events_ == 0, "full drain left live events behind");
    reset_empty_wheel();
  }
  // pop_next returning null proves nothing is pending at or before
  // `deadline`, so the clock may advance to the requested horizon.
  if (deadline != kNever && deadline > now_) now_ = deadline;
  return ran;
}

}  // namespace mic::sim
