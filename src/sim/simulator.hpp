// Discrete-event simulation core: a hierarchical timing wheel.
//
// A single-threaded event loop: events fire in (time, insertion-sequence)
// order, which makes runs bit-for-bit deterministic for a fixed seed
// (invariant SIM-1).  The engine is a Varghese/Lauck hierarchical timing
// wheel sized for million-flow workloads:
//
//   * 8 levels x 64 slots, 1 ns per level-0 tick, covering 2^48 ns
//     (~3.26 simulated days) ahead of the wheel cursor; anything farther
//     out parks on an overflow list and is refiled when the cursor
//     approaches.
//   * schedule / fire / cancel are O(1) amortized: filing an event is a
//     couple of bit operations plus a slot append, firing scans per-level
//     occupancy bitmaps with countr_zero, and cancel just bumps the
//     event's generation -- the slot entry it leaves behind fails the
//     generation check and is dropped at pop time (or compacted by an
//     amortized sweep that keeps stale entries bounded by live ones).
//   * slots are flat vectors of 16-byte (when, index, gen) entries, so a
//     cascade is a contiguous read stream feeding contiguous appends --
//     hardware prefetch instead of a pointer chase through cold nodes.
//   * event state lives in a chunked pool, hot/cold split: a 16-byte Node
//     (generation + lifecycle) next to a separate callback slot with a
//     fixed inline buffer (heap fallback for oversized captures), so the
//     steady state allocates nothing per event and the wheel machinery
//     never touches callback bytes.
//
// SIM-1 ordering on the wheel (proof sketch; restated in DESIGN.md §3f):
// a level-0 slot spans exactly one nanosecond, so every event in it shares
// one timestamp and slot-local FIFO order *is* insertion order.  Events
// reach a level-0 slot either by direct filing (when - cursor < 64) or by
// cascading down from a higher level; a level-l slot is always cascaded in
// bulk -- in entry order, which preserves FIFO -- when the cursor enters
// its time range, i.e. strictly before any direct filing could target the
// level-0 slots inside that range (direct filing at level 0 requires the
// cursor to already be within 64 ns of the event).  Hence cascaded
// predecessors always land in a level-0 slot before same-timestamp
// newcomers, and (time, insertion-sequence) order is exact, matching the
// binary-heap ReferenceSimulator event for event.  Stale entries (from
// cancels) are skipped, and compaction only ever removes entries, so
// neither changes the relative order of live ones.
//
// The original heap engine survives as sim::ReferenceSimulator, the
// differential oracle (invariant SIM-2, tests/test_simulator_diff.cpp).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace mic::sim {

/// Multi-engine coordinator hook (implemented by sim::ShardedSimulator).
/// When installed on an engine, run_until()/idle() route through the
/// coordinator, which interleaves several engines and calls back into the
/// *_local entry points below.  Engines without a coordinator behave
/// exactly as before -- single-shard fabrics never pay for this.
class RunCoordinator {
 public:
  virtual ~RunCoordinator() = default;
  virtual std::uint64_t coordinate_run(SimTime deadline) = 0;
  virtual bool coordinate_idle() const = 0;
};

/// Opaque event handle.  Internally `(pool_index + 1) << 32 | generation`,
/// so 0 is never a valid id (callers use 0 as "no timer armed") and a
/// stale handle -- the event fired or was cancelled, and possibly the node
/// was reused -- fails the generation check and cancels nothing.
using EventId = std::uint64_t;

/// Scheduler health counters, exposed for tests and benchmarks.  In
/// particular `nodes_allocated` is the pool high-water mark: a long-lived
/// simulation that schedules and cancels heartbeat timers forever must not
/// grow it (the old heap engine grew tombstone sets without bound).
struct SchedulerStats {
  std::uint64_t scheduled = 0;       ///< schedule_at/schedule_in calls
  std::uint64_t fired = 0;           ///< callbacks executed
  std::uint64_t cancelled = 0;       ///< live events cancelled
  std::uint64_t cascades = 0;        ///< node re-filings while descending
  std::uint64_t heap_callbacks = 0;  ///< captures too big for the node
  std::uint32_t nodes_allocated = 0; ///< pool high-water mark, in nodes
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedule a callback at an absolute time >= now().
  template <typename F>
  EventId schedule_at(SimTime when, F&& cb) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>,
                  "event callbacks take no arguments");
    MIC_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    MIC_ASSERT_MSG(!frozen_, "schedule on a frozen engine (cross-shard "
                             "scheduling during a parallel window)");
    Node* node = acquire_node();
    if (callback_of(node).emplace(std::forward<F>(cb))) {
      ++stats_.heap_callbacks;
    }
    node->state = kPending;
    node->seq = next_seq();
    file(Entry{when, node->index, node->gen});
    ++live_events_;
    ++stats_.scheduled;
    return (static_cast<EventId>(node->index + 1) << 32) | node->gen;
  }

  /// Schedule a callback `delay` from now.
  template <typename F>
  EventId schedule_in(SimTime delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event in O(1) amortized: the node is recycled
  /// immediately (so schedule/cancel churn cannot grow the pool) and its
  /// generation bumped, which turns the slot entry into a tombstone that
  /// the wheel drops on contact.  Tombstones are bounded: once they
  /// outnumber live events by kSweepSlack, one sweep compacts every slot.
  /// Cancelling an already-fired, already-cancelled, or never-issued id is
  /// a no-op (the generation check rejects stale handles), so a retired id
  /// can neither corrupt an unrelated event that reused the node nor
  /// decrement the live count (which would make idle() report true with
  /// live events pending).
  void cancel(EventId id);

  /// Run until the event queue drains or simulated time exceeds
  /// `deadline`.  Boundary semantics, pinned by Simulator.RunUntil* tests:
  ///   * events with `when == deadline` DO fire;
  ///   * a callback that calls schedule_at(now()) fires the new event in
  ///     the SAME pass (time never advances past an event at `now()`);
  ///   * on return, now() == deadline whenever `deadline != kNever` and
  ///     the clock had not already passed it -- even if no event fired.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline = kNever);

  /// True if no live (non-cancelled) events remain.
  bool idle() const noexcept {
    return coordinator_ != nullptr ? coordinator_->coordinate_idle()
                                   : live_events_ == 0;
  }

  std::uint64_t events_executed() const noexcept { return executed_; }

  const SchedulerStats& stats() const noexcept { return stats_; }

  // --- multi-engine (ShardedSimulator) surface ------------------------------
  //
  // Everything below exists so several engines can be interleaved
  // deterministically: a coordinator steps the engine event by event (or in
  // lookahead windows) and merges by the (when, seq) key, where `seq` is a
  // schedule-order sequence number.  A lone engine assigns seqs from its own
  // counter and never reads them back, so the classic path is unchanged.

  /// Earliest live event, by (when, seq).  Strictly read-only: unlike
  /// pop_next it never cascades, so it cannot advance cursor_ past a future
  /// now_ (the PR-6 cursor-overshoot trap).  O(occupied slots) worst case;
  /// the coordinator caches the result against change_stamp().
  struct PeekInfo {
    SimTime when = 0;
    std::uint64_t seq = 0;
  };
  std::optional<PeekInfo> peek_next() const;

  /// Pop and execute exactly one event with when <= limit; advances now_ to
  /// its timestamp.  Returns false (clock untouched) when none qualifies.
  bool fire_next(SimTime limit);

  /// run_until without coordinator delegation: the coordinator's way to run
  /// this engine over a closed window.  Public for the coordinator and for
  /// engine-level tests; semantics identical to the documented run_until.
  std::uint64_t run_until_local(SimTime deadline = kNever);

  bool idle_local() const noexcept { return live_events_ == 0; }

  /// Move the clock forward without firing anything (never backward).  The
  /// coordinator aligns every engine's now() before each serially fired
  /// event so callbacks that schedule relative to "now" on *another* engine
  /// (controller timers, client watchdogs) see the global instant.
  void advance_clock_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

  /// After a coordinated full drain (every engine idle), purge tombstones
  /// and re-anchor the cursor -- the reset run_until(kNever) performs for a
  /// lone engine.  Asserts no live events remain.
  void finish_drain();

  /// Seq source selection.  Serial phases share one counter across engines
  /// (global schedule order = single-engine insertion order); parallel
  /// windows give each engine a private strided range so concurrently
  /// issued seqs are disjoint and deterministic per shard.
  void use_shared_seq(std::uint64_t* counter) noexcept {
    seq_shared_ = counter;
  }
  void use_local_seq(std::uint64_t start, std::uint64_t stride) noexcept {
    seq_shared_ = nullptr;
    seq_next_ = start;
    seq_stride_ = stride;
  }
  std::uint64_t local_seq_cursor() const noexcept { return seq_next_; }

  /// Debug guard: a frozen engine asserts on schedule_at/cancel.  The
  /// coordinator freezes the global engine while shard threads run, turning
  /// any cross-shard scheduling race into a deterministic crash.
  void set_frozen(bool frozen) noexcept { frozen_ = frozen; }

  /// Changes whenever the pending-event set may have changed (schedule,
  /// cancel or fire); each op increments at least one addend and none
  /// decrement, so equal stamps imply an unchanged peek_next().
  std::uint64_t change_stamp() const noexcept {
    return stats_.scheduled + stats_.cancelled + stats_.fired;
  }

  void set_coordinator(RunCoordinator* coordinator) noexcept {
    coordinator_ = coordinator;
  }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;  // 64
  static constexpr int kLevels = 8;
  static constexpr int kWheelBits = kLevels * kSlotBits;  // 48
  static constexpr std::size_t kInlineBytes = 32;
  static constexpr std::uint32_t kChunkNodes = 256;
  // Tombstone budget: a stale-entry sweep runs once cancels have left more
  // dead entries behind than live events + this slack, so slot memory is
  // O(live) with O(1) amortized cancel cost.
  static constexpr std::uint64_t kSweepSlack = 4096;

  enum NodeState : std::uint8_t { kFree, kPending, kFiring };

  // Hot/cold split: the wheel shuffles 16-byte slot entries by the
  // million, but a node is touched only at schedule / fire / cancel and a
  // callback exactly twice (construct, invoke+destroy).  Keeping wheel
  // traffic out of node and callback memory is what makes cascades stream.
  struct Node {
    std::uint32_t index = 0;      // position in the pool, fixed at allocation
    std::uint32_t gen = 0;        // bumped on recycle; low half of the EventId
    std::uint32_t free_next = 0;  // freelist link (pool index) while kFree
    std::uint8_t state = kFree;
    // Schedule-order sequence number: the multi-engine merge key (cold --
    // only peek_next reads it; slot entries and the pop path never do).
    std::uint64_t seq = 0;
  };

  /// What actually sits in a wheel slot: the timestamp plus the (index,
  /// gen) pair naming the pool node.  Cancelling bumps the node's gen and
  /// leaves the entry behind as a tombstone; pop_next and sweep_stale drop
  /// entries whose generation no longer matches.
  struct Entry {
    SimTime when;
    std::uint32_t index;
    std::uint32_t gen;
  };

  struct Callback {
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];

    void operator()() { invoke(storage); }
    void reset() {
      destroy(storage);
      invoke = nullptr;
      destroy = nullptr;
    }

    /// Constructs the callable into `storage` (heap fallback for captures
    /// larger than kInlineBytes; returns true in that case).
    template <typename F>
    bool emplace(F&& cb) {
      using D = std::decay_t<F>;
      if constexpr (sizeof(D) <= kInlineBytes &&
                    alignof(D) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(storage)) D(std::forward<F>(cb));
        invoke = [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); };
        destroy = [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); };
        return false;
      } else {
        ::new (static_cast<void*>(storage)) D*(new D(std::forward<F>(cb)));
        invoke = [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); };
        destroy = [](void* p) {
          delete *std::launder(reinterpret_cast<D**>(p));
        };
        return true;
      }
    }
  };

  /// A slot is a flat FIFO of entries: `entries[next..]` are still
  /// pending, in insertion order (SIM-1).  `clear()` keeps capacity, so a
  /// steady-state wheel stops allocating.
  struct Slot {
    std::vector<Entry> entries;
    std::size_t next = 0;
  };

  struct Chunk {
    Node nodes[kChunkNodes];
    Callback callbacks[kChunkNodes];
  };

  Node* node_at(std::uint32_t index) const {
    return &chunks_[index / kChunkNodes]->nodes[index % kChunkNodes];
  }
  Callback& callback_at(std::uint32_t index) const {
    return chunks_[index / kChunkNodes]->callbacks[index % kChunkNodes];
  }
  Callback& callback_of(const Node* node) const {
    return callback_at(node->index);
  }

  Node* acquire_node();
  void release_node(Node* node);
  Node* lookup(EventId id) const;
  bool entry_live(const Entry& entry) const {
    const Node* node = node_at(entry.index);
    return node->state == kPending && node->gen == entry.gen;
  }

  void file(const Entry& entry);
  void cascade(int level, int slot);
  void sweep_stale();
  /// Clears every slot and re-anchors cursor_ at now_.  Only legal when
  /// no live events remain (all entries are tombstones): a full drain can
  /// leave the cursor beyond now_ after chasing cancelled far-future
  /// timers, which would misfile later schedule_at(now_ <= when <
  /// cursor_) calls into slots no scan revisits.
  void reset_empty_wheel();
  /// Pops the earliest live event with when <= limit, advancing cursor_
  /// and now_ to its timestamp; returns nullptr (clocks untouched by the
  /// final step) when nothing qualifies.
  Node* pop_next(SimTime limit);
  /// Executes one already-popped node (shared by run_until_local/fire_next).
  void fire_node(Node* node);

  std::uint64_t next_seq() noexcept {
    if (seq_shared_ != nullptr) return (*seq_shared_)++;
    const std::uint64_t seq = seq_next_;
    seq_next_ += seq_stride_;
    return seq;
  }

  SimTime now_ = 0;
  // Wheel reference time: cursor_ <= now_ whenever user code runs, and no
  // pending event precedes cursor_.  All slot arithmetic is relative to it.
  SimTime cursor_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t live_events_ = 0;
  SchedulerStats stats_;

  Slot wheel_[kLevels][kSlotsPerLevel];
  std::uint64_t occupied_[kLevels] = {};  // bit s: wheel_[level][s] nonempty
  Slot overflow_;  // events >= cursor_ + 2^48 ns, unordered

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint32_t free_head_ = kNoFreeNode;  // freelist via Node::free_next
  std::uint64_t stale_entries_ = 0;        // tombstones pending collection

  // Multi-engine state; all null/identity defaults for a lone engine.
  RunCoordinator* coordinator_ = nullptr;
  std::uint64_t* seq_shared_ = nullptr;
  std::uint64_t seq_next_ = 0;
  std::uint64_t seq_stride_ = 1;
  bool frozen_ = false;

  static constexpr std::uint32_t kNoFreeNode = 0xffffffffu;
};

}  // namespace mic::sim
