// Simulated time: 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace mic::sim {

using SimTime = std::uint64_t;  // nanoseconds

inline constexpr SimTime kNever = ~0ULL;

constexpr SimTime nanoseconds(std::uint64_t ns) noexcept { return ns; }
constexpr SimTime microseconds(std::uint64_t us) noexcept {
  return us * 1000ULL;
}
constexpr SimTime milliseconds(std::uint64_t ms) noexcept {
  return ms * 1000000ULL;
}
constexpr SimTime seconds(std::uint64_t s) noexcept {
  return s * 1000000000ULL;
}

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-9;
}
constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-6;
}
constexpr double to_micros(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-3;
}

/// Duration of serializing `bytes` onto a link of `bits_per_second`.
constexpr SimTime transmission_delay(std::uint64_t bytes,
                                     std::uint64_t bits_per_second) noexcept {
  // Round up so zero-cost transmission cannot happen on a finite link.
  const std::uint64_t bits = bytes * 8ULL;
  return (bits * 1000000000ULL + bits_per_second - 1) / bits_per_second;
}

}  // namespace mic::sim
