#include "switchd/flow_table.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mic::switchd {

std::size_t count_set_fields(const std::vector<Action>& actions) noexcept {
  std::size_t n = 0;
  for (const auto& action : actions) {
    if (std::holds_alternative<SetSrc>(action) ||
        std::holds_alternative<SetDst>(action) ||
        std::holds_alternative<SetSport>(action) ||
        std::holds_alternative<SetDport>(action) ||
        std::holds_alternative<SetMpls>(action) ||
        std::holds_alternative<PopMpls>(action)) {
      ++n;
    }
  }
  return n;
}

std::size_t select_bucket(const net::Packet& packet, std::size_t bucket_count,
                          std::uint64_t salt) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(packet.src.value);
  mix(packet.dst.value);
  mix(packet.sport);
  mix(packet.dport);
  mix(static_cast<std::uint64_t>(packet.proto));
  // FNV's low bits are weak (linear in the inputs' low bits); finish with
  // a full-avalanche scrambler before reducing.
  std::uint64_t state = h;
  return static_cast<std::size_t>(splitmix64(state) % bucket_count);
}

bool FlowTable::add_rule(FlowRule rule) {
  for (const auto& existing : rules_) {
    if (existing.priority == rule.priority && existing.match == rule.match) {
      return false;
    }
  }
  const auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule,
      [](const FlowRule& a, const FlowRule& b) {
        return a.priority > b.priority;
      });
  rules_.insert(pos, std::move(rule));
  return true;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const auto before = rules_.size();
  std::erase_if(rules_, [cookie](const FlowRule& r) {
    return r.cookie == cookie;
  });
  return before - rules_.size();
}

FlowRule* FlowTable::lookup(const net::Packet& packet, topo::PortId in_port,
                            std::uint32_t wire_bytes) {
  for (auto& rule : rules_) {
    if (rule.match.matches(packet, in_port)) {
      ++rule.packet_count;
      rule.byte_count += wire_bytes;
      return &rule;
    }
  }
  return nullptr;
}

bool FlowTable::add_group(GroupEntry group) {
  if (this->group(group.group_id) != nullptr) return false;
  groups_.push_back(std::move(group));
  return true;
}

std::size_t FlowTable::remove_groups_by_cookie(std::uint64_t cookie) {
  const auto before = groups_.size();
  std::erase_if(groups_, [cookie](const GroupEntry& g) {
    return g.cookie == cookie;
  });
  return before - groups_.size();
}

const GroupEntry* FlowTable::group(std::uint32_t group_id) const noexcept {
  for (const auto& g : groups_) {
    if (g.group_id == group_id) return &g;
  }
  return nullptr;
}

}  // namespace mic::switchd
