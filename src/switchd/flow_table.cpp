#include "switchd/flow_table.hpp"

#include <algorithm>
#include <string>

#include "common/rng.hpp"

namespace mic::switchd {

std::size_t count_set_fields(const std::vector<Action>& actions) noexcept {
  std::size_t n = 0;
  for (const auto& action : actions) {
    if (std::holds_alternative<SetSrc>(action) ||
        std::holds_alternative<SetDst>(action) ||
        std::holds_alternative<SetSport>(action) ||
        std::holds_alternative<SetDport>(action) ||
        std::holds_alternative<SetMpls>(action) ||
        std::holds_alternative<PopMpls>(action)) {
      ++n;
    }
  }
  return n;
}

std::size_t select_bucket(const net::Packet& packet, std::size_t bucket_count,
                          std::uint64_t salt) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(packet.src.value);
  mix(packet.dst.value);
  mix(packet.sport);
  mix(packet.dport);
  mix(static_cast<std::uint64_t>(packet.proto));
  // FNV's low bits are weak (linear in the inputs' low bits); finish with
  // a full-avalanche scrambler before reducing.
  std::uint64_t state = h;
  return static_cast<std::size_t>(splitmix64(state) % bucket_count);
}

std::size_t FlowTable::ExactKeyHash::operator()(
    const ExactKey& k) const noexcept {
  std::uint64_t state = (static_cast<std::uint64_t>(k.src.value) << 32) |
                        k.dst.value;
  state ^= (static_cast<std::uint64_t>(k.sport) << 48) |
           (static_cast<std::uint64_t>(k.dport) << 32) | k.mpls;
  state ^= static_cast<std::uint64_t>(k.in_port) << 16;
  return static_cast<std::size_t>(splitmix64(state));
}

FlowTable::ExactKey FlowTable::key_of(const net::Packet& packet,
                                      topo::PortId in_port) noexcept {
  return ExactKey{in_port, packet.src,  packet.dst,
                  packet.sport, packet.dport, packet.mpls};
}

void FlowTable::rebuild_index() {
  index_.clear();
  scan_rules_.clear();
  for (std::size_t pos = 0; pos < rules_.size(); ++pos) {
    const Match& m = rules_[pos].match;
    if (!m.is_exact()) {
      scan_rules_.push_back(pos);
      continue;
    }
    const ExactKey key{*m.in_port, *m.src, *m.dst, *m.sport, *m.dport,
                       m.mpls.value_or(net::kNoMpls)};
    // try_emplace keeps the first (highest-precedence) rule per key; any
    // later rule with the same key matches the same packets and always
    // loses, so it is unreachable from the index by construction.
    index_.try_emplace(key, pos);
  }
}

void FlowTable::clear() {
  rules_.clear();
  groups_.clear();
  index_.clear();
  scan_rules_.clear();
}

bool FlowTable::add_rule(FlowRule rule) {
  if (capacity_ != 0 && rules_.size() >= capacity_) return false;
  for (const auto& existing : rules_) {
    if (existing.priority == rule.priority && existing.match == rule.match) {
      return false;
    }
  }
  const auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule,
      [](const FlowRule& a, const FlowRule& b) {
        return a.priority > b.priority;
      });
  rules_.insert(pos, std::move(rule));
  rebuild_index();
  return true;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const auto before = rules_.size();
  std::erase_if(rules_, [cookie](const FlowRule& r) {
    return r.cookie == cookie;
  });
  if (rules_.size() != before) rebuild_index();
  return before - rules_.size();
}

FlowTable::TierHit FlowTable::two_tier_find(
    const net::Packet& packet, topo::PortId in_port) const noexcept {
  // Tier 1: the exact-match index.  A hit pins the best fully-specified
  // candidate; key equality guarantees the rule matches the packet.
  std::size_t best = rules_.size();
  bool from_index = false;
  if (!index_.empty()) {
    const auto it = index_.find(key_of(packet, in_port));
    if (it != index_.end()) {
      best = it->second;
      from_index = true;
    }
  }
  // Tier 2: wildcard rules, in precedence order.  Only those preceding the
  // indexed candidate can still win; scan_rules_ is ascending so the first
  // match is the winner and positions past `best` stop the scan.
  for (const std::size_t pos : scan_rules_) {
    if (pos >= best) break;
    if (rules_[pos].match.matches(packet, in_port)) {
      best = pos;
      from_index = false;
      break;
    }
  }
  return {best, from_index};
}

FlowRule* FlowTable::lookup(const net::Packet& packet, topo::PortId in_port,
                            std::uint32_t wire_bytes) {
  ++stats_.lookups;
  const TierHit hit = two_tier_find(packet, in_port);
  if (hit.pos == rules_.size()) {
    ++stats_.misses;
    return nullptr;
  }
  hit.from_index ? ++stats_.index_hits : ++stats_.scan_fallbacks;
  FlowRule& rule = rules_[hit.pos];
  MIC_ASSERT(rule.match.matches(packet, in_port));
  ++rule.packet_count;
  rule.byte_count += wire_bytes;
  return &rule;
}

const FlowRule* FlowTable::reference_lookup(
    const net::Packet& packet, topo::PortId in_port) const noexcept {
  for (const auto& rule : rules_) {
    if (rule.match.matches(packet, in_port)) return &rule;
  }
  return nullptr;
}

std::size_t FlowTable::self_check(std::vector<std::string>& violations) const {
  const auto complain = [&violations](std::size_t pos, const char* what) {
    violations.push_back("rule #" + std::to_string(pos) + ": " + what);
  };

  // Structural: the two tiers partition the rule list, and each index
  // entry points at the first (highest-precedence) exact rule of its key.
  std::vector<bool> on_scan_tier(rules_.size(), false);
  std::size_t prev_scan = 0;
  for (std::size_t i = 0; i < scan_rules_.size(); ++i) {
    const std::size_t pos = scan_rules_[i];
    if (pos >= rules_.size()) {
      complain(pos, "scan tier points past the rule list");
      return 0;  // positions untrustworthy; probing would read garbage
    }
    if (i > 0 && pos <= prev_scan) {
      complain(pos, "scan tier out of precedence order");
    }
    prev_scan = pos;
    on_scan_tier[pos] = true;
    if (rules_[pos].match.is_exact()) {
      complain(pos, "fully-specified rule left on the scan tier");
    }
  }
  for (const auto& [key, pos] : index_) {
    if (pos >= rules_.size()) {
      complain(pos, "index entry points past the rule list");
      return 0;
    }
    const Match& m = rules_[pos].match;
    if (!m.is_exact()) {
      complain(pos, "index entry points at a wildcard rule");
      continue;
    }
    const ExactKey expect{*m.in_port, *m.src,  *m.dst,
                          *m.sport,   *m.dport, m.mpls.value_or(net::kNoMpls)};
    if (!(expect == key)) {
      complain(pos, "index entry filed under a foreign key");
    }
  }
  for (std::size_t pos = 0; pos < rules_.size(); ++pos) {
    const bool exact = rules_[pos].match.is_exact();
    if (!exact && !on_scan_tier[pos]) {
      complain(pos, "wildcard rule reachable from neither tier");
    }
  }

  // Behavioural: for a probe synthesized from each rule, the two-tier
  // winner must be the reference scan's winner.  Wildcard fields take
  // fixed off-path values so the probe exercises this rule's shape rather
  // than colliding with a random exact rule.
  std::size_t probes = 0;
  for (std::size_t pos = 0; pos < rules_.size(); ++pos) {
    const Match& m = rules_[pos].match;
    net::Packet probe;
    probe.src = m.src.value_or(net::Ipv4(203, 0, 113, 1));
    probe.dst = m.dst.value_or(net::Ipv4(203, 0, 113, 2));
    probe.sport = m.sport.value_or(64999);
    probe.dport = m.dport.value_or(64998);
    probe.mpls = m.require_no_mpls ? net::kNoMpls
                                   : m.mpls.value_or(net::kNoMpls);
    const topo::PortId in_port = m.in_port.value_or(0);
    const FlowRule* expected = reference_lookup(probe, in_port);
    const TierHit hit = two_tier_find(probe, in_port);
    const FlowRule* actual = hit.pos == rules_.size() ? nullptr
                                                      : &rules_[hit.pos];
    ++probes;
    if (expected != actual) {
      complain(pos, "two-tier winner differs from the reference scan");
    }
  }
  return probes;
}

bool FlowTable::add_group(GroupEntry group) {
  if (this->group(group.group_id) != nullptr) return false;
  groups_.push_back(std::move(group));
  return true;
}

std::size_t FlowTable::remove_groups_by_cookie(std::uint64_t cookie) {
  const auto before = groups_.size();
  std::erase_if(groups_, [cookie](const GroupEntry& g) {
    return g.cookie == cookie;
  });
  return before - groups_.size();
}

const GroupEntry* FlowTable::group(std::uint32_t group_id) const noexcept {
  for (const auto& g : groups_) {
    if (g.group_id == group_id) return &g;
  }
  return nullptr;
}

}  // namespace mic::switchd
