// OpenFlow-style flow table: priority-ordered rules with maskable match
// fields and an ordered action list.  This is the entire per-switch state
// MIC relies on -- the paper's MNs "can only modify the header of packets",
// i.e. execute set-field actions from rules the Mimic Controller installed.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "net/packet.hpp"
#include "topology/graph.hpp"

namespace mic::switchd {

/// Match on any subset of fields; an unset optional is a wildcard.
/// `mpls` matches the label value; `require_no_mpls` matches only untagged
/// packets (an unset `mpls` with require_no_mpls=false matches any label
/// state).
struct Match {
  std::optional<topo::PortId> in_port;
  std::optional<net::Ipv4> src;
  std::optional<net::Ipv4> dst;
  std::optional<net::L4Port> sport;
  std::optional<net::L4Port> dport;
  std::optional<net::MplsLabel> mpls;
  bool require_no_mpls = false;

  bool matches(const net::Packet& packet, topo::PortId in) const noexcept {
    if (in_port && *in_port != in) return false;
    if (src && *src != packet.src) return false;
    if (dst && *dst != packet.dst) return false;
    if (sport && *sport != packet.sport) return false;
    if (dport && *dport != packet.dport) return false;
    if (require_no_mpls && packet.mpls != net::kNoMpls) return false;
    if (mpls && *mpls != packet.mpls) return false;
    return true;
  }

  bool operator==(const Match&) const noexcept = default;
};

// --- actions ---------------------------------------------------------------

struct SetSrc { net::Ipv4 ip; };
struct SetDst { net::Ipv4 ip; };
struct SetSport { net::L4Port port; };
struct SetDport { net::L4Port port; };
struct SetMpls { net::MplsLabel label; };  // push or rewrite
struct PopMpls {};
struct Output { topo::PortId port; };
struct GroupAction { std::uint32_t group_id; };
struct ToController {};
struct DropAction {};

using Action = std::variant<SetSrc, SetDst, SetSport, SetDport, SetMpls,
                            PopMpls, Output, GroupAction, ToController,
                            DropAction>;

/// Number of header-rewriting set-field actions in a list (for CPU cost).
std::size_t count_set_fields(const std::vector<Action>& actions) noexcept;

struct FlowRule {
  std::uint16_t priority = 0;
  Match match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;  // owner tag; channels delete rules by cookie

  // Counters (mutable through the table).
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

enum class GroupType : std::uint8_t {
  /// Every bucket executes on its own copy of the packet.  MIC's
  /// partially-multicast mechanism uses one bucket per replicated copy.
  kAll,
  /// One bucket is chosen by a stable hash of the flow's addresses and
  /// ports -- OpenFlow's ECMP primitive, used by the default routing to
  /// spread common flows over equal-cost paths.
  kSelect,
};

struct GroupEntry {
  std::uint32_t group_id = 0;
  GroupType type = GroupType::kAll;
  std::vector<std::vector<Action>> buckets;
  std::uint64_t cookie = 0;
};

/// The SELECT-group bucket index for a packet: a stable 5-tuple hash
/// (labels excluded so tagging does not re-path a flow).  `salt`
/// decorrelates decisions across group instances -- without it every
/// ECMP stage on a path would pick the same bucket index, collapsing the
/// effective path diversity (real switches salt with the switch identity).
std::size_t select_bucket(const net::Packet& packet, std::size_t bucket_count,
                          std::uint64_t salt) noexcept;

class FlowTable {
 public:
  /// Insert a rule.  Duplicate (priority, match) pairs are rejected --
  /// this is the data-plane half of the collision avoidance story, and the
  /// collision audit in mic/collision_audit.hpp checks it globally.
  /// Returns false (and installs nothing) on duplicates.
  bool add_rule(FlowRule rule);

  /// Remove all rules with the given cookie; returns how many were removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  /// Highest-priority matching rule, or nullptr on table miss.  Counters
  /// are updated on hit.
  FlowRule* lookup(const net::Packet& packet, topo::PortId in_port,
                   std::uint32_t wire_bytes);

  bool add_group(GroupEntry group);
  std::size_t remove_groups_by_cookie(std::uint64_t cookie);
  const GroupEntry* group(std::uint32_t group_id) const noexcept;

  std::size_t rule_count() const noexcept { return rules_.size(); }
  std::size_t group_count() const noexcept { return groups_.size(); }
  std::uint64_t miss_count() const noexcept { return misses_; }
  void count_miss() noexcept { ++misses_; }

  const std::vector<FlowRule>& rules() const noexcept { return rules_; }

 private:
  // Sorted by descending priority; stable within equal priority
  // (first-installed wins, like OVS).
  std::vector<FlowRule> rules_;
  std::vector<GroupEntry> groups_;
  std::uint64_t misses_ = 0;
};

}  // namespace mic::switchd
