// OpenFlow-style flow table: priority-ordered rules with maskable match
// fields and an ordered action list.  This is the entire per-switch state
// MIC relies on -- the paper's MNs "can only modify the header of packets",
// i.e. execute set-field actions from rules the Mimic Controller installed.
//
// Lookup is two-tier.  Rules that pin every match field (in_port, src, dst,
// sport, dport, and the label state) -- every MN rewrite and decoy-drop
// rule the Mimic Controller installs -- live in an exact-match hash index;
// only rules with at least one wildcard field (L3 transit routes, ARP-style
// punts, `require_no_mpls` classifiers) stay on the priority-ordered scan
// path.  Priority semantics are preserved exactly: an indexed hit still
// loses to any higher-precedence wildcard rule, with ties broken by install
// order just like the plain scan.  `reference_lookup()` keeps the original
// linear scan alive as the oracle for the differential tests (invariant
// FT-1 in DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "net/packet.hpp"
#include "topology/graph.hpp"

namespace mic::switchd {

/// Match on any subset of fields; an unset optional is a wildcard.
/// `mpls` matches the label value; `require_no_mpls` matches only untagged
/// packets (an unset `mpls` with require_no_mpls=false matches any label
/// state).
struct Match {
  std::optional<topo::PortId> in_port;
  std::optional<net::Ipv4> src;
  std::optional<net::Ipv4> dst;
  std::optional<net::L4Port> sport;
  std::optional<net::L4Port> dport;
  std::optional<net::MplsLabel> mpls;
  bool require_no_mpls = false;

  bool matches(const net::Packet& packet, topo::PortId in) const noexcept {
    if (in_port && *in_port != in) return false;
    if (src && *src != packet.src) return false;
    if (dst && *dst != packet.dst) return false;
    if (sport && *sport != packet.sport) return false;
    if (dport && *dport != packet.dport) return false;
    if (require_no_mpls && packet.mpls != net::kNoMpls) return false;
    if (mpls && *mpls != packet.mpls) return false;
    return true;
  }

  bool operator==(const Match&) const noexcept = default;

  /// True when the match pins every field the lookup key covers: all five
  /// header fields plus the label state (an explicit label value or
  /// `require_no_mpls`).  Such a rule matches exactly one packet header, so
  /// it can be served from the exact-match index.  A contradictory match
  /// (`require_no_mpls` with a non-zero label) is not exact -- it matches
  /// nothing and is left to the scan tier, which agrees.
  bool is_exact() const noexcept {
    if (!in_port || !src || !dst || !sport || !dport) return false;
    if (mpls) return !require_no_mpls || *mpls == net::kNoMpls;
    return require_no_mpls;
  }
};

// --- actions ---------------------------------------------------------------

struct SetSrc { net::Ipv4 ip; bool operator==(const SetSrc&) const = default; };
struct SetDst { net::Ipv4 ip; bool operator==(const SetDst&) const = default; };
struct SetSport { net::L4Port port; bool operator==(const SetSport&) const = default; };
struct SetDport { net::L4Port port; bool operator==(const SetDport&) const = default; };
struct SetMpls { net::MplsLabel label; bool operator==(const SetMpls&) const = default; };  // push or rewrite
struct PopMpls { bool operator==(const PopMpls&) const = default; };
struct Output { topo::PortId port; bool operator==(const Output&) const = default; };
struct GroupAction { std::uint32_t group_id; bool operator==(const GroupAction&) const = default; };
struct ToController { bool operator==(const ToController&) const = default; };
struct DropAction { bool operator==(const DropAction&) const = default; };

using Action = std::variant<SetSrc, SetDst, SetSport, SetDport, SetMpls,
                            PopMpls, Output, GroupAction, ToController,
                            DropAction>;

/// Number of header-rewriting set-field actions in a list (for CPU cost).
std::size_t count_set_fields(const std::vector<Action>& actions) noexcept;

struct FlowRule {
  std::uint16_t priority = 0;
  Match match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;  // owner tag; channels delete rules by cookie

  // Counters (mutable through the table).
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

enum class GroupType : std::uint8_t {
  /// Every bucket executes on its own copy of the packet.  MIC's
  /// partially-multicast mechanism uses one bucket per replicated copy.
  kAll,
  /// One bucket is chosen by a stable hash of the flow's addresses and
  /// ports -- OpenFlow's ECMP primitive, used by the default routing to
  /// spread common flows over equal-cost paths.
  kSelect,
};

struct GroupEntry {
  std::uint32_t group_id = 0;
  GroupType type = GroupType::kAll;
  std::vector<std::vector<Action>> buckets;
  std::uint64_t cookie = 0;
};

/// The SELECT-group bucket index for a packet: a stable 5-tuple hash
/// (labels excluded so tagging does not re-path a flow).  `salt`
/// decorrelates decisions across group instances -- without it every
/// ECMP stage on a path would pick the same bucket index, collapsing the
/// effective path diversity (real switches salt with the switch identity).
std::size_t select_bucket(const net::Packet& packet, std::size_t bucket_count,
                          std::uint64_t salt) noexcept;

/// Lookup counters.  `lookups == index_hits + scan_fallbacks + misses`;
/// per-rule hit counts are the rules' own `packet_count` fields.
struct TableStats {
  std::uint64_t lookups = 0;          // total lookup() calls
  std::uint64_t index_hits = 0;       // resolved by the exact-match index
  std::uint64_t scan_fallbacks = 0;   // resolved by the wildcard scan tier
  std::uint64_t misses = 0;           // no rule matched

  TableStats& operator+=(const TableStats& o) noexcept {
    lookups += o.lookups;
    index_hits += o.index_hits;
    scan_fallbacks += o.scan_fallbacks;
    misses += o.misses;
    return *this;
  }
  bool operator==(const TableStats&) const noexcept = default;
};

class FlowTable {
 public:
  /// Insert a rule.  Duplicate (priority, match) pairs are rejected --
  /// this is the data-plane half of the collision avoidance story, and the
  /// collision audit in mic/collision_audit.hpp checks it globally.
  /// Returns false (and installs nothing) on duplicates or when the table
  /// is at capacity (OFPFMFC_TABLE_FULL).
  bool add_rule(FlowRule rule);

  /// Bound the rule count (hardware TCAMs are finite); 0 = unlimited.
  void set_capacity(std::size_t max_rules) noexcept {
    capacity_ = max_rules;
  }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Drop every rule and group (a switch crash loses all soft state).
  /// Stats survive: they describe the device's history, not its table.
  void clear();

  /// Remove all rules with the given cookie; returns how many were removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  /// Highest-priority matching rule, or nullptr on table miss.  Counters
  /// (per-rule and table stats, including misses) are updated.  Served by
  /// the exact-match index when the winner is a fully-specified rule, by
  /// the wildcard scan otherwise.
  FlowRule* lookup(const net::Packet& packet, topo::PortId in_port,
                   std::uint32_t wire_bytes);

  /// The original priority-ordered linear scan over every rule, retained
  /// verbatim as the differential-testing oracle.  Touches no counters.
  /// For every packet, `lookup()` must return this exact rule (FT-1).
  const FlowRule* reference_lookup(const net::Packet& packet,
                                   topo::PortId in_port) const noexcept;

  /// Runtime audit of FT-1 (registered as "FT-1" in audit::Registry).
  /// Structural half: every rule is covered by exactly one tier and every
  /// index entry points at the highest-precedence exact rule for its key.
  /// Behavioural half: for a probe packet synthesized from each rule's
  /// match (wildcards filled with fixed off-path values), the counter-free
  /// two-tier winner equals reference_lookup()'s.  Appends one message per
  /// violation to `violations`; returns the number of probes checked.
  std::size_t self_check(std::vector<std::string>& violations) const;

  bool add_group(GroupEntry group);
  std::size_t remove_groups_by_cookie(std::uint64_t cookie);
  const GroupEntry* group(std::uint32_t group_id) const noexcept;

  std::size_t rule_count() const noexcept { return rules_.size(); }
  std::size_t group_count() const noexcept { return groups_.size(); }
  std::uint64_t miss_count() const noexcept { return stats_.misses; }

  const TableStats& stats() const noexcept { return stats_; }
  /// Rules currently served by the exact-match index (the rest scan).
  std::size_t indexed_rule_count() const noexcept { return index_.size(); }

  const std::vector<FlowRule>& rules() const noexcept { return rules_; }
  const std::vector<GroupEntry>& groups() const noexcept { return groups_; }

 private:
  /// Concrete values of every indexable field: the hash-index key.  A
  /// packet's key equals an exact rule's key iff the rule matches it.
  struct ExactKey {
    topo::PortId in_port = 0;
    net::Ipv4 src;
    net::Ipv4 dst;
    net::L4Port sport = 0;
    net::L4Port dport = 0;
    net::MplsLabel mpls = net::kNoMpls;

    bool operator==(const ExactKey&) const noexcept = default;
  };
  struct ExactKeyHash {
    std::size_t operator()(const ExactKey& k) const noexcept;
  };

  static ExactKey key_of(const net::Packet& packet,
                         topo::PortId in_port) noexcept;

  /// The two-tier winner's position in rules_ (rules_.size() on miss) and
  /// which tier resolved it.  Pure -- no counters -- so lookup() and the
  /// FT-1 self_check() share one implementation.
  struct TierHit {
    std::size_t pos;
    bool from_index;
  };
  TierHit two_tier_find(const net::Packet& packet,
                        topo::PortId in_port) const noexcept;

  /// Recompute the index and the wildcard scan list after any mutation.
  /// Positions are into rules_, so both survive vector reallocation.
  void rebuild_index();

  // Sorted by descending priority; stable within equal priority
  // (first-installed wins, like OVS).
  std::vector<FlowRule> rules_;
  std::size_t capacity_ = 0;  // 0 = unlimited
  std::vector<GroupEntry> groups_;
  // key -> position of the highest-precedence exact rule with that key.
  std::unordered_map<ExactKey, std::size_t, ExactKeyHash> index_;
  // Positions of non-exact rules, ascending (i.e. in precedence order).
  std::vector<std::size_t> scan_rules_;
  TableStats stats_;
};

}  // namespace mic::switchd
