#include "switchd/sdn_switch.hpp"

#include "common/log.hpp"
#include "sim/sharded_simulator.hpp"

namespace mic::switchd {

void SdnSwitch::receive(const net::Packet& packet, topo::PortId in_port) {
  // The lookup itself costs CPU; the packet continues processing when the
  // (serial) switch CPU gets to it.  It waits in the ingress FIFO until
  // then: completion times are non-decreasing and same-time events fire in
  // insertion order, so the FIFO front is always the packet whose event is
  // firing and the event captures nothing but `this`.
  const sim::SimTime done =
      cpu_.charge(local_sim().now(), costs_.switch_lookup_cycles);
  ingress_fifo_.emplace_back(packet, in_port);
  local_sim().schedule_at(done, [this] {
    net::Packet pkt = std::move(ingress_fifo_.front().first);
    const topo::PortId port = ingress_fifo_.front().second;
    ingress_fifo_.pop_front();
    FlowRule* rule = table_.lookup(pkt, port, pkt.wire_bytes());
    if (rule == nullptr) {
      if (packet_in_) {
        // Packet-in reaches into the controller; a transient table miss
        // during a parallel window would cross shards unsynchronized.
        sim::ShardedSimulator::assert_serial("packet-in inside a window");
        packet_in_(node_, pkt, port);
      } else {
        ++dropped_;
      }
      return;
    }
    apply_actions(rule->actions, std::move(pkt), port, /*allow_group=*/true);
  });
}

void SdnSwitch::on_port_status(topo::PortId port, bool up) {
  if (port_status_.empty()) return;
  // The PHY event is debounced for detection_latency_ before the async
  // notification leaves the switch; the subscriber adds the control-channel
  // latency on top.  One debounce event fans out to every subscriber, in
  // subscription order, so adding a standby never perturbs the primary's
  // event sequence.
  network_->simulator().schedule_in(
      detection_latency_, [this, port, up] {
        for (const auto& handler : port_status_) {
          if (handler) handler(node_, port, up);
        }
      });
}

bool SdnSwitch::try_install(FlowRule rule) {
  if (install_fault_probability_ > 0.0 &&
      install_fault_rng_.chance(install_fault_probability_)) {
    ++installs_rejected_;
    return false;
  }
  if (!table_.add_rule(std::move(rule))) {
    ++installs_rejected_;
    return false;
  }
  return true;
}

bool SdnSwitch::try_install_group(GroupEntry group) {
  if (install_fault_probability_ > 0.0 &&
      install_fault_rng_.chance(install_fault_probability_)) {
    ++installs_rejected_;
    return false;
  }
  if (!table_.add_group(std::move(group))) {
    ++installs_rejected_;
    return false;
  }
  return true;
}

FlowDump SdnSwitch::dump(const DumpFilter& filter) const {
  ++dumps_served_;
  FlowDump out;
  for (const FlowRule& rule : table_.rules()) {
    if (filter.admits(rule.cookie)) out.rules.push_back(rule);
  }
  for (const GroupEntry& group : table_.groups()) {
    if (filter.admits(group.cookie)) out.groups.push_back(group);
  }
  return out;
}

void SdnSwitch::apply_actions(const std::vector<Action>& actions,
                              net::Packet packet, topo::PortId in_port,
                              bool allow_group) {
  const std::size_t rewrites = count_set_fields(actions);
  if (rewrites > 0) {
    cpu_.charge(local_sim().now(),
                costs_.switch_rewrite_cycles * static_cast<double>(rewrites));
  }

  // The last action that reads the packet takes it by move; only earlier
  // Outputs / group buckets in a fan-out list pay a copy.  (Drop never
  // reads, so it cannot be the last reader.)
  std::size_t last_reader = actions.size();
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (!std::holds_alternative<DropAction>(actions[i])) last_reader = i;
  }

  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& action = actions[i];
    const bool last = i == last_reader;
    if (const auto* set_src = std::get_if<SetSrc>(&action)) {
      packet.src = set_src->ip;
    } else if (const auto* set_dst = std::get_if<SetDst>(&action)) {
      packet.dst = set_dst->ip;
    } else if (const auto* set_sport = std::get_if<SetSport>(&action)) {
      packet.sport = set_sport->port;
    } else if (const auto* set_dport = std::get_if<SetDport>(&action)) {
      packet.dport = set_dport->port;
    } else if (const auto* set_mpls = std::get_if<SetMpls>(&action)) {
      packet.mpls = set_mpls->label;
    } else if (std::get_if<PopMpls>(&action)) {
      packet.mpls = net::kNoMpls;
    } else if (const auto* out = std::get_if<Output>(&action)) {
      ++forwarded_;
      if (last) {
        network_->transmit(node_, out->port, std::move(packet));
      } else {
        network_->transmit(node_, out->port, packet);
      }
    } else if (const auto* grp = std::get_if<GroupAction>(&action)) {
      MIC_ASSERT_MSG(allow_group, "group chaining is not allowed");
      const GroupEntry* group = table_.group(grp->group_id);
      if (group == nullptr) {
        log_warn("switch %u: group %u not found", node_, grp->group_id);
        ++dropped_;
        return;
      }
      if (group->type == GroupType::kSelect) {
        // ECMP: one bucket, chosen by the flow hash.
        cpu_.charge(local_sim().now(), costs_.switch_group_copy_cycles);
        const std::size_t index = select_bucket(
            packet, group->buckets.size(),
            (static_cast<std::uint64_t>(node_) << 32) ^ group->group_id);
        if (last) {
          apply_actions(group->buckets[index], std::move(packet), in_port,
                        /*allow_group=*/false);
        } else {
          apply_actions(group->buckets[index], packet, in_port,
                        /*allow_group=*/false);
        }
      } else {
        // ALL group: every bucket acts on its own copy -- except the final
        // one, which inherits the packet when nothing else reads it after.
        cpu_.charge(local_sim().now(),
                    costs_.switch_group_copy_cycles *
                        static_cast<double>(group->buckets.size()));
        for (std::size_t b = 0; b < group->buckets.size(); ++b) {
          if (last && b + 1 == group->buckets.size()) {
            apply_actions(group->buckets[b], std::move(packet), in_port,
                          /*allow_group=*/false);
          } else {
            apply_actions(group->buckets[b], packet, in_port,
                          /*allow_group=*/false);
          }
        }
      }
    } else if (std::get_if<ToController>(&action)) {
      if (packet_in_) {
        sim::ShardedSimulator::assert_serial("ToController inside a window");
        packet_in_(node_, packet, in_port);
      }
    } else if (std::get_if<DropAction>(&action)) {
      ++dropped_;
      return;
    }
  }
}

}  // namespace mic::switchd
