#include "switchd/sdn_switch.hpp"

#include "common/log.hpp"

namespace mic::switchd {

void SdnSwitch::receive(const net::Packet& packet, topo::PortId in_port) {
  // The lookup itself costs CPU; the packet continues processing when the
  // (serial) switch CPU gets to it.
  const sim::SimTime done =
      cpu_.charge(network_->simulator().now(), costs_.switch_lookup_cycles);

  net::Packet copy = packet;
  network_->simulator().schedule_at(done, [this, pkt = std::move(copy),
                                           in_port] {
    FlowRule* rule = table_.lookup(pkt, in_port, pkt.wire_bytes());
    if (rule == nullptr) {
      if (packet_in_) {
        packet_in_(node_, pkt, in_port);
      } else {
        ++dropped_;
      }
      return;
    }
    apply_actions(rule->actions, pkt, in_port, /*allow_group=*/true);
  });
}

void SdnSwitch::on_port_status(topo::PortId port, bool up) {
  if (!port_status_) return;
  // The PHY event is debounced for detection_latency_ before the async
  // notification leaves the switch; the subscriber adds the control-channel
  // latency on top.
  network_->simulator().schedule_in(
      detection_latency_, [this, port, up] {
        if (port_status_) port_status_(node_, port, up);
      });
}

bool SdnSwitch::try_install(FlowRule rule) {
  if (install_fault_probability_ > 0.0 &&
      install_fault_rng_.chance(install_fault_probability_)) {
    ++installs_rejected_;
    return false;
  }
  if (!table_.add_rule(std::move(rule))) {
    ++installs_rejected_;
    return false;
  }
  return true;
}

bool SdnSwitch::try_install_group(GroupEntry group) {
  if (install_fault_probability_ > 0.0 &&
      install_fault_rng_.chance(install_fault_probability_)) {
    ++installs_rejected_;
    return false;
  }
  if (!table_.add_group(std::move(group))) {
    ++installs_rejected_;
    return false;
  }
  return true;
}

FlowDump SdnSwitch::dump(const DumpFilter& filter) const {
  ++dumps_served_;
  FlowDump out;
  for (const FlowRule& rule : table_.rules()) {
    if (filter.admits(rule.cookie)) out.rules.push_back(rule);
  }
  for (const GroupEntry& group : table_.groups()) {
    if (filter.admits(group.cookie)) out.groups.push_back(group);
  }
  return out;
}

void SdnSwitch::apply_actions(const std::vector<Action>& actions,
                              net::Packet packet, topo::PortId in_port,
                              bool allow_group) {
  const std::size_t rewrites = count_set_fields(actions);
  if (rewrites > 0) {
    cpu_.charge(network_->simulator().now(),
                costs_.switch_rewrite_cycles * static_cast<double>(rewrites));
  }

  for (const auto& action : actions) {
    if (const auto* set_src = std::get_if<SetSrc>(&action)) {
      packet.src = set_src->ip;
    } else if (const auto* set_dst = std::get_if<SetDst>(&action)) {
      packet.dst = set_dst->ip;
    } else if (const auto* set_sport = std::get_if<SetSport>(&action)) {
      packet.sport = set_sport->port;
    } else if (const auto* set_dport = std::get_if<SetDport>(&action)) {
      packet.dport = set_dport->port;
    } else if (const auto* set_mpls = std::get_if<SetMpls>(&action)) {
      packet.mpls = set_mpls->label;
    } else if (std::get_if<PopMpls>(&action)) {
      packet.mpls = net::kNoMpls;
    } else if (const auto* out = std::get_if<Output>(&action)) {
      ++forwarded_;
      network_->transmit(node_, out->port, packet);
    } else if (const auto* grp = std::get_if<GroupAction>(&action)) {
      MIC_ASSERT_MSG(allow_group, "group chaining is not allowed");
      const GroupEntry* group = table_.group(grp->group_id);
      if (group == nullptr) {
        log_warn("switch %u: group %u not found", node_, grp->group_id);
        ++dropped_;
        return;
      }
      if (group->type == GroupType::kSelect) {
        // ECMP: one bucket, chosen by the flow hash.
        cpu_.charge(network_->simulator().now(),
                    costs_.switch_group_copy_cycles);
        const std::size_t index = select_bucket(
            packet, group->buckets.size(),
            (static_cast<std::uint64_t>(node_) << 32) ^ group->group_id);
        apply_actions(group->buckets[index], packet, in_port,
                      /*allow_group=*/false);
      } else {
        // ALL group: every bucket acts on its own copy.
        cpu_.charge(network_->simulator().now(),
                    costs_.switch_group_copy_cycles *
                        static_cast<double>(group->buckets.size()));
        for (const auto& bucket : group->buckets) {
          apply_actions(bucket, packet, in_port, /*allow_group=*/false);
        }
      }
    } else if (std::get_if<ToController>(&action)) {
      if (packet_in_) packet_in_(node_, packet, in_port);
    } else if (std::get_if<DropAction>(&action)) {
      ++dropped_;
      return;
    }
  }
}

}  // namespace mic::switchd
