// SDN switch device: the simulated equivalent of the paper's Open vSwitch
// instances.  Pipeline per packet: charge a flow-table lookup on the switch
// CPU, apply the matched rule's actions (each set-field charged separately,
// each group-bucket copy charged separately), and transmit.
//
// Table misses invoke the packet-in hook (the controller's southbound
// channel) or drop when no hook is installed.
#pragma once

#include <functional>

#include "crypto/cost_model.hpp"
#include "net/network.hpp"
#include "switchd/flow_table.hpp"

namespace mic::switchd {

class SdnSwitch : public net::Device {
 public:
  using PacketInHandler =
      std::function<void(topo::NodeId sw, const net::Packet&, topo::PortId)>;

  explicit SdnSwitch(const crypto::CostModel& costs =
                         crypto::default_cost_model())
      : costs_(costs) {}

  FlowTable& table() noexcept { return table_; }
  const FlowTable& table() const noexcept { return table_; }

  void set_packet_in_handler(PacketInHandler handler) {
    packet_in_ = std::move(handler);
  }

  void receive(const net::Packet& packet, topo::PortId in_port) override;

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Lookup-tier counters of this switch's table (index hits vs wildcard
  /// scan fallbacks vs misses) -- the observable the benches and the
  /// controller use to confirm m-flow rules ride the fast path.
  const TableStats& table_stats() const noexcept { return table_.stats(); }

 private:
  /// Execute an action list on (a copy of) the packet; may recurse into
  /// groups one level deep (OpenFlow forbids group->group chaining).
  void apply_actions(const std::vector<Action>& actions, net::Packet packet,
                     topo::PortId in_port, bool allow_group);

  const crypto::CostModel& costs_;
  FlowTable table_;
  PacketInHandler packet_in_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mic::switchd
