// SDN switch device: the simulated equivalent of the paper's Open vSwitch
// instances.  Pipeline per packet: charge a flow-table lookup on the switch
// CPU, apply the matched rule's actions (each set-field charged separately,
// each group-bucket copy charged separately), and transmit.
//
// Table misses invoke the packet-in hook (the controller's southbound
// channel) or drop when no hook is installed.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/cost_model.hpp"
#include "net/network.hpp"
#include "switchd/flow_table.hpp"

namespace mic::switchd {

/// Cookie filter for the flow-dump RPC (the OFPFF cookie/cookie_mask
/// subset MIC needs).  With `cookie` set, only entries stamped with it;
/// with `exclude_cookie` set, everything else.  Both unset dumps all.
struct DumpFilter {
  std::optional<std::uint64_t> cookie;
  std::optional<std::uint64_t> exclude_cookie;

  bool admits(std::uint64_t entry_cookie) const noexcept {
    if (cookie && entry_cookie != *cookie) return false;
    if (exclude_cookie && entry_cookie == *exclude_cookie) return false;
    return true;
  }
};

/// One switch's answer to a flow/group stats request.
struct FlowDump {
  std::vector<FlowRule> rules;
  std::vector<GroupEntry> groups;
};

class SdnSwitch : public net::Device {
 public:
  using PacketInHandler =
      std::function<void(topo::NodeId sw, const net::Packet&, topo::PortId)>;
  /// Async OFPT_PORT_STATUS equivalent: (switch, port, up).
  using PortStatusHandler =
      std::function<void(topo::NodeId sw, topo::PortId, bool up)>;

  explicit SdnSwitch(const crypto::CostModel& costs =
                         crypto::default_cost_model())
      : costs_(costs) {}

  FlowTable& table() noexcept { return table_; }
  const FlowTable& table() const noexcept { return table_; }

  void set_packet_in_handler(PacketInHandler handler) {
    packet_in_ = std::move(handler);
  }

  /// Subscribe to async port-status notifications.  The switch raises them
  /// `detection_latency` after the PHY event (loss-of-signal debounce); the
  /// control-channel latency on top is the subscriber's business.  Like an
  /// OpenFlow switch with several controller connections, every subscriber
  /// hears every event -- a warm standby that took over still shares the
  /// switch with its deposed predecessor until fencing retires it.
  void add_port_status_handler(PortStatusHandler handler) {
    port_status_.push_back(std::move(handler));
  }
  void set_detection_latency(sim::SimTime latency) noexcept {
    detection_latency_ = latency;
  }
  sim::SimTime detection_latency() const noexcept {
    return detection_latency_;
  }

  void receive(const net::Packet& packet, topo::PortId in_port) override;
  void on_port_status(topo::PortId port, bool up) override;

  // --- fallible rule installation -------------------------------------------
  //
  // A real switch can reject a flow-mod (table full) or lose it entirely;
  // the fault hook lets the chaos harness inject rejection bursts.  The
  // controller's *checked* install path consults try_install; the legacy
  // fire-and-forget path keeps the old add_rule semantics.

  /// Reject a fraction of try_install calls while active (0 disables).
  /// Seeded independently so fault schedules replay deterministically.
  void inject_install_faults(double probability, std::uint64_t seed) {
    install_fault_probability_ = probability;
    install_fault_rng_.reseed(seed);
  }
  void clear_install_faults() noexcept { install_fault_probability_ = 0.0; }

  /// Install honouring capacity, duplicates and injected faults.  Returns
  /// false when the switch rejects (the flow-mod error the checked path
  /// reports back to the controller).
  bool try_install(FlowRule rule);
  bool try_install_group(GroupEntry group);

  std::uint64_t installs_rejected() const noexcept {
    return installs_rejected_;
  }

  /// Flow/group table dump (OFPT_FLOW_STATS_REQUEST + OFPT_GROUP_DESC
  /// analog) with cookie filtering — the primitive a recovering controller
  /// uses to resync its journal against what is actually installed.
  /// Entries are returned in the table's stable iteration order.
  FlowDump dump(const DumpFilter& filter = {}) const;

  std::uint64_t dumps_served() const noexcept { return dumps_served_; }

  // --- controller fencing ----------------------------------------------------
  //
  // The OpenFlow role-request generation_id analog: every mutating op a
  // controller sends is stamped with its journal epoch.  The switch keeps
  // the highest epoch it has seen and refuses anything older, so a zombie
  // ex-primary (a controller that lost a failover it never noticed) cannot
  // mutate tables the new primary now owns.

  /// Gate for one mutating op stamped with `epoch`: ops at or above the
  /// recorded fence are admitted (and raise it); older ops are refused and
  /// counted.  Epoch 0 (the pre-fencing default) is admitted only while
  /// the fence has never been raised — after any failover fences a switch,
  /// an epoch-0 controller is refused like any other stale generation.
  /// That is the point: a zombie ex-primary that never learned its epoch
  /// must not mutate tables the new primary owns.
  bool admit_epoch(std::uint64_t epoch) {
    if (epoch < fence_epoch_) {
      ++stale_ops_rejected_;
      return false;
    }
    fence_epoch_ = epoch;
    return true;
  }
  /// Raise the fence without an op (the new primary does this for every
  /// switch it resyncs during takeover, before reissuing any rules).
  void raise_fence(std::uint64_t epoch) {
    if (epoch > fence_epoch_) fence_epoch_ = epoch;
  }
  std::uint64_t fence_epoch() const noexcept { return fence_epoch_; }
  std::uint64_t stale_ops_rejected() const noexcept {
    return stale_ops_rejected_;
  }

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Lookup-tier counters of this switch's table (index hits vs wildcard
  /// scan fallbacks vs misses) -- the observable the benches and the
  /// controller use to confirm m-flow rules ride the fast path.
  const TableStats& table_stats() const noexcept { return table_.stats(); }

 private:
  /// Execute an action list on (a copy of) the packet; may recurse into
  /// groups one level deep (OpenFlow forbids group->group chaining).
  void apply_actions(const std::vector<Action>& actions, net::Packet packet,
                     topo::PortId in_port, bool allow_group);

  const crypto::CostModel& costs_;
  FlowTable table_;
  PacketInHandler packet_in_;
  std::vector<PortStatusHandler> port_status_;
  /// PHY loss-of-signal debounce before the notification leaves the switch.
  sim::SimTime detection_latency_ = sim::microseconds(500);
  double install_fault_probability_ = 0.0;
  Rng install_fault_rng_{0};
  std::uint64_t installs_rejected_ = 0;
  std::uint64_t fence_epoch_ = 0;
  std::uint64_t stale_ops_rejected_ = 0;
  mutable std::uint64_t dumps_served_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  // Packets waiting for their lookup CPU charge, in completion order:
  // charge times are non-decreasing and same-time events fire in insertion
  // order, so the FIFO front is always the packet whose event is firing and
  // the event itself captures nothing but `this`.
  std::deque<std::pair<net::Packet, topo::PortId>> ingress_fifo_;
};

}  // namespace mic::switchd
