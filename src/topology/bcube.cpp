#include "topology/bcube.hpp"

#include <cmath>

namespace mic::topo {

namespace {
constexpr std::uint32_t make_ip(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

int ipow(int base, int exp) {
  int out = 1;
  for (int i = 0; i < exp; ++i) out *= base;
  return out;
}
}  // namespace

BCube::BCube(int n, int l) : n_(n), l_(l) {
  MIC_ASSERT_MSG(n >= 2 && l >= 0, "BCube needs n >= 2, l >= 0");
  const int server_count = ipow(n, l + 1);
  const int switches_per_level = ipow(n, l);

  servers_.reserve(static_cast<std::size_t>(server_count));
  for (int s = 0; s < server_count; ++s) {
    servers_.push_back(graph_.add_node(NodeKind::kHost));
  }

  switches_.resize(static_cast<std::size_t>(l + 1));
  for (int level = 0; level <= l; ++level) {
    auto& row = switches_[static_cast<std::size_t>(level)];
    row.reserve(static_cast<std::size_t>(switches_per_level));
    for (int w = 0; w < switches_per_level; ++w) {
      row.push_back(graph_.add_node(NodeKind::kSwitch));
    }
  }

  // Server s with base-n digits d_l..d_0 connects at level i to the switch
  // indexed by s with digit i removed.
  for (int s = 0; s < server_count; ++s) {
    for (int level = 0; level <= l; ++level) {
      const int stride = ipow(n, level);
      const int high = s / (stride * n);  // digits above level
      const int low = s % stride;         // digits below level
      const int switch_index = high * stride + low;
      graph_.add_link(servers_[static_cast<std::size_t>(s)],
                      switches_[static_cast<std::size_t>(level)]
                               [static_cast<std::size_t>(switch_index)]);
    }
  }
}

std::uint32_t BCube::server_ip(NodeId server) const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i] == server) {
      return make_ip(10, 1, static_cast<int>(i) / 250,
                     static_cast<int>(i) % 250 + 1);
    }
  }
  MIC_ASSERT_MSG(false, "not a BCube server node");
}

NodeId BCube::server_by_ip(std::uint32_t ip) const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (server_ip(servers_[i]) == ip) return servers_[i];
  }
  return kInvalidNode;
}

}  // namespace mic::topo
