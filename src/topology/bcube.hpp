// BCube(n, l) builder: the server-centric topology the paper's threat model
// calls out ("In some server-centric network topologies, such as BCube, a
// hacker can compromise a server, and analyze the traffic passing through
// it").  Provided so adversary experiments can also run on a server-centric
// fabric.
//
// BCube(n, l): n^(l+1) servers; level i has n^l switches of degree n.
// Server s (0-based, base-n digits d_l ... d_0) connects at level i to
// switch number (s with digit i removed), port d_i.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace mic::topo {

class BCube {
 public:
  /// n >= 2 ports per switch, l >= 0 levels (BCube_0 is a single switch
  /// layer).
  BCube(int n, int l);

  const Graph& graph() const noexcept { return graph_; }
  int n() const noexcept { return n_; }
  int levels() const noexcept { return l_; }

  const std::vector<NodeId>& servers() const noexcept { return servers_; }
  /// Switches of one level, 0 <= level <= l.
  const std::vector<NodeId>& level_switches(int level) const {
    return switches_[static_cast<std::size_t>(level)];
  }

  /// 10.level-free flat addressing: server index i -> 10.1.(i/250).(i%250+1).
  std::uint32_t server_ip(NodeId server) const;
  NodeId server_by_ip(std::uint32_t ip) const;

 private:
  int n_;
  int l_;
  Graph graph_;
  std::vector<NodeId> servers_;
  std::vector<std::vector<NodeId>> switches_;
};

}  // namespace mic::topo
