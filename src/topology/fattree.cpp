#include "topology/fattree.hpp"

namespace mic::topo {

namespace {
constexpr std::uint32_t make_ip(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}
}  // namespace

FatTree::FatTree(int k) : k_(k) {
  MIC_ASSERT_MSG(k >= 4 && k % 2 == 0, "fat-tree k must be even and >= 4");
  const int half = k / 2;

  // Core switches: (k/2)^2 of them, addressed 10.k.j.i (j,i in [1, k/2]).
  core_.reserve(static_cast<std::size_t>(half * half));
  for (int j = 1; j <= half; ++j) {
    for (int i = 1; i <= half; ++i) {
      const NodeId n = graph_.add_node(NodeKind::kSwitch);
      core_.push_back(n);
      node_ip_.push_back(make_ip(10, k, j, i));
      node_pod_.push_back(-1);
    }
  }

  // Pods: per pod, k/2 edge switches (low index) and k/2 aggregation
  // switches (high index), 10.pod.switch.1.
  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> pod_edge, pod_agg;
    for (int s = 0; s < half; ++s) {
      const NodeId n = graph_.add_node(NodeKind::kSwitch);
      pod_edge.push_back(n);
      node_ip_.push_back(make_ip(10, pod, s, 1));
      node_pod_.push_back(pod);
    }
    for (int s = half; s < k; ++s) {
      const NodeId n = graph_.add_node(NodeKind::kSwitch);
      pod_agg.push_back(n);
      node_ip_.push_back(make_ip(10, pod, s, 1));
      node_pod_.push_back(pod);
    }

    // Hosts: k/2 per edge switch, 10.pod.edge.(h+2).
    for (int s = 0; s < half; ++s) {
      for (int h = 0; h < half; ++h) {
        const NodeId host = graph_.add_node(NodeKind::kHost);
        hosts_.push_back(host);
        node_ip_.push_back(make_ip(10, pod, s, h + 2));
        node_pod_.push_back(pod);
        graph_.add_link(pod_edge[static_cast<std::size_t>(s)], host);
      }
    }

    // Edge <-> aggregation full bipartite within the pod.
    for (const NodeId e : pod_edge) {
      for (const NodeId a : pod_agg) graph_.add_link(e, a);
    }

    // Aggregation switch `a` (0-based within pod) connects to core switches
    // in stride: core index = a * (k/2) + i.
    for (int a = 0; a < half; ++a) {
      for (int i = 0; i < half; ++i) {
        graph_.add_link(pod_agg[static_cast<std::size_t>(a)],
                        core_[static_cast<std::size_t>(a * half + i)]);
      }
    }

    edge_.insert(edge_.end(), pod_edge.begin(), pod_edge.end());
    agg_.insert(agg_.end(), pod_agg.begin(), pod_agg.end());
  }
}

std::uint32_t FatTree::host_ip(NodeId host) const {
  MIC_ASSERT(graph_.is_host(host));
  return node_ip_[host];
}

NodeId FatTree::host_by_ip(std::uint32_t ip) const {
  for (const NodeId h : hosts_) {
    if (node_ip_[h] == ip) return h;
  }
  return kInvalidNode;
}

int FatTree::pod_of(NodeId node) const { return node_pod_[node]; }

bool FatTree::is_edge_switch(NodeId node) const {
  for (const NodeId e : edge_) {
    if (e == node) return true;
  }
  return false;
}

}  // namespace mic::topo
