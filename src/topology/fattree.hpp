// k-ary fat-tree builder (Al-Fares et al.), the topology of the paper's
// testbed (Figure 5 uses k=4: 16 hosts, twenty 4-port switches).
//
// Addressing follows the classic scheme: pod switches are 10.pod.switch.1,
// core switches 10.k.j.i, and the host attached to edge switch `sw` at
// position `h` is 10.pod.sw.(h+2).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace mic::topo {

class FatTree {
 public:
  /// k must be even and >= 4.
  explicit FatTree(int k);

  const Graph& graph() const noexcept { return graph_; }
  int k() const noexcept { return k_; }

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::vector<NodeId>& hosts() const noexcept { return hosts_; }
  const std::vector<NodeId>& edge_switches() const noexcept { return edge_; }
  const std::vector<NodeId>& agg_switches() const noexcept { return agg_; }
  const std::vector<NodeId>& core_switches() const noexcept { return core_; }

  /// 10.x.y.z address of a host, as a host-order uint32.
  std::uint32_t host_ip(NodeId host) const;
  /// Reverse lookup; kInvalidNode when the IP is not a host address.
  NodeId host_by_ip(std::uint32_t ip) const;

  /// Pod index of a host or pod switch; -1 for core switches.
  int pod_of(NodeId node) const;

  /// True if `node` is an edge switch (directly attached to hosts).
  bool is_edge_switch(NodeId node) const;

 private:
  int k_;
  Graph graph_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> edge_;
  std::vector<NodeId> agg_;
  std::vector<NodeId> core_;
  std::vector<std::uint32_t> node_ip_;   // indexed by NodeId; 0 for switches
  std::vector<int> node_pod_;            // indexed by NodeId; -1 for core
};

}  // namespace mic::topo
