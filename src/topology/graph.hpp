// Network graph: typed nodes (hosts / switches) joined by point-to-point
// links with per-node port numbering, mirroring how an SDN controller sees
// a data-center fabric.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace mic::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using PortId = std::uint16_t;

inline constexpr NodeId kInvalidNode = ~0u;
inline constexpr LinkId kInvalidLink = ~0u;
inline constexpr PortId kInvalidPort = ~static_cast<PortId>(0);

enum class NodeKind : std::uint8_t { kHost, kSwitch };

/// One endpoint's view of an attached link.
struct Adjacency {
  NodeId peer = kInvalidNode;
  PortId local_port = kInvalidPort;
  PortId peer_port = kInvalidPort;
  LinkId link = 0;
};

class Graph {
 public:
  NodeId add_node(NodeKind kind) {
    kinds_.push_back(kind);
    adjacency_.emplace_back();
    return static_cast<NodeId>(kinds_.size() - 1);
  }

  /// Connects two nodes with a bidirectional link; ports are assigned in
  /// attachment order on each side.
  LinkId add_link(NodeId a, NodeId b) {
    MIC_ASSERT(a < size() && b < size() && a != b);
    const LinkId link = static_cast<LinkId>(link_endpoints_.size());
    const PortId port_a = static_cast<PortId>(adjacency_[a].size());
    const PortId port_b = static_cast<PortId>(adjacency_[b].size());
    adjacency_[a].push_back({b, port_a, port_b, link});
    adjacency_[b].push_back({a, port_b, port_a, link});
    link_endpoints_.push_back({a, b});
    return link;
  }

  std::size_t size() const noexcept { return kinds_.size(); }
  std::size_t link_count() const noexcept { return link_endpoints_.size(); }

  NodeKind kind(NodeId n) const noexcept { return kinds_[n]; }
  bool is_host(NodeId n) const noexcept { return kinds_[n] == NodeKind::kHost; }
  bool is_switch(NodeId n) const noexcept {
    return kinds_[n] == NodeKind::kSwitch;
  }

  std::span<const Adjacency> neighbors(NodeId n) const noexcept {
    return adjacency_[n];
  }

  std::size_t port_count(NodeId n) const noexcept {
    return adjacency_[n].size();
  }

  /// The adjacency reachable out of a given local port.
  const Adjacency& out_port(NodeId n, PortId port) const noexcept {
    MIC_ASSERT(port < adjacency_[n].size());
    return adjacency_[n][port];
  }

  /// Local port on `n` that faces `peer`; kInvalidPort if not adjacent.
  PortId port_towards(NodeId n, NodeId peer) const noexcept {
    for (const auto& adj : adjacency_[n]) {
      if (adj.peer == peer) return adj.local_port;
    }
    return kInvalidPort;
  }

  /// Endpoint pair of a link, in add_link() order.
  std::pair<NodeId, NodeId> link_endpoints(LinkId link) const noexcept {
    MIC_ASSERT(link < link_endpoints_.size());
    return link_endpoints_[link];
  }

  /// The link joining two adjacent nodes; kInvalidLink if not adjacent.
  LinkId link_between(NodeId a, NodeId b) const noexcept {
    for (const auto& adj : adjacency_[a]) {
      if (adj.peer == b) return adj.link;
    }
    return kInvalidLink;
  }

  std::vector<NodeId> hosts() const {
    std::vector<NodeId> out;
    for (NodeId n = 0; n < size(); ++n) {
      if (is_host(n)) out.push_back(n);
    }
    return out;
  }

  std::vector<NodeId> switches() const {
    std::vector<NodeId> out;
    for (NodeId n = 0; n < size(); ++n) {
      if (is_switch(n)) out.push_back(n);
    }
    return out;
  }

 private:
  std::vector<NodeKind> kinds_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<std::pair<NodeId, NodeId>> link_endpoints_;
};

/// A path is the full node sequence src, s1, ..., sn, dst.
using Path = std::vector<NodeId>;

}  // namespace mic::topo
