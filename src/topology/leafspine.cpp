#include "topology/leafspine.hpp"

namespace mic::topo {

LeafSpine::LeafSpine(int spines, int leaves, int hosts_per_leaf) {
  MIC_ASSERT_MSG(spines >= 1 && leaves >= 2 && hosts_per_leaf >= 1,
                 "leaf-spine needs >= 1 spine, >= 2 leaves, >= 1 host/leaf");
  MIC_ASSERT_MSG(leaves <= 250 && hosts_per_leaf <= 250,
                 "addressing supports at most 250 leaves x 250 hosts");

  for (int s = 0; s < spines; ++s) {
    spines_.push_back(graph_.add_node(NodeKind::kSwitch));
  }
  for (int l = 0; l < leaves; ++l) {
    const NodeId leaf = graph_.add_node(NodeKind::kSwitch);
    leaves_.push_back(leaf);
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = graph_.add_node(NodeKind::kHost);
      hosts_.push_back(host);
      host_ips_.push_back((10u << 24) | (100u << 16) |
                          (static_cast<std::uint32_t>(l) << 8) |
                          static_cast<std::uint32_t>(h + 2));
      graph_.add_link(leaf, host);
    }
    for (const NodeId spine : spines_) {
      graph_.add_link(leaf, spine);
    }
  }
}

std::uint32_t LeafSpine::host_ip(NodeId host) const {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i] == host) return host_ips_[i];
  }
  MIC_ASSERT_MSG(false, "not a leaf-spine host");
}

}  // namespace mic::topo
