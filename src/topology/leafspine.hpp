// Leaf-spine (2-tier Clos) builder: the dominant modern data-center
// fabric.  Every leaf connects to every spine; hosts hang off leaves.
// Provided to demonstrate that MIC is not fat-tree specific: the MC's
// path computation, restrictions and MAGA work on any SDN topology.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace mic::topo {

class LeafSpine {
 public:
  LeafSpine(int spines, int leaves, int hosts_per_leaf);

  const Graph& graph() const noexcept { return graph_; }
  int spine_count() const noexcept { return static_cast<int>(spines_.size()); }
  int leaf_count() const noexcept { return static_cast<int>(leaves_.size()); }

  const std::vector<NodeId>& hosts() const noexcept { return hosts_; }
  const std::vector<NodeId>& leaf_switches() const noexcept { return leaves_; }
  const std::vector<NodeId>& spine_switches() const noexcept {
    return spines_;
  }

  /// 10.100.leaf.(host+2) addressing.
  std::uint32_t host_ip(NodeId host) const;

 private:
  Graph graph_;
  std::vector<NodeId> spines_;
  std::vector<NodeId> leaves_;
  std::vector<NodeId> hosts_;
  std::vector<std::uint32_t> host_ips_;  // parallel to hosts_
};

}  // namespace mic::topo
