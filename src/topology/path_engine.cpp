#include "topology/path_engine.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <thread>

namespace mic::topo {

PathEngine::PathEngine(const Graph& graph)
    : graph_(graph), n_(graph.size()), switches_(graph.switches()) {}

PathEngine::Row PathEngine::compute_row(NodeId dst) const {
  Row row;
  row.epoch = epoch_.load(std::memory_order_relaxed);
  row.dist.assign(n_, kUnreachable);

  // Reverse BFS from the destination.  Hosts are leaves: they may start or
  // end a path but never transit, so expansion only continues through
  // switches (plus dst itself, which may be a host).
  std::deque<NodeId> queue;
  row.dist[dst] = 0;
  queue.push_back(dst);
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    if (cur != dst && graph_.is_host(cur)) continue;  // do not transit hosts
    const std::uint32_t d = row.dist[cur];
    for (const auto& adj : graph_.neighbors(cur)) {
      if (!failed_.empty() && failed_.contains(adj.link)) continue;
      if (row.dist[adj.peer] == kUnreachable) {
        row.dist[adj.peer] = d + 1;
        queue.push_back(adj.peer);
      }
    }
  }

  // Successor DAG in CSR form: y follows x toward dst iff the link is up,
  // y is one hop closer, and y can be stood on mid-path (it is dst or a
  // switch).  Adjacency order keeps the layout deterministic (PE-1).
  row.offsets.assign(n_ + 1, 0);
  for (NodeId x = 0; x < n_; ++x) {
    if (row.dist[x] != kUnreachable && row.dist[x] != 0) {
      for (const auto& adj : graph_.neighbors(x)) {
        if (!failed_.empty() && failed_.contains(adj.link)) continue;
        if (adj.peer != dst && !graph_.is_switch(adj.peer)) continue;
        if (row.dist[adj.peer] != kUnreachable &&
            row.dist[adj.peer] + 1 == row.dist[x]) {
          row.nexts.push_back(adj.peer);
        }
      }
    }
    row.offsets[x + 1] = static_cast<std::uint32_t>(row.nexts.size());
  }
  return row;
}

void PathEngine::evict_over_cap(NodeId keep) const {
  if (max_rows_ == 0) return;
  while (rows_.size() > max_rows_) {
    auto victim = rows_.end();
    for (auto it = rows_.begin(); it != rows_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == rows_.end() ||
          it->second->last_used < victim->second->last_used ||
          (it->second->last_used == victim->second->last_used &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim == rows_.end()) return;  // only `keep` is cached
    rows_.erase(victim);
    ++stats_.rows_evicted;
  }
}

void PathEngine::set_max_rows(std::size_t max) {
  MutexLock lock(rows_mu_);
  max_rows_ = max;
  evict_over_cap(kInvalidNode);
}

std::shared_ptr<const PathEngine::Row> PathEngine::row(NodeId dst) const {
  MIC_ASSERT(dst < n_);
  {
    MutexLock lock(rows_mu_);
    const auto it = rows_.find(dst);
    if (it != rows_.end()) {
      ++stats_.row_hits;
      it->second->last_used = ++use_clock_;
      return it->second;
    }
  }
  // Miss: BFS outside the lock so concurrent queries for other rows make
  // progress.  Two threads missing the same destination both compute it;
  // PE-1 makes the results identical, so first-emplace-wins is safe and
  // the loser's work is merely wasted.  Rows live behind shared_ptrs, so
  // handing them out unlocked is sound even when the LRU cap (or the
  // event-loop-exclusive invalidation) erases the map entry underneath a
  // reader.
  auto fresh = std::make_shared<Row>(compute_row(dst));
  MutexLock lock(rows_mu_);
  const auto [it, inserted] = rows_.emplace(dst, std::move(fresh));
  inserted ? ++stats_.rows_computed : ++stats_.row_hits;
  it->second->last_used = ++use_clock_;
  auto result = it->second;
  if (inserted) evict_over_cap(dst);
  return result;
}

Path PathEngine::sample_shortest_path(NodeId src, NodeId dst,
                                      Rng& rng) const {
  const auto r = row(dst);
  MIC_ASSERT(r->dist[src] != kUnreachable);
  Path path;
  path.reserve(r->dist[src] + 1);
  NodeId cur = src;
  path.push_back(cur);
  while (cur != dst) {
    const auto nexts = r->next_of(cur);
    MIC_ASSERT(!nexts.empty());
    cur = nexts[rng.below(nexts.size())];
    path.push_back(cur);
  }
  return path;
}

void PathEngine::enumerate_rec(const Row& row, NodeId cur, NodeId dst,
                               Path& prefix, std::vector<Path>& out,
                               std::size_t limit) const {
  if (out.size() >= limit) return;
  prefix.push_back(cur);
  if (cur == dst) {
    out.push_back(prefix);
  } else {
    for (const NodeId next : row.next_of(cur)) {
      enumerate_rec(row, next, dst, prefix, out, limit);
      if (out.size() >= limit) break;
    }
  }
  prefix.pop_back();
}

std::vector<Path> PathEngine::enumerate_shortest_paths(
    NodeId src, NodeId dst, std::size_t limit) const {
  std::vector<Path> out;
  if (limit == 0 || !reachable(src, dst)) return out;
  Path prefix;
  const auto r = row(dst);  // hold the row across the recursion
  enumerate_rec(*r, src, dst, prefix, out, limit);
  return out;
}

std::optional<Path> PathEngine::sample_long_path(NodeId src, NodeId dst,
                                                 std::uint32_t min_switches,
                                                 Rng& rng,
                                                 int attempts) const {
  if (!reachable(src, dst)) return std::nullopt;
  if (switch_hops(src, dst) >= min_switches) {
    return sample_shortest_path(src, dst, rng);
  }
  if (switches_.empty()) return std::nullopt;

  for (int attempt = 0; attempt < attempts; ++attempt) {
    const NodeId way = switches_[rng.below(switches_.size())];
    if (!reachable(src, way) || !reachable(way, dst)) continue;
    Path first = sample_shortest_path(src, way, rng);
    const Path second = sample_shortest_path(way, dst, rng);

    // Splice, dropping the duplicated waypoint.
    first.insert(first.end(), second.begin() + 1, second.end());

    // Interior must be all switches (hosts cannot transit).
    bool interior_ok = true;
    for (std::size_t i = 1; i + 1 < first.size(); ++i) {
      if (!graph_.is_switch(first[i])) { interior_ok = false; break; }
    }
    if (!interior_ok) continue;

    // Revisiting a switch is allowed -- MIC rules match on in_port as well
    // as addresses, so each visit installs a distinct rule (two hosts on
    // one edge switch *require* a revisit for any lengthened path).  What
    // must never repeat is a directed edge: the second traversal would
    // need the same (in_port, header) rule twice.
    std::unordered_set<std::uint64_t> directed_edges;
    bool edges_ok = true;
    for (std::size_t i = 0; i + 1 < first.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(first[i]) << 32) | first[i + 1];
      if (!directed_edges.insert(key).second) { edges_ok = false; break; }
    }
    if (!edges_ok) continue;

    if (first.size() >= static_cast<std::size_t>(min_switches) + 2) {
      return first;
    }
  }
  return std::nullopt;
}

void PathEngine::invalidate_rows_touching(LinkId link) {
  const auto [a, b] = graph_.link_endpoints(link);
  const std::uint32_t epoch = epoch_.load(std::memory_order_relaxed);
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (row_uses_link(*it->second, it->first, a, b)) {
      ++stats_.rows_invalidated;
      it = rows_.erase(it);
    } else {
      it->second->epoch = epoch;
      ++stats_.rows_retained;
      ++it;
    }
  }
}

void PathEngine::link_failed(LinkId link) {
  if (!failed_.insert(link).second) return;  // already down
  epoch_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(rows_mu_);
  invalidate_rows_touching(link);
}

void PathEngine::link_restored(LinkId link) {
  if (failed_.erase(link) == 0) return;  // was not down
  epoch_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(rows_mu_);
  invalidate_rows_touching(link);
}

void PathEngine::set_failed_links(const std::unordered_set<LinkId>& failed) {
  std::vector<LinkId> to_restore;
  for (const LinkId link : failed_) {
    if (!failed.contains(link)) to_restore.push_back(link);
  }
  for (const LinkId link : to_restore) link_restored(link);
  for (const LinkId link : failed) link_failed(link);
}

void PathEngine::warm_up(const std::vector<NodeId>& dsts, unsigned threads) {
  std::vector<NodeId> missing;
  {
    MutexLock lock(rows_mu_);
    for (const NodeId dst : dsts) {
      MIC_ASSERT(dst < n_);
      if (!rows_.contains(dst)) missing.push_back(dst);
    }
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty()) return;

  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, threads), missing.size());
  std::vector<Row> computed(missing.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < missing.size(); ++i) {
      computed[i] = compute_row(missing[i]);
    }
  } else {
    // Strided partition: worker w owns slots w, w + workers, ...  Each
    // slot is written by exactly one worker; the shared engine state is
    // only read (compute_row touches nothing guarded).  Results are
    // merged under the lock after the join, so cache contents are
    // identical for any worker count (PE-1).
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([this, w, workers, &missing, &computed] {
        for (std::size_t i = w; i < missing.size(); i += workers) {
          computed[i] = compute_row(missing[i]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  MutexLock lock(rows_mu_);
  std::uint64_t merged = 0;
  for (std::size_t i = 0; i < missing.size(); ++i) {
    // A concurrent query may have raced a row in; emplace keeps the
    // incumbent (identical by PE-1) and we only count rows we inserted.
    const auto [it, inserted] = rows_.emplace(
        missing[i], std::make_shared<Row>(std::move(computed[i])));
    if (inserted) {
      it->second->last_used = ++use_clock_;  // ascending-dst stamp order
      ++merged;
    }
  }
  stats_.rows_computed += merged;
  evict_over_cap(kInvalidNode);  // warm-up past the cap evicts oldest
}

std::size_t PathEngine::self_check(std::vector<std::string>& violations) const {
  MutexLock lock(rows_mu_);
  for (const auto& [dst, cached] : rows_) {
    const Row fresh = compute_row(dst);
    if (cached->dist == fresh.dist && cached->offsets == fresh.offsets &&
        cached->nexts == fresh.nexts) {
      continue;
    }
    std::ostringstream out;
    out << "row " << dst << ": cached contents differ from a fresh BFS"
        << " (epoch " << cached->epoch << ", engine epoch "
        << epoch_.load(std::memory_order_relaxed) << ")";
    violations.push_back(out.str());
  }
  return rows_.size();
}

bool PathEngine::debug_corrupt_cached_row(NodeId dst) {
  MutexLock lock(rows_mu_);
  const auto it = rows_.find(dst);
  if (it == rows_.end()) return false;
  // Flip the destination's own distance (always 0 in a healthy row) so the
  // corruption is unambiguous and cheap to hit.
  it->second->dist[dst] = it->second->dist[dst] + 1;
  return true;
}

}  // namespace mic::topo
