// Lazy shortest-path engine: on-demand per-destination BFS rows.
//
// The eager AllPairsPaths front-loads one BFS per node and an O(n^2)
// distance matrix at construction -- fine for the paper's 16-host testbed,
// hostile to fat-trees with thousands of hosts.  The graph is undirected
// (and the host-no-transit rule is symmetric), so a single reverse BFS from
// a destination yields distance(x, dst) for *every* x -- exactly the shape
// every consumer needs: next-hop selection asks distance(sw, dst) for all
// switches, address restrictions ask distance(sw, host) for all hosts, and
// path sampling walks one row's shortest-path DAG.
//
// Rows are therefore computed on demand, one BFS per destination, and
// cached.  Each row stores its successor DAG in a flat CSR layout (one
// offsets array plus one flat buffer -- no per-cell heap vectors).  On a
// link failure the engine bumps a failure epoch and drops only the rows
// whose shortest-path DAG could have used the failed link (see
// row_uses_link); retained rows stay byte-identical and are merely
// re-tagged.  In a pristine fat-tree every interior link lies on a
// shortest path to every destination, so a first interior failure
// invalidates broadly -- the structural win there is that *recomputation*
// is demand-driven: a reroute only re-runs BFS for the destinations it
// actually touches, never all n sources the eager table rebuilt.  Row
// retention kicks in when failures cluster (links in already-partitioned
// regions, host-pendant links), which is exactly when failure storms make
// eager rebuilds most expensive.
//
// Invariant PE-1: for any fixed graph and failed-link set, a row's contents
// are a pure function of its destination -- independent of query order,
// warm-up, and warm-up thread count -- so sampling with a fixed-seed Rng is
// deterministic regardless of how the cache was populated.  self_check()
// is the runtime audit of PE-1 (registered as "PE-1" in audit::Registry).
//
// Thread model.  The row cache and its stats are guarded by rows_mu_, so
// *queries* (distance / sampling / enumeration, and warm_up itself) are
// safe from any number of concurrent threads: PE-1 makes duplicated misses
// converge to identical rows, and rows are handed out as shared_ptrs so
// LRU eviction (set_max_rows) cannot invalidate a row a concurrent reader
// is still walking.  *Mutation* of the failure set (link_failed /
// link_restored / set_failed_links) is event-loop-only and must be
// externally serialized against all queries -- it erases rows that
// concurrent readers could be holding references into.  The lock
// discipline is annotated for Clang's -Wthread-safety (see
// common/thread_annotations.hpp); GCC compiles the annotations away.
//
// AllPairsPaths remains in the tree as the reference oracle for the
// differential tests (tests/test_pathengine_diff.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "topology/graph.hpp"

namespace mic::topo {

struct PathEngineStats {
  std::uint64_t rows_computed = 0;    // BFS runs (lazy misses + warm-up)
  std::uint64_t row_hits = 0;         // queries served from the cache
  std::uint64_t rows_invalidated = 0; // rows dropped by failure epochs
  std::uint64_t rows_retained = 0;    // rows that survived an epoch bump
  std::uint64_t rows_evicted = 0;     // rows dropped by the LRU cap
};

class PathEngine {
 public:
  explicit PathEngine(const Graph& graph);

  static constexpr std::uint32_t kUnreachable = ~0u;

  /// Hop distance (number of links) from src to dst; kUnreachable if
  /// unreachable.  Computes and caches the dst row on first use.
  std::uint32_t distance(NodeId src, NodeId dst) const
      MIC_EXCLUDES(rows_mu_) {
    return row(dst)->dist[src];
  }

  bool reachable(NodeId src, NodeId dst) const MIC_EXCLUDES(rows_mu_) {
    return distance(src, dst) != kUnreachable;
  }

  /// Number of switches on a shortest path (path length minus two hosts).
  std::uint32_t switch_hops(NodeId src, NodeId dst) const
      MIC_EXCLUDES(rows_mu_) {
    const auto d = distance(src, dst);
    return d == kUnreachable ? kUnreachable : d - 1;
  }

  /// Uniformly-at-each-hop sample of one equal-cost shortest path (node
  /// sequence including both endpoints) via a random successor walk.
  Path sample_shortest_path(NodeId src, NodeId dst, Rng& rng) const
      MIC_EXCLUDES(rows_mu_);

  /// Enumerate equal-cost shortest paths, up to `limit` of them.
  std::vector<Path> enumerate_shortest_paths(NodeId src, NodeId dst,
                                             std::size_t limit) const
      MIC_EXCLUDES(rows_mu_);

  /// Find a simple-edged path whose *switch count* is at least
  /// `min_switches` (Sec IV-B2: paths longer than the shortest are spliced
  /// through random switch waypoints; directed edges never repeat).
  std::optional<Path> sample_long_path(NodeId src, NodeId dst,
                                       std::uint32_t min_switches, Rng& rng,
                                       int attempts = 64) const
      MIC_EXCLUDES(rows_mu_);

  // --- failure epochs ---------------------------------------------------------
  //
  // Event-loop-only: these erase cached rows, so no query may run
  // concurrently (returned row references would dangle).

  /// Treat `link` as absent from now on.  Bumps the failure epoch and
  /// invalidates only the cached rows whose BFS tree used the link.
  void link_failed(LinkId link) MIC_EXCLUDES(rows_mu_);

  /// Bring `link` back.  A restored link can create shorter paths for any
  /// row where its endpoints' distances differ, so those rows are dropped.
  void link_restored(LinkId link) MIC_EXCLUDES(rows_mu_);

  /// Diff the engine's excluded set against `failed`: newly failed links
  /// go through link_failed(), newly restored ones through
  /// link_restored().  Used to sync with an externally-owned failure set.
  void set_failed_links(const std::unordered_set<LinkId>& failed)
      MIC_EXCLUDES(rows_mu_);

  const std::unordered_set<LinkId>& failed_links() const noexcept {
    return failed_;
  }

  /// Cap the row cache at `max` entries (0 = unbounded, the default).
  /// When a fresh row would push the cache over the cap, the
  /// least-recently-queried row is evicted -- never the one just
  /// inserted -- with ties broken toward the smallest destination id so
  /// eviction order is deterministic (PE-1 makes recomputation safe: an
  /// evicted row costs one BFS on its next query, nothing else).
  /// Lowering the cap below the current cache size evicts immediately.
  void set_max_rows(std::size_t max) MIC_EXCLUDES(rows_mu_);

  std::size_t max_rows() const MIC_EXCLUDES(rows_mu_) {
    MutexLock lock(rows_mu_);
    return max_rows_;
  }

  /// Monotone counter, bumped by every link_failed()/link_restored().
  std::uint32_t failure_epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  // --- warm-up ----------------------------------------------------------------

  /// Precompute rows for `dsts` (skipping cached ones), fanning the
  /// independent per-destination BFS runs across up to `threads` threads.
  /// Safe concurrently with queries: each row is written by exactly one
  /// worker into its own slot and merged under the cache lock after the
  /// join, and PE-1 makes the result identical for any thread count.
  void warm_up(const std::vector<NodeId>& dsts, unsigned threads = 1)
      MIC_EXCLUDES(rows_mu_);

  // --- introspection / audit --------------------------------------------------

  PathEngineStats stats() const MIC_EXCLUDES(rows_mu_) {
    MutexLock lock(rows_mu_);
    return stats_;
  }
  std::size_t cached_rows() const MIC_EXCLUDES(rows_mu_) {
    MutexLock lock(rows_mu_);
    return rows_.size();
  }

  /// Runtime audit of PE-1: recompute every cached row from scratch and
  /// compare distances, CSR offsets and successor buffers byte for byte.
  /// Appends one message per corrupt row to `violations`; returns the
  /// number of rows checked.  Event-loop-only (walks the whole cache).
  std::size_t self_check(std::vector<std::string>& violations) const
      MIC_EXCLUDES(rows_mu_);

  /// Test-only: deliberately corrupt the cached row for `dst` (flips one
  /// distance entry) so negative tests can prove self_check() catches it.
  /// Returns false when the row is not cached.
  bool debug_corrupt_cached_row(NodeId dst) MIC_EXCLUDES(rows_mu_);

 private:
  /// One destination's view of the fabric: distances from every node plus
  /// the shortest-path successor DAG in CSR form.  next_of(x) lists the
  /// neighbors y with dist[y] + 1 == dist[x] that a packet at x may take
  /// toward dst (y is dst itself or a transit-capable switch), in the
  /// graph's deterministic adjacency order.
  struct Row {
    std::uint32_t epoch = 0;
    std::uint64_t last_used = 0;         // LRU stamp; written under rows_mu_
    std::vector<std::uint32_t> dist;     // dist[x] = hops x -> dst
    std::vector<std::uint32_t> offsets;  // CSR offsets, size n + 1
    std::vector<NodeId> nexts;           // flat successor buffer

    std::span<const NodeId> next_of(NodeId x) const noexcept {
      return {nexts.data() + offsets[x], offsets[x + 1] - offsets[x]};
    }
  };

  /// Pure function of (graph_, failed_, dst) -- touches no guarded state,
  /// so warm-up workers may run it without the lock.
  Row compute_row(NodeId dst) const;
  /// Rows are handed out as shared_ptrs so the LRU cap can evict a map
  /// entry while a concurrent query still walks the row it fetched.
  std::shared_ptr<const Row> row(NodeId dst) const MIC_EXCLUDES(rows_mu_);

  /// Does dropping or restoring the link (a, b) change this row?  Only if
  /// a path toward `dst` can cross it: the endpoint nearer dst (or the
  /// only reachable one) must be standable mid-path -- dst itself or a
  /// transit-capable switch.  A link between equidistant (or two
  /// unreachable) nodes is never tight, and one whose nearer endpoint is a
  /// non-dst host can never be traversed toward dst.
  bool row_uses_link(const Row& row, NodeId dst, NodeId a,
                     NodeId b) const noexcept {
    const std::uint32_t da = row.dist[a], db = row.dist[b];
    if (da == db) return false;
    const NodeId nearer =
        (db == kUnreachable || (da != kUnreachable && da < db)) ? a : b;
    return nearer == dst || graph_.is_switch(nearer);
  }

  void invalidate_rows_touching(LinkId link) MIC_REQUIRES(rows_mu_);

  /// Evict least-recently-queried rows until the cache respects max_rows_;
  /// never evicts `keep` (the row the caller just inserted and is about to
  /// hand out).  Pass kInvalidNode to protect nothing.
  void evict_over_cap(NodeId keep) const MIC_REQUIRES(rows_mu_);

  void enumerate_rec(const Row& row, NodeId cur, NodeId dst, Path& prefix,
                     std::vector<Path>& out, std::size_t limit) const;

  const Graph& graph_;
  std::size_t n_;
  std::vector<NodeId> switches_;  // cached for sample_long_path waypoints

  // Failure state: written only from the event loop (never concurrently
  // with queries -- see the thread model above), read lock-free by
  // compute_row.  The epoch is atomic so introspection can read it from
  // any thread.
  std::unordered_set<LinkId> failed_;
  std::atomic<std::uint32_t> epoch_{0};

  // Row cache + stats, guarded for concurrent queries and warm-up.
  // mutable so const queries can memoize.
  mutable mic::Mutex rows_mu_;
  mutable std::unordered_map<NodeId, std::shared_ptr<Row>> rows_
      MIC_GUARDED_BY(rows_mu_);
  mutable PathEngineStats stats_ MIC_GUARDED_BY(rows_mu_);
  std::size_t max_rows_ MIC_GUARDED_BY(rows_mu_) = 0;  // 0 = unbounded
  mutable std::uint64_t use_clock_ MIC_GUARDED_BY(rows_mu_) = 0;
};

}  // namespace mic::topo
