// Lazy shortest-path engine: on-demand per-destination BFS rows.
//
// The eager AllPairsPaths front-loads one BFS per node and an O(n^2)
// distance matrix at construction -- fine for the paper's 16-host testbed,
// hostile to fat-trees with thousands of hosts.  The graph is undirected
// (and the host-no-transit rule is symmetric), so a single reverse BFS from
// a destination yields distance(x, dst) for *every* x -- exactly the shape
// every consumer needs: next-hop selection asks distance(sw, dst) for all
// switches, address restrictions ask distance(sw, host) for all hosts, and
// path sampling walks one row's shortest-path DAG.
//
// Rows are therefore computed on demand, one BFS per destination, and
// cached.  Each row stores its successor DAG in a flat CSR layout (one
// offsets array plus one flat buffer -- no per-cell heap vectors).  On a
// link failure the engine bumps a failure epoch and drops only the rows
// whose shortest-path DAG could have used the failed link (see
// row_uses_link); retained rows stay byte-identical and are merely
// re-tagged.  In a pristine fat-tree every interior link lies on a
// shortest path to every destination, so a first interior failure
// invalidates broadly -- the structural win there is that *recomputation*
// is demand-driven: a reroute only re-runs BFS for the destinations it
// actually touches, never all n sources the eager table rebuilt.  Row
// retention kicks in when failures cluster (links in already-partitioned
// regions, host-pendant links), which is exactly when failure storms make
// eager rebuilds most expensive.
//
// Invariant PE-1: for any fixed graph and failed-link set, a row's contents
// are a pure function of its destination -- independent of query order,
// warm-up, and warm-up thread count -- so sampling with a fixed-seed Rng is
// deterministic regardless of how the cache was populated.
//
// AllPairsPaths remains in the tree as the reference oracle for the
// differential tests (tests/test_pathengine_diff.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace mic::topo {

struct PathEngineStats {
  std::uint64_t rows_computed = 0;    // BFS runs (lazy misses + warm-up)
  std::uint64_t row_hits = 0;         // queries served from the cache
  std::uint64_t rows_invalidated = 0; // rows dropped by failure epochs
  std::uint64_t rows_retained = 0;    // rows that survived an epoch bump
};

class PathEngine {
 public:
  explicit PathEngine(const Graph& graph);

  static constexpr std::uint32_t kUnreachable = ~0u;

  /// Hop distance (number of links) from src to dst; kUnreachable if
  /// unreachable.  Computes and caches the dst row on first use.
  std::uint32_t distance(NodeId src, NodeId dst) const {
    return row(dst).dist[src];
  }

  bool reachable(NodeId src, NodeId dst) const {
    return distance(src, dst) != kUnreachable;
  }

  /// Number of switches on a shortest path (path length minus two hosts).
  std::uint32_t switch_hops(NodeId src, NodeId dst) const {
    const auto d = distance(src, dst);
    return d == kUnreachable ? kUnreachable : d - 1;
  }

  /// Uniformly-at-each-hop sample of one equal-cost shortest path (node
  /// sequence including both endpoints) via a random successor walk.
  Path sample_shortest_path(NodeId src, NodeId dst, Rng& rng) const;

  /// Enumerate equal-cost shortest paths, up to `limit` of them.
  std::vector<Path> enumerate_shortest_paths(NodeId src, NodeId dst,
                                             std::size_t limit) const;

  /// Find a simple-edged path whose *switch count* is at least
  /// `min_switches` (Sec IV-B2: paths longer than the shortest are spliced
  /// through random switch waypoints; directed edges never repeat).
  std::optional<Path> sample_long_path(NodeId src, NodeId dst,
                                       std::uint32_t min_switches, Rng& rng,
                                       int attempts = 64) const;

  // --- failure epochs ---------------------------------------------------------

  /// Treat `link` as absent from now on.  Bumps the failure epoch and
  /// invalidates only the cached rows whose BFS tree used the link.
  void link_failed(LinkId link);

  /// Bring `link` back.  A restored link can create shorter paths for any
  /// row where its endpoints' distances differ, so those rows are dropped.
  void link_restored(LinkId link);

  /// Diff the engine's excluded set against `failed`: newly failed links
  /// go through link_failed(), newly restored ones through
  /// link_restored().  Used to sync with an externally-owned failure set.
  void set_failed_links(const std::unordered_set<LinkId>& failed);

  const std::unordered_set<LinkId>& failed_links() const noexcept {
    return failed_;
  }

  /// Monotone counter, bumped by every link_failed()/link_restored().
  std::uint32_t failure_epoch() const noexcept { return epoch_; }

  // --- warm-up ----------------------------------------------------------------

  /// Precompute rows for `dsts` (skipping cached ones), fanning the
  /// independent per-destination BFS runs across up to `threads` threads.
  /// Safe outside the single-threaded event loop: each row is written by
  /// exactly one worker into its own slot and merged after the join, and
  /// PE-1 makes the result identical for any thread count.
  void warm_up(const std::vector<NodeId>& dsts, unsigned threads = 1);

  // --- introspection ----------------------------------------------------------

  const PathEngineStats& stats() const noexcept { return stats_; }
  std::size_t cached_rows() const noexcept { return rows_.size(); }

 private:
  /// One destination's view of the fabric: distances from every node plus
  /// the shortest-path successor DAG in CSR form.  next_of(x) lists the
  /// neighbors y with dist[y] + 1 == dist[x] that a packet at x may take
  /// toward dst (y is dst itself or a transit-capable switch), in the
  /// graph's deterministic adjacency order.
  struct Row {
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> dist;     // dist[x] = hops x -> dst
    std::vector<std::uint32_t> offsets;  // CSR offsets, size n + 1
    std::vector<NodeId> nexts;           // flat successor buffer

    std::span<const NodeId> next_of(NodeId x) const noexcept {
      return {nexts.data() + offsets[x], offsets[x + 1] - offsets[x]};
    }
  };

  Row compute_row(NodeId dst) const;
  const Row& row(NodeId dst) const;

  /// Does dropping or restoring the link (a, b) change this row?  Only if
  /// a path toward `dst` can cross it: the endpoint nearer dst (or the
  /// only reachable one) must be standable mid-path -- dst itself or a
  /// transit-capable switch.  A link between equidistant (or two
  /// unreachable) nodes is never tight, and one whose nearer endpoint is a
  /// non-dst host can never be traversed toward dst.
  bool row_uses_link(const Row& row, NodeId dst, NodeId a,
                     NodeId b) const noexcept {
    const std::uint32_t da = row.dist[a], db = row.dist[b];
    if (da == db) return false;
    const NodeId nearer =
        (db == kUnreachable || (da != kUnreachable && da < db)) ? a : b;
    return nearer == dst || graph_.is_switch(nearer);
  }

  void invalidate_rows_touching(LinkId link);

  void enumerate_rec(const Row& row, NodeId cur, NodeId dst, Path& prefix,
                     std::vector<Path>& out, std::size_t limit) const;

  const Graph& graph_;
  std::size_t n_;
  std::vector<NodeId> switches_;  // cached for sample_long_path waypoints
  std::unordered_set<LinkId> failed_;
  std::uint32_t epoch_ = 0;

  // Lazily-populated row cache; mutable so that const queries can memoize
  // (single-threaded access, except through warm_up()).
  mutable std::unordered_map<NodeId, Row> rows_;
  mutable PathEngineStats stats_;
};

}  // namespace mic::topo
