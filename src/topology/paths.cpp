#include "topology/paths.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace mic::topo {

AllPairsPaths::AllPairsPaths(const Graph& graph,
                             const std::unordered_set<LinkId>* excluded)
    : graph_(graph), n_(graph.size()) {
  dist_.assign(n_ * n_, kUnreachable);
  preds_.assign(n_ * n_, {});

  // One BFS per source.  Hosts are leaves: they may start or end a path but
  // never transit, so expansion only continues through switches.
  std::deque<NodeId> queue;
  for (NodeId src = 0; src < n_; ++src) {
    queue.clear();
    dist_[index(src, src)] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      const std::uint32_t d = dist_[index(src, cur)];
      if (cur != src && graph_.is_host(cur)) continue;  // do not transit hosts
      for (const auto& adj : graph_.neighbors(cur)) {
        if (excluded != nullptr && excluded->contains(adj.link)) continue;
        auto& peer_dist = dist_[index(src, adj.peer)];
        if (peer_dist == kUnreachable) {
          peer_dist = d + 1;
          queue.push_back(adj.peer);
        }
        if (peer_dist == d + 1) {
          preds_[index(src, adj.peer)].push_back(cur);
        }
      }
    }
  }
}

Path AllPairsPaths::sample_shortest_path(NodeId src, NodeId dst,
                                         Rng& rng) const {
  MIC_ASSERT(reachable(src, dst));
  Path reversed;
  NodeId cur = dst;
  reversed.push_back(cur);
  while (cur != src) {
    const auto& preds = preds_[index(src, cur)];
    MIC_ASSERT(!preds.empty());
    cur = preds[rng.below(preds.size())];
    reversed.push_back(cur);
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

void AllPairsPaths::enumerate_rec(NodeId src, NodeId cur, Path& suffix,
                                  std::vector<Path>& out,
                                  std::size_t limit) const {
  if (out.size() >= limit) return;
  suffix.push_back(cur);
  if (cur == src) {
    Path path(suffix.rbegin(), suffix.rend());
    out.push_back(std::move(path));
  } else {
    for (const NodeId pred : preds_[index(src, cur)]) {
      enumerate_rec(src, pred, suffix, out, limit);
      if (out.size() >= limit) break;
    }
  }
  suffix.pop_back();
}

std::vector<Path> AllPairsPaths::enumerate_shortest_paths(
    NodeId src, NodeId dst, std::size_t limit) const {
  std::vector<Path> out;
  if (!reachable(src, dst) || limit == 0) return out;
  Path suffix;
  enumerate_rec(src, dst, suffix, out, limit);
  return out;
}

std::optional<Path> AllPairsPaths::sample_long_path(NodeId src, NodeId dst,
                                                    std::uint32_t min_switches,
                                                    Rng& rng,
                                                    int attempts) const {
  if (!reachable(src, dst)) return std::nullopt;
  if (switch_hops(src, dst) >= min_switches) {
    return sample_shortest_path(src, dst, rng);
  }

  const auto switches = graph_.switches();
  if (switches.empty()) return std::nullopt;

  for (int attempt = 0; attempt < attempts; ++attempt) {
    const NodeId way = switches[rng.below(switches.size())];
    if (!reachable(src, way) || !reachable(way, dst)) continue;
    Path first = sample_shortest_path(src, way, rng);
    const Path second = sample_shortest_path(way, dst, rng);

    // Splice, dropping the duplicated waypoint.
    first.insert(first.end(), second.begin() + 1, second.end());

    // Interior must be all switches (hosts cannot transit).
    bool interior_ok = true;
    for (std::size_t i = 1; i + 1 < first.size(); ++i) {
      if (!graph_.is_switch(first[i])) { interior_ok = false; break; }
    }
    if (!interior_ok) continue;

    // Revisiting a switch is allowed -- MIC rules match on in_port as well
    // as addresses, so each visit installs a distinct rule (two hosts on
    // one edge switch *require* a revisit for any lengthened path).  What
    // must never repeat is a directed edge: the second traversal would
    // need the same (in_port, header) rule twice.
    std::unordered_set<std::uint64_t> directed_edges;
    bool edges_ok = true;
    for (std::size_t i = 0; i + 1 < first.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(first[i]) << 32) | first[i + 1];
      if (!directed_edges.insert(key).second) { edges_ok = false; break; }
    }
    if (!edges_ok) continue;

    if (first.size() >= static_cast<std::size_t>(min_switches) + 2) {
      return first;
    }
  }
  return std::nullopt;
}

}  // namespace mic::topo
