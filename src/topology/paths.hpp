// All-pairs equal-cost shortest paths over a host/switch graph.
//
// The Mimic Controller "obtains the global view of the network and
// calculates all-pairs equal-cost shortest paths when initiation"
// (paper Sec IV-B2).  Hosts never transit traffic: BFS only expands through
// switches.  ECMP structure is kept as per-node predecessor sets so that
// individual equal-cost paths can be sampled uniformly or enumerated.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace mic::topo {

class AllPairsPaths {
 public:
  /// `excluded` links are treated as absent (used to recompute routes
  /// around failures); pass nullptr for the full graph.
  explicit AllPairsPaths(const Graph& graph,
                         const std::unordered_set<LinkId>* excluded = nullptr);

  /// Hop distance (number of links) from src to dst; max() if unreachable.
  std::uint32_t distance(NodeId src, NodeId dst) const noexcept {
    return dist_[index(src, dst)];
  }

  bool reachable(NodeId src, NodeId dst) const noexcept {
    return distance(src, dst) != kUnreachable;
  }

  /// Uniformly sample one equal-cost shortest path (node sequence including
  /// both endpoints) via a random predecessor walk.
  Path sample_shortest_path(NodeId src, NodeId dst, Rng& rng) const;

  /// Enumerate equal-cost shortest paths, up to `limit` of them.
  std::vector<Path> enumerate_shortest_paths(NodeId src, NodeId dst,
                                             std::size_t limit) const;

  /// Number of switches on the sampled shortest paths (path length minus
  /// the two hosts).
  std::uint32_t switch_hops(NodeId src, NodeId dst) const noexcept {
    const auto d = distance(src, dst);
    return d == kUnreachable ? kUnreachable : d - 1;
  }

  /// Find a simple path whose *switch count* is at least `min_switches`,
  /// used when the requested MN count exceeds the shortest path length
  /// (Sec IV-B2: "a new forwarding path with length larger than N will be
  /// calculated").  Picks random switch waypoints and splices shortest
  /// segments, rejecting non-simple results.  Returns nullopt after
  /// `attempts` failed tries.
  std::optional<Path> sample_long_path(NodeId src, NodeId dst,
                                       std::uint32_t min_switches, Rng& rng,
                                       int attempts = 64) const;

  static constexpr std::uint32_t kUnreachable = ~0u;

 private:
  std::size_t index(NodeId src, NodeId dst) const noexcept {
    return static_cast<std::size_t>(src) * n_ + dst;
  }

  void enumerate_rec(NodeId src, NodeId cur, Path& suffix,
                     std::vector<Path>& out, std::size_t limit) const;

  const Graph& graph_;
  std::size_t n_;
  std::vector<std::uint32_t> dist_;  // n*n hop counts
  // preds_[src*n + dst]: neighbors of dst that lie on a shortest src->dst
  // path (i.e. dist(src, p) + 1 == dist(src, dst)).
  std::vector<std::vector<NodeId>> preds_;
};

}  // namespace mic::topo
