// Tor-style cell format for the overlay baseline.
//
// Fixed 512-byte cells (as in Tor): a 7-byte cleartext header
// [circuit u32][cmd u8][len u16] and a 505-byte body.  Control bodies
// (CREATE/CREATED and "recognized" relay payloads) are real bytes and are
// really onion-encrypted; bulk data rides in kRelayVirtual cells whose body
// is virtual (the crypto cost is charged, the bytes are not materialized).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "transport/stream.hpp"

namespace mic::tor {

inline constexpr std::uint32_t kCellSize = 512;
inline constexpr std::uint32_t kCellHeaderBytes = 7;
inline constexpr std::uint32_t kCellBodyBytes = kCellSize - kCellHeaderBytes;

/// Recognized relay sub-payload: [magic u16][subcmd u8][len u16][data].
inline constexpr std::uint16_t kRecognizedMagic = 0x5A5A;
inline constexpr std::uint32_t kRelaySubHeader = 5;
/// Usable data bytes per relay cell.
inline constexpr std::uint32_t kRelayDataBytes =
    kCellBodyBytes - kRelaySubHeader;

enum class CellCmd : std::uint8_t {
  kCreate = 1,   // body: client DH public (real)
  kCreated = 2,  // body: relay DH public (real)
  kRelay = 3,    // body: onion-encrypted recognized payload (real)
  kRelayVirtual = 4,  // body: virtual bulk data; header len = data bytes
};

enum class RelaySubCmd : std::uint8_t {
  kExtend = 1,     // data: next addr u32, port u16, client DH public
  kExtended = 2,   // data: new relay's DH public
  kBegin = 3,      // data: target addr u32, port u16
  kConnected = 4,  // data: empty
  kData = 5,       // data: application bytes
};

struct CellHeader {
  std::uint32_t circuit = 0;
  CellCmd cmd = CellCmd::kCreate;
  std::uint16_t length = 0;  // meaning depends on cmd
};

inline std::vector<std::uint8_t> serialize_cell_header(
    const CellHeader& header) {
  std::vector<std::uint8_t> out(kCellHeaderBytes);
  store_be32(out.data(), header.circuit);
  out[4] = static_cast<std::uint8_t>(header.cmd);
  out[5] = static_cast<std::uint8_t>(header.length >> 8);
  out[6] = static_cast<std::uint8_t>(header.length);
  return out;
}

inline CellHeader parse_cell_header(const std::vector<std::uint8_t>& bytes) {
  MIC_ASSERT(bytes.size() == kCellHeaderBytes);
  CellHeader header;
  header.circuit = load_be32(bytes.data());
  header.cmd = static_cast<CellCmd>(bytes[4]);
  header.length = static_cast<std::uint16_t>((bytes[5] << 8) | bytes[6]);
  return header;
}

/// Build a recognized relay body: magic + subcmd + len + data, zero-padded
/// to the full body size.
inline std::vector<std::uint8_t> make_recognized_body(
    RelaySubCmd subcmd, const std::vector<std::uint8_t>& data) {
  MIC_ASSERT(data.size() <= kRelayDataBytes);
  std::vector<std::uint8_t> body(kCellBodyBytes, 0);
  body[0] = static_cast<std::uint8_t>(kRecognizedMagic >> 8);
  body[1] = static_cast<std::uint8_t>(kRecognizedMagic);
  body[2] = static_cast<std::uint8_t>(subcmd);
  body[3] = static_cast<std::uint8_t>(data.size() >> 8);
  body[4] = static_cast<std::uint8_t>(data.size());
  std::copy(data.begin(), data.end(), body.begin() + kRelaySubHeader);
  return body;
}

struct RecognizedPayload {
  bool recognized = false;
  RelaySubCmd subcmd = RelaySubCmd::kData;
  std::vector<std::uint8_t> data;
};

inline RecognizedPayload parse_recognized_body(
    const std::vector<std::uint8_t>& body) {
  MIC_ASSERT(body.size() == kCellBodyBytes);
  RecognizedPayload out;
  const std::uint16_t magic =
      static_cast<std::uint16_t>((body[0] << 8) | body[1]);
  if (magic != kRecognizedMagic) return out;
  out.recognized = true;
  out.subcmd = static_cast<RelaySubCmd>(body[2]);
  const std::uint16_t len =
      static_cast<std::uint16_t>((body[3] << 8) | body[4]);
  MIC_ASSERT(len <= kRelayDataBytes);
  out.data.assign(body.begin() + kRelaySubHeader,
                  body.begin() + kRelaySubHeader + len);
  return out;
}

/// Incremental cell parser over a ByteStream.
class CellParser {
 public:
  /// on_cell(header, body) -- body is a real vector for real-bodied cells,
  /// empty for kRelayVirtual.
  template <typename OnCell>
  void feed(const transport::ChunkView& view, OnCell&& on_cell) {
    reader_.append(view);
    for (;;) {
      if (!have_header_) {
        auto raw = reader_.read_real(kCellHeaderBytes);
        if (!raw) return;
        header_ = parse_cell_header(*raw);
        have_header_ = true;
      }
      if (reader_.available() < kCellBodyBytes) return;
      have_header_ = false;
      if (header_.cmd == CellCmd::kRelayVirtual) {
        reader_.skip(kCellBodyBytes);
        on_cell(header_, std::vector<std::uint8_t>{});
      } else {
        auto body = reader_.read_real(kCellBodyBytes);
        MIC_ASSERT(body.has_value());
        on_cell(header_, std::move(*body));
      }
    }
  }

 private:
  transport::ByteReader reader_;
  bool have_header_ = false;
  CellHeader header_{};
};

}  // namespace mic::tor
