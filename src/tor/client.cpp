#include "tor/client.hpp"

#include "common/log.hpp"
#include "crypto/dh.hpp"

namespace mic::tor {

namespace {

crypto::ChaCha20::Nonce nonce_for(std::uint64_t counter, bool backward) {
  crypto::ChaCha20::Nonce nonce{};
  store_le64(nonce.data(), counter);
  nonce[11] = backward ? 0xBB : 0xFF;
  return nonce;
}

std::vector<std::uint8_t> pad_body(std::vector<std::uint8_t> data) {
  MIC_ASSERT(data.size() <= kCellBodyBytes);
  data.resize(kCellBodyBytes, 0);
  return data;
}

}  // namespace

TorClient::TorClient(transport::Host& host, std::vector<RelayAddr> path,
                     net::Ipv4 target, net::L4Port target_port, Rng& rng)
    : host_(host),
      path_(std::move(path)),
      target_(target),
      target_port_(target_port),
      rng_(rng) {
  MIC_ASSERT_MSG(!path_.empty(), "Tor circuit needs at least one relay");
  started_at_ = host_.simulator().now();

  conn_ = &host_.connect(path_[0].ip, path_[0].port);
  conn_->set_on_data([this](const transport::ChunkView& view) {
    parser_.feed(view, [this](const CellHeader& header,
                              std::vector<std::uint8_t> body) {
      on_cell(header, std::move(body));
    });
  });
  conn_->set_on_ready([this] {
    // CREATE to the first hop: a real DH exchange.
    const auto& group = crypto::dh_group_14();
    Hop hop;
    hop.dh_private = group.sample_private_key(rng_);
    const auto pub = group.public_key(hop.dh_private);
    host_.charge(host_.costs().dh_modexp_cycles +
                 host_.costs().tor_cell_fixed_cycles);
    hops_.push_back(std::move(hop));

    const auto pub_bytes = pub.to_bytes_be();
    CellHeader header{circ_id_, CellCmd::kCreate, 0};
    conn_->send(transport::Chunk::real(serialize_cell_header(header)));
    conn_->send(transport::Chunk::real(pad_body(std::vector<std::uint8_t>(
        pub_bytes.begin(), pub_bytes.end()))));
  });
}

void TorClient::crypt_hop(std::size_t hop, bool backward, std::uint64_t nonce,
                          std::vector<std::uint8_t>& body) {
  crypto::ChaCha20::Key key;
  std::copy(hops_[hop].key.begin(), hops_[hop].key.end(), key.begin());
  crypto::ChaCha20::crypt(key, nonce_for(nonce, backward), body);
}

void TorClient::on_created_or_extended(
    const std::vector<std::uint8_t>& pub_bytes) {
  const auto& group = crypto::dh_group_14();
  Hop& hop = hops_.back();
  const auto relay_pub = crypto::Uint2048::from_bytes_be(
      {pub_bytes.data(), crypto::Uint2048::kBytes});
  const auto shared = group.shared_secret(hop.dh_private, relay_pub);
  host_.charge(host_.costs().dh_modexp_cycles);
  hop.key = group.derive_key(shared, "tor-hop-key");
  hop.established = true;
  extend_or_begin();
}

void TorClient::extend_or_begin() {
  const auto& group = crypto::dh_group_14();
  if (hops_.size() < path_.size()) {
    // Telescope one hop further: EXTEND carries the next relay's address
    // and a fresh DH public, delivered to the current last hop.
    Hop next;
    next.dh_private = group.sample_private_key(rng_);
    const auto pub = group.public_key(next.dh_private);
    host_.charge(host_.costs().dh_modexp_cycles +
                 host_.costs().tor_cell_fixed_cycles);

    const RelayAddr& addr = path_[hops_.size()];
    std::vector<std::uint8_t> data(6);
    store_be32(data.data(), addr.ip.value);
    data[4] = static_cast<std::uint8_t>(addr.port >> 8);
    data[5] = static_cast<std::uint8_t>(addr.port);
    const auto pub_bytes = pub.to_bytes_be();
    data.insert(data.end(), pub_bytes.begin(), pub_bytes.end());

    const std::size_t dest = hops_.size() - 1;  // current last hop
    hops_.push_back(std::move(next));
    send_forward_recognized(dest, RelaySubCmd::kExtend, std::move(data));
    return;
  }

  // Circuit complete: open the stream.
  std::vector<std::uint8_t> data(6);
  store_be32(data.data(), target_.value);
  data[4] = static_cast<std::uint8_t>(target_port_ >> 8);
  data[5] = static_cast<std::uint8_t>(target_port_);
  send_forward_recognized(hops_.size() - 1, RelaySubCmd::kBegin,
                          std::move(data));
}

void TorClient::send_forward_recognized(std::size_t dest_hop,
                                        RelaySubCmd subcmd,
                                        std::vector<std::uint8_t> data) {
  std::vector<std::uint8_t> body = make_recognized_body(subcmd, data);
  // Onion-encrypt: innermost layer is the destination hop's, outermost the
  // first hop's (the first relay strips its layer first).
  for (std::size_t i = dest_hop + 1; i-- > 0;) {
    crypt_hop(i, /*backward=*/false, hops_[i].fwd_nonce++, body);
  }
  host_.charge(host_.costs().tor_cell_fixed_cycles +
               static_cast<double>(dest_hop + 1) *
                   host_.costs().stream_crypt_cycles(kCellBodyBytes));
  CellHeader header{circ_id_, CellCmd::kRelay, 0};
  conn_->send(transport::Chunk::real(serialize_cell_header(header)));
  conn_->send(transport::Chunk::real(std::move(body)));
}

void TorClient::send_virtual_data(std::uint64_t length) {
  host_.charge(host_.costs().tor_cell_fixed_cycles +
               static_cast<double>(hops_.size()) *
                   host_.costs().stream_crypt_cycles(kCellBodyBytes));
  CellHeader header{circ_id_, CellCmd::kRelayVirtual,
                    static_cast<std::uint16_t>(length)};
  conn_->send(transport::Chunk::real(serialize_cell_header(header)));
  conn_->send(transport::Chunk::virtual_bytes(kCellBodyBytes));
}

void TorClient::on_cell(const CellHeader& header,
                        std::vector<std::uint8_t> body) {
  if (header.cmd == CellCmd::kCreated) {
    host_.charge(host_.costs().tor_cell_fixed_cycles);
    on_created_or_extended(body);
    return;
  }
  if (header.cmd == CellCmd::kRelayVirtual) {
    host_.charge(host_.costs().tor_cell_fixed_cycles +
                 static_cast<double>(hops_.size()) *
                     host_.costs().stream_crypt_cycles(kCellBodyBytes));
    notify_data(transport::ChunkView{header.length, {}});
    return;
  }
  MIC_ASSERT(header.cmd == CellCmd::kRelay);

  // Peel backward layers until the payload is recognized; only the
  // counters of the hops the cell actually traversed advance.
  RecognizedPayload payload;
  std::size_t layers = 0;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (!hops_[i].established) break;
    crypt_hop(i, /*backward=*/true, hops_[i].bwd_nonce++, body);
    ++layers;
    payload = parse_recognized_body(body);
    if (payload.recognized) break;
  }
  host_.charge(host_.costs().tor_cell_fixed_cycles +
               static_cast<double>(layers) *
                   host_.costs().stream_crypt_cycles(kCellBodyBytes));
  MIC_ASSERT_MSG(payload.recognized, "backward cell never recognized");

  switch (payload.subcmd) {
    case RelaySubCmd::kExtended:
      on_created_or_extended(payload.data);
      break;
    case RelaySubCmd::kConnected:
      ready_ = true;
      ready_at_ = host_.simulator().now();
      notify_ready();
      while (!pending_.empty()) {
        transport::Chunk chunk = std::move(pending_.front());
        pending_.pop_front();
        send(std::move(chunk));
      }
      break;
    case RelaySubCmd::kData: {
      notify_data(transport::ChunkView{payload.data.size(), payload.data});
      break;
    }
    default:
      log_warn("tor client: unexpected subcmd %d",
               static_cast<int>(payload.subcmd));
  }
}

void TorClient::send(transport::Chunk chunk) {
  if (!ready_) {
    pending_.push_back(std::move(chunk));
    return;
  }
  std::uint64_t offset = 0;
  while (offset < chunk.length) {
    const std::uint64_t piece =
        std::min<std::uint64_t>(kRelayDataBytes, chunk.length - offset);
    if (chunk.is_real()) {
      std::vector<std::uint8_t> data(
          chunk.data->begin() + static_cast<long>(offset),
          chunk.data->begin() + static_cast<long>(offset + piece));
      send_forward_recognized(hops_.size() - 1, RelaySubCmd::kData,
                              std::move(data));
    } else {
      send_virtual_data(piece);
    }
    offset += piece;
  }
}

void TorClient::close() {
  if (conn_ != nullptr) conn_->close();
}

}  // namespace mic::tor
