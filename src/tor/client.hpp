// Tor client: builds a circuit through a chosen relay path by telescoping
// (CREATE to the first hop, then EXTEND through the partially built circuit
// for each further hop -- each extension pays a full circuit round trip and
// a real Diffie-Hellman exchange), then opens a stream to the target and
// exposes it as a ByteStream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"
#include "tor/cells.hpp"
#include "tor/relay.hpp"
#include "transport/tcp.hpp"

namespace mic::tor {

class TorClient : public transport::ByteStream {
 public:
  /// Starts building immediately; ready() once the end-to-end stream is
  /// connected.
  TorClient(transport::Host& host, std::vector<RelayAddr> path,
            net::Ipv4 target, net::L4Port target_port, Rng& rng);

  void send(transport::Chunk chunk) override;
  void close() override;
  bool ready() const override { return ready_; }

  /// Circuit construction + stream begin time (the paper's Tor "connect").
  sim::SimTime setup_time() const noexcept { return ready_at_ - started_at_; }
  int built_hops() const noexcept { return static_cast<int>(hops_.size()); }

 private:
  struct Hop {
    crypto::Uint2048 dh_private;
    std::array<std::uint8_t, 32> key{};
    std::uint64_t fwd_nonce = 0;
    std::uint64_t bwd_nonce = 0;
    bool established = false;
  };

  void on_cell(const CellHeader& header, std::vector<std::uint8_t> body);
  void on_created_or_extended(const std::vector<std::uint8_t>& pub_bytes);
  void extend_or_begin();
  void send_forward_recognized(std::size_t dest_hop, RelaySubCmd subcmd,
                               std::vector<std::uint8_t> data);
  void send_virtual_data(std::uint64_t length);
  void crypt_hop(std::size_t hop, bool backward, std::uint64_t nonce,
                 std::vector<std::uint8_t>& body);

  transport::Host& host_;
  std::vector<RelayAddr> path_;
  net::Ipv4 target_;
  net::L4Port target_port_;
  Rng& rng_;

  transport::TcpConnection* conn_ = nullptr;
  CellParser parser_;
  std::uint32_t circ_id_ = 1;
  std::vector<Hop> hops_;
  std::deque<transport::Chunk> pending_;
  bool ready_ = false;
  sim::SimTime started_at_ = 0;
  sim::SimTime ready_at_ = 0;
};

}  // namespace mic::tor
