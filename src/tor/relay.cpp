#include "tor/relay.hpp"

#include "common/log.hpp"
#include "crypto/dh.hpp"

namespace mic::tor {

namespace {

crypto::ChaCha20::Nonce nonce_for(std::uint64_t counter, bool backward) {
  crypto::ChaCha20::Nonce nonce{};
  store_le64(nonce.data(), counter);
  nonce[11] = backward ? 0xBB : 0xFF;
  return nonce;
}

std::vector<std::uint8_t> pad_body(std::vector<std::uint8_t> data) {
  MIC_ASSERT(data.size() <= kCellBodyBytes);
  data.resize(kCellBodyBytes, 0);
  return data;
}

}  // namespace

TorRelay::TorRelay(transport::Host& host, net::L4Port port, Rng& rng)
    : host_(host), rng_(rng) {
  host_.listen(port, [this](transport::TcpConnection& conn) {
    on_accept(conn);
  });
}

void TorRelay::on_accept(transport::TcpConnection& conn) {
  auto link = std::make_unique<Link>();
  link->conn = &conn;
  Link* raw = link.get();
  conn.set_on_data([this, raw](const transport::ChunkView& view) {
    raw->parser.feed(view, [this, raw](const CellHeader& header,
                                       std::vector<std::uint8_t> body) {
      on_cell(*raw, header, std::move(body));
    });
  });
  links_.push_back(std::move(link));
}

void TorRelay::send_cell(Link& link, const CellHeader& header,
                         transport::Chunk body) {
  // Cells sit in the relay's circuit queues before hitting the wire; the
  // delay is pipelined (does not occupy the CPU), so it costs latency but
  // not throughput -- matching the real daemon's behaviour.
  const auto delay = sim::SimTime(
      host_.costs().tor_cell_sched_delay_us * 1000.0);
  Link* link_ptr = &link;
  host_.simulator().schedule_in(
      delay, [link_ptr, header, b = std::move(body)]() mutable {
        link_ptr->conn->send(
            transport::Chunk::real(serialize_cell_header(header)));
        link_ptr->conn->send(std::move(b));
      });
}

void TorRelay::crypt_layer(Circuit& circuit, std::uint64_t nonce,
                           std::vector<std::uint8_t>& body) {
  crypto::ChaCha20::Key key;
  std::copy(circuit.key.begin(), circuit.key.end(), key.begin());
  const bool backward = (nonce >> 63) != 0;
  crypto::ChaCha20::crypt(key, nonce_for(nonce & ~(1ULL << 63), backward),
                          body);
}

void TorRelay::on_cell(Link& link, const CellHeader& header,
                       std::vector<std::uint8_t> body) {
  const auto it = circuits_.find(circuit_key(&link, header.circuit));
  if (it == circuits_.end()) {
    if (header.cmd == CellCmd::kCreate) {
      handle_create(link, header, std::move(body));
    } else {
      log_warn("tor relay %s: cell for unknown circuit %u",
               host_.ip().str().c_str(), header.circuit);
    }
    return;
  }
  Circuit& circuit = *it->second;

  if (&link == circuit.client_side && header.circuit == circuit.client_circ) {
    if (header.cmd == CellCmd::kRelay ||
        header.cmd == CellCmd::kRelayVirtual) {
      handle_forward_relay(circuit, header, std::move(body));
    }
    return;
  }

  // From the next-relay side: CREATED (extension completing) or backward
  // relay traffic.
  if (header.cmd == CellCmd::kCreated) {
    host_.charge(host_.costs().tor_cell_fixed_cycles);
    std::vector<std::uint8_t> pub(body.begin(),
                                  body.begin() + crypto::Uint2048::kBytes);
    send_backward_recognized(circuit, RelaySubCmd::kExtended, std::move(pub));
    return;
  }
  handle_backward_relay(circuit, header, std::move(body));
}

void TorRelay::handle_create(Link& link, const CellHeader& header,
                             std::vector<std::uint8_t> body) {
  const auto& group = crypto::dh_group_14();
  MIC_ASSERT(body.size() == kCellBodyBytes);
  const auto client_pub = crypto::Uint2048::from_bytes_be(
      {body.data(), crypto::Uint2048::kBytes});

  const auto priv = group.sample_private_key(rng_);
  const auto pub = group.public_key(priv);
  const auto shared = group.shared_secret(priv, client_pub);
  host_.charge(2 * host_.costs().dh_modexp_cycles +
               host_.costs().tor_cell_fixed_cycles);

  auto circuit = std::make_shared<Circuit>();
  circuit->client_side = &link;
  circuit->client_circ = header.circuit;
  circuit->key = group.derive_key(shared, "tor-hop-key");
  circuits_[circuit_key(&link, header.circuit)] = circuit;

  const auto pub_bytes = pub.to_bytes_be();
  CellHeader reply{header.circuit, CellCmd::kCreated, 0};
  send_cell(link, reply,
            transport::Chunk::real(pad_body(std::vector<std::uint8_t>(
                pub_bytes.begin(), pub_bytes.end()))));
}

void TorRelay::handle_forward_relay(Circuit& circuit, const CellHeader& header,
                                    std::vector<std::uint8_t> body) {
  host_.charge(host_.costs().tor_cell_fixed_cycles +
               host_.costs().stream_crypt_cycles(kCellBodyBytes));
  ++cells_relayed_;

  if (header.cmd == CellCmd::kRelayVirtual) {
    if (circuit.next_side != nullptr) {
      CellHeader fwd{circuit.next_circ, CellCmd::kRelayVirtual, header.length};
      send_cell(*circuit.next_side, fwd,
                transport::Chunk::virtual_bytes(kCellBodyBytes));
    } else {
      // Exit: hand the bulk bytes to the target stream.
      transport::Chunk data = transport::Chunk::virtual_bytes(header.length);
      if (circuit.exit_ready) {
        circuit.exit_conn->send(std::move(data));
      } else {
        circuit.exit_pending.push_back(std::move(data));
      }
    }
    return;
  }

  crypt_layer(circuit, circuit.fwd_nonce++, body);
  RecognizedPayload payload = parse_recognized_body(body);
  if (payload.recognized) {
    handle_recognized(circuit, std::move(payload));
    return;
  }
  MIC_ASSERT_MSG(circuit.next_side != nullptr,
                 "unrecognized relay cell at the last hop");
  CellHeader fwd{circuit.next_circ, CellCmd::kRelay, 0};
  send_cell(*circuit.next_side, fwd, transport::Chunk::real(std::move(body)));
}

void TorRelay::handle_recognized(Circuit& circuit,
                                 RecognizedPayload payload) {
  switch (payload.subcmd) {
    case RelaySubCmd::kExtend: {
      MIC_ASSERT(payload.data.size() == 6 + crypto::Uint2048::kBytes);
      const net::Ipv4 next_ip{load_be32(payload.data.data())};
      const net::L4Port next_port = static_cast<net::L4Port>(
          (payload.data[4] << 8) | payload.data[5]);

      auto link = std::make_unique<Link>();
      link->conn = &host_.connect(next_ip, next_port);
      Link* raw = link.get();
      link->conn->set_on_data([this, raw](const transport::ChunkView& view) {
        raw->parser.feed(view, [this, raw](const CellHeader& header,
                                           std::vector<std::uint8_t> body) {
          on_cell(*raw, header, std::move(body));
        });
      });
      links_.push_back(std::move(link));

      circuit.next_side = raw;
      circuit.next_circ = next_circ_id_++;
      // Register the next-side key so backward cells find the circuit.
      for (auto& [key, circ] : circuits_) {
        if (circ.get() == &circuit) {
          circuits_[circuit_key(raw, circuit.next_circ)] = circ;
          break;
        }
      }

      std::vector<std::uint8_t> create_body(
          payload.data.begin() + 6,
          payload.data.begin() + 6 + crypto::Uint2048::kBytes);
      CellHeader create{circuit.next_circ, CellCmd::kCreate, 0};
      send_cell(*raw, create,
                transport::Chunk::real(pad_body(std::move(create_body))));
      break;
    }
    case RelaySubCmd::kBegin: {
      MIC_ASSERT(payload.data.size() == 6);
      const net::Ipv4 target{load_be32(payload.data.data())};
      const net::L4Port port = static_cast<net::L4Port>(
          (payload.data[4] << 8) | payload.data[5]);
      begin_exit(circuit, target, port);
      break;
    }
    case RelaySubCmd::kData: {
      transport::Chunk data = transport::Chunk::real(std::move(payload.data));
      if (circuit.exit_ready) {
        circuit.exit_conn->send(std::move(data));
      } else {
        circuit.exit_pending.push_back(std::move(data));
      }
      break;
    }
    default:
      log_warn("tor relay: unexpected recognized subcmd %d",
               static_cast<int>(payload.subcmd));
  }
}

void TorRelay::begin_exit(Circuit& circuit, net::Ipv4 target,
                          net::L4Port port) {
  circuit.exit_conn = &host_.connect(target, port);
  Circuit* circ = &circuit;
  circuit.exit_conn->set_on_ready([this, circ] {
    circ->exit_ready = true;
    while (!circ->exit_pending.empty()) {
      circ->exit_conn->send(std::move(circ->exit_pending.front()));
      circ->exit_pending.pop_front();
    }
    send_backward_recognized(*circ, RelaySubCmd::kConnected, {});
  });
  circuit.exit_conn->set_on_data([this, circ](const transport::ChunkView& view) {
    // Target bytes travel back as cells.
    std::uint64_t offset = 0;
    while (offset < view.length) {
      const std::uint32_t piece = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kRelayDataBytes, view.length - offset));
      if (view.is_real()) {
        std::vector<std::uint8_t> data(
            view.bytes.begin() + static_cast<long>(offset),
            view.bytes.begin() + static_cast<long>(offset + piece));
        send_backward_recognized(*circ, RelaySubCmd::kData, std::move(data));
      } else {
        host_.charge(host_.costs().tor_cell_fixed_cycles +
                     host_.costs().stream_crypt_cycles(kCellBodyBytes));
        CellHeader header{circ->client_circ, CellCmd::kRelayVirtual,
                          static_cast<std::uint16_t>(piece)};
        send_cell(*circ->client_side, header,
                  transport::Chunk::virtual_bytes(kCellBodyBytes));
      }
      offset += piece;
    }
  });
}

void TorRelay::send_backward_recognized(Circuit& circuit, RelaySubCmd subcmd,
                                        std::vector<std::uint8_t> data) {
  std::vector<std::uint8_t> body = make_recognized_body(subcmd, data);
  host_.charge(host_.costs().tor_cell_fixed_cycles +
               host_.costs().stream_crypt_cycles(kCellBodyBytes));
  crypt_layer(circuit, circuit.bwd_nonce++ | (1ULL << 63), body);
  CellHeader header{circuit.client_circ, CellCmd::kRelay, 0};
  send_cell(*circuit.client_side, header,
            transport::Chunk::real(std::move(body)));
}

void TorRelay::handle_backward_relay(Circuit& circuit,
                                     const CellHeader& header,
                                     std::vector<std::uint8_t> body) {
  host_.charge(host_.costs().tor_cell_fixed_cycles +
               host_.costs().stream_crypt_cycles(kCellBodyBytes));
  ++cells_relayed_;
  if (header.cmd == CellCmd::kRelayVirtual) {
    CellHeader fwd{circuit.client_circ, CellCmd::kRelayVirtual, header.length};
    send_cell(*circuit.client_side, fwd,
              transport::Chunk::virtual_bytes(kCellBodyBytes));
    return;
  }
  // Add this relay's onion layer on the way back to the client.
  crypt_layer(circuit, circuit.bwd_nonce++ | (1ULL << 63), body);
  CellHeader fwd{circuit.client_circ, CellCmd::kRelay, 0};
  send_cell(*circuit.client_side, fwd, transport::Chunk::real(std::move(body)));
}

}  // namespace mic::tor
