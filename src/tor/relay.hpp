// Onion-routing relay for the Tor baseline.
//
// Relays run as ordinary applications on end hosts (this is the crux of the
// overlay architecture's cost: every hop traverses the fabric to a host,
// climbs its stack, pays per-cell crypto, and descends again).  A relay
// accepts cells over TCP, answers CREATE with a real Diffie-Hellman
// exchange, extends circuits on request, peels one onion layer from
// forward relay cells (adds one on backward cells), and -- when it is the
// exit -- proxies the byte stream to the target over plain TCP.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "tor/cells.hpp"
#include "transport/tcp.hpp"

namespace mic::tor {

struct RelayAddr {
  net::Ipv4 ip;
  net::L4Port port = 9001;
};

class TorRelay {
 public:
  TorRelay(transport::Host& host, net::L4Port port, Rng& rng);

  net::Ipv4 ip() const { return host_.ip(); }
  std::uint64_t cells_relayed() const noexcept { return cells_relayed_; }

 private:
  /// One TCP link carrying cells (from a client or another relay).
  struct Link {
    transport::TcpConnection* conn = nullptr;
    CellParser parser;
  };

  /// Per-circuit state at this relay.
  struct Circuit {
    Link* client_side = nullptr;   // toward the client
    std::uint32_t client_circ = 0;
    Link* next_side = nullptr;     // toward the next relay (null = last hop)
    std::uint32_t next_circ = 0;
    std::array<std::uint8_t, 32> key{};  // shared with the client
    std::uint64_t fwd_nonce = 0;
    std::uint64_t bwd_nonce = 0;
    // Exit state.
    transport::TcpConnection* exit_conn = nullptr;
    bool exit_ready = false;
    std::deque<transport::Chunk> exit_pending;
  };

  void on_accept(transport::TcpConnection& conn);
  void on_cell(Link& link, const CellHeader& header,
               std::vector<std::uint8_t> body);
  void handle_create(Link& link, const CellHeader& header,
                     std::vector<std::uint8_t> body);
  void handle_forward_relay(Circuit& circuit, const CellHeader& header,
                            std::vector<std::uint8_t> body);
  void handle_backward_relay(Circuit& circuit, const CellHeader& header,
                             std::vector<std::uint8_t> body);
  void handle_recognized(Circuit& circuit, RecognizedPayload payload);
  void begin_exit(Circuit& circuit, net::Ipv4 target, net::L4Port port);
  void send_backward_recognized(Circuit& circuit, RelaySubCmd subcmd,
                                std::vector<std::uint8_t> data);
  void send_cell(Link& link, const CellHeader& header,
                 transport::Chunk body);

  void crypt_layer(Circuit& circuit, std::uint64_t nonce,
                   std::vector<std::uint8_t>& body);

  static std::uint64_t circuit_key(const Link* link, std::uint32_t circ) {
    return (reinterpret_cast<std::uintptr_t>(link) << 16) ^ circ;
  }

  transport::Host& host_;
  Rng& rng_;
  std::vector<std::unique_ptr<Link>> links_;
  // Both (client_side, client_circ) and (next_side, next_circ) map to the
  // circuit so cells from either direction find it.
  std::unordered_map<std::uint64_t, std::shared_ptr<Circuit>> circuits_;
  std::uint32_t next_circ_id_ = 0x40000000;  // relay-allocated range
  std::uint64_t cells_relayed_ = 0;
};

}  // namespace mic::tor
