// Measurement applications: an iperf-like bulk transfer pair and a
// request/response ping-pong, both over any ByteStream (TCP, SSL, a MIC
// channel, or a Tor circuit adapter).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "transport/stream.hpp"

namespace mic::transport {

/// Sends `total_bytes` of virtual bulk data as soon as the stream is ready.
class BulkSender {
 public:
  BulkSender(ByteStream& stream, std::uint64_t total_bytes)
      : stream_(stream), total_(total_bytes) {
    if (stream_.ready()) {
      start();
    } else {
      stream_.set_on_ready([this] { start(); });
    }
  }

  std::uint64_t total_bytes() const noexcept { return total_; }

 private:
  void start() { stream_.send(Chunk::virtual_bytes(total_)); }

  ByteStream& stream_;
  std::uint64_t total_;
};

/// Counts received bytes; reports completion time once `expected` bytes
/// arrive.  Also records the arrival time of the first byte so goodput can
/// exclude connection setup.
class BulkSink {
 public:
  using DoneHandler = std::function<void(sim::SimTime finished_at)>;

  BulkSink(ByteStream& stream, sim::Simulator& simulator,
           std::uint64_t expected, DoneHandler on_done = {})
      : simulator_(simulator), expected_(expected), on_done_(std::move(on_done)) {
    stream.set_on_data([this](const ChunkView& view) {
      if (received_ == 0) first_byte_at_ = simulator_.now();
      received_ += view.length;
      if (!finished_ && received_ >= expected_) {
        finished_ = true;
        finished_at_ = simulator_.now();
        if (on_done_) on_done_(finished_at_);
      }
    });
  }

  std::uint64_t received() const noexcept { return received_; }
  bool finished() const noexcept { return finished_; }
  sim::SimTime finished_at() const noexcept { return finished_at_; }
  sim::SimTime first_byte_at() const noexcept { return first_byte_at_; }

  /// Goodput in bits per second between the first byte and completion.
  double goodput_bps() const noexcept {
    if (!finished_ || finished_at_ <= first_byte_at_) return 0.0;
    return static_cast<double>(received_) * 8.0 /
           sim::to_seconds(finished_at_ - first_byte_at_);
  }

 private:
  sim::Simulator& simulator_;
  std::uint64_t expected_;
  DoneHandler on_done_;
  std::uint64_t received_ = 0;
  bool finished_ = false;
  sim::SimTime finished_at_ = 0;
  sim::SimTime first_byte_at_ = 0;
};

/// The paper's latency benchmark: "the time from when the sender sends
/// 10 bytes data to the receiver until the receiver sends 10 bytes data
/// back."  Runs `rounds` iterations and records each RTT.
class PingPongClient {
 public:
  PingPongClient(ByteStream& stream, sim::Simulator& simulator, int rounds,
                 std::function<void()> on_done = {})
      : stream_(stream),
        simulator_(simulator),
        rounds_(rounds),
        on_done_(std::move(on_done)) {
    stream_.set_on_data([this](const ChunkView& view) { on_reply(view); });
    if (stream_.ready()) {
      send_ping();
    } else {
      stream_.set_on_ready([this] { send_ping(); });
    }
  }

  const std::vector<sim::SimTime>& rtts() const noexcept { return rtts_; }

  double mean_rtt_us() const noexcept {
    if (rtts_.empty()) return 0.0;
    double sum = 0;
    for (const auto rtt : rtts_) sum += sim::to_micros(rtt);
    return sum / static_cast<double>(rtts_.size());
  }

 private:
  void send_ping() {
    sent_at_ = simulator_.now();
    pending_reply_ = kMessageBytes;
    stream_.send(Chunk::real(std::vector<std::uint8_t>(kMessageBytes, 0x50)));
  }

  void on_reply(const ChunkView& view) {
    pending_reply_ -= std::min<std::uint64_t>(pending_reply_, view.length);
    if (pending_reply_ > 0) return;
    rtts_.push_back(simulator_.now() - sent_at_);
    if (static_cast<int>(rtts_.size()) < rounds_) {
      send_ping();
    } else if (on_done_) {
      on_done_();
    }
  }

  static constexpr std::uint64_t kMessageBytes = 10;

  ByteStream& stream_;
  sim::Simulator& simulator_;
  int rounds_;
  std::function<void()> on_done_;
  sim::SimTime sent_at_ = 0;
  std::uint64_t pending_reply_ = 0;
  std::vector<sim::SimTime> rtts_;
};

/// Echo responder: replies with 10 bytes per 10-byte request.
class PingPongServer {
 public:
  explicit PingPongServer(ByteStream& stream) : stream_(stream) {
    stream_.set_on_data([this](const ChunkView& view) {
      buffered_ += view.length;
      while (buffered_ >= 10) {
        buffered_ -= 10;
        stream_.send(Chunk::real(std::vector<std::uint8_t>(10, 0x51)));
      }
    });
  }

 private:
  ByteStream& stream_;
  std::uint64_t buffered_ = 0;
};

}  // namespace mic::transport
