#include "transport/arena.hpp"

#include <atomic>

#include "transport/stream.hpp"

#if defined(__SANITIZE_THREAD__)
#define MIC_ARENA_NO_REUSE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MIC_ARENA_NO_REUSE 1
#endif
#endif

namespace mic::transport {

PayloadArena& PayloadArena::local() {
  thread_local PayloadArena arena;
  return arena;
}

std::shared_ptr<const std::vector<std::uint8_t>> PayloadArena::copy(
    std::span<const std::uint8_t> bytes) {
#if !defined(MIC_ARENA_NO_REUSE)
  // Round-robin probe from the last hit: buffers retire in roughly FIFO
  // order, so in steady state the first probe usually lands on a free one.
  const std::size_t slots = pool_.size();
  const std::size_t probes = slots < kMaxProbes ? slots : kMaxProbes;
  for (std::size_t probe = 0; probe < probes; ++probe) {
    auto& slot = pool_[cursor_];
    cursor_ = cursor_ + 1 == slots ? 0 : cursor_ + 1;
    if (slot.use_count() == 1) {
      // Pairs with the release decrement of the last remote reference:
      // every read of the old contents happens-before this refill.
      std::atomic_thread_fence(std::memory_order_acquire);
      slot->assign(bytes.begin(), bytes.end());
      ++stats_.reuses;
      return slot;
    }
  }
#endif
  ++stats_.allocations;
  auto fresh =
      std::make_shared<std::vector<std::uint8_t>>(bytes.begin(), bytes.end());
#if !defined(MIC_ARENA_NO_REUSE)
  if (pool_.size() < kMaxPooled) pool_.push_back(fresh);
#endif
  return fresh;
}

Chunk Chunk::copy(std::span<const std::uint8_t> bytes) {
  Chunk c;
  c.length = bytes.size();
  c.data = PayloadArena::local().copy(bytes);
  return c;
}

}  // namespace mic::transport
