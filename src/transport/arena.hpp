// Per-thread freelist for packet payload buffers.
//
// Every materialized send used to heap-allocate a fresh
// std::vector<uint8_t> plus a shared_ptr control block, both dropped as
// soon as the packet left every queue.  The arena recycles the whole
// shared_ptr<vector> instead: a pooled buffer whose use_count has fallen
// back to 1 (the pool's own reference) has been released by every packet
// that shared it and can be refilled in place -- control block AND vector
// capacity reused, so steady-state slicing and segmentation allocate
// nothing.
//
// Thread safety: arenas are thread_local, so refills happen only on the
// owning thread.  Consumers on other shard threads (payload pointers ride
// packets across shards during parallel windows) interact with a buffer
// only by reading it and then releasing their reference; the release is an
// atomic decrement with release ordering, and the owner pairs it with an
// acquire fence after observing use_count() == 1, ordering the refill
// after every remote read.  Under ThreadSanitizer the reuse path is
// disabled outright (the fence/use_count pairing sits outside what the
// runtime models reliably) and every request takes the fresh-allocation
// path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace mic::transport {

class PayloadArena {
 public:
  struct Stats {
    std::uint64_t allocations = 0;  ///< buffers obtained from the heap
    std::uint64_t reuses = 0;       ///< buffers refilled in place
  };

  /// The calling thread's arena.
  static PayloadArena& local();

  /// A shared immutable buffer holding a copy of `bytes`.
  std::shared_ptr<const std::vector<std::uint8_t>> copy(
      std::span<const std::uint8_t> bytes);

  const Stats& stats() const noexcept { return stats_; }

 private:
  // Bounded pool: beyond this many simultaneously-live buffers, extras are
  // plain heap allocations that die normally (no unbounded hoarding).  The
  // cap must comfortably exceed the peak number of in-flight buffers of
  // the largest bench workload (k=8, 16 bulk connections keep a few
  // thousand 16-byte slice headers alive at once) or steady state keeps
  // allocating.
  static constexpr std::size_t kMaxPooled = 4096;
  // A miss never scans the whole pool: probing this many slots bounds the
  // worst case while the round-robin cursor still finds FIFO-retired
  // buffers on the first probe in steady state.
  static constexpr std::size_t kMaxProbes = 128;

  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> pool_;
  std::size_t cursor_ = 0;
  Stats stats_;
};

}  // namespace mic::transport
