#include "transport/ssl.hpp"

#include "common/bits.hpp"
#include "crypto/sha256.hpp"

namespace mic::transport {

namespace {
constexpr std::size_t kDhPubBytes = crypto::Uint2048::kBytes;  // 256
}  // namespace

SslSession::SslSession(ByteStream& underlying, Role role, Host& host,
                       Rng& rng)
    : underlying_(underlying), role_(role), host_(host), rng_(rng) {
  underlying_.set_on_data([this](const ChunkView& view) {
    on_underlying_data(view);
  });
  underlying_.set_on_closed([this] { notify_closed(); });
  if (underlying_.ready()) {
    start_handshake();
  } else {
    underlying_.set_on_ready([this] { start_handshake(); });
  }
}

void SslSession::start_handshake() {
  if (role_ == Role::kClient) {
    client_random_.resize(32);
    for (auto& b : client_random_) b = static_cast<std::uint8_t>(rng_.next());
    send_message(MsgType::kClientHello, client_random_);
  }
  // The server waits for the ClientHello.
}

void SslSession::send_message(MsgType type, std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> record;
  record.reserve(kHeaderBytes + body.size());
  record.push_back(static_cast<std::uint8_t>(type));
  std::uint8_t len_be[4];
  store_be32(len_be, static_cast<std::uint32_t>(body.size()));
  record.insert(record.end(), len_be, len_be + 4);
  record.insert(record.end(), body.begin(), body.end());
  underlying_.send(Chunk::real(std::move(record)));
}

void SslSession::on_underlying_data(const ChunkView& view) {
  reader_.append(view);
  parse();
}

void SslSession::parse() {
  for (;;) {
    if (reader_.available() < kHeaderBytes) return;
    // Peek the header by reading it; headers are always real bytes.
    // We must only consume when the whole record is available, so stash the
    // header fields and re-check.
    if (!header_valid_) {
      const auto header = reader_.read_real(kHeaderBytes);
      MIC_ASSERT(header.has_value());
      pending_type_ = static_cast<MsgType>((*header)[0]);
      pending_len_ = load_be32(header->data() + 1);
      header_valid_ = true;
    }

    const bool is_data = pending_type_ == MsgType::kDataReal ||
                         pending_type_ == MsgType::kDataVirtual;
    const std::uint64_t body_len =
        is_data ? pending_len_ + kMacBytes : pending_len_;
    if (reader_.available() < body_len) return;
    header_valid_ = false;

    if (pending_type_ == MsgType::kDataReal) {
      auto body = reader_.read_real(body_len);
      MIC_ASSERT(body.has_value());
      host_.charge(host_.costs().ssl_record_fixed_cycles +
                   host_.costs().stream_crypt_cycles(pending_len_));
      // Decrypt in place and verify the MAC over the ciphertext.
      std::vector<std::uint8_t> ciphertext(
          body->begin(), body->begin() + static_cast<long>(pending_len_));
      const auto mac = crypto::hmac_sha256(recv_key_, ciphertext);
      for (std::uint32_t i = 0; i < kMacBytes; ++i) {
        MIC_ASSERT_MSG(mac[i] == (*body)[pending_len_ + i],
                       "SSL record MAC mismatch");
      }
      crypto::ChaCha20::Key key;
      std::copy(recv_key_.begin(), recv_key_.end(), key.begin());
      crypto::ChaCha20::crypt(key, nonce_for(recv_counter_++), ciphertext);
      notify_data(ChunkView{ciphertext.size(), ciphertext});
    } else if (pending_type_ == MsgType::kDataVirtual) {
      reader_.skip(body_len);
      host_.charge(host_.costs().ssl_record_fixed_cycles +
                   host_.costs().stream_crypt_cycles(pending_len_));
      ++recv_counter_;
      notify_data(ChunkView{pending_len_, {}});
    } else {
      auto body = reader_.read_real(body_len);
      MIC_ASSERT(body.has_value());
      handle_handshake(pending_type_, *body);
    }
  }
}

void SslSession::handle_handshake(MsgType type,
                                  const std::vector<std::uint8_t>& body) {
  const auto& group = crypto::dh_group_14();
  const auto& costs = host_.costs();

  switch (type) {
    case MsgType::kClientHello: {
      MIC_ASSERT(role_ == Role::kServer);
      client_random_ = body;
      server_random_.resize(32);
      for (auto& b : server_random_) {
        b = static_cast<std::uint8_t>(rng_.next());
      }
      dh_private_ = group.sample_private_key(rng_);
      const auto pub = group.public_key(dh_private_);
      host_.charge(costs.dh_modexp_cycles);

      std::vector<std::uint8_t> hello = server_random_;
      const auto pub_bytes = pub.to_bytes_be();
      hello.insert(hello.end(), pub_bytes.begin(), pub_bytes.end());
      send_message(MsgType::kServerHello, std::move(hello));
      break;
    }
    case MsgType::kServerHello: {
      MIC_ASSERT(role_ == Role::kClient);
      MIC_ASSERT(body.size() == 32 + kDhPubBytes);
      server_random_.assign(body.begin(), body.begin() + 32);
      const auto server_pub = crypto::Uint2048::from_bytes_be(
          {body.data() + 32, kDhPubBytes});

      dh_private_ = group.sample_private_key(rng_);
      const auto pub = group.public_key(dh_private_);
      const auto shared = group.shared_secret(dh_private_, server_pub);
      host_.charge(2 * costs.dh_modexp_cycles);
      shared_key_ = group.derive_key(shared, "mic-ssl-master");
      derive_keys();

      std::vector<std::uint8_t> kex;
      const auto pub_bytes = pub.to_bytes_be();
      kex.insert(kex.end(), pub_bytes.begin(), pub_bytes.end());
      const auto mac = finished_mac("client-finished");
      kex.insert(kex.end(), mac.begin(), mac.end());
      send_message(MsgType::kClientKexFinished, std::move(kex));
      break;
    }
    case MsgType::kClientKexFinished: {
      MIC_ASSERT(role_ == Role::kServer);
      MIC_ASSERT(body.size() == kDhPubBytes + 32);
      const auto client_pub =
          crypto::Uint2048::from_bytes_be({body.data(), kDhPubBytes});
      const auto shared = group.shared_secret(dh_private_, client_pub);
      host_.charge(costs.dh_modexp_cycles);
      shared_key_ = group.derive_key(shared, "mic-ssl-master");
      derive_keys();

      const auto expected = finished_mac("client-finished");
      for (std::size_t i = 0; i < 32; ++i) {
        MIC_ASSERT_MSG(expected[i] == body[kDhPubBytes + i],
                       "SSL client Finished MAC mismatch");
      }
      const auto mac = finished_mac("server-finished");
      send_message(MsgType::kServerFinished,
                   std::vector<std::uint8_t>(mac.begin(), mac.end()));
      become_ready();
      break;
    }
    case MsgType::kServerFinished: {
      MIC_ASSERT(role_ == Role::kClient);
      const auto expected = finished_mac("server-finished");
      MIC_ASSERT(body.size() == 32);
      for (std::size_t i = 0; i < 32; ++i) {
        MIC_ASSERT_MSG(expected[i] == body[i],
                       "SSL server Finished MAC mismatch");
      }
      become_ready();
      break;
    }
    default:
      MIC_ASSERT_MSG(false, "unexpected SSL handshake message");
  }
}

void SslSession::derive_keys() {
  // Directional keys bound to both nonces.
  std::vector<std::uint8_t> context(shared_key_.begin(), shared_key_.end());
  context.insert(context.end(), client_random_.begin(), client_random_.end());
  context.insert(context.end(), server_random_.begin(), server_random_.end());
  const auto material = crypto::kdf_sha256(
      context,
      {reinterpret_cast<const std::uint8_t*>("mic-ssl-keys"), 12}, 64);
  std::array<std::uint8_t, 32> c2s{};
  std::array<std::uint8_t, 32> s2c{};
  std::copy(material.begin(), material.begin() + 32, c2s.begin());
  std::copy(material.begin() + 32, material.end(), s2c.begin());
  if (role_ == Role::kClient) {
    send_key_ = c2s;
    recv_key_ = s2c;
  } else {
    send_key_ = s2c;
    recv_key_ = c2s;
  }
}

std::array<std::uint8_t, 32> SslSession::finished_mac(
    const char* label) const {
  return crypto::hmac_sha256(
      shared_key_, {reinterpret_cast<const std::uint8_t*>(label),
                    std::char_traits<char>::length(label)});
}

crypto::ChaCha20::Nonce SslSession::nonce_for(std::uint64_t counter) const {
  crypto::ChaCha20::Nonce nonce{};
  store_le64(nonce.data(), counter);
  return nonce;
}

void SslSession::become_ready() {
  established_ = true;
  notify_ready();
  while (!pending_app_data_.empty()) {
    Chunk chunk = std::move(pending_app_data_.front());
    pending_app_data_.pop_front();
    send_data_record(std::move(chunk));
  }
}

void SslSession::send(Chunk chunk) {
  if (!established_) {
    pending_app_data_.push_back(std::move(chunk));
    return;
  }
  send_data_record(std::move(chunk));
}

void SslSession::send_data_record(Chunk chunk) {
  // Split into records of at most kMaxRecord payload bytes.
  std::uint64_t offset = 0;
  while (offset < chunk.length) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kMaxRecord, chunk.length - offset));
    host_.charge(host_.costs().ssl_record_fixed_cycles +
                 host_.costs().stream_crypt_cycles(len));
    ++records_sent_;

    if (chunk.is_real()) {
      std::vector<std::uint8_t> ciphertext(
          chunk.data->begin() + static_cast<long>(offset),
          chunk.data->begin() + static_cast<long>(offset + len));
      crypto::ChaCha20::Key key;
      std::copy(send_key_.begin(), send_key_.end(), key.begin());
      crypto::ChaCha20::crypt(key, nonce_for(send_counter_++), ciphertext);
      const auto mac = crypto::hmac_sha256(send_key_, ciphertext);

      std::vector<std::uint8_t> record;
      record.reserve(kHeaderBytes + len + kMacBytes);
      record.push_back(static_cast<std::uint8_t>(MsgType::kDataReal));
      std::uint8_t len_be[4];
      store_be32(len_be, len);
      record.insert(record.end(), len_be, len_be + 4);
      record.insert(record.end(), ciphertext.begin(), ciphertext.end());
      record.insert(record.end(), mac.begin(), mac.end());
      underlying_.send(Chunk::real(std::move(record)));
    } else {
      ++send_counter_;
      std::vector<std::uint8_t> header;
      header.push_back(static_cast<std::uint8_t>(MsgType::kDataVirtual));
      std::uint8_t len_be[4];
      store_be32(len_be, len);
      header.insert(header.end(), len_be, len_be + 4);
      underlying_.send(Chunk::real(std::move(header)));
      underlying_.send(Chunk::virtual_bytes(len + kMacBytes));
    }
    offset += len;
  }
}

}  // namespace mic::transport
