// SSL/TLS-style secure stream layered over any ByteStream.
//
// Faithful in shape to the paper's SSL baseline: a 2-RTT handshake carrying
// a real Diffie-Hellman exchange (RFC 3526 group 14, computed for real),
// then a record layer (<=16 KiB records, 5-byte header + 32-byte MAC) whose
// per-byte ChaCha20+HMAC cost is charged to both endpoint CPUs.  Real
// payloads are actually encrypted and authenticated; virtual (bulk)
// payloads are charged but not materialized.
#pragma once

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "transport/tcp.hpp"

namespace mic::transport {

class SslSession : public ByteStream {
 public:
  enum class Role : std::uint8_t { kClient, kServer };

  static constexpr std::uint32_t kMaxRecord = 16 * 1024;
  static constexpr std::uint32_t kHeaderBytes = 5;
  static constexpr std::uint32_t kMacBytes = 32;

  /// Takes exclusive use of `underlying`'s callbacks.  `host` is charged
  /// the crypto cycles; `rng` supplies handshake randomness.
  SslSession(ByteStream& underlying, Role role, Host& host, Rng& rng);

  void send(Chunk chunk) override;
  void close() override { underlying_.close(); }
  bool ready() const override { return established_; }

  std::uint64_t records_sent() const noexcept { return records_sent_; }

 private:
  enum class MsgType : std::uint8_t {
    kClientHello = 1,
    kServerHello = 2,
    kClientKexFinished = 3,
    kServerFinished = 4,
    kDataReal = 5,
    kDataVirtual = 6,
  };

  void start_handshake();
  void on_underlying_data(const ChunkView& view);
  void parse();
  void handle_handshake(MsgType type, const std::vector<std::uint8_t>& body);
  void send_message(MsgType type, std::vector<std::uint8_t> body);
  void send_data_record(Chunk chunk);
  void become_ready();
  void derive_keys();

  std::array<std::uint8_t, 32> finished_mac(const char* label) const;
  crypto::ChaCha20::Nonce nonce_for(std::uint64_t counter) const;

  ByteStream& underlying_;
  Role role_;
  Host& host_;
  Rng& rng_;

  bool established_ = false;
  ByteReader reader_;
  std::deque<Chunk> pending_app_data_;

  // Record parsing state: header consumed but body not yet complete.
  bool header_valid_ = false;
  MsgType pending_type_ = MsgType::kClientHello;
  std::uint32_t pending_len_ = 0;

  // Handshake state.
  std::vector<std::uint8_t> client_random_;
  std::vector<std::uint8_t> server_random_;
  crypto::Uint2048 dh_private_;
  std::array<std::uint8_t, 32> shared_key_{};

  // Record layer state.
  std::array<std::uint8_t, 32> send_key_{};
  std::array<std::uint8_t, 32> recv_key_{};
  std::uint64_t send_counter_ = 0;
  std::uint64_t recv_counter_ = 0;
  std::uint64_t records_sent_ = 0;
};

}  // namespace mic::transport
