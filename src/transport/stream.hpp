// Byte-stream building blocks shared by TCP, SSL, MIC slicing and the Tor
// baseline.
//
// Streams carry two kinds of bytes:
//  - *real* bytes (control messages, handshakes, slice headers) that are
//    actually materialized so cryptographic code paths run end to end, and
//  - *virtual* bytes (bulk payload) that are accounted by length and tagged
//    with a content fingerprint but never allocated, so multi-gigabyte
//    transfers stay cheap.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace mic::transport {

/// A run of bytes to transmit.  `data == nullptr` means virtual bytes.
struct Chunk {
  std::shared_ptr<const std::vector<std::uint8_t>> data;
  std::uint64_t length = 0;

  static Chunk real(std::vector<std::uint8_t> bytes) {
    Chunk c;
    c.length = bytes.size();
    c.data = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
    return c;
  }
  /// Like real() for bytes that must be copied anyway, but the buffer comes
  /// from the thread's PayloadArena freelist (arena.hpp): segmentation and
  /// slicing stop heap-allocating per send.  Defined in arena.cpp.
  static Chunk copy(std::span<const std::uint8_t> bytes);
  static Chunk virtual_bytes(std::uint64_t n) {
    Chunk c;
    c.length = n;
    return c;
  }
  bool is_real() const noexcept { return data != nullptr; }
};

/// Extract [offset, offset+len) of a chunk as a new chunk.
inline Chunk sub_chunk(const Chunk& chunk, std::uint64_t offset,
                       std::uint64_t len) {
  MIC_ASSERT(offset + len <= chunk.length);
  if (!chunk.is_real()) return Chunk::virtual_bytes(len);
  return Chunk::copy(
      std::span(chunk.data->data() + offset, static_cast<std::size_t>(len)));
}

/// A view of received in-order bytes.  `bytes` is empty for virtual data.
struct ChunkView {
  std::uint64_t length = 0;
  std::span<const std::uint8_t> bytes;  // empty when virtual

  bool is_real() const noexcept { return !bytes.empty() || length == 0; }
};

/// Abstract reliable duplex in-order byte stream.  Implemented by
/// TcpConnection, layered by SslSession, consumed by the MIC slicing layer
/// and the Tor baseline.
class ByteStream {
 public:
  using ReadyHandler = std::function<void()>;
  using DataHandler = std::function<void(const ChunkView&)>;
  using ClosedHandler = std::function<void()>;

  virtual ~ByteStream() = default;

  virtual void send(Chunk chunk) = 0;
  virtual void close() = 0;
  virtual bool ready() const = 0;

  void set_on_ready(ReadyHandler h) { on_ready_ = std::move(h); }
  void set_on_data(DataHandler h) { on_data_ = std::move(h); }
  void set_on_closed(ClosedHandler h) { on_closed_ = std::move(h); }

 protected:
  void notify_ready() {
    if (on_ready_) on_ready_();
  }
  void notify_data(const ChunkView& view) {
    if (on_data_) on_data_(view);
  }
  void notify_closed() {
    if (on_closed_) on_closed_();
  }

 private:
  ReadyHandler on_ready_;
  DataHandler on_data_;
  ClosedHandler on_closed_;
};

/// Reassembly helper for protocol parsers sitting on a ByteStream: buffers
/// incoming chunks and supports "read exactly n real bytes" (for headers)
/// and "consume n bytes of any kind" (for payloads).
class ByteReader {
 public:
  void append(const ChunkView& view) {
    if (view.length == 0) return;
    if (view.is_real() && view.length > 0 && !view.bytes.empty()) {
      pending_.push_back({std::vector<std::uint8_t>(view.bytes.begin(),
                                                    view.bytes.end()),
                          view.length});
    } else {
      pending_.push_back({{}, view.length});
    }
    available_ += view.length;
  }

  std::uint64_t available() const noexcept { return available_; }

  /// Read exactly n bytes that must all be real (protocol headers).
  /// Returns nullopt if fewer than n bytes are buffered; asserts if the
  /// buffered bytes are virtual (a framing bug).
  std::optional<std::vector<std::uint8_t>> read_real(std::uint64_t n) {
    if (available_ < n) return std::nullopt;
    std::vector<std::uint8_t> out;
    out.reserve(n);
    while (out.size() < n) {
      auto& front = pending_.front();
      MIC_ASSERT_MSG(!front.bytes.empty(),
                     "parser expected real bytes but found virtual payload");
      const std::uint64_t take =
          std::min<std::uint64_t>(n - out.size(), front.length);
      out.insert(out.end(), front.bytes.begin(),
                 front.bytes.begin() + static_cast<long>(take));
      consume_front(take);
    }
    available_ -= n;
    return out;
  }

  /// Whether the next buffered byte is real.  Requires available() > 0.
  bool next_is_real() const noexcept {
    MIC_ASSERT(!pending_.empty());
    return !pending_.front().bytes.empty();
  }

  /// Consume up to n bytes of a single kind from the front of the buffer.
  /// Returns the consumed run as a Chunk (possibly shorter than n).
  Chunk take_up_to(std::uint64_t n) {
    MIC_ASSERT(available_ > 0 && n > 0);
    auto& front = pending_.front();
    const std::uint64_t take = std::min(n, front.length);
    Chunk out;
    if (!front.bytes.empty()) {
      out = Chunk::copy(
          std::span(front.bytes.data(), static_cast<std::size_t>(take)));
    } else {
      out = Chunk::virtual_bytes(take);
    }
    consume_front(take);
    available_ -= take;
    return out;
  }

  /// Consume n bytes of any kind (payload body).  Returns how many of them
  /// were real.  Asserts if fewer than n are buffered.
  std::uint64_t skip(std::uint64_t n) {
    MIC_ASSERT(available_ >= n);
    std::uint64_t real = 0;
    std::uint64_t left = n;
    while (left > 0) {
      auto& front = pending_.front();
      const std::uint64_t take = std::min(left, front.length);
      if (!front.bytes.empty()) real += take;
      consume_front(take);
      left -= take;
    }
    available_ -= n;
    return real;
  }

 private:
  struct Buffered {
    std::vector<std::uint8_t> bytes;  // empty when virtual
    std::uint64_t length;
  };

  void consume_front(std::uint64_t n) {
    auto& front = pending_.front();
    MIC_ASSERT(front.length >= n);
    if (!front.bytes.empty()) {
      front.bytes.erase(front.bytes.begin(),
                        front.bytes.begin() + static_cast<long>(n));
    }
    front.length -= n;
    if (front.length == 0) pending_.pop_front();
  }

  std::deque<Buffered> pending_;
  std::uint64_t available_ = 0;
};

/// Outbound stream buffer with real/virtual chunks addressed by stream
/// offset; used by TCP for (re)segmentation and retransmission.
class SendBuffer {
 public:
  void append(Chunk chunk) {
    if (chunk.length == 0) return;
    chunks_.push_back({end_, std::move(chunk)});
    end_ += chunks_.back().chunk.length;
  }

  std::uint64_t end_offset() const noexcept { return end_; }
  std::uint64_t base_offset() const noexcept { return base_; }

  /// Extract [offset, offset+len) for (re)transmission.  Mixed ranges are
  /// materialized with zeros standing in for virtual bytes.
  Chunk range(std::uint64_t offset, std::uint64_t len) const {
    MIC_ASSERT(offset >= base_ && offset + len <= end_);
    // Fast path: the range falls inside a single chunk.
    for (const auto& entry : chunks_) {
      if (offset >= entry.offset &&
          offset + len <= entry.offset + entry.chunk.length) {
        if (!entry.chunk.is_real()) return Chunk::virtual_bytes(len);
        const auto& bytes = *entry.chunk.data;
        const std::uint64_t local = offset - entry.offset;
        // Arena-backed: (re)transmission is THE per-send hot path.
        return Chunk::copy(
            std::span(bytes.data() + local, static_cast<std::size_t>(len)));
      }
    }
    // Slow path: stitch across chunks.
    std::vector<std::uint8_t> out(len, 0);
    bool any_real = false;
    for (const auto& entry : chunks_) {
      const std::uint64_t lo = std::max(offset, entry.offset);
      const std::uint64_t hi =
          std::min(offset + len, entry.offset + entry.chunk.length);
      if (lo >= hi) continue;
      if (entry.chunk.is_real()) {
        any_real = true;
        const auto& bytes = *entry.chunk.data;
        for (std::uint64_t i = lo; i < hi; ++i) {
          out[i - offset] = bytes[i - entry.offset];
        }
      }
    }
    return any_real ? Chunk::real(std::move(out)) : Chunk::virtual_bytes(len);
  }

  /// Drop data below `offset` (cumulatively acknowledged).
  void release_until(std::uint64_t offset) {
    while (!chunks_.empty()) {
      auto& front = chunks_.front();
      if (front.offset + front.chunk.length <= offset) {
        base_ = front.offset + front.chunk.length;
        chunks_.pop_front();
      } else {
        break;
      }
    }
  }

 private:
  struct Entry {
    std::uint64_t offset;
    Chunk chunk;
  };
  std::deque<Entry> chunks_;
  std::uint64_t base_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace mic::transport
