#include "transport/tcp.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mic::transport {

namespace {

constexpr sim::SimTime kMinRto = sim::milliseconds(10);
constexpr sim::SimTime kMaxRto = sim::seconds(10);

/// FNV-1a fingerprint of real payload bytes.
std::uint64_t tag_of_bytes(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stable fingerprint for virtual payload: a function of the stream
/// identity and position, so a retransmitted segment carries the same tag
/// as the original (the bytes would be identical on a real wire).
std::uint64_t tag_of_virtual(std::uint64_t stream_uid, std::uint64_t seq,
                             std::uint32_t len) {
  std::uint64_t state = stream_uid ^ (seq * 0x9e3779b97f4a7c15ULL) ^ len;
  return splitmix64(state);
}

}  // namespace

// --- Host -------------------------------------------------------------------

TcpConnection& Host::connect(net::Ipv4 remote, net::L4Port remote_port) {
  return connect_from(allocate_ephemeral_port(), remote, remote_port);
}

TcpConnection& Host::connect_from(net::L4Port local_port, net::Ipv4 remote,
                                  net::L4Port remote_port) {
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, ip_, local_port, remote, remote_port));
  TcpConnection& ref = *conn;
  connections_[key_of(remote, local_port, remote_port)] = std::move(conn);
  charge(costs_.tcp_connect_cycles);
  ref.start_active_open();
  return ref;
}

void Host::listen(net::L4Port port, AcceptHandler handler) {
  listeners_[port] = std::move(handler);
}

net::L4Port Host::allocate_ephemeral_port() {
  if (next_ephemeral_ >= 65000) next_ephemeral_ = 40000;
  return next_ephemeral_++;
}

void Host::receive(const net::Packet& packet, topo::PortId /*in_port*/) {
  if (packet.dst != ip_) {
    // A decoy from the partially-multicast mechanism that escaped its drop
    // rule, or a misrouted packet.  A real NIC discards it.
    log_debug("host %s: dropping packet addressed to %s", ip_.str().c_str(),
              packet.dst.str().c_str());
    return;
  }

  // Segment-processing cost, then demultiplex.  The packet rides the
  // ingress FIFO: CPU completion times are non-decreasing and same-time
  // events fire in insertion order, so the front of the FIFO is always
  // the packet whose event fires.
  const sim::SimTime done =
      cpu_.charge(local_sim().now(), costs_.tcp_segment_cycles);
  ingress_fifo_.push_back(packet);
  local_sim().schedule_at(done, [this] {
    const net::Packet pkt = std::move(ingress_fifo_.front());
    ingress_fifo_.pop_front();
    process_segment(pkt);
  });
}

void Host::process_segment(const net::Packet& pkt) {
  const ConnKey key = key_of(pkt.src, pkt.dport, pkt.sport);
  const auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->on_segment(pkt);
    return;
  }
  if (pkt.tcp.flags.syn && !pkt.tcp.flags.ack) {
    const auto listener = listeners_.find(pkt.dport);
    if (listener != listeners_.end()) {
      auto conn = std::unique_ptr<TcpConnection>(
          new TcpConnection(*this, ip_, pkt.dport, pkt.src, pkt.sport));
      TcpConnection& ref = *conn;
      connections_[key] = std::move(conn);
      // Let the application attach stream callbacks before the handshake
      // completes.
      listener->second(ref);
      ref.start_passive_open(pkt);
      return;
    }
  }
  log_debug("host %s: no socket for %s:%u -> :%u", ip_.str().c_str(),
            pkt.src.str().c_str(), pkt.sport, pkt.dport);
}

void Host::stage_transmit(net::Packet packet) {
  const sim::SimTime done = charge(costs_.tcp_segment_cycles);
  egress_fifo_.push_back(std::move(packet));
  local_sim().schedule_at(done, [this] {
    net::Packet pkt = std::move(egress_fifo_.front());
    egress_fifo_.pop_front();
    transmit(std::move(pkt));
  });
}

// --- TcpConnection ----------------------------------------------------------

TcpConnection::TcpConnection(Host& host, net::Ipv4 local_ip,
                             net::L4Port local_port, net::Ipv4 remote_ip,
                             net::L4Port remote_port)
    : host_(host),
      local_ip_(local_ip),
      remote_ip_(remote_ip),
      local_port_(local_port),
      remote_port_(remote_port),
      stream_uid_(host.fresh_stream_uid()) {}

TcpConnection::~TcpConnection() { disarm_rto(); }

void TcpConnection::start_active_open() {
  state_ = State::kSynSent;
  send_control({.syn = true, .ack = false, .fin = false, .rst = false});
  arm_rto();
}

void TcpConnection::start_passive_open(const net::Packet& /*syn*/) {
  state_ = State::kSynReceived;
  send_control({.syn = true, .ack = true, .fin = false, .rst = false});
  arm_rto();
}

void TcpConnection::send(Chunk chunk) {
  send_buffer_.append(std::move(chunk));
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::close() {
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    if (!fin_sent_ && snd_nxt_ == send_buffer_.end_offset()) {
      fin_sent_ = true;
      send_control({.syn = false, .ack = true, .fin = true, .rst = false});
      state_ = state_ == State::kCloseWait ? State::kClosed : State::kFinWait;
      if (state_ == State::kClosed) notify_closed();
    } else {
      fin_sent_ = true;  // flushed by pump() once the buffer drains
    }
  }
}

void TcpConnection::send_control(net::TcpFlags flags) {
  net::Packet packet;
  packet.src = local_ip_;
  packet.dst = remote_ip_;
  packet.sport = local_port_;
  packet.dport = remote_port_;
  packet.mpls = egress_mpls_;
  packet.tcp.seq = snd_nxt_;
  packet.tcp.ack_seq = rcv_nxt_;
  packet.tcp.flags = flags;
  packet.tcp.payload_len = 0;
  packet.packet_id = host_.network().next_packet_id();

  host_.stage_transmit(std::move(packet));
}

void TcpConnection::send_ack() {
  send_control({.syn = false, .ack = true, .fin = false, .rst = false});
}

void TcpConnection::emit_segment(std::uint64_t seq, std::uint32_t len,
                                 bool retransmit) {
  Chunk chunk = send_buffer_.range(seq, len);

  net::Packet packet;
  packet.src = local_ip_;
  packet.dst = remote_ip_;
  packet.sport = local_port_;
  packet.dport = remote_port_;
  packet.mpls = egress_mpls_;
  packet.tcp.seq = seq;
  packet.tcp.ack_seq = rcv_nxt_;
  packet.tcp.flags = {.syn = false, .ack = true, .fin = false, .rst = false};
  packet.tcp.payload_len = len;
  if (chunk.is_real()) {
    packet.payload = chunk.data;
    packet.content_tag = tag_of_bytes(*chunk.data);
  } else {
    packet.content_tag = tag_of_virtual(stream_uid_, seq, len);
  }
  packet.packet_id = host_.network().next_packet_id();

  if (retransmit) ++retransmits_;
  if (!retransmit && !rtt_timing_) {
    rtt_timing_ = true;
    rtt_seq_ = seq;
    rtt_sent_at_ = host_.local_sim().now();
  }

  host_.stage_transmit(std::move(packet));
}

void TcpConnection::pump() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) return;
  const double window =
      std::min(cwnd_, static_cast<double>(kReceiveWindow));
  while (snd_nxt_ < send_buffer_.end_offset()) {
    const std::uint64_t avail = send_buffer_.end_offset() - snd_nxt_;
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(kMss, avail));
    if (flight_size() > 0 && flight_size() + len > window) break;
    // Below the high-water mark we are resending after an RTO (go-back-N);
    // Karn's algorithm forbids timing those segments.
    const bool retransmit = snd_nxt_ < snd_max_;
    emit_segment(snd_nxt_, len, retransmit);
    snd_nxt_ += len;
    if (snd_nxt_ > snd_max_) snd_max_ = snd_nxt_;
    if (!rto_armed_) arm_rto();
  }
  if (fin_sent_ && snd_nxt_ == send_buffer_.end_offset() &&
      state_ == State::kEstablished) {
    // A deferred close() can now put the FIN on the wire.
    state_ = State::kFinWait;
    send_control({.syn = false, .ack = true, .fin = true, .rst = false});
  }
}

void TcpConnection::on_segment(const net::Packet& packet) {
  const auto& flags = packet.tcp.flags;

  switch (state_) {
    case State::kSynSent:
      if (flags.syn && flags.ack) {
        state_ = State::kEstablished;
        disarm_rto();
        send_ack();
        notify_ready();
        pump();
      }
      return;
    case State::kSynReceived:
      if (flags.ack && !flags.syn) {
        state_ = State::kEstablished;
        disarm_rto();
        notify_ready();
        pump();  // flush data the application queued before establishment
        // Fall through to normal processing: the ACK may carry data.
        break;
      }
      return;
    case State::kClosed:
      return;
    default:
      break;
  }

  if (flags.syn) return;  // stray handshake duplicate

  if (packet.tcp.payload_len > 0) {
    on_data(packet);
  }
  if (flags.ack) {
    on_ack(packet);
  }
  if (flags.fin) {
    const std::uint64_t fin_at = packet.tcp.seq + packet.tcp.payload_len;
    fin_received_ = true;
    fin_offset_ = fin_at;
    if (rcv_nxt_ >= fin_offset_) {
      send_ack();
      if (state_ == State::kFinWait) {
        state_ = State::kClosed;
        notify_closed();
      } else if (state_ == State::kEstablished) {
        state_ = State::kCloseWait;
        notify_closed();
      }
    }
  }
}

void TcpConnection::on_data(const net::Packet& packet) {
  std::uint64_t seq = packet.tcp.seq;
  std::uint32_t len = packet.tcp.payload_len;
  Chunk chunk;
  if (packet.payload != nullptr) {
    chunk.data = packet.payload;
    chunk.length = len;
  } else {
    chunk = Chunk::virtual_bytes(len);
  }

  if (seq + len <= rcv_nxt_) {
    send_ack();  // pure duplicate
    return;
  }
  if (seq < rcv_nxt_) {
    // Trim the already-received prefix.
    const std::uint64_t trim = rcv_nxt_ - seq;
    if (chunk.is_real()) {
      auto bytes = std::vector<std::uint8_t>(
          chunk.data->begin() + static_cast<long>(trim), chunk.data->end());
      chunk = Chunk::real(std::move(bytes));
    } else {
      chunk.length -= trim;
    }
    seq = rcv_nxt_;
    len = static_cast<std::uint32_t>(chunk.length);
  }

  if (seq > rcv_nxt_) {
    out_of_order_.emplace(seq, std::move(chunk));
    send_ack();  // duplicate ACK signals the hole
    return;
  }

  // In-order: deliver, then drain whatever contiguity the OOO buffer adds.
  rcv_nxt_ += len;
  if (chunk.is_real()) {
    notify_data(ChunkView{chunk.length, *chunk.data});
  } else {
    notify_data(ChunkView{chunk.length, {}});
  }
  while (!out_of_order_.empty()) {
    auto it = out_of_order_.begin();
    if (it->first > rcv_nxt_) break;
    std::uint64_t ooo_seq = it->first;
    Chunk ooo = std::move(it->second);
    out_of_order_.erase(it);
    if (ooo_seq + ooo.length <= rcv_nxt_) continue;  // fully duplicate
    const std::uint64_t trim = rcv_nxt_ - ooo_seq;
    if (trim > 0) {
      if (ooo.is_real()) {
        auto bytes = std::vector<std::uint8_t>(
            ooo.data->begin() + static_cast<long>(trim), ooo.data->end());
        ooo = Chunk::real(std::move(bytes));
      } else {
        ooo.length -= trim;
      }
    }
    rcv_nxt_ += ooo.length;
    if (ooo.is_real()) {
      notify_data(ChunkView{ooo.length, *ooo.data});
    } else {
      notify_data(ChunkView{ooo.length, {}});
    }
  }
  send_ack();

  if (fin_received_ && rcv_nxt_ >= fin_offset_ &&
      state_ == State::kEstablished) {
    state_ = State::kCloseWait;
    notify_closed();
  }
}

void TcpConnection::on_ack(const net::Packet& packet) {
  const std::uint64_t ack = packet.tcp.ack_seq;

  if (ack > snd_una_) {
    const std::uint64_t newly_acked = ack - snd_una_;
    snd_una_ = ack;
    consecutive_rtos_ = 0;  // forward progress: the path is alive
    // During go-back-N resend the cumulative ACK can jump past the resend
    // pointer (the receiver had the data buffered out of order).
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    send_buffer_.release_until(ack);
    dupacks_ = 0;

    if (rtt_timing_ && ack > rtt_seq_) {
      measure_rtt(rtt_sent_at_);
      rtt_timing_ = false;
    } else if (srtt_ > 0) {
      // Forward progress collapses any RTO backoff (the retransmission
      // worked; the path is alive).
      const double rto = srtt_ + std::max(1000.0, 4 * rttvar_);
      rto_ = std::clamp(static_cast<sim::SimTime>(rto), kMinRto, kMaxRto);
    }

    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ack: retransmit the next hole immediately.
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(kMss, snd_nxt_ - snd_una_));
        if (len > 0) emit_segment(snd_una_, len, /*retransmit=*/true);
        arm_rto();
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(
          std::min<std::uint64_t>(newly_acked, kMss));  // slow start
    } else {
      cwnd_ += static_cast<double>(kMss) * kMss / cwnd_;  // AIMD increase
    }
    cwnd_ = std::min(cwnd_, kMaxCwnd);

    if (snd_una_ == snd_nxt_) {
      disarm_rto();
    } else {
      arm_rto();  // restart for the next outstanding segment
    }
    pump();
  } else if (ack == snd_una_ && snd_nxt_ > snd_una_ &&
             packet.tcp.payload_len == 0) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == 3) {
      enter_recovery();
    } else if (in_recovery_) {
      cwnd_ += kMss;  // inflate during recovery
      pump();
    }
  }
}

void TcpConnection::enter_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(flight_size() / 2.0, 2.0 * kMss);
  cwnd_ = ssthresh_ + 3.0 * kMss;
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(kMss, snd_nxt_ - snd_una_));
  emit_segment(snd_una_, len, /*retransmit=*/true);
  arm_rto();
}

void TcpConnection::arm_rto() {
  disarm_rto();
  rto_armed_ = true;
  // Local engine: the RTO must tick on the host's shard (arming it on the
  // frozen global engine inside a parallel window would assert).
  rto_timer_ = host_.local_sim().schedule_in(rto_, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void TcpConnection::disarm_rto() {
  if (rto_armed_) {
    host_.local_sim().cancel(rto_timer_);
    rto_armed_ = false;
  }
}

void TcpConnection::on_rto() {
  if (++consecutive_rtos_ > kMaxConsecutiveRtos) {
    // The peer (or the path) is gone: abort, as a real stack would.
    log_warn("tcp %s:%u -> %s:%u aborted after %d consecutive RTOs",
             local_ip_.str().c_str(), local_port_, remote_ip_.str().c_str(),
             remote_port_, kMaxConsecutiveRtos);
    state_ = State::kClosed;
    notify_closed();
    return;
  }
  switch (state_) {
    case State::kSynSent:
      send_control({.syn = true, .ack = false, .fin = false, .rst = false});
      break;
    case State::kSynReceived:
      send_control({.syn = true, .ack = true, .fin = false, .rst = false});
      break;
    case State::kEstablished:
    case State::kCloseWait:
    case State::kFinWait: {
      if (snd_una_ >= snd_nxt_) {
        if (fin_sent_ && state_ == State::kFinWait) {
          send_control(
              {.syn = false, .ack = true, .fin = true, .rst = false});
          break;
        }
        return;  // nothing outstanding
      }
      ssthresh_ = std::max(flight_size() / 2.0, 2.0 * kMss);
      cwnd_ = 1.0 * kMss;
      in_recovery_ = false;
      dupacks_ = 0;
      rtt_timing_ = false;  // Karn's algorithm
      // Go-back-N: resume from snd_una in slow start.  The receiver's
      // out-of-order buffer collapses redundant resends into fast
      // cumulative-ACK jumps, so a burst of holes heals in a few RTTs
      // instead of one RTO per hole.
      snd_nxt_ = snd_una_;
      pump();
      break;
    }
    case State::kClosed:
      return;
  }
  rto_ = std::min(rto_ * 2, kMaxRto);
  arm_rto();
}

void TcpConnection::measure_rtt(sim::SimTime sent_at) {
  const double sample =
      static_cast<double>(host_.local_sim().now() - sent_at);
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  const double rto = srtt_ + std::max(1000.0, 4 * rttvar_);
  rto_ = std::clamp(static_cast<sim::SimTime>(rto), kMinRto, kMaxRto);
}

}  // namespace mic::transport
