// TCP for the simulated hosts: 3-way handshake, sliding window, Reno
// congestion control (slow start, congestion avoidance, fast retransmit /
// fast recovery), RFC 6298 retransmission timers.
//
// Simplifications relative to a kernel stack, all documented in DESIGN.md:
// sequence numbers are 64-bit stream offsets (no wraparound), no SACK, no
// delayed ACKs, no Nagle, receive window fixed.  None of these affect the
// comparisons in the paper's figures, which hinge on path length, crypto
// cost and congestion response.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "crypto/cost_model.hpp"
#include "net/network.hpp"
#include "transport/stream.hpp"

namespace mic::transport {

class Host;

class TcpConnection : public ByteStream {
 public:
  static constexpr std::uint32_t kMss = net::kTcpMss;

  enum class State : std::uint8_t {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,   // we sent FIN, waiting for ack/FIN
    kCloseWait  // peer sent FIN; close() finishes
  };

  ~TcpConnection() override;

  // ByteStream API -----------------------------------------------------------
  void send(Chunk chunk) override;
  void close() override;
  bool ready() const override { return state_ == State::kEstablished; }

  State state() const noexcept { return state_; }
  net::Ipv4 local_ip() const noexcept { return local_ip_; }
  net::Ipv4 remote_ip() const noexcept { return remote_ip_; }
  net::L4Port local_port() const noexcept { return local_port_; }
  net::L4Port remote_port() const noexcept { return remote_port_; }

  /// Bytes acknowledged by the peer so far (delivered end to end).
  std::uint64_t bytes_acked() const noexcept { return snd_una_; }
  std::uint64_t bytes_received() const noexcept { return rcv_nxt_; }
  std::uint32_t retransmissions() const noexcept { return retransmits_; }
  double cwnd_bytes() const noexcept { return cwnd_; }

  // Diagnostics.
  std::uint64_t debug_snd_nxt() const noexcept { return snd_nxt_; }
  std::uint64_t debug_buffer_end() const noexcept {
    return send_buffer_.end_offset();
  }
  sim::SimTime debug_rto() const noexcept { return rto_; }
  std::uint64_t debug_rcv_nxt() const noexcept { return rcv_nxt_; }
  std::size_t debug_ooo_size() const noexcept { return out_of_order_.size(); }

  /// When an MPLS label is set, outgoing segments carry it (used by tests
  /// that inject tagged traffic; normal hosts send untagged and the edge
  /// switch tags).
  void set_egress_mpls(net::MplsLabel label) noexcept { egress_mpls_ = label; }

 private:
  friend class Host;

  TcpConnection(Host& host, net::Ipv4 local_ip, net::L4Port local_port,
                net::Ipv4 remote_ip, net::L4Port remote_port);

  void start_active_open();
  void start_passive_open(const net::Packet& syn);
  void on_segment(const net::Packet& packet);

  void pump();                       // send as much as the window allows
  void emit_segment(std::uint64_t seq, std::uint32_t len, bool retransmit);
  void send_control(net::TcpFlags flags);
  void send_ack();

  void on_ack(const net::Packet& packet);
  void on_data(const net::Packet& packet);
  void enter_recovery();
  void on_rto();
  void arm_rto();
  void disarm_rto();
  void measure_rtt(sim::SimTime sent_at);

  double flight_size() const noexcept {
    return static_cast<double>(snd_nxt_ - snd_una_);
  }

  Host& host_;
  net::Ipv4 local_ip_;
  net::Ipv4 remote_ip_;
  net::L4Port local_port_;
  net::L4Port remote_port_;
  net::MplsLabel egress_mpls_ = net::kNoMpls;

  State state_ = State::kClosed;

  // Send side.
  SendBuffer send_buffer_;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t snd_max_ = 0;  // high-water mark; below it = retransmission
  double cwnd_ = 10.0 * kMss;  // RFC 6928 initial window
  // Initial ssthresh well above the fabric BDP (~12.5 KB) but low enough
  // that slow start cannot overshoot a 150 KB drop-tail queue by a full
  // window: without SACK, recovering a burst of dozens of losses costs one
  // RTT per hole.  Real stacks avoid this via SACK; we avoid provoking it.
  double ssthresh_ = 64.0 * 1024;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  std::uint32_t retransmits_ = 0;
  bool fin_sent_ = false;
  std::uint64_t stream_uid_ = 0;  // seeds virtual-payload content tags

  // Give up after this many consecutive RTOs without forward progress (a
  // real stack aborts too; unbounded retry against a blackhole would also
  // keep the event-driven simulation alive forever).
  static constexpr int kMaxConsecutiveRtos = 15;
  int consecutive_rtos_ = 0;

  // RTT estimation (RFC 6298).
  double srtt_ = 0;
  double rttvar_ = 0;
  sim::SimTime rto_ = sim::milliseconds(200);  // floor for a data center
  sim::EventId rto_timer_ = 0;
  bool rto_armed_ = false;
  std::uint64_t rtt_seq_ = 0;          // segment being timed
  sim::SimTime rtt_sent_at_ = 0;
  bool rtt_timing_ = false;

  // Receive side.
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, Chunk> out_of_order_;
  bool fin_received_ = false;
  std::uint64_t fin_offset_ = 0;

  static constexpr double kMaxCwnd = 8.0 * 1024 * 1024;
  static constexpr std::uint64_t kReceiveWindow = 4ull * 1024 * 1024;
};

/// End-host device: owns the TCP sockets bound to its single NIC.
class Host : public net::Device {
 public:
  using AcceptHandler = std::function<void(TcpConnection&)>;

  Host(net::Ipv4 ip,
       const crypto::CostModel& costs = crypto::default_cost_model())
      : ip_(ip), costs_(costs) {}

  net::Ipv4 ip() const noexcept { return ip_; }
  const crypto::CostModel& costs() const noexcept { return costs_; }

  /// Open a connection; the returned stream is owned by the host and stays
  /// valid until closed.  `remote` may be a real peer or a MIC entry
  /// address.
  TcpConnection& connect(net::Ipv4 remote, net::L4Port remote_port);

  /// Open a connection from a pre-reserved local port (the MIC client
  /// registers its source ports with the MC before connecting, so the MC
  /// can install exact reverse-path rewrites).
  TcpConnection& connect_from(net::L4Port local_port, net::Ipv4 remote,
                              net::L4Port remote_port);

  /// Reserve a local port for a later connect_from().
  net::L4Port reserve_port() { return allocate_ephemeral_port(); }

  /// Accept connections on `port`.
  void listen(net::L4Port port, AcceptHandler handler);

  void receive(const net::Packet& packet, topo::PortId in_port) override;

  /// The global engine -- control-plane callers (clients arming wall-clock
  /// timers, tests) use this.  Data-path work inside Host/TcpConnection
  /// runs on `local_sim()` instead, which under a sharded fabric is the
  /// host's shard engine (the global one is frozen during windows).
  sim::Simulator& simulator() { return network_->simulator(); }
  net::Network& network() { return *network_; }

  /// Transmit out of the host's single NIC (port 0).
  void transmit(net::Packet packet) { network_->transmit(node_, 0, packet); }

  /// Charge the segment-processing CPU cost and put `packet` on the wire
  /// when the CPU is done with it.  The packet waits in the host's egress
  /// FIFO instead of inside the scheduler event: CpuMeter completion times
  /// are non-decreasing and same-time events fire in insertion order, so
  /// the FIFO front is always the packet whose event is firing, and the
  /// event itself captures nothing but `this`.
  void stage_transmit(net::Packet packet);

  std::uint64_t fresh_stream_uid() noexcept { return ++stream_uid_; }

  /// Charge the host CPU; returns completion time.
  sim::SimTime charge(double cycles) {
    return cpu_.charge(local_sim().now(), cycles);
  }

 private:
  friend class TcpConnection;

  struct ConnKey {
    std::uint32_t remote_ip;
    std::uint32_t ports;  // local << 16 | remote
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.remote_ip) << 32) | k.ports);
    }
  };

  static ConnKey key_of(net::Ipv4 remote, net::L4Port local_port,
                        net::L4Port remote_port) {
    return ConnKey{remote.value,
                   (static_cast<std::uint32_t>(local_port) << 16) |
                       remote_port};
  }

  net::L4Port allocate_ephemeral_port();

  /// Demultiplex a fully CPU-processed segment to its connection (or a
  /// listener, for a fresh SYN).
  void process_segment(const net::Packet& packet);

  net::Ipv4 ip_;
  const crypto::CostModel& costs_;
  std::unordered_map<ConnKey, std::unique_ptr<TcpConnection>, ConnKeyHash>
      connections_;
  std::unordered_map<net::L4Port, AcceptHandler> listeners_;
  net::L4Port next_ephemeral_ = 40000;
  std::uint64_t stream_uid_ = 0;
  // Packets waiting for their CPU charge to complete, in completion order
  // (see stage_transmit / receive).  Keeping them here instead of in the
  // event closures keeps every scheduler node capture-small.
  std::deque<net::Packet> egress_fifo_;
  std::deque<net::Packet> ingress_fifo_;
};

}  // namespace mic::transport
