// Compile-FAIL probe for the thread-safety annotations (must NOT build).
//
// Under Clang with -Werror=thread-safety-analysis (wired onto mic_warnings
// in the top-level CMakeLists.txt) each function below is a diagnosed
// violation, so this translation unit fails to compile -- which is the
// pass condition of the `compile_fail_thread_safety` ctest entry.  If the
// annotations in src/common/thread_annotations.hpp ever degrade to no-ops
// on Clang, or the -Wthread-safety wiring is dropped, this file starts
// compiling and the test fails.
//
// GCC has no thread-safety analysis; the test is only registered for Clang
// builds.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  // VIOLATION: writes a GUARDED_BY member without holding the mutex.
  void increment_unlocked() { ++value_; }

  // VIOLATION: declares the requirement but releases before the write.
  void increment_after_release() {
    mu_.lock();
    mu_.unlock();
    ++value_;
  }

 private:
  mic::Mutex mu_;
  long value_ MIC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.increment_unlocked();
  c.increment_after_release();
  return 0;
}
